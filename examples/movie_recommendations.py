"""User-based collaborative filtering on a MovieLens-like dataset.

The KIFF paper motivates KNN graphs with recommendation (Section I).
This example builds the full pipeline the paper's introduction sketches:

1. construct the user KNN graph with KIFF over a 5-star rating matrix;
2. recommend, for each user, the items her nearest neighbours rated
   highly but she has not seen — classic user-based CF;
3. evaluate with a leave-out split: hide 20% of each user's ratings,
   recommend, and measure hit-rate on the hidden items.

Run with::

    python examples/movie_recommendations.py
"""

import numpy as np

from repro import KiffConfig, SimilarityEngine, kiff
from repro.datasets import movielens_like, train_test_split


def recommend(train, graph, user, top_n=10):
    """Score unseen items by similarity-weighted neighbour ratings."""
    seen = set(train.user_items(user).tolist())
    scores: dict[int, float] = {}
    for neighbor, sim in zip(graph.neighbors_of(user), graph.sims_of(user)):
        if sim <= 0:
            continue
        items = train.user_items(int(neighbor))
        ratings = train.user_ratings(int(neighbor))
        for item, rating in zip(items, ratings):
            if int(item) in seen or rating < 3.5:
                continue
            scores[int(item)] = scores.get(int(item), 0.0) + sim * rating
    ranked = sorted(scores.items(), key=lambda t: -t[1])
    return [item for item, _ in ranked[:top_n]]


def main() -> None:
    dataset = movielens_like(n_users=400, n_items=250, density=0.06, seed=11)
    print(f"Dataset: {dataset}")

    train, held_out = train_test_split(
        dataset, holdout_fraction=0.2, min_train_profile=3, seed=7
    )
    print(f"Training matrix: {train.n_ratings:,} ratings (20% held out)")

    engine = SimilarityEngine(train, metric="cosine")
    result = kiff(engine, KiffConfig(k=15))
    print(
        f"KIFF built the user KNN graph in {result.iterations} iterations "
        f"({result.evaluations:,} similarity evaluations)."
    )

    hits = total = 0
    example_shown = False
    for user in range(train.n_users):
        hidden = held_out[user]
        if not hidden:
            continue
        recs = recommend(train, result.graph, user, top_n=10)
        hits += len(set(recs) & hidden)
        total += min(len(hidden), 10)
        if not example_shown and recs:
            print(f"\nTop recommendations for user {user}: {recs[:5]}")
            print(f"(user's hidden test items: {sorted(hidden)[:5]} ...)")
            example_shown = True

    print(f"\nHit rate on held-out ratings: {hits / total:.1%}")

    # Compare against recommending from random "neighbours".
    rng = np.random.default_rng(0)
    random_hits = random_total = 0
    for user in range(train.n_users):
        hidden = held_out[user]
        if not hidden:
            continue
        fake_items = rng.choice(train.n_items, size=10, replace=False)
        random_hits += len(set(fake_items.tolist()) & hidden)
        random_total += min(len(hidden), 10)
    print(f"Random-recommendation hit rate:  {random_hits / random_total:.1%}")


if __name__ == "__main__":
    main()
