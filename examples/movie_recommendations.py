"""User-based collaborative filtering served from graph snapshots.

The KIFF paper motivates KNN graphs with recommendation (Section I).
This example builds the full pipeline the paper's introduction sketches,
on the library's serving stack (:mod:`repro.serving`):

1. maintain the user KNN graph with :class:`DynamicKnnIndex` over a
   5-star rating matrix;
2. answer top-N queries with :class:`Recommender` against *pinned*
   immutable snapshots — the items a user's nearest neighbours rated
   highly but she has not seen, classic user-based CF;
3. evaluate with a leave-out split: hide 20% of each user's ratings,
   recommend, and measure hit-rate on the hidden items;
4. stream a rating event and show the seen-items exclusion moving with
   the snapshot's own dataset view.  (An earlier version of this
   example froze its exclusion set at the initial training split, so an
   item rated via a later streamed event could be recommended straight
   back to the user.)

Run with::

    python examples/movie_recommendations.py
"""

import numpy as np

from repro import AddRating, DynamicKnnIndex, KiffConfig, Recommender
from repro.datasets import movielens_like, train_test_split
from repro.serving import recommend_on


def recommend(snapshot, user, top_n=10):
    """Top-N unseen items for *user*, scored on *snapshot*.

    The exclusion set is the snapshot's own dataset view (not some
    earlier training split), so a rating streamed into the index is
    never recommended back once a fresh snapshot is pinned.  Thin
    wrapper over :func:`repro.serving.recommend_on`.
    """
    return list(recommend_on(snapshot, user, top_n=top_n).items)


def main() -> None:
    dataset = movielens_like(n_users=400, n_items=250, density=0.06, seed=11)
    print(f"Dataset: {dataset}")

    train, held_out = train_test_split(
        dataset, holdout_fraction=0.2, min_train_profile=3, seed=7
    )
    print(f"Training matrix: {train.n_ratings:,} ratings (20% held out)")

    index = DynamicKnnIndex(
        train, KiffConfig(k=15), metric="cosine", auto_refresh=False
    )
    try:
        recommender = Recommender(index, top_n=10)
        snapshot = recommender.pin()
        print(
            f"KIFF built the user KNN graph "
            f"({index.initial_evaluations:,} similarity evaluations); "
            f"serving snapshot version {snapshot.version}."
        )

        # One pin serves the whole evaluation: every query is consistent
        # with the same graph version.
        hits = total = 0
        example_shown = False
        for user in range(train.n_users):
            hidden = held_out[user]
            if not hidden:
                continue
            recs = recommend(snapshot, user, top_n=10)
            hits += len(set(recs) & hidden)
            total += min(len(hidden), 10)
            if not example_shown and recs:
                print(f"\nTop recommendations for user {user}: {recs[:5]}")
                print(f"(user's hidden test items: {sorted(hidden)[:5]} ...)")
                example_shown = True

        print(f"\nHit rate on held-out ratings: {hits / total:.1%}")

        # Compare against recommending from random "neighbours".
        rng = np.random.default_rng(0)
        random_hits = random_total = 0
        for user in range(train.n_users):
            hidden = held_out[user]
            if not hidden:
                continue
            fake_items = rng.choice(train.n_items, size=10, replace=False)
            random_hits += len(set(fake_items.tolist()) & hidden)
            random_total += min(len(hidden), 10)
        print(
            f"Random-recommendation hit rate:  "
            f"{random_hits / random_total:.1%}"
        )

        # Streamed events move the exclusion set with the snapshot: the
        # moment the user rates her top recommendation, a fresh pin
        # stops recommending it — while the old pin (and any query
        # mid-flight on it) keeps its consistent pre-event view.
        user = next(
            u for u in range(train.n_users) if recommend(snapshot, u, top_n=1)
        )
        top_item = recommend(snapshot, user, top_n=1)[0]
        index.apply(AddRating(user, top_item, 5.0))
        index.refresh()
        fresh = recommender.pin()
        stale_recs = recommend(snapshot, user, top_n=10)
        fresh_recs = recommend(fresh, user, top_n=10)
        print(
            f"\nUser {user} rated item {top_item} via a streamed event "
            f"(snapshot version {snapshot.version} -> {fresh.version})."
        )
        print(
            f"Pinned pre-event snapshot still offers it: "
            f"{top_item in stale_recs}; fresh snapshot excludes it: "
            f"{top_item not in fresh_recs}"
        )
        assert top_item not in fresh_recs
    finally:
        index.close()


if __name__ == "__main__":
    main()
