"""Head-to-head comparison: KIFF vs NN-Descent vs HyRec vs LSH.

Reproduces the spirit of the paper's Table II on one dataset, with the
MinHash-LSH extension baseline added, and prints a breakdown of where
each algorithm spends its time (the paper's Figures 1 and 5).

Run with::

    python examples/compare_algorithms.py [dataset] [scale]

where ``dataset`` is one of wikipedia / arxiv / gowalla / dblp (default
wikipedia) and ``scale`` is tiny or laptop (default tiny, so the script
finishes in seconds).
"""

import sys

from repro import (
    HyRecConfig,
    KiffConfig,
    LshConfig,
    NNDescentConfig,
    SimilarityEngine,
    brute_force_knn,
    hyrec,
    kiff,
    lsh_knn,
    nn_descent,
    recall,
)
from repro.datasets import load_dataset
from repro.experiments.report import render_table


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "wikipedia"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"
    dataset = load_dataset(dataset_name, scale=scale)
    k = 10 if scale == "tiny" else 20
    print(f"Dataset: {dataset} (k={k})\n")

    exact = brute_force_knn(SimilarityEngine(dataset), k)

    runs = [
        ("kiff", lambda: kiff(SimilarityEngine(dataset), KiffConfig(k=k))),
        (
            "nn-descent",
            lambda: nn_descent(
                SimilarityEngine(dataset), NNDescentConfig(k=k, seed=0)
            ),
        ),
        (
            "hyrec",
            lambda: hyrec(SimilarityEngine(dataset), HyRecConfig(k=k, seed=0)),
        ),
        ("lsh", lambda: lsh_knn(SimilarityEngine(dataset), LshConfig(k=k, seed=0))),
    ]

    rows = []
    for name, runner in runs:
        result = runner()
        breakdown = result.timer.as_breakdown()
        rows.append(
            [
                name,
                round(recall(result.graph, exact.graph), 3),
                round(result.wall_time, 3),
                f"{result.scan_rate:.2%}",
                result.iterations,
                f"{breakdown['preprocessing']:.3f}",
                f"{breakdown['candidate_selection']:.3f}",
                f"{breakdown['similarity']:.3f}",
            ]
        )

    print(
        render_table(
            [
                "approach",
                "recall",
                "time (s)",
                "scan rate",
                "iters",
                "preproc (s)",
                "cand sel (s)",
                "similarity (s)",
            ],
            rows,
            title=f"KNN graph construction on {dataset_name} ({scale})",
        )
    )


if __name__ == "__main__":
    main()
