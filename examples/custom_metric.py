"""Plugging a custom similarity metric into KIFF.

The paper stresses that KIFF is generic: any item-based metric satisfying
properties (5)/(6) — zero without shared items, non-negative with them —
keeps KIFF's pruning lossless.  This example registers a *weighted
overlap* metric (rating-weighted common-item count), runs KIFF with it,
and verifies the result against brute force.

Run with::

    python examples/custom_metric.py
"""

import numpy as np

from repro import (
    KiffConfig,
    SimilarityEngine,
    brute_force_knn,
    kiff,
    recall,
    register_metric,
)
from repro.datasets import load_dataset
from repro.similarity.base import SimilarityMetric, intersect_profiles


@register_metric
class WeightedOverlap(SimilarityMetric):
    """Sum of min(rating_u, rating_v) over common items.

    Satisfies the paper's properties: no common items -> 0, any common
    item with positive ratings -> positive.
    """

    name = "weighted_overlap"
    satisfies_overlap_properties = True

    def score_pair(self, index, u, v):
        _, ratings_u, ratings_v = intersect_profiles(index, u, v)
        if ratings_u.size == 0:
            return 0.0
        return float(np.minimum(ratings_u, ratings_v).sum())

    def score_batch(self, index, us, vs):
        # min(a, b) = (a + b - |a - b|) / 2, computed sparsely: on common
        # items both entries are present; elsewhere the product is zero,
        # so we mask with the binary intersection.
        rows_u = index.matrix[us]
        rows_v = index.matrix[vs]
        common = index.binary[us].multiply(index.binary[vs])
        sum_part = (rows_u + rows_v).multiply(common)
        diff_part = abs(rows_u - rows_v).multiply(common)
        return np.asarray((sum_part - diff_part).sum(axis=1)).ravel() / 2.0

    def score_block(self, index, us):
        out = np.zeros((len(us), index.n_users))
        for row, u in enumerate(us):
            for v in range(index.n_users):
                if v != u:
                    out[row, v] = self.score_pair(index, int(u), v)
        return out


def main() -> None:
    dataset = load_dataset("gowalla", scale="tiny")
    print(f"Dataset: {dataset} (count-valued ratings)")

    engine = SimilarityEngine(dataset, metric="weighted_overlap")
    result = kiff(engine, KiffConfig(k=8))
    print(
        f"KIFF with custom metric: {result.iterations} iterations, "
        f"scan rate {result.scan_rate:.2%}"
    )

    exact = brute_force_knn(
        SimilarityEngine(dataset, metric="weighted_overlap"), 8
    )
    print(f"Recall vs brute force: {recall(result.graph, exact.graph):.3f}")

    user = int(dataset.user_profile_sizes().argmax())
    print(f"\nTop neighbours of the most active user ({user}):")
    for neighbor, sim in zip(
        result.graph.neighbors_of(user)[:5], result.graph.sims_of(user)[:5]
    ):
        print(f"  user {neighbor:4d}  weighted overlap {sim:.1f}")


if __name__ == "__main__":
    main()
