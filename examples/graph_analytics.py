"""Analysing and persisting a constructed KNN graph.

Shows the post-construction workflow: build once with KIFF, save the
graph to disk, reload it, and inspect its structure — reciprocity,
in-degree concentration, similarity-by-rank profile, and connectivity —
comparing against a random graph to see what "a good KNN graph" looks
like quantitatively.

Run with::

    python examples/graph_analytics.py
"""

import tempfile
from pathlib import Path

from repro import KiffConfig, SimilarityEngine, kiff, random_knn_graph
from repro.datasets import load_dataset
from repro.experiments.report import render_table
from repro.graph import analyze, load_graph, save_graph, similarity_by_rank


def main() -> None:
    dataset = load_dataset("arxiv", scale="tiny")
    print(f"Dataset: {dataset}\n")

    engine = SimilarityEngine(dataset)
    result = kiff(engine, KiffConfig(k=8))

    # Persist and reload: the graph you paid to build is reusable.
    with tempfile.TemporaryDirectory() as tmp:
        path = save_graph(result.graph, Path(tmp) / "arxiv-knn.npz")
        graph = load_graph(path)
        print(f"Graph saved to and reloaded from {path.name}: {graph}")

    kiff_stats = analyze(result.graph)
    random_graph = random_knn_graph(SimilarityEngine(dataset), 8, seed=0)
    random_stats = analyze(random_graph)

    rows = [
        [label, kiff_value, random_value]
        for (label, kiff_value), (_, random_value) in zip(
            kiff_stats.as_rows(), random_stats.as_rows()
        )
    ]
    print()
    print(
        render_table(
            ["Statistic", "KIFF graph", "Random graph"],
            rows,
            title="KNN graph quality, KIFF vs random edges",
        )
    )

    by_rank = similarity_by_rank(result.graph)
    print("\nMean similarity by neighbourhood rank (best slot first):")
    print("  " + "  ".join(f"{value:.3f}" for value in by_rank))
    print(
        "\nReading: high reciprocity and a decaying rank profile are the "
        "signatures of a converged KNN graph; random edges show neither."
    )


if __name__ == "__main__":
    main()
