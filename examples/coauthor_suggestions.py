"""Collaborator suggestion on a co-authorship network (Arxiv-style).

In the paper's Arxiv and DBLP datasets, authors are both users and items:
an author's profile is the set of her co-authors.  A KNN graph over that
similarity is a "people who collaborate like you" graph, and its
neighbours who are *not yet* co-authors are natural collaboration
suggestions (link prediction).

This example also shows KIFF running with a different metric
(Adamic-Adar), exercising the paper's claim that KIFF "can be applied to
any similarity metric".

Run with::

    python examples/coauthor_suggestions.py
"""

from repro import KiffConfig, SimilarityEngine, kiff
from repro.datasets import arxiv_like


def suggest_collaborators(dataset, graph, author, top_n=5):
    """Neighbours in similarity order who are not already co-authors."""
    current = set(dataset.user_items(author).tolist())
    suggestions = []
    for neighbor, sim in zip(graph.neighbors_of(author), graph.sims_of(author)):
        if int(neighbor) in current or sim <= 0:
            continue
        suggestions.append((int(neighbor), sim))
        if len(suggestions) == top_n:
            break
    return suggestions


def main() -> None:
    dataset = arxiv_like(n_authors=800, avg_coauthors=10.0, seed=21)
    print(f"Co-authorship network: {dataset}")

    for metric in ("cosine", "adamic_adar"):
        engine = SimilarityEngine(dataset, metric=metric)
        result = kiff(engine, KiffConfig(k=10))
        print(
            f"\n[{metric}] KIFF: {result.iterations} iterations, "
            f"scan rate {result.scan_rate:.2%}"
        )

        # Pick the most collaborative author as the running example.
        author = int(dataset.user_profile_sizes().argmax())
        print(
            f"Author {author} has {dataset.user_profile_sizes()[author]} "
            f"co-authors; suggested new collaborators:"
        )
        for neighbor, sim in suggest_collaborators(dataset, result.graph, author):
            shared = len(
                set(dataset.user_items(author).tolist())
                & set(dataset.user_items(neighbor).tolist())
            )
            print(
                f"  author {neighbor:4d}  {metric}={sim:.3f} "
                f"({shared} shared co-authors)"
            )


if __name__ == "__main__":
    main()
