"""Density sweep: when does KIFF beat NN-Descent?

A miniature of the paper's Figure 10: derive progressively sparser
versions of one MovieLens-like dataset (the paper's exact random-removal
procedure), run both algorithms at matched recall, and watch KIFF's scan
rate collapse with density while NN-Descent's stays flat.

Run with::

    python examples/density_sweep.py
"""

from repro import KiffConfig, NNDescentConfig, SimilarityEngine, brute_force_knn, kiff, nn_descent, recall
from repro.datasets import movielens_family, movielens_like
from repro.experiments.report import render_table


def main() -> None:
    base = movielens_like(n_users=500, n_items=320, density=0.05, seed=33)
    family = movielens_family(base=base)
    k = 10

    rows = []
    for dataset in family:
        exact = brute_force_knn(SimilarityEngine(dataset), k)
        nnd = nn_descent(SimilarityEngine(dataset), NNDescentConfig(k=k, seed=0))
        nnd_recall = recall(nnd.graph, exact.graph)

        kf = kiff(SimilarityEngine(dataset), KiffConfig(k=k))
        kf_recall = recall(kf.graph, exact.graph)

        rows.append(
            [
                dataset.name,
                f"{dataset.density_percent:.2f}%",
                round(nnd_recall, 3),
                f"{nnd.scan_rate:.1%}",
                round(nnd.wall_time, 2),
                round(kf_recall, 3),
                f"{kf.scan_rate:.1%}",
                round(kf.wall_time, 2),
            ]
        )

    print(
        render_table(
            [
                "dataset",
                "density",
                "NND recall",
                "NND scan",
                "NND time",
                "KIFF recall",
                "KIFF scan",
                "KIFF time",
            ],
            rows,
            title="KIFF vs NN-Descent across density (Figure 10 miniature)",
        )
    )
    print(
        "\nExpected shape: KIFF's scan rate falls steeply as density "
        "drops; NN-Descent's barely moves."
    )


if __name__ == "__main__":
    main()
