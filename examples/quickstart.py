"""Quickstart: build a KNN graph with KIFF in a dozen lines.

Run with::

    python examples/quickstart.py
"""

from repro import KiffConfig, SimilarityEngine, brute_force_knn, kiff, recall
from repro.datasets import load_dataset


def main() -> None:
    # 1. Load a dataset (a seeded synthetic replica of the paper's
    #    Wikipedia adminship votes; see DESIGN.md for the substitution).
    dataset = load_dataset("wikipedia", scale="tiny")
    print(f"Dataset: {dataset}")

    # 2. Build an instrumented similarity engine (cosine by default).
    engine = SimilarityEngine(dataset, metric="cosine")

    # 3. Run KIFF with the paper's defaults (k=20 is large for this tiny
    #    dataset, so we use k=10).
    result = kiff(engine, KiffConfig(k=10))
    print(
        f"KIFF finished in {result.iterations} iterations, "
        f"{result.evaluations:,} similarity evaluations "
        f"(scan rate {result.scan_rate:.2%})."
    )

    # 4. Inspect a user's neighbourhood.
    user = 0
    neighbors = result.graph.neighbors_of(user)
    sims = result.graph.sims_of(user)
    print(f"\nNearest neighbours of user {user}:")
    for neighbor, sim in zip(neighbors, sims):
        print(f"  user {neighbor:4d}  cosine similarity {sim:.3f}")

    # 5. Measure quality against an exact brute-force graph.
    exact = brute_force_knn(SimilarityEngine(dataset), 10)
    print(f"\nRecall against exact KNN: {recall(result.graph, exact.graph):.3f}")


if __name__ == "__main__":
    main()
