"""Streaming maintenance: keep a KNN graph exact under live rating events.

Run with::

    python examples/streaming_updates.py
"""

from repro import DynamicKnnIndex, KiffConfig
from repro.datasets import load_dataset
from repro.streaming import cold_rebuild_graph


def main() -> None:
    # 1. Start from an offline KIFF build, exactly like the batch setting.
    dataset = load_dataset("wikipedia", scale="tiny")
    index = DynamicKnnIndex(dataset, KiffConfig(k=8), metric="cosine")
    print(f"Initial build: {dataset}")
    print(
        f"  {index.initial_evaluations:,} similarity evaluations, "
        f"{index.graph.edge_count():,} edges"
    )

    # 2. Ratings arrive continuously; the graph stays exact after each
    #    batch (auto_refresh=True, the default).
    index.add_ratings(users=[0, 3, 7], items=[5, 5, 9], ratings=[4.0, 5.0, 3.0])
    stats = index.refresh_log[-1]
    print(
        f"\nAbsorbed 3 rating events: {stats.dirty_users} dirty users, "
        f"{stats.affected_users} rows rebuilt, "
        f"{stats.evaluations} similarity evaluations "
        f"(vs ~{index.initial_evaluations:,} for a cold rebuild)."
    )

    # 3. New users join mid-stream; ids are allocated densely.
    newcomer = index.add_user(items=[5, 9, 12], ratings=[5.0, 4.0, 2.0])
    print(
        f"\nUser {newcomer} joined; neighbours: "
        f"{index.graph.neighbors_of(newcomer).tolist()}"
    )

    # 4. Users leave; their rows empty and referencing rows are repaired.
    index.remove_user(0)
    print(f"User 0 left; degree now {index.graph.degree()[0]}")

    # 5. Deferred mode: batch events and refresh on your own schedule.
    index.auto_refresh = False
    index.add_ratings([1, 2], [3, 3], [5.0, 5.0])
    print(f"\nDeferred mode: {index.pending_events} events pending")
    stats = index.refresh()
    print(f"Refresh evaluated {stats.evaluations} pairs, {stats.changes} slots changed")

    # 6. The maintained graph is *exactly* the converged KIFF graph.
    cold = cold_rebuild_graph(index.dataset, index.config, metric="cosine")
    print(f"\nParity with cold rebuild: {index.graph == cold}")
    print(
        f"Total maintenance cost: {index.maintenance_evaluations:,} evaluations "
        f"across {len(index.refresh_log)} refreshes"
    )


if __name__ == "__main__":
    main()
