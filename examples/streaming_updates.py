"""Streaming maintenance: keep a KNN graph exact under live rating events.

Run the narrative walkthrough with::

    python examples/streaming_updates.py

Durable-stream mode (used by the crash-recovery smoke job) journals a
seeded random event stream into a write-ahead log with periodic
checkpoints, and can SIGKILL itself mid-stream to simulate a crash::

    python examples/streaming_updates.py --state-dir /tmp/state \
        --events 120 --checkpoint-every 25 --kill-after 73
    repro-kiff recover /tmp/state --verify

Running the same seed with ``--events K`` (no kill) produces the
uninterrupted reference state at event K — what the recovery test
compares bit-identically against.  ``--shards N`` runs the same durable
stream through a :class:`ShardedKnnIndex` with per-shard
``wal-<shard>.jsonl`` segments and partitioned checkpoints (the sharded
crash-recovery smoke job drives this mode); ``--executor processes``
additionally fans each refresh out to one OS worker per shard over
shared-memory snapshots — the crash drill then exercises SIGKILL of a
whole process tree mid-stream.  ``--rebalance-after N`` runs a live
WAL-fenced shard re-balance (to ``--rebalance-to`` shards) mid-stream,
so the drill also covers recovery across a migration fence.
"""

import argparse
import os
import signal
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AddRating,
    AddUser,
    DynamicKnnIndex,
    KiffConfig,
    RemoveRating,
    RemoveUser,
    WriteAheadLog,
    ratings_batch,
)
from repro.datasets import load_dataset
from repro.graph import save_graph
from repro.streaming import cold_rebuild_graph


def random_event(rng, n_users, max_item=30):
    """One seeded random event against a population of *n_users*."""
    op = int(rng.integers(0, 12))
    if op < 7:
        return AddRating(
            int(rng.integers(0, n_users)),
            int(rng.integers(0, max_item)),
            float(rng.integers(1, 6)),
        )
    if op < 9:
        return RemoveRating(
            int(rng.integers(0, n_users)), int(rng.integers(0, max_item))
        )
    if op < 11:
        size = int(rng.integers(1, 4))
        items = rng.choice(max_item, size=size, replace=False)
        return AddUser(
            tuple(int(item) for item in items),
            tuple(float(r) for r in rng.integers(1, 6, size=size)),
        )
    return RemoveUser(int(rng.integers(0, n_users)))


def durable_stream(args) -> None:
    """Stream seeded events through a WAL'd index, optionally crashing."""
    dataset = load_dataset("wikipedia", scale="tiny")
    state = Path(args.state_dir)
    state.mkdir(parents=True, exist_ok=True)
    if args.shards > 1:
        from repro import PartitionedWriteAheadLog, ShardedKnnIndex

        index = ShardedKnnIndex(
            dataset,
            KiffConfig(k=8),
            auto_refresh=False,
            n_shards=args.shards,
            executor=args.executor,
            wal=PartitionedWriteAheadLog(state, args.shards, fsync_every=8),
        )
    else:
        index = DynamicKnnIndex(
            dataset,
            KiffConfig(k=8),
            auto_refresh=False,
            wal=WriteAheadLog(state / "wal.jsonl", fsync_every=8),
        )
    # However the stream ends (completion, a bad event, SIGINT), the
    # index must release its worker pool and /dev/shm arena; only the
    # simulated SIGKILL below escapes this (that leak is exactly what
    # the crash-recovery drill then observes and cleans up).
    try:
        index.checkpoint(state)  # seed checkpoint: recovery's replay base
        rng = np.random.default_rng(args.seed)
        for done in range(1, args.events + 1):
            index.apply(random_event(rng, index.n_users))
            if done == args.rebalance_after and args.shards > 1:
                from repro import ShardPlan

                stats = index.rebalance(
                    ShardPlan(n_shards=args.rebalance_to)
                )
                print(
                    f"Rebalanced after event {done}: "
                    f"{stats.shards_before} -> {stats.shards_after} "
                    f"shards, {stats.users_moved} users moved "
                    f"(fence {stats.seq_begin}..{stats.seq_commit})",
                    flush=True,
                )
            if done % args.checkpoint_every == 0:
                index.refresh()
                index.checkpoint(state)
            if args.kill_after is not None and done == args.kill_after:
                print(
                    f"Simulating crash: SIGKILL after event {done}",
                    flush=True,
                )
                os.kill(os.getpid(), signal.SIGKILL)
        index.refresh()
        # The uninterrupted final graph, for bit-identical recovery checks.
        save_graph(index.graph, state / "final-graph.npz")
        parity = index.graph == cold_rebuild_graph(index.dataset, index.config)
        print(
            f"Streamed {args.events} events into {state} "
            f"(last sequence {index.last_seq}); parity with cold rebuild: "
            f"{parity}"
        )
    finally:
        index.close()


def narrative() -> None:
    # 1. Start from an offline KIFF build, exactly like the batch setting.
    dataset = load_dataset("wikipedia", scale="tiny")
    index = DynamicKnnIndex(dataset, KiffConfig(k=8), metric="cosine")
    print(f"Initial build: {dataset}")
    print(
        f"  {index.initial_evaluations:,} similarity evaluations, "
        f"{index.graph.edge_count():,} edges"
    )

    # 2. Ratings arrive continuously as typed events; apply() is the
    #    single ingestion path and the graph stays exact after each
    #    event (auto_refresh=True, the default).
    result = index.apply(
        ratings_batch(
            users=[0, 3, 7], items=[5, 5, 9], ratings=[4.0, 5.0, 3.0]
        )
    )
    stats = result.refreshes[-1]
    print(
        f"\nAbsorbed {result.events} rating events: {stats.dirty_users} dirty "
        f"users, {stats.affected_users} rows rebuilt, "
        f"{stats.evaluations} similarity evaluations "
        f"(vs ~{index.initial_evaluations:,} for a cold rebuild)."
    )

    # 3. New users join mid-stream; ids are allocated densely and
    #    returned in ApplyResult.new_users.
    result = index.apply(AddUser(items=(5, 9, 12), ratings=(5.0, 4.0, 2.0)))
    newcomer = result.new_users[0]
    print(
        f"\nUser {newcomer} joined; neighbours: "
        f"{index.graph.neighbors_of(newcomer).tolist()}"
    )

    # 4. Users leave (and single ratings retract); referencing rows are
    #    repaired in the same pass.
    index.apply([RemoveRating(3, 5), RemoveUser(0)])
    print(f"User 0 left; degree now {index.graph.degree()[0]}")

    # 5. Deferred mode: batch events and refresh on your own schedule.
    index.auto_refresh = False
    index.apply(ratings_batch([1, 2], [3, 3], [5.0, 5.0]))
    print(f"\nDeferred mode: {index.pending_events} events pending")
    stats = index.refresh()
    print(
        f"Refresh evaluated {stats.evaluations} pairs, "
        f"{stats.changes} slots changed"
    )

    # 6. The maintained graph is *exactly* the converged KIFF graph.
    cold = cold_rebuild_graph(index.dataset, index.config, metric="cosine")
    print(f"\nParity with cold rebuild: {index.graph == cold}")
    print(
        f"Total maintenance cost: {index.maintenance_evaluations:,} "
        f"evaluations across {len(index.refresh_log)} refreshes"
    )

    # 7. Durability: journal events into a write-ahead log, checkpoint,
    #    and restore a bit-identical index after a "crash".
    with tempfile.TemporaryDirectory() as tmp:
        state = Path(tmp)
        index.attach_wal(WriteAheadLog(state / "wal.jsonl"))
        index.checkpoint(state)
        index.apply(AddRating(1, 7, 4.0))  # journaled, not checkpointed
        index.refresh()  # restore() also lands on the refreshed graph
        restored = DynamicKnnIndex.restore(state)
        info = restored.restore_info
        print(
            f"\nRestored from {info.checkpoint.name} + {info.replayed_events} "
            f"replayed WAL event(s); bit-identical: "
            f"{restored.graph == index.graph}"
        )
        restored.close()
    index.close()


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--state-dir",
        default=None,
        help="durable-stream mode: WAL + checkpoints land here",
    )
    parser.add_argument("--events", type=int, default=80)
    parser.add_argument("--checkpoint-every", type=int, default=20)
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "durable-stream mode: shard the index across N workers "
            "(partitioned wal-<shard>.jsonl segments + sharded checkpoints)"
        ),
    )
    parser.add_argument(
        "--executor",
        default="threads",
        choices=("serial", "threads", "processes"),
        help=(
            "durable-stream mode with --shards > 1: the shard refresh "
            "executor (processes = multiprocessing workers over "
            "shared-memory snapshots)"
        ),
    )
    parser.add_argument(
        "--kill-after",
        type=int,
        default=None,
        help="SIGKILL this process after N events (crash simulation)",
    )
    parser.add_argument(
        "--rebalance-after",
        type=int,
        default=None,
        help=(
            "durable-stream mode with --shards > 1: run a live "
            "WAL-fenced rebalance to --rebalance-to shards after N "
            "events (combine with --kill-after to crash mid-migration "
            "history)"
        ),
    )
    parser.add_argument(
        "--rebalance-to",
        type=int,
        default=3,
        help="target shard count for --rebalance-after (default: 3)",
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    if args.state_dir:
        durable_stream(args)
    else:
        narrative()


if __name__ == "__main__":
    main()
