"""Figure 10 bench: KIFF vs NN-Descent across dataset density."""

from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


def test_figure10_report(benchmark, context, save_report):
    benchmark.group = "figure10:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["figure10"].run(context))
    save_report("figure10", report)

    kiff_scans = [report.data[f"ml-{i}"]["kiff"].scan_rate for i in range(1, 6)]
    nnd_scans = [report.data[f"ml-{i}"]["nnd"].scan_rate for i in range(1, 6)]
    # Paper shape (Fig. 10b): KIFF's scan rate falls sharply with density;
    # NN-Descent's moves far less.
    assert kiff_scans[0] > kiff_scans[-1]
    kiff_span = kiff_scans[0] / max(kiff_scans[-1], 1e-9)
    nnd_span = max(nnd_scans) / max(min(nnd_scans), 1e-9)
    assert kiff_span > nnd_span
    # Paper shape (Fig. 10a): KIFF wins on the sparse end.
    sparse = report.data["ml-5"]
    assert sparse["kiff"].wall_time <= sparse["nnd"].wall_time
