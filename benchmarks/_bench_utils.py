"""Helpers shared by the benchmark files."""

from __future__ import annotations

import json
import resource
import sys
from pathlib import Path


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalised
    here so every bench records the same unit.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak if sys.platform == "darwin" else peak * 1024)


def run_once(benchmark, fn):
    """Benchmark *fn* with a single measured execution.

    The experiments are macro-benchmarks (seconds to minutes); repeating
    them for statistics would multiply the suite's runtime for no insight.
    Every measured test also records the process's peak RSS so the bench
    artifacts carry a memory trajectory next to the wall times (the
    regression gate never baselines it — RSS is machine-dependent).
    """
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    benchmark.extra_info["peak_rss_bytes"] = peak_rss_bytes()
    return result


def write_bench_json(name: str, payload: dict, report_dir) -> Path:
    """Write one machine-readable ``BENCH_<name>.json`` report.

    The ``.txt`` reports render the paper's tables for humans; these
    JSON twins are what CI consumes — uploaded as artifacts for the
    bench trajectory and diffed against ``benchmarks/baselines/`` by
    ``check_regression.py``.  Stable key order, so consecutive runs
    diff cleanly.
    """
    path = Path(report_dir) / f"BENCH_{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
