"""Helpers shared by the benchmark files."""

from __future__ import annotations


def run_once(benchmark, fn):
    """Benchmark *fn* with a single measured execution.

    The experiments are macro-benchmarks (seconds to minutes); repeating
    them for statistics would multiply the suite's runtime for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
