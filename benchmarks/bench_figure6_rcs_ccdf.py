"""Figure 6 bench: RCS-size CCDF with termination cut-offs."""

import numpy as np

from repro.datasets.registry import EVALUATION_SUITE
from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


def test_figure6_report(benchmark, context, save_report):
    benchmark.group = "figure6:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["figure6"].run(context))
    save_report("figure6", report)
    for name in EVALUATION_SUITE:
        xs, ps = report.data[name]["ccdf"]
        assert np.all(np.diff(ps) <= 0)
        assert report.data[name]["cut"] > 0
