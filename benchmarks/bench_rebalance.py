"""Live re-balancing bench: migration must not stall ingestion.

A synthetic sparse workload is split 90%/10%; the 90% is prebuilt and
the 10% streamed back in multi-event batches through a
:class:`ShardedKnnIndex`, with two WAL-fenced re-balances injected
mid-stream (an override move-plan at one third, a shard-count change at
two thirds).  Per-refresh wall times and the two migration stalls are
recorded separately.

Assertions:

* **Parity always** — the final graph is bit-identical to the
  sequential :class:`DynamicKnnIndex` on the same stream: migration is
  invisible in the result.
* **Deterministic movement** — the move-plan migrates exactly its
  override pairs; the count-change lands on the target shard count.
* **Bounded stall** — ingestion never stalls longer than one refresh
  pass: each ``rebalance()`` call's wall time must stay under the
  longest single refresh of the same run (plus a small absolute epsilon
  for sub-millisecond timer noise).  Ownership flips are bookkeeping —
  the actual cache re-seeding is deferred to the next refresh pass,
  which is exactly what keeps the serving/ingest path responsive.
"""

import os
import time

import numpy as np
import pytest

from repro import (
    BipartiteDataset,
    DynamicKnnIndex,
    KiffConfig,
    ShardPlan,
    ShardedKnnIndex,
)
from repro.streaming import holdout_stream, ratings_batch

from _bench_utils import run_once

#: The stall epsilon absorbs timer noise on sub-millisecond samples; a
#: migration that actually recomputed similarities would blow through
#: it by orders of magnitude.
_STALL_EPSILON_S = 0.010

_SCALES = {
    "tiny": dict(
        n_users=500,
        n_items=350,
        density=0.012,
        batch_size=64,
        k=8,
        n_shards=2,
        target_shards=3,
    ),
    "laptop": dict(
        n_users=20_000,
        n_items=6_000,
        density=0.0012,
        batch_size=1_024,
        k=10,
        n_shards=4,
        target_shards=6,
    ),
}
_SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")


def _workload(n_users, n_items, density, seed=7):
    """A seeded sparse rating matrix, 90/10-split via holdout_stream."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n_users, n_items)) < density
    users, items = np.nonzero(mask)
    ratings = rng.integers(1, 6, size=users.size).astype(np.float64)
    dataset = BipartiteDataset.from_edges(
        users,
        items,
        ratings,
        n_users=n_users,
        n_items=n_items,
        name="rebalance-bench",
    )
    return holdout_stream(dataset, fraction=0.1, seed=seed)


def _moves(n_shards):
    """Override pairs guaranteed to differ from the modulo base rule."""
    return tuple(
        (user, (user + 1) % n_shards) for user in range(0, 40, 10)
    )


@pytest.mark.parametrize("executor", ["threads", "processes"])
def test_rebalance_never_stalls_ingestion(benchmark, executor):
    """Stall bar: each migration under the longest refresh pass."""
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    benchmark.group = "rebalance:stall"
    base, users, items, ratings = _workload(
        params["n_users"], params["n_items"], params["density"]
    )
    config = KiffConfig(k=params["k"])
    batch_size = params["batch_size"]
    n_shards = params["n_shards"]
    moves = _moves(n_shards)
    starts = list(range(0, len(users), batch_size))
    plans = {
        starts[len(starts) // 3]: ShardPlan(moves=moves),
        starts[2 * len(starts) // 3]: ShardPlan(
            n_shards=params["target_shards"]
        ),
    }

    index = ShardedKnnIndex(
        base,
        config,
        auto_refresh=False,
        n_shards=n_shards,
        executor=executor,
    )
    refresh_walls = []
    stalls = []
    rebalances = []

    def replay():
        for lo in starts:
            hi = lo + batch_size
            index.apply(
                ratings_batch(users[lo:hi], items[lo:hi], ratings[lo:hi])
            )
            start = time.perf_counter()
            index.refresh()
            refresh_walls.append(time.perf_counter() - start)
            plan = plans.get(lo)
            if plan is not None:
                start = time.perf_counter()
                stats = index.rebalance(plan)
                stalls.append(time.perf_counter() - start)
                rebalances.append(stats)

    try:
        run_once(benchmark, replay)
        graph = index.graph
        last_seq = index.last_seq
    finally:
        index.close()

    # Parity: migration is invisible in the result.
    sequential = DynamicKnnIndex(base, config, auto_refresh=False)
    try:
        for lo in starts:
            hi = lo + batch_size
            sequential.apply(
                ratings_batch(users[lo:hi], items[lo:hi], ratings[lo:hi])
            )
            sequential.refresh()
        assert graph == sequential.graph
    finally:
        sequential.close()

    # Deterministic movement: exactly the planned override pairs first,
    # then the count change.
    move_stats, reshard_stats = rebalances
    assert move_stats.users_moved == len(moves)
    assert reshard_stats.shards_after == params["target_shards"]
    assert reshard_stats.users_moved > 0
    assert move_stats.seq_commit == move_stats.seq_begin + 1

    max_refresh = max(refresh_walls)
    benchmark.extra_info["events_streamed"] = int(len(users))
    benchmark.extra_info["n_shards"] = n_shards
    benchmark.extra_info["target_shards"] = params["target_shards"]
    benchmark.extra_info["users_moved_plan"] = int(move_stats.users_moved)
    benchmark.extra_info["users_moved_reshard"] = int(
        reshard_stats.users_moved
    )
    benchmark.extra_info["final_last_seq"] = int(last_seq)
    benchmark.extra_info["max_refresh_s"] = round(max_refresh, 4)
    benchmark.extra_info["mean_refresh_s"] = round(
        sum(refresh_walls) / len(refresh_walls), 4
    )
    for label, stall in zip(("move", "reshard"), stalls):
        benchmark.extra_info[f"stall_{label}_s"] = round(stall, 4)

    # The bar: ingestion never stalls longer than one refresh pass.
    for label, stall in zip(("move", "reshard"), stalls):
        assert stall <= max_refresh + _STALL_EPSILON_S, (
            f"{label} migration stalled ingestion {stall * 1e3:.1f}ms, "
            f"longer than the longest refresh pass "
            f"{max_refresh * 1e3:.1f}ms — the flip is supposed to be "
            f"bookkeeping, with cache re-seeding deferred to the next "
            f"refresh"
        )
