"""Figure 9 bench: impact of gamma on KIFF's wall-time."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.exp_figure9 import GAMMAS

from _bench_utils import run_once


@pytest.mark.parametrize("gamma", GAMMAS)
def test_kiff_gamma(benchmark, context, gamma):
    """KIFF on Wikipedia at one gamma (the measured sweep point)."""
    benchmark.group = "figure9:gamma"
    outcome = run_once(
        benchmark, lambda: context.run("wikipedia", "kiff", gamma=gamma)
    )
    benchmark.extra_info["iterations"] = outcome.iterations


def test_figure9_report(benchmark, context, save_report):
    benchmark.group = "figure9:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["figure9"].run(context))
    save_report("figure9", report)
    # Paper shape: recall is essentially flat across gamma, and the
    # wall-time spread stays bounded (the paper: "impact remains low").
    for name, sweep in report.data.items():
        recalls = [p["recall"] for p in sweep]
        assert max(recalls) - min(recalls) < 0.1
        times = [p["wall_time"] for p in sweep]
        # Measured spread is ~4x worst-case (gamma=5 on DBLP, where
        # Python's per-iteration overhead bites); 8x leaves headroom for
        # machine noise while still catching pathological regressions.
        assert max(times) < 8 * max(min(times), 1e-6)
