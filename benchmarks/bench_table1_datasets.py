"""Table I bench: dataset generation and statistics."""

import pytest

from repro.datasets import load_dataset
from repro.datasets.registry import EVALUATION_SUITE
from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


@pytest.mark.parametrize("name", EVALUATION_SUITE)
def test_generate_dataset(benchmark, context, name):
    """Cost of generating one evaluation dataset from scratch."""
    benchmark.group = "table1:generate"
    run_once(benchmark, lambda: load_dataset(name, scale=context.scale))


def test_table1_report(benchmark, context, save_report):
    """Regenerate Table I and archive the rendering."""
    benchmark.group = "table1:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["table1"].run(context))
    save_report("table1", report)
    assert len(report.rows) == len(EVALUATION_SUITE)
