"""Crash-recovery bench: restore cost vs a cold KIFF rebuild.

A 90%/10% hold-out workload streams through a WAL'd
:class:`DynamicKnnIndex` with periodic checkpoints, then "crashes" (the
in-memory state is abandoned) with a log tail beyond the last
checkpoint.  ``DynamicKnnIndex.restore`` recovers by loading the
checkpoint and replaying the tail — work proportional to the tail's
dirty set, not the dataset.

The headline assertion mirrors the durability acceptance bar: on the
2k-user workload, restore must spend **< 25% of a cold ``kiff()``
rebuild's similarity evaluations** (the converged rebuild evaluates each
Ranked Candidate Set entry exactly once, so its cost is the snapshot's
RCS total) — and the recovered graph must be bit-identical to the
uninterrupted run's.
"""

import os

import numpy as np

from repro import BipartiteDataset, DynamicKnnIndex, KiffConfig, WriteAheadLog
from repro.core.rcs import count_rcs_candidates
from repro.streaming import holdout_stream, ratings_batch

from _bench_utils import run_once

#: 90%-prebuilt / 10%-streamed synthetic workloads (paper-style sparsity).
#: ``max_fraction`` is the acceptance bar on restore evaluations vs a
#: cold rebuild: the headline < 25% is pinned at the 2k-user (laptop)
#: workload; the tiny smoke workload's WAL tail dirties a far larger
#: share of its 400-user population, so its proportional bound is looser.
_SCALES = {
    "tiny": dict(
        n_users=400, n_items=300, density=0.01, batch_size=5, k=8,
        max_fraction=0.40,
    ),
    "laptop": dict(
        n_users=2_000, n_items=1_200, density=0.005, batch_size=10, k=10,
        max_fraction=0.25,
    ),
}
_SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")

#: Checkpoint cadence (batches) — the stream's durability knob.  Chosen
#: to not divide either scale's batch count, so the crash always leaves
#: a WAL tail beyond the last checkpoint (else the bench would only
#: measure checkpoint loading).
_CHECKPOINT_EVERY = 11


def _workload(n_users, n_items, density, seed=7):
    """A seeded sparse rating matrix, 90/10-split via holdout_stream."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n_users, n_items)) < density
    users, items = np.nonzero(mask)
    ratings = rng.integers(1, 6, size=users.size).astype(np.float64)
    dataset = BipartiteDataset.from_edges(
        users, items, ratings,
        n_users=n_users,
        n_items=n_items,
        name="recovery-bench",
    )
    return holdout_stream(dataset, fraction=0.1, seed=seed)


def test_recovery_cost(benchmark, tmp_path):
    """Restore < 25% of a cold rebuild's evaluations, bit-identical."""
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    benchmark.group = "recovery:restore"
    base, users, items, ratings = _workload(
        params["n_users"], params["n_items"], params["density"]
    )
    index = DynamicKnnIndex(
        base,
        KiffConfig(k=params["k"]),
        auto_refresh=False,
        wal=WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=256),
    )
    index.checkpoint(tmp_path)
    batch_size = params["batch_size"]
    batches = 0
    for lo in range(0, len(users), batch_size):
        hi = lo + batch_size
        index.apply(ratings_batch(users[lo:hi], items[lo:hi], ratings[lo:hi]))
        index.refresh()
        batches += 1
        if batches % _CHECKPOINT_EVERY == 0:
            index.checkpoint(tmp_path)
    # The crash: abandon the in-memory state with a WAL tail beyond the
    # last checkpoint, and recover from disk alone.
    restored = run_once(benchmark, lambda: DynamicKnnIndex.restore(tmp_path))

    restore_evaluations = restored.restore_info.evaluations
    rebuild_evaluations = count_rcs_candidates(
        restored.dataset,
        pivot=restored.config.pivot,
        min_rating=restored.config.min_rating,
    )
    benchmark.extra_info["events_streamed"] = int(len(users))
    benchmark.extra_info["wal_tail_events"] = restored.restore_info.replayed_events
    benchmark.extra_info["checkpoint_every_batches"] = _CHECKPOINT_EVERY
    benchmark.extra_info["restore_evaluations"] = int(restore_evaluations)
    benchmark.extra_info["rebuild_evaluations"] = int(rebuild_evaluations)
    benchmark.extra_info["restore_fraction"] = round(
        restore_evaluations / rebuild_evaluations, 4
    )
    assert restored.restore_info.replayed_events > 0, (
        "workload left no WAL tail to replay; the bench would measure "
        "checkpoint loading only"
    )
    # Durability acceptance bar: recovery stays a small fraction of a
    # cold rebuild (< 25% on the 2k-user workload).
    assert restore_evaluations < params["max_fraction"] * rebuild_evaluations, (
        restore_evaluations,
        rebuild_evaluations,
    )
    # And it lands on the exact graph the crashed run maintained.
    assert restored.graph == index.graph
    assert restored.last_seq == index.last_seq
