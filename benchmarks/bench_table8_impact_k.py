"""Table VIII bench: impact of halving k."""

import pytest

from repro.datasets.registry import EVALUATION_SUITE
from repro.experiments import ALGORITHMS, EXPERIMENTS

from _bench_utils import run_once


@pytest.mark.parametrize("dataset", EVALUATION_SUITE)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_construction_halved_k(benchmark, context, dataset, algorithm):
    """One Table VIII cell: construction at the reduced k."""
    benchmark.group = f"table8:{dataset}"
    half_k = context.k_for(dataset, reduced=True)
    outcome = run_once(
        benchmark, lambda: context.run(dataset, algorithm, k=half_k)
    )
    benchmark.extra_info["recall"] = round(outcome.recall, 4)


def test_table8_report(benchmark, context, save_report):
    benchmark.group = "table8:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["table8"].run(context))
    save_report("table8", report)
    # Paper shape: KIFF's recall is insensitive to k; the greedy
    # baselines lose recall when k halves.
    for name in EVALUATION_SUITE:
        kiff_entry = report.data[f"{name}/kiff"]
        assert abs(kiff_entry["delta_recall"]) < 0.1
        nnd_entry = report.data[f"{name}/nn-descent"]
        assert kiff_entry["delta_recall"] >= nnd_entry["delta_recall"] - 0.05
