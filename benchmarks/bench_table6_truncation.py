"""Table VI bench: KIFF's termination mechanism."""

from repro.datasets.registry import EVALUATION_SUITE
from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


def test_table6_report(benchmark, context, save_report):
    benchmark.group = "table6:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["table6"].run(context))
    save_report("table6", report)
    # Paper shape: only a minority of users have truncated RCSs.
    for name in EVALUATION_SUITE:
        assert report.data[name]["pct_truncated"] < 50.0
        assert report.data[name]["rcs_cut"] > 0
