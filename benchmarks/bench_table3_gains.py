"""Table III bench: KIFF's aggregate speed-up and recall gain."""

from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


def test_table3_report(benchmark, context, save_report):
    benchmark.group = "table3:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["table3"].run(context))
    save_report("table3", report)
    # Paper shape: KIFF is faster than both competitors on average.
    assert report.data["average"]["speedup"] > 1.0
    assert report.data["nn-descent"]["speedup"] > 1.0
    assert report.data["hyrec"]["speedup"] > 1.0
