"""Sharded refresh bench: the three executors vs the sequential index.

A synthetic sparse workload is split 90%/10%; the 90% is prebuilt and
the 10% streamed back in *multi-event batches* (hundreds of events per
refresh — the regime where a refresh touches enough rows for the
shard fan-out to amortize).  The same stream is replayed through the
sequential :class:`DynamicKnnIndex` and a :class:`ShardedKnnIndex` per
executor (``serial`` / ``threads`` / ``processes``), and per-refresh
wall time is compared.

Assertions:

* **Parity always** — every sharded graph is bit-identical to the
  sequential one after every replay (the subsystem's contract).
* **Speedup at full scale** — on the 20k-user laptop workload, at 4
  shards, the thread executor must be >= 1.5x faster than the
  sequential index and the process executor >= 2x faster than the
  serial executor (the per-shard single-core baseline): the process
  fan-out is the mode whose Python-level plan/merge work actually
  escapes the GIL.  The tiny (``--quick``) workload is a smoke run
  only: its refreshes are far too small to amortize either fan-out, so
  only parity is asserted there.  Workers need hardware to run on, so
  the bars also only apply when the machine has at least ``n_shards``
  cores (a single-core runner physically cannot express the
  parallelism; the numbers are still reported).
"""

import os
import time

import numpy as np

from repro import BipartiteDataset, DynamicKnnIndex, KiffConfig, ShardedKnnIndex
from repro.similarity.base import ProfileIndex
from repro.similarity.engine import get_metric
from repro.similarity.kernels import available_backends
from repro.streaming import holdout_stream, ratings_batch
from repro.streaming.sharding import score_pairs_chunked

from _bench_utils import run_once

#: 90%-prebuilt / 10%-streamed synthetic workloads.  ``batch_size`` is
#: deliberately large (multi-event batches): sharding parallelizes the
#: *refresh*, so each refresh must carry enough dirty users to split.
_SCALES = {
    "tiny": dict(
        n_users=500,
        n_items=350,
        density=0.012,
        batch_size=64,
        k=8,
        n_shards=2,
        min_speedup_threads=None,
        min_speedup_processes=None,
        kernel_pairs=50_000,
        min_kernel_speedup_numba=None,
    ),
    "laptop": dict(
        n_users=20_000,
        n_items=6_000,
        density=0.0012,
        batch_size=1_024,
        k=10,
        n_shards=4,
        min_speedup_threads=1.5,
        min_speedup_processes=2.0,
        kernel_pairs=400_000,
        min_kernel_speedup_numba=5.0,
    ),
}
_SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")


def _workload(n_users, n_items, density, seed=7):
    """A seeded sparse rating matrix, 90/10-split via holdout_stream."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n_users, n_items)) < density
    users, items = np.nonzero(mask)
    ratings = rng.integers(1, 6, size=users.size).astype(np.float64)
    dataset = BipartiteDataset.from_edges(
        users,
        items,
        ratings,
        n_users=n_users,
        n_items=n_items,
        name="sharded-bench",
    )
    return holdout_stream(dataset, fraction=0.1, seed=seed)


def _replay(index, users, items, ratings, batch_size):
    """Stream the hold-out in batches; returns summed refresh seconds."""
    refresh_seconds = 0.0
    for lo in range(0, len(users), batch_size):
        hi = lo + batch_size
        index.apply(ratings_batch(users[lo:hi], items[lo:hi], ratings[lo:hi]))
        start = time.perf_counter()
        index.refresh()
        refresh_seconds += time.perf_counter() - start
    return refresh_seconds


def test_sharded_refresh_speedup(benchmark):
    """Executor comparison: bit-identical, and faster at full scale."""
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    benchmark.group = "sharded:refresh"
    base, users, items, ratings = _workload(
        params["n_users"], params["n_items"], params["density"]
    )
    config = KiffConfig(k=params["k"])
    batch_size = params["batch_size"]
    n_shards = params["n_shards"]

    sequential = DynamicKnnIndex(base, config, auto_refresh=False)
    sequential_seconds = _replay(sequential, users, items, ratings, batch_size)

    seconds = {}
    graphs = {}
    for executor in ("serial", "threads", "processes"):
        index = ShardedKnnIndex(
            base,
            config,
            auto_refresh=False,
            n_shards=n_shards,
            executor=executor,
        )
        def replay(index=index):
            return _replay(index, users, items, ratings, batch_size)

        if executor == "processes":
            # The tentpole mode is the measured one; the others are
            # timed inline as comparison points.
            seconds[executor] = run_once(benchmark, replay)
        else:
            seconds[executor] = replay()
        graphs[executor] = index.graph
        last_seq = index.last_seq
        index.close()
        # The contract first: sharding must never change the graph.
        assert graphs[executor] == sequential.graph
        assert last_seq == sequential.last_seq

    def speedup(baseline, candidate):
        return baseline / candidate if candidate > 0 else float("inf")

    threads_speedup = speedup(sequential_seconds, seconds["threads"])
    processes_speedup = speedup(seconds["serial"], seconds["processes"])
    benchmark.extra_info["events_streamed"] = int(len(users))
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["n_shards"] = n_shards
    benchmark.extra_info["sequential_refresh_s"] = round(sequential_seconds, 4)
    for executor, value in seconds.items():
        benchmark.extra_info[f"{executor}_refresh_s"] = round(value, 4)
    benchmark.extra_info["threads_speedup_vs_sequential"] = round(
        threads_speedup, 3
    )
    benchmark.extra_info["processes_speedup_vs_serial"] = round(
        processes_speedup, 3
    )
    enough_cores = (os.cpu_count() or 1) >= n_shards
    benchmark.extra_info["cores"] = os.cpu_count() or 1

    if params["min_speedup_threads"] is not None and enough_cores:
        assert threads_speedup >= params["min_speedup_threads"], (
            f"threaded refresh speedup {threads_speedup:.2f}x at "
            f"{n_shards} shards is below the "
            f"{params['min_speedup_threads']}x acceptance bar "
            f"({sequential_seconds:.2f}s sequential vs "
            f"{seconds['threads']:.2f}s threaded)"
        )
    if params["min_speedup_processes"] is not None and enough_cores:
        assert processes_speedup >= params["min_speedup_processes"], (
            f"process refresh speedup {processes_speedup:.2f}x at "
            f"{n_shards} shards is below the "
            f"{params['min_speedup_processes']}x acceptance bar "
            f"({seconds['serial']:.2f}s serial vs "
            f"{seconds['processes']:.2f}s process-backed)"
        )


def test_kernel_evaluate_stage(benchmark):
    """Evaluate-stage kernel shootout: numpy vs the compiled backends.

    Scores one seeded candidate-pair batch through
    ``score_pairs_chunked`` — the exact call the shard workers'
    evaluate stage makes — once per installed backend.  The numpy pass
    is the measured benchmark; compiled passes are timed inline, their
    scores checked against numpy's within the compiled tolerance, and
    the speedups reported.  The >=5x numba bar applies only at laptop
    scale on a multi-core host with numba installed: the JIT kernels
    are prange-parallel, so a single-core runner physically cannot
    express the win (the numbers are still reported).
    """
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    benchmark.group = "sharded:kernels"
    base, _, _, _ = _workload(
        params["n_users"], params["n_items"], params["density"]
    )
    index = ProfileIndex(base)
    metric = get_metric("cosine")
    rng = np.random.default_rng(11)
    n_pairs = params["kernel_pairs"]
    us = rng.integers(0, base.n_users, n_pairs)
    vs = rng.integers(0, base.n_users, n_pairs)
    batch_size = 8_192

    def evaluate(backend_name):
        index._kernel_backend = backend_name
        # The warm-up pass resolves the backend and pays any JIT
        # compilation outside the timed region.
        score_pairs_chunked(metric, index, us[:512], vs[:512], batch_size)
        start = time.perf_counter()
        scores = score_pairs_chunked(metric, index, us, vs, batch_size)
        return scores, time.perf_counter() - start

    seconds = {}
    measured = {}
    run_once(
        benchmark,
        lambda: measured.setdefault("numpy", evaluate("numpy")),
    )
    reference, seconds["numpy"] = measured["numpy"]
    for name in ("numba", "torch"):
        if name not in available_backends():
            continue
        scores, seconds[name] = evaluate(name)
        np.testing.assert_allclose(scores, reference, rtol=1e-9, atol=1e-12)

    benchmark.extra_info["kernel_pairs_scored"] = n_pairs
    # Deterministic fingerprints of the seeded workload: any kernel
    # behavior change moves these, wall times never do.
    benchmark.extra_info["kernel_nonzero_scores"] = int(
        np.count_nonzero(reference)
    )
    benchmark.extra_info["kernel_score_checksum"] = round(
        float(reference.sum()), 6
    )
    for name, value in seconds.items():
        benchmark.extra_info[f"kernel_{name}_evaluate_s"] = round(value, 4)
        if name != "numpy":
            benchmark.extra_info[f"kernel_{name}_speedup_vs_numpy"] = round(
                seconds["numpy"] / value if value > 0 else float("inf"), 3
            )
    benchmark.extra_info["cores"] = os.cpu_count() or 1

    bar = params["min_kernel_speedup_numba"]
    multi_core = (os.cpu_count() or 1) >= 2
    if bar is not None and "numba" in seconds and multi_core:
        numba_speedup = (
            seconds["numpy"] / seconds["numba"]
            if seconds["numba"] > 0
            else float("inf")
        )
        assert numba_speedup >= bar, (
            f"numba evaluate-stage speedup {numba_speedup:.2f}x over "
            f"numpy is below the {bar}x acceptance bar "
            f"({seconds['numpy']:.2f}s numpy vs "
            f"{seconds['numba']:.2f}s numba for {n_pairs} pairs)"
        )
