"""Table II bench: the paper's main comparison.

Benchmarks each algorithm on each evaluation dataset (the measured time
IS the wall-time column of Table II, re-measured by pytest-benchmark),
then regenerates the full table from the cached outcomes.
"""

import pytest

from repro.datasets.registry import EVALUATION_SUITE
from repro.experiments import ALGORITHMS, EXPERIMENTS

from _bench_utils import run_once


@pytest.mark.parametrize("dataset", EVALUATION_SUITE)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_construction(benchmark, context, dataset, algorithm):
    """One Table II cell: construct the KNN graph on one dataset."""
    benchmark.group = f"table2:{dataset}"
    outcome = run_once(benchmark, lambda: context.run(dataset, algorithm))
    benchmark.extra_info["recall"] = round(outcome.recall, 4)
    benchmark.extra_info["scan_rate"] = round(outcome.scan_rate, 4)
    benchmark.extra_info["iterations"] = outcome.iterations
    assert outcome.recall > 0.2


def test_table2_report(benchmark, context, save_report):
    """Regenerate Table II (cheap: reuses the cells benchmarked above)."""
    benchmark.group = "table2:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["table2"].run(context))
    save_report("table2", report)
    # The paper's headline shape: KIFF has the best recall and the lowest
    # scan rate on every dataset.
    for name in EVALUATION_SUITE:
        outcomes = {o.algorithm: o for o in report.data[name]}
        assert outcomes["kiff"].scan_rate < outcomes["nn-descent"].scan_rate
        assert outcomes["kiff"].scan_rate < outcomes["hyrec"].scan_rate
        assert outcomes["kiff"].recall >= outcomes["nn-descent"].recall - 0.02
