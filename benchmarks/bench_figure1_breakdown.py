"""Figure 1 bench: time breakdown of the greedy baselines on Wikipedia."""

from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


def test_figure1_report(benchmark, context, save_report):
    benchmark.group = "figure1:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["figure1"].run(context))
    save_report("figure1", report)
    # Paper shape: for both greedy baselines, similarity evaluation is a
    # measured, non-trivial share of the run.  (The paper's >90% share is
    # specific to per-pair Java evaluation; our engine evaluates batches
    # of pairs vectorised, which shifts time into candidate selection —
    # see EXPERIMENTS.md.)
    for algorithm in ("nn-descent", "hyrec"):
        assert report.data[algorithm]["similarity"] > 0
        assert report.data[algorithm]["similarity_share"] > 0.02
