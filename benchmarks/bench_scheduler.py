"""Scheduler bench: bursty ingest under a staleness budget vs always-exact.

A flash-crowd stream (one item suddenly gains raters, coupling every
rater's candidate set) arrives in Markov-modulated Poisson bursts — the
workload refresh-per-batch handles worst.  The same stream is replayed
twice through a :class:`RefreshScheduler`: once with the empty policy
(always-exact: a full refresh per burst, the PR 1-7 behavior) and once
with a bounded-staleness policy (event-lag budget + blast-radius cap +
queue bound), finishing with ``drain()`` so the final graph is exact.

Headline assertions mirror the subsystem's acceptance bar: the
scheduled replay must ingest >= 2x faster than always-exact, keep the
dirty-user queue bounded (queue bound + one burst), and drain to
bit-exact parity with a cold rebuild.  The headline policy is an
uncapped event-lag budget: batching deferred users into rare, large
passes amortizes the overlap between consecutive bursts' dirty sets
(hot raters re-dirty constantly), which is where both the evaluation
and the wall win come from; chunking passes with a tight
``max_dirty_per_refresh`` cap instead *repeats* referrer-row work, so
the cap is exercised by the reject-mode test, not the headline.
Counters (passes, deferrals, evaluations, queue depth, backpressure
signals) are deterministic and gated against
``benchmarks/baselines/quick.json``; wall-derived rates are reported
but never baselined.
"""

import os

import numpy as np

from repro import (
    BipartiteDataset,
    DynamicKnnIndex,
    KiffConfig,
    RefreshScheduler,
    SchedulerPolicy,
)
from repro.scheduling import scheduled_replay
from repro.streaming import (
    cold_rebuild_graph,
    flash_crowd_events,
    poisson_burst_sizes,
)

from _bench_utils import run_once

_SCALES = {
    "tiny": dict(
        n_users=300,
        n_items=200,
        density=0.015,
        n_events=400,
        k=8,
        max_event_lag=120,
        max_dirty_per_refresh=12,  # reject-mode test only
        queue_bound=80,
    ),
    "laptop": dict(
        n_users=1_500,
        n_items=900,
        density=0.006,
        n_events=3_000,
        k=10,
        max_event_lag=600,
        max_dirty_per_refresh=60,  # reject-mode test only
        queue_bound=300,
    ),
}
_SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")


def _workload(params, seed=7):
    """Seeded base dataset + flash-crowd stream + bursty arrival sizes."""
    rng = np.random.default_rng(seed)
    shape = (params["n_users"], params["n_items"])
    mask = rng.random(shape) < params["density"]
    users, items = np.nonzero(mask)
    base = BipartiteDataset.from_edges(
        users,
        items,
        rng.integers(1, 6, size=users.size).astype(np.float64),
        n_users=params["n_users"],
        n_items=params["n_items"],
        name="scheduler-bench",
    )
    events = flash_crowd_events(
        base, params["n_events"], seed=seed, hot_fraction=0.7
    )
    sizes = poisson_burst_sizes(
        params["n_events"], seed=seed, base_rate=3.0, burst_rate=30.0
    )
    return base, events, sizes


def _replay(base, events, sizes, k, policy):
    index = DynamicKnnIndex(base, KiffConfig(k=k), auto_refresh=False)
    try:
        scheduler = RefreshScheduler(index, policy)
        outcome = scheduled_replay(scheduler, *events, sizes)
        parity = index.graph == cold_rebuild_graph(
            index.dataset, index.config
        )
    finally:
        index.close()
    return outcome, parity


def test_scheduled_vs_always_exact(benchmark):
    """The headline: bounded staleness buys >= 2x ingest throughput."""
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    benchmark.group = "scheduler:burst-ingest"
    base, events, sizes = _workload(params)

    eager, eager_parity = _replay(
        base, events, sizes, params["k"], SchedulerPolicy()
    )
    policy = SchedulerPolicy(
        max_event_lag=params["max_event_lag"],
        queue_bound=params["queue_bound"],
    )
    outcome, parity = run_once(
        benchmark,
        lambda: _replay(base, events, sizes, params["k"], policy),
    )

    ingest_wall = outcome.wall_time - outcome.drain_wall_time
    eager_ingest_wall = eager.wall_time - eager.drain_wall_time
    speedup = (
        eager_ingest_wall / ingest_wall
        if ingest_wall > 0
        else float("inf")
    )
    benchmark.extra_info["events"] = outcome.events
    benchmark.extra_info["passes"] = outcome.passes
    benchmark.extra_info["drain_passes"] = outcome.drain_passes
    benchmark.extra_info["deferrals"] = outcome.deferrals
    benchmark.extra_info["max_queue_depth"] = outcome.max_queue_depth
    benchmark.extra_info["backpressure_signals"] = outcome.backpressure_signals
    benchmark.extra_info["evaluations"] = outcome.evaluations
    benchmark.extra_info["eager_evaluations"] = eager.evaluations
    benchmark.extra_info["parity"] = int(parity)
    # Wall-derived (reported, never baselined):
    benchmark.extra_info["events_per_second"] = round(
        outcome.events_per_second, 1
    )
    benchmark.extra_info["ingest_speedup"] = round(speedup, 2)

    # Acceptance bar: >= 2x event-ingest throughput over always-exact.
    assert speedup >= 2.0
    # Deterministic backing for the speedup: deferral + blast-radius
    # batching must cut total similarity work, drain included.
    assert outcome.evaluations < eager.evaluations
    # Bounded queue: never beyond the bound plus one admitted burst.
    assert outcome.max_queue_depth <= params["queue_bound"] + int(max(sizes))
    assert outcome.backpressure_signals > 0  # the bound actually bit
    # Convergence: both replays end bit-exact.
    assert parity and eager_parity


def test_scheduler_reject_mode_converges(benchmark):
    """Reject-mode admission control: rejected bursts retry and still
    converge, with the queue pinned at the bound."""
    params = _SCALES["tiny"]  # contract check, scale-independent
    benchmark.group = "scheduler:reject-mode"
    base, events, sizes = _workload(params, seed=11)
    bound = params["queue_bound"] // 2  # tight enough to actually reject
    policy = SchedulerPolicy(
        max_event_lag=params["max_event_lag"],
        max_dirty_per_refresh=params["max_dirty_per_refresh"],
        queue_bound=bound,
        on_backpressure="reject",
    )
    outcome, parity = run_once(
        benchmark,
        lambda: _replay(base, events, sizes, params["k"], policy),
    )
    benchmark.extra_info["events"] = outcome.events
    benchmark.extra_info["rejected_submissions"] = outcome.rejected_submissions
    benchmark.extra_info["deferrals"] = outcome.deferrals
    benchmark.extra_info["max_queue_depth"] = outcome.max_queue_depth
    benchmark.extra_info["evaluations"] = outcome.evaluations
    benchmark.extra_info["parity"] = int(parity)
    assert parity
    assert outcome.deferrals > 0  # the blast-radius cap actually deferred
    assert outcome.rejected_submissions > 0  # admission control bit
    assert outcome.max_queue_depth <= bound + int(max(sizes))
