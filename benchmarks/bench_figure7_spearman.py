"""Figure 7 bench: RCS-order vs metric-order rank correlation."""

import numpy as np

from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


def test_figure7_report(benchmark, context, save_report):
    benchmark.group = "figure7:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["figure7"].run(context))
    save_report("figure7", report)
    # Paper shape: clearly positive mean correlation for both metrics
    # (the paper reports ~0.60 Jaccard / ~0.63 cosine on Wikipedia).
    for metric in ("cosine", "jaccard"):
        rhos = [rho for (_, _, rho) in report.data[metric]]
        assert rhos
        assert np.mean(rhos) > 0.3
