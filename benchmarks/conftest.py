"""Benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper.  One
:class:`ExperimentContext` is shared across the whole session so that
expensive artefacts (datasets, exact ground-truth graphs, algorithm runs)
are computed exactly once and reused by the tables that share them — the
same measurement-reuse the paper's evaluation implies.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``laptop`` (default) — full laptop-scale datasets; the complete suite
  takes tens of minutes, dominated by NN-Descent/HyRec on DBLP (k=50),
  exactly as the paper's Table II is dominated by DBLP.
* ``tiny`` — a smoke run of every bench in a couple of minutes.

Rendered reports are written to ``benchmarks/reports/<name>.txt``; every
bench module additionally gets a machine-readable
``benchmarks/reports/BENCH_<module>.json`` (scale, per-test wall times,
and the ``benchmark.extra_info`` metrics), emitted by the session-finish
hook below.  CI uploads the JSON reports as artifacts and gates the
``--quick`` run against ``benchmarks/baselines/quick.json`` via
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

from _bench_utils import write_bench_json


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=(
            "Smoke mode: force REPRO_BENCH_SCALE=tiny so every bench runs "
            "its smallest workload (the CI smoke job uses this)."
        ),
    )
    parser.addoption(
        "--kernel-backend",
        default=None,
        choices=("numpy", "numba", "torch"),
        help=(
            "Pin the similarity-kernel backend for the whole bench run "
            "by exporting REPRO_KERNEL_BACKEND: every index built "
            "without an explicit kernel_backend resolves through the "
            "environment (the CI optional-deps job runs the sharded "
            "smoke with --kernel-backend numba)."
        ),
    )


def pytest_configure(config):
    if config.getoption("--quick"):
        # Set before bench modules import (they read the scale at import
        # time), so one flag flips the whole suite to the tiny workloads.
        os.environ["REPRO_BENCH_SCALE"] = "tiny"
    backend = config.getoption("--kernel-backend")
    if backend:
        os.environ["REPRO_KERNEL_BACKEND"] = backend


def pytest_sessionfinish(session, exitstatus):
    """Emit ``BENCH_<module>.json`` next to the ``.txt`` reports.

    One JSON file per bench module, built from pytest-benchmark's
    session: every measured test contributes its wall time and its
    ``extra_info`` metrics (recall, savings, speedups, ...), which is
    what the CI regression gate consumes.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    by_module: dict[str, list[dict]] = {}
    for bench in bench_session.benchmarks:
        module, _, test = bench.fullname.partition("::")
        stats = getattr(bench, "stats", None)
        by_module.setdefault(Path(module).stem, []).append(
            {
                "test": test,
                "group": bench.group,
                "wall_time_s": (
                    round(stats.mean, 6) if stats is not None else None
                ),
                "extra_info": dict(bench.extra_info),
            }
        )
    scale = os.environ.get("REPRO_BENCH_SCALE", "laptop")
    report_dir = Path(__file__).parent / "reports"
    for stem, results in sorted(by_module.items()):
        write_bench_json(
            stem,
            {
                "bench": stem,
                "scale": scale,
                "generated_at": time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                ),
                "results": sorted(results, key=lambda entry: entry["test"]),
            },
            report_dir,
        )


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    scale = os.environ.get("REPRO_BENCH_SCALE", "laptop")
    return ExperimentContext(scale=scale)


@pytest.fixture(scope="session")
def report_dir() -> Path:
    path = Path(__file__).parent / "reports"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def save_report(report_dir):
    """Write an ExperimentReport's rendering next to the benchmarks."""

    def _save(name: str, report) -> None:
        (report_dir / f"{name}.txt").write_text(
            report.render() + "\n", encoding="utf-8"
        )

    return _save
