"""Benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper.  One
:class:`ExperimentContext` is shared across the whole session so that
expensive artefacts (datasets, exact ground-truth graphs, algorithm runs)
are computed exactly once and reused by the tables that share them — the
same measurement-reuse the paper's evaluation implies.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``laptop`` (default) — full laptop-scale datasets; the complete suite
  takes tens of minutes, dominated by NN-Descent/HyRec on DBLP (k=50),
  exactly as the paper's Table II is dominated by DBLP.
* ``tiny`` — a smoke run of every bench in a couple of minutes.

Rendered reports are written to ``benchmarks/reports/<name>.txt``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=(
            "Smoke mode: force REPRO_BENCH_SCALE=tiny so every bench runs "
            "its smallest workload (the CI smoke job uses this)."
        ),
    )


def pytest_configure(config):
    if config.getoption("--quick"):
        # Set before bench modules import (they read the scale at import
        # time), so one flag flips the whole suite to the tiny workloads.
        os.environ["REPRO_BENCH_SCALE"] = "tiny"


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    scale = os.environ.get("REPRO_BENCH_SCALE", "laptop")
    return ExperimentContext(scale=scale)


@pytest.fixture(scope="session")
def report_dir() -> Path:
    path = Path(__file__).parent / "reports"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def save_report(report_dir):
    """Write an ExperimentReport's rendering next to the benchmarks."""

    def _save(name: str, report) -> None:
        (report_dir / f"{name}.txt").write_text(
            report.render() + "\n", encoding="utf-8"
        )

    return _save
