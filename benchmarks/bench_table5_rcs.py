"""Table V bench: RCS construction cost and statistics."""

import pytest

from repro.core.rcs import build_rcs
from repro.datasets.registry import EVALUATION_SUITE
from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


@pytest.mark.parametrize("name", EVALUATION_SUITE)
def test_rcs_construction(benchmark, context, name):
    """The counting phase on one dataset (the measured quantity)."""
    benchmark.group = "table5:rcs"
    dataset = context.dataset(name)
    rcs = run_once(benchmark, lambda: build_rcs(dataset))
    benchmark.extra_info["avg_rcs"] = round(rcs.avg_size, 1)
    benchmark.extra_info["max_scan_rate"] = round(rcs.max_scan_rate(), 4)


def test_table5_report(benchmark, context, save_report):
    benchmark.group = "table5:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["table5"].run(context))
    save_report("table5", report)
    # Paper shape: the actual scan rate sits close to the RCS-induced max.
    for name in EVALUATION_SUITE:
        entry = report.data[name]
        assert entry["actual_scan"] <= entry["max_scan"] + 1e-9
        assert entry["actual_scan"] >= 0.5 * entry["max_scan"]
