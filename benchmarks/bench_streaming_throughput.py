"""Streaming maintenance bench: events/sec and evaluation savings.

A synthetic sparse workload is split 90%/10%; the 90% is prebuilt into a
:class:`DynamicKnnIndex` and the 10% is streamed back in small batches.
Measured: maintenance throughput (events/sec) and similarity evaluations
versus the rebuild-per-batch strategy, whose exact cost is the sum of
RCS totals at each refresh point (a converged KIFF run evaluates every
RCS entry exactly once).

The headline assertion mirrors the subsystem's acceptance bar:
incremental maintenance must evaluate >= 5x fewer similarities than full
rebuilds on this workload.
"""

import os

import numpy as np
import pytest

from repro import BipartiteDataset, DynamicKnnIndex, KiffConfig
from repro.streaming import holdout_stream, replay_stream

from _bench_utils import run_once

#: 90%-prebuilt / 10%-streamed synthetic workloads (paper-style sparsity).
_SCALES = {
    "tiny": dict(n_users=400, n_items=300, density=0.01, batch_size=2, k=8),
    "laptop": dict(n_users=2_000, n_items=1_200, density=0.005, batch_size=10, k=10),
}
_SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")


def _workload(n_users, n_items, density, seed=7):
    """A seeded sparse rating matrix, 90/10-split via holdout_stream."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n_users, n_items)) < density
    users, items = np.nonzero(mask)
    ratings = rng.integers(1, 6, size=users.size).astype(np.float64)
    dataset = BipartiteDataset.from_edges(
        users, items, ratings,
        n_users=n_users,
        n_items=n_items,
        name="stream-bench",
    )
    return holdout_stream(dataset, fraction=0.1, seed=seed)


def test_streaming_throughput(benchmark):
    """Stream the hold-out; assert the >= 5x evaluation-savings bar."""
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    benchmark.group = "streaming:throughput"
    base, users, items, ratings = _workload(
        params["n_users"], params["n_items"], params["density"]
    )
    index = DynamicKnnIndex(
        base, KiffConfig(k=params["k"]), auto_refresh=False
    )

    outcome = run_once(
        benchmark,
        lambda: replay_stream(
            index, users, items, ratings, batch_size=params["batch_size"]
        ),
    )
    benchmark.extra_info["events"] = outcome.events
    benchmark.extra_info["events_per_second"] = round(outcome.events_per_second, 1)
    benchmark.extra_info["incremental_evals"] = outcome.incremental_evaluations
    benchmark.extra_info["rebuild_evals"] = outcome.rebuild_evaluations
    benchmark.extra_info["savings"] = round(outcome.savings, 2)
    # The subsystem's acceptance bar: >= 5x fewer similarity evaluations
    # than cold-rebuilding the graph on every batch.
    assert outcome.savings >= 5.0


def test_streaming_parity_after_replay(benchmark):
    """The replayed index equals a cold rebuild on the final dataset."""
    from repro.streaming import cold_rebuild_graph

    params = _SCALES["tiny"]  # parity check is scale-independent
    benchmark.group = "streaming:parity"
    base, users, items, ratings = _workload(
        params["n_users"], params["n_items"], params["density"]
    )
    index = DynamicKnnIndex(base, KiffConfig(k=params["k"]), auto_refresh=False)
    run_once(
        benchmark,
        lambda: replay_stream(
            index,
            users,
            items,
            ratings,
            batch_size=params["batch_size"],
            track_rebuild_cost=False,
        ),
    )
    assert index.graph == cold_rebuild_graph(index.dataset, index.config)


@pytest.mark.parametrize("batch_size", [1, 10, 100])
def test_streaming_batch_size_sweep(benchmark, batch_size):
    """Throughput/cost across batch sizes (tiny workload, sweep-friendly)."""
    params = _SCALES["tiny"]
    benchmark.group = "streaming:batch-size"
    base, users, items, ratings = _workload(
        params["n_users"], params["n_items"], params["density"]
    )
    index = DynamicKnnIndex(base, KiffConfig(k=params["k"]), auto_refresh=False)
    outcome = run_once(
        benchmark,
        lambda: replay_stream(
            index, users, items, ratings, batch_size=batch_size
        ),
    )
    benchmark.extra_info["savings"] = round(outcome.savings, 2)
    benchmark.extra_info["events_per_second"] = round(outcome.events_per_second, 1)
