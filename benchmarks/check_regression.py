"""Bench-regression gate: diff BENCH_*.json reports against a baseline.

CI runs the ``--quick`` bench suite (``REPRO_BENCH_SCALE=tiny``), which
emits ``benchmarks/reports/BENCH_<module>.json``, then::

    python benchmarks/check_regression.py

compares the reports' ``extra_info`` metrics against the committed
``benchmarks/baselines/quick.json`` and exits non-zero on regression.
Only *deterministic* metrics are gated — evaluation counts, savings
ratios, recall — never wall times or anything derived from them
(speedups, events/sec), which CI runners cannot reproduce.  The tiny
workloads are seeded, so these metrics are exact across machines; the
generous default tolerance only absorbs numeric/library drift.

Each baseline metric carries a direction:

* ``"higher"`` — only a drop beyond tolerance fails (e.g. recall),
* ``"lower"``  — only a rise beyond tolerance fails (e.g. evaluations),
* ``"both"``   — any drift beyond tolerance fails (the default: a
  deterministic count that moved 35% in *either* direction means the
  algorithm's behavior changed, which a human should sign off on).

A bench or metric present in the baseline but missing from the reports
also fails — a silently dropped benchmark is a regression of coverage.

Re-baselining (after a deliberate behavior change)::

    PYTHONPATH=src python -m pytest benchmarks -q --quick
    python benchmarks/check_regression.py --write-baseline

then review and commit ``benchmarks/baselines/quick.json``.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

HERE = Path(__file__).parent

#: Metrics never worth baselining: timing and everything derived from
#: it, plus resident-set sizes (allocator- and machine-dependent).
_UNSTABLE_KEY = re.compile(
    r"(_s$|_seconds|per_second|speedup|wall|time|cores|rss)", re.IGNORECASE
)

DEFAULT_TOLERANCE = 0.35


def load_reports(
    report_dir: Path,
) -> tuple[dict[str, dict[str, dict]], set[str]]:
    """``({bench_module: {test: extra_info}}, scales)`` from BENCH_*.json."""
    reports: dict[str, dict[str, dict]] = {}
    scales: set[str] = set()
    for path in sorted(report_dir.glob("BENCH_*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        scales.add(payload.get("scale", "unknown"))
        reports[payload["bench"]] = {
            entry["test"]: entry.get("extra_info", {})
            for entry in payload.get("results", [])
        }
    return reports, scales


def stable_metrics(extra_info: dict) -> dict[str, float]:
    """The numeric, machine-independent metrics of one test."""
    stable: dict[str, float] = {}
    for key, value in extra_info.items():
        if _UNSTABLE_KEY.search(key):
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        stable[key] = float(value)
    return stable


def write_baseline(
    reports, scales: set[str], baseline_path: Path, tolerance: float
) -> int:
    if scales != {"tiny"}:
        # Baselining laptop-scale reports into quick.json would fail CI
        # for everyone; reports carry their scale so this is checkable.
        print(
            f"error: refusing to baseline reports at scale(s) "
            f"{sorted(scales)}; regenerate them with "
            f"'PYTHONPATH=src python -m pytest benchmarks -q --quick'"
        )
        return 2
    benches: dict[str, dict] = {}
    for bench, tests in sorted(reports.items()):
        for test, extra_info in sorted(tests.items()):
            metrics = {
                key: {"value": value, "direction": "both"}
                for key, value in sorted(stable_metrics(extra_info).items())
            }
            if metrics:
                benches.setdefault(bench, {})[test] = metrics
    if not benches:
        print("error: no gateable metrics found in the reports")
        return 2
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(
        json.dumps(
            {"scale": "tiny", "tolerance": tolerance, "benches": benches},
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    count = sum(
        len(metrics) for tests in benches.values() for metrics in tests.values()
    )
    print(f"wrote {baseline_path} ({count} gated metrics)")
    print("review the directions (higher/lower/both) before committing")
    return 0


def check(
    reports, scales: set[str], baseline: dict, tolerance: float | None
) -> int:
    tol = tolerance if tolerance is not None else float(
        baseline.get("tolerance", DEFAULT_TOLERANCE)
    )
    baseline_scale = baseline.get("scale")
    if baseline_scale is not None and scales != {baseline_scale}:
        print(
            f"error: reports were generated at scale(s) {sorted(scales)} "
            f"but the baseline is scale {baseline_scale!r}; regenerate "
            f"with '--quick' before gating"
        )
        return 2
    failures: list[str] = []
    compared = 0
    for bench, tests in sorted(baseline.get("benches", {}).items()):
        measured_tests = reports.get(bench)
        if measured_tests is None:
            failures.append(f"{bench}: no BENCH_{bench}.json report emitted")
            continue
        for test, metrics in sorted(tests.items()):
            extra_info = measured_tests.get(test)
            if extra_info is None:
                failures.append(f"{bench}::{test}: test missing from report")
                continue
            for key, spec in sorted(metrics.items()):
                base = float(spec["value"])
                direction = spec.get("direction", "both")
                if key not in extra_info:
                    failures.append(
                        f"{bench}::{test}: metric {key!r} missing from report"
                    )
                    continue
                value = float(extra_info[key])
                compared += 1
                slack = tol * max(abs(base), 1.0)
                too_low = value < base - slack
                too_high = value > base + slack
                failed = (
                    too_low
                    if direction == "higher"
                    else too_high
                    if direction == "lower"
                    else (too_low or too_high)
                )
                if failed:
                    failures.append(
                        f"{bench}::{test}: {key} = {value:g} vs baseline "
                        f"{base:g} (direction={direction}, "
                        f"tolerance={tol:.0%})"
                    )
    if failures:
        print(f"bench regression gate: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  FAIL {failure}")
        print(
            "\nIf the change is deliberate, re-baseline: "
            "PYTHONPATH=src python -m pytest benchmarks -q --quick && "
            "python benchmarks/check_regression.py --write-baseline"
        )
        return 1
    print(f"bench regression gate: {compared} metrics within tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reports",
        default=HERE / "reports",
        type=Path,
        help="directory holding BENCH_*.json (default: benchmarks/reports)",
    )
    parser.add_argument(
        "--baseline",
        default=HERE / "baselines" / "quick.json",
        type=Path,
        help="baseline to check against (default: baselines/quick.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative tolerance override (default: the baseline's)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current reports and exit",
    )
    args = parser.parse_args(argv)
    if not args.reports.is_dir():
        print(f"error: report directory {args.reports} does not exist")
        return 2
    reports, scales = load_reports(args.reports)
    if not reports:
        print(f"error: no BENCH_*.json reports under {args.reports}")
        return 2
    if args.write_baseline:
        return write_baseline(
            reports,
            scales,
            args.baseline,
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE,
        )
    if not args.baseline.is_file():
        print(
            f"error: baseline {args.baseline} does not exist; create one "
            f"with --write-baseline"
        )
        return 2
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    return check(reports, scales, baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
