"""Scale soak: streaming at large user counts under a memory budget.

The ROADMAP's million-user ceiling is memory, not compute: per-user
state (graph rows, published snapshot rows, CSR indices) at the
historical int64/float64 widths is what runs out first.  This bench
builds a :func:`repro.datasets.generators.large_scale_dataset` at the
selected scale, streams seeded rating events through a
:class:`DynamicKnnIndex` with periodic refreshes, and reports:

* **bytes per user**, compact vs the legacy layout — the legacy column
  is the analytic re-pricing from ``memory_stats()``'s ``legacy_*``
  twins plus the dense ``(n, k)`` snapshot the legacy layout published,
  so it is deterministic and gateable.  The acceptance bar is the
  headline assertion: the live per-user graph rows must cost **<= half**
  their legacy price (int32 ids + float32 sims vs int64 + float64).
  The packed snapshot's per-user saving is slightly under 2x at full
  fill (ids+sims halve, plus a 4-byte indptr entry), so the combined
  rows+snapshot ratio is reported but not gated.
* **peak RSS** against a per-scale ceiling (env-overridable with
  ``REPRO_SOAK_RSS_MB``) — the fixed memory budget the soak runs under.
* **events/s and refresh-latency percentiles** — wall-derived, reported
  in the BENCH json but never baselined.

Scales (``REPRO_BENCH_SCALE``): ``tiny`` is the CI smoke (seconds),
``laptop`` the default, ``soak`` the opt-in million-user run.
"""

import os
import time

import numpy as np

from repro import AddRating, DynamicKnnIndex, KiffConfig
from repro.datasets import large_scale_dataset
from repro.streaming import cold_rebuild_graph

from _bench_utils import peak_rss_bytes, run_once

_SCALES = {
    "tiny": dict(
        n_users=2_000,
        ratings_per_user=4.0,
        n_items=400,
        k=8,
        n_events=300,
        refresh_every=50,
        rss_budget_mb=1_536,
        verify_parity=True,
    ),
    "laptop": dict(
        n_users=50_000,
        ratings_per_user=5.0,
        n_items=2_000,
        k=10,
        n_events=2_000,
        refresh_every=250,
        rss_budget_mb=6_144,
        verify_parity=False,
    ),
    "soak": dict(
        n_users=1_000_000,
        ratings_per_user=5.0,
        n_items=20_000,
        k=10,
        n_events=10_000,
        refresh_every=1_000,
        rss_budget_mb=16_384,
        verify_parity=False,
    ),
}
_SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")


def _stream(index, params, seed=13):
    """Seeded rating events with periodic refreshes; returns timings."""
    rng = np.random.default_rng(seed)
    users = rng.integers(0, params["n_users"], size=params["n_events"])
    items = rng.integers(0, params["n_items"], size=params["n_events"])
    ratings = rng.integers(1, 6, size=params["n_events"]).astype(float)
    refresh_walls = []
    start = time.perf_counter()
    for pos in range(params["n_events"]):
        index.apply(
            AddRating(int(users[pos]), int(items[pos]), float(ratings[pos]))
        )
        if (pos + 1) % params["refresh_every"] == 0:
            tick = time.perf_counter()
            index.refresh()
            refresh_walls.append(time.perf_counter() - tick)
    tick = time.perf_counter()
    index.refresh()
    refresh_walls.append(time.perf_counter() - tick)
    return time.perf_counter() - start, refresh_walls


def test_scale_soak(benchmark):
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    benchmark.group = "scale:soak"
    dataset = large_scale_dataset(
        params["n_users"],
        ratings_per_user=params["ratings_per_user"],
        n_items=params["n_items"],
        rating_model="stars",
        seed=7,
    )
    index = DynamicKnnIndex(
        dataset, KiffConfig(k=params["k"]), auto_refresh=False
    )
    try:
        wall, refresh_walls = run_once(
            benchmark, lambda: _stream(index, params)
        )
        stats = index.memory_stats()
        n_users = index.n_users

        # --- bytes per user: the maintained per-user graph state. ---
        # Legacy published snapshots were dense (n, k) int64/float64
        # copies; the compact layout packs the present entries.
        legacy_snapshot = 16 * n_users * params["k"]
        compact_rows = stats["graph_rows_bytes"] + stats["snapshot_rows_bytes"]
        legacy_rows = stats["legacy_graph_rows_bytes"] + legacy_snapshot
        row_ratio = (
            stats["legacy_graph_rows_bytes"] / stats["graph_rows_bytes"]
        )
        combined_ratio = legacy_rows / compact_rows
        # Whole-index view (ratings data stays float64 by contract, so
        # this ratio is real but smaller; reported, not asserted).
        compact_total = stats["total_bytes"]
        legacy_total = (
            stats["legacy_dataset_csr_bytes"]
            + stats["legacy_graph_rows_bytes"]
            + stats["profile_index_bytes"]
            + legacy_snapshot
        )

        budget = int(
            os.environ.get("REPRO_SOAK_RSS_MB", params["rss_budget_mb"])
        )
        rss = peak_rss_bytes()

        benchmark.extra_info["n_users"] = n_users
        benchmark.extra_info["events"] = params["n_events"]
        benchmark.extra_info["ratings"] = int(index.dataset.n_ratings)
        benchmark.extra_info["graph_rows_bytes"] = stats["graph_rows_bytes"]
        benchmark.extra_info["snapshot_rows_bytes"] = stats[
            "snapshot_rows_bytes"
        ]
        benchmark.extra_info["dataset_csr_bytes"] = stats["dataset_csr_bytes"]
        benchmark.extra_info["legacy_graph_rows_bytes"] = stats[
            "legacy_graph_rows_bytes"
        ]
        benchmark.extra_info["legacy_dataset_csr_bytes"] = stats[
            "legacy_dataset_csr_bytes"
        ]
        benchmark.extra_info["row_bytes_per_user"] = round(
            compact_rows / n_users, 2
        )
        benchmark.extra_info["legacy_row_bytes_per_user"] = round(
            legacy_rows / n_users, 2
        )
        benchmark.extra_info["graph_rows_ratio"] = round(row_ratio, 3)
        benchmark.extra_info["row_bytes_ratio"] = round(combined_ratio, 3)
        benchmark.extra_info["total_bytes_per_user"] = round(
            compact_total / n_users, 2
        )
        benchmark.extra_info["legacy_total_bytes_per_user"] = round(
            legacy_total / n_users, 2
        )
        # Wall-derived and machine-dependent (reported, never gated):
        benchmark.extra_info["events_per_second"] = round(
            params["n_events"] / wall, 1
        )
        benchmark.extra_info["refresh_p50_wall_ms"] = round(
            1e3 * float(np.percentile(refresh_walls, 50)), 2
        )
        benchmark.extra_info["refresh_p95_wall_ms"] = round(
            1e3 * float(np.percentile(refresh_walls, 95)), 2
        )
        benchmark.extra_info["refresh_p99_wall_ms"] = round(
            1e3 * float(np.percentile(refresh_walls, 99)), 2
        )
        benchmark.extra_info["rss_budget_bytes"] = budget * 1024 * 1024

        # Acceptance bars.
        assert row_ratio >= 2.0, (
            f"compact per-user graph rows must halve the legacy cost "
            f"(got {row_ratio:.2f}x)"
        )
        assert legacy_rows > compact_rows
        assert legacy_total > compact_total
        assert rss <= budget * 1024 * 1024, (
            f"peak RSS {rss / 2**20:.0f} MiB exceeds the "
            f"{budget} MiB soak budget"
        )
        if params["verify_parity"]:
            assert index.graph == cold_rebuild_graph(
                index.dataset, index.config
            )
    finally:
        index.close()
