"""Serving bench: query latency and QPS under mixed read/write load.

A synthetic sparse workload is split 90%/10%; the index is prebuilt on
the 90% and a writer thread streams the 10% back in multi-event batches
(one ``refresh()`` per batch).  Concurrently, reader threads hammer the
serving path — ``pin()`` a snapshot, answer an alternating
``neighbors``/``recommend`` query on it — and every query's latency and
reported graph version are recorded.

What is asserted (the lock-free serving contract):

* **Queries complete during in-flight refreshes** — at least one query
  interval falls entirely inside a writer refresh window, i.e. readers
  never block on the writer.
* **No torn reads** — a sample of responses is recomputed cold against
  the published snapshot of the version each response reports, and
  must match bit-identically.
* **Monotonic versions** — per reader thread, reported versions never
  go backwards.

p50/p99 latency and QPS land in ``BENCH_bench_serving.json`` for the
bench trajectory; being wall-clock they are excluded from the
regression gate by name (``_s``/``per_second``/``wall`` suffixes — see
``check_regression.py``), while the deterministic serving metrics
(events, refreshes, torn reads, version regressions) are baselined in
``benchmarks/baselines/quick.json``.
"""

import os
import threading
import time

import numpy as np

from repro import BipartiteDataset, DynamicKnnIndex, KiffConfig
from repro.serving import neighbors_on, recommend_on
from repro.streaming import holdout_stream, ratings_batch

from _bench_utils import run_once

#: 90%-prebuilt / 10%-streamed mixed workloads.  ``laptop`` is the
#: ISSUE's 20k-user serving scale; ``tiny`` is the CI smoke run.
_SCALES = {
    "tiny": dict(
        n_users=600,
        n_items=400,
        density=0.01,
        batch_size=48,
        k=8,
        readers=4,
    ),
    "laptop": dict(
        n_users=20_000,
        n_items=6_000,
        density=0.0012,
        batch_size=1_024,
        k=10,
        readers=4,
    ),
}
_SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")
#: Every Nth query keeps its full response for the bit-identity check.
_SAMPLE_EVERY = 8


def _workload(n_users, n_items, density, seed=7):
    """A seeded sparse rating matrix, 90/10-split via holdout_stream."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n_users, n_items)) < density
    users, items = np.nonzero(mask)
    ratings = rng.integers(1, 6, size=users.size).astype(np.float64)
    dataset = BipartiteDataset.from_edges(
        users,
        items,
        ratings,
        n_users=n_users,
        n_items=n_items,
        name="serving-bench",
    )
    return holdout_stream(dataset, fraction=0.1, seed=seed)


def test_serving_mixed_load(benchmark):
    """Readers on pinned snapshots while a writer streams and refreshes."""
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    benchmark.group = "serving:mixed"
    base, users, items, ratings = _workload(
        params["n_users"], params["n_items"], params["density"]
    )
    batch_size = params["batch_size"]
    n_readers = params["readers"]
    index = DynamicKnnIndex(
        base, KiffConfig(k=params["k"]), auto_refresh=False
    )
    try:
        first = index.pin()
        #: version -> the snapshot published under it (the writer
        #: records every publication so responses can be re-derived
        #: cold at exactly the version they report).
        published = {first.version: first}
        refresh_windows: list[tuple[float, float]] = []
        errors: list[BaseException] = []
        writer_done = threading.Event()

        def write_stream() -> None:
            try:
                for lo in range(0, len(users), batch_size):
                    hi = lo + batch_size
                    index.apply(
                        ratings_batch(
                            users[lo:hi], items[lo:hi], ratings[lo:hi]
                        )
                    )
                    start = time.perf_counter()
                    index.refresh()
                    refresh_windows.append((start, time.perf_counter()))
                    snapshot = index.pin()
                    published[snapshot.version] = snapshot
            except BaseException as error:  # surfaced after the join
                errors.append(error)
            finally:
                writer_done.set()

        def read_queries(seed: int, out: dict) -> None:
            rng = np.random.default_rng(seed)
            spans: list[tuple[float, float, int]] = []
            sampled: list[tuple] = []
            try:
                n = 0
                while not writer_done.is_set():
                    user = int(rng.integers(0, base.n_users))
                    start = time.perf_counter()
                    snapshot = index.pin()
                    if n % 2:
                        reply = neighbors_on(snapshot, user)
                    else:
                        reply = recommend_on(snapshot, user, top_n=10)
                    end = time.perf_counter()
                    spans.append((start, end, reply.version))
                    if n % _SAMPLE_EVERY == 0:
                        sampled.append(reply)
                    n += 1
                out["spans"] = spans
                out["sampled"] = sampled
            except BaseException as error:
                errors.append(error)

        reader_outs = [{} for _ in range(n_readers)]

        def run_mixed_load() -> float:
            threads = [
                threading.Thread(
                    target=read_queries,
                    args=(1000 + pos, reader_outs[pos]),
                    name=f"repro-serve-reader-{pos}",
                )
                for pos in range(n_readers)
            ]
            writer = threading.Thread(
                target=write_stream, name="repro-serve-writer"
            )
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            writer.start()
            writer.join()
            for thread in threads:
                thread.join()
            return time.perf_counter() - start

        wall = run_once(benchmark, run_mixed_load)
        if errors:
            raise errors[0]

        # --- verification: versions monotonic, responses bit-identical
        version_regressions = 0
        torn_reads = 0
        verified = 0
        for out in reader_outs:
            versions = [span[2] for span in out["spans"]]
            version_regressions += sum(
                1
                for prev, cur in zip(versions, versions[1:])
                if cur < prev
            )
            for reply in out["sampled"]:
                snapshot = published.get(reply.version)
                if snapshot is None:
                    torn_reads += 1  # a version that was never published
                    continue
                if type(reply) is type(neighbors_on(snapshot, 0)):
                    cold = neighbors_on(snapshot, reply.user)
                else:
                    cold = recommend_on(snapshot, reply.user, top_n=10)
                verified += 1
                if cold != reply:
                    torn_reads += 1
        assert torn_reads == 0, (
            f"{torn_reads} of {verified} sampled responses diverge from "
            f"a cold query against the snapshot version they report"
        )
        assert version_regressions == 0, (
            f"{version_regressions} queries observed a version older "
            f"than a previous query on the same thread"
        )

        # --- the lock-free claim: queries complete *during* refreshes
        starts = np.asarray(
            [span[0] for out in reader_outs for span in out["spans"]]
        )
        ends = np.asarray(
            [span[1] for out in reader_outs for span in out["spans"]]
        )
        overlap_queries = 0
        for window_start, window_end in refresh_windows:
            overlap_queries += int(
                ((starts >= window_start) & (ends <= window_end)).sum()
            )
        assert overlap_queries >= 1, (
            f"no query interval fell inside any of the "
            f"{len(refresh_windows)} refresh windows — readers appear "
            f"to block on the writer"
        )

        latencies = np.sort(ends - starts)
        n_queries = int(latencies.size)
        refresh_wall = sum(end - start for start, end in refresh_windows)
        benchmark.extra_info["events_streamed"] = int(len(users))
        benchmark.extra_info["batch_size"] = int(batch_size)
        benchmark.extra_info["reader_threads"] = int(n_readers)
        benchmark.extra_info["refreshes"] = int(len(refresh_windows))
        benchmark.extra_info["torn_reads"] = int(torn_reads)
        benchmark.extra_info["version_regressions"] = int(
            version_regressions
        )
        # Wall-bound counts carry a "wall" marker so the regression
        # gate's unstable-key filter never baselines them.
        benchmark.extra_info["queries_total_wall"] = n_queries
        benchmark.extra_info["verified_responses_wall"] = int(verified)
        benchmark.extra_info["refresh_overlap_queries_wall"] = int(
            overlap_queries
        )
        benchmark.extra_info["p50_latency_s"] = float(
            np.percentile(latencies, 50)
        )
        benchmark.extra_info["p99_latency_s"] = float(
            np.percentile(latencies, 99)
        )
        benchmark.extra_info["max_latency_s"] = float(latencies[-1])
        benchmark.extra_info["queries_per_second"] = round(
            n_queries / wall, 1
        )
        benchmark.extra_info["refresh_wall_s"] = round(refresh_wall, 4)
        benchmark.extra_info["mixed_phase_wall_s"] = round(wall, 4)
    finally:
        index.close()
