"""Ablation bench: RCS construction path, pivot strategy, rating threshold."""

import pytest

from repro.core.rcs import build_rcs, build_rcs_reference
from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


@pytest.mark.parametrize("path", ["matmul", "reference"])
def test_rcs_path(benchmark, context, path):
    """Fast (sparse matmul) vs faithful (Algorithm 1) counting phase."""
    benchmark.group = "ablation:rcs-path"
    dataset = context.dataset("wikipedia")
    builder = build_rcs if path == "matmul" else build_rcs_reference
    run_once(benchmark, lambda: builder(dataset))


def test_ablation_report(benchmark, context, save_report):
    benchmark.group = "ablation:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["ablation"].run(context))
    save_report("ablation", report)
    assert report.data["rcs_path"]["identical"]
    assert report.data["rcs_path"]["speedup"] > 1.0
    assert report.data["pivot"]["memory_ratio"] == pytest.approx(2.0)
    assert report.data["min_rating"]["rcs_shrinkage"] > 0
