"""Table IX bench: MovieLens density family statistics."""

from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


def test_table9_report(benchmark, context, save_report):
    benchmark.group = "table9:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["table9"].run(context))
    save_report("table9", report)
    # Paper shape: densities follow the published keep-fractions and the
    # average RCS size shrinks monotonically with density.
    entries = [report.data[f"ml-{i}"] for i in range(1, 6)]
    densities = [e["density_percent"] for e in entries]
    rcs_sizes = [e["avg_rcs"] for e in entries]
    assert all(a > b for a, b in zip(densities, densities[1:]))
    assert all(a >= b for a, b in zip(rcs_sizes, rcs_sizes[1:]))
