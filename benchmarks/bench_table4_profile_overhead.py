"""Table IV bench: overhead of item-profile construction."""

import pytest

from repro.datasets.registry import EVALUATION_SUITE
from repro.experiments import EXPERIMENTS
from repro.experiments.exp_table4 import measure_profile_build

from _bench_utils import run_once


@pytest.mark.parametrize("name", EVALUATION_SUITE)
def test_profile_construction(benchmark, context, name):
    """User+item profile build for one dataset (the measured quantity)."""
    benchmark.group = "table4:profiles"
    dataset = context.dataset(name)
    run_once(benchmark, lambda: measure_profile_build(dataset, repeats=1))


def test_table4_report(benchmark, context, save_report):
    benchmark.group = "table4:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["table4"].run(context))
    save_report("table4", report)
    # Paper shape: item profiles cost a negligible share of KIFF's total.
    for name in EVALUATION_SUITE:
        assert report.data[name]["pct_total"] < 10.0
