"""Figure 4 bench: profile-size CCDFs."""

import numpy as np
import pytest

from repro.datasets.registry import EVALUATION_SUITE
from repro.datasets.stats import profile_size_ccdf
from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


@pytest.mark.parametrize("name", EVALUATION_SUITE)
def test_ccdf_computation(benchmark, context, name):
    benchmark.group = "figure4:ccdf"
    dataset = context.dataset(name)
    run_once(
        benchmark,
        lambda: (
            profile_size_ccdf(dataset, "user"),
            profile_size_ccdf(dataset, "item"),
        ),
    )


def test_figure4_report(benchmark, context, save_report):
    benchmark.group = "figure4:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["figure4"].run(context))
    save_report("figure4", report)
    # Paper shape: long-tailed curves on every dataset and axis.
    for name in EVALUATION_SUITE:
        for axis in ("user", "item"):
            xs, ps = report.data[f"{name}/{axis}"]
            assert ps[0] == 1.0
            assert np.all(np.diff(ps) <= 0)
