"""Refresh locality bench: cost grows with the dirty set, not n_ratings.

A synthetic sparse workload is split 95%/5%; the 95% is prebuilt into a
:class:`DynamicKnnIndex` and refreshes are driven with controlled dirty
sets drawn from the 5% hold-out.  Measured via the maintenance counters
(deterministic, no wall-clock flakiness):

* a 1%-dirty refresh must perform <= 10% of the cold rebuild's row
  materialisations and ProfileIndex recomputations (the acceptance bar
  of the dirty-set-proportional refresh work);
* quadrupling the dirty set scales the counters ~4x;
* doubling n_ratings at a fixed dirty set leaves them unchanged.
"""

import os

import numpy as np

from repro import BipartiteDataset, DynamicKnnIndex, KiffConfig
from repro.streaming import holdout_stream, ratings_batch

from _bench_utils import run_once

#: 95%-prebuilt / 5%-streamed synthetic workloads (paper-style sparsity).
_SCALES = {
    "tiny": dict(n_users=400, n_items=300, density=0.01, k=8),
    "laptop": dict(n_users=2_000, n_items=1_200, density=0.005, k=10),
}
_SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")


def _workload(n_users, n_items, density, seed=7):
    rng = np.random.default_rng(seed)
    mask = rng.random((n_users, n_items)) < density
    users, items = np.nonzero(mask)
    ratings = rng.integers(1, 6, size=users.size).astype(np.float64)
    dataset = BipartiteDataset.from_edges(
        users, items, ratings,
        n_users=n_users,
        n_items=n_items,
        name="locality-bench",
    )
    return holdout_stream(dataset, fraction=0.05, seed=seed)


def _prebuilt_index(params, density=None, seed=7):
    base, users, items, ratings = _workload(
        params["n_users"],
        params["n_items"],
        density if density is not None else params["density"],
        seed=seed,
    )
    index = DynamicKnnIndex(
        base, KiffConfig(k=params["k"]), auto_refresh=False
    )
    return index, users, items, ratings


def _dirty_batch(users, items, ratings, n_dirty):
    """The first hold-out event of each of *n_dirty* distinct users."""
    picked, seen = [], set()
    for j in range(users.size):
        user = int(users[j])
        if user not in seen:
            seen.add(user)
            picked.append(j)
            if len(seen) == n_dirty:
                break
    picked = np.asarray(picked, dtype=np.int64)
    return users[picked], items[picked], ratings[picked]


def test_refresh_locality_one_percent_dirty(benchmark):
    """1%-dirty refresh: <= 10% of the cold rebuild's per-user work."""
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    benchmark.group = "streaming:locality"
    index, users, items, ratings = _prebuilt_index(params)
    n_users = index.n_users
    n_dirty = max(1, n_users // 100)
    index.apply(ratings_batch(*_dirty_batch(users, items, ratings, n_dirty)))
    assert len(index.dirty_users) == n_dirty

    stats = run_once(benchmark, index.refresh)

    # A cold rebuild materialises n_users rows and recomputes n_users
    # ProfileIndex entries; the localized refresh must stay under 10%.
    assert stats.rows_materialized <= 0.10 * n_users, stats
    assert stats.index_users_recomputed <= 0.10 * n_users, stats
    assert index.maintenance.snapshots_incremental >= 1
    assert index.maintenance.index_updates_incremental >= 1
    benchmark.extra_info.update(
        n_users=n_users,
        dirty=n_dirty,
        rows_materialized=stats.rows_materialized,
        index_users_recomputed=stats.index_users_recomputed,
        rows_fraction_of_rebuild=stats.rows_materialized / n_users,
        affected_users=stats.affected_users,
        evaluations=stats.evaluations,
    )


def test_refresh_cost_scales_with_dirty_set():
    """4x the dirty users => ~4x the counted per-user refresh work."""
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    n_users = params["n_users"]
    results = {}
    for fraction in (0.01, 0.04):
        index, users, items, ratings = _prebuilt_index(params)
        n_dirty = max(1, int(n_users * fraction))
        index.apply(ratings_batch(*_dirty_batch(users, items, ratings, n_dirty)))
        stats = index.refresh()
        results[fraction] = stats
    small, large = results[0.01], results[0.04]
    # Row materialisations count exactly the dirty rows.
    assert small.rows_materialized == max(1, int(n_users * 0.01))
    assert large.rows_materialized == max(1, int(n_users * 0.04))
    ratio = large.index_users_recomputed / small.index_users_recomputed
    assert 2.0 <= ratio <= 8.0, (small, large)


def test_refresh_cost_flat_in_n_ratings():
    """Doubling n_ratings at a fixed dirty set leaves the counted
    snapshot/index work unchanged (the O(n_ratings) floor is gone)."""
    params = _SCALES.get(_SCALE, _SCALES["laptop"])
    n_dirty = max(1, params["n_users"] // 100)
    counted = {}
    for factor in (1.0, 2.0):
        index, users, items, ratings = _prebuilt_index(
            params, density=params["density"] * factor
        )
        index.apply(ratings_batch(*_dirty_batch(users, items, ratings, n_dirty)))
        stats = index.refresh()
        counted[factor] = (
            stats.rows_materialized,
            stats.index_users_recomputed,
        )
    assert counted[1.0][0] == counted[2.0][0] == n_dirty
    assert counted[1.0][1] == counted[2.0][1] == n_dirty
