"""Figure 5 bench: per-activity breakdown across algorithms/datasets."""

from repro.datasets.registry import EVALUATION_SUITE
from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


def test_figure5_report(benchmark, context, save_report):
    benchmark.group = "figure5:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["figure5"].run(context))
    save_report("figure5", report)
    # Paper shape: KIFF carries the largest preprocessing share yet the
    # smallest total on each dataset.
    for name in EVALUATION_SUITE:
        kiff_breakdown = report.data[f"{name}/kiff"]
        nnd_breakdown = report.data[f"{name}/nn-descent"]
        assert kiff_breakdown["preprocessing"] >= nnd_breakdown["preprocessing"]
        assert sum(kiff_breakdown.values()) < sum(nnd_breakdown.values())
