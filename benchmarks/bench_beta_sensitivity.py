"""Beta-sensitivity bench (Section V-B2 in-text experiment)."""

from repro.experiments import EXPERIMENTS

from _bench_utils import run_once


def test_beta_report(benchmark, context, save_report):
    benchmark.group = "beta:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["beta"].run(context))
    save_report("beta", report)
    loose = report.data[0.1]
    tight = report.data[0.001]
    # Paper shape: beta=0.1 converges with a lower scan rate at a small
    # recall cost (paper: -0.01 recall, half the scan rate, on Arxiv).
    assert loose.scan_rate <= tight.scan_rate + 1e-9
    assert loose.recall >= tight.recall - 0.05
    assert loose.iterations <= tight.iterations
