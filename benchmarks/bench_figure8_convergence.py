"""Figure 8 bench: convergence traces on Arxiv."""

import pytest

from repro.experiments import ALGORITHMS, EXPERIMENTS
from repro.experiments.exp_figure8 import DATASET, convergence_series

from _bench_utils import run_once


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_traced_construction(benchmark, context, algorithm):
    """Construction with per-iteration snapshots + recall attribution."""
    benchmark.group = "figure8:trace"
    series = run_once(
        benchmark, lambda: convergence_series(context, DATASET, algorithm)
    )
    assert len(series["scan_rate"]) >= 1


def test_figure8_report(benchmark, context, save_report):
    benchmark.group = "figure8:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["figure8"].run(context))
    save_report("figure8", report)
    kiff_series = report.data["kiff"]
    nnd_series = report.data["nn-descent"]
    # Paper shape: KIFF starts high (RCS init) and finishes at a far
    # smaller scan rate than NN-Descent.
    assert kiff_series["recall"][0] > nnd_series["recall"][0]
    assert kiff_series["scan_rate"][-1] < nnd_series["scan_rate"][-1]
