"""Table VII bench: initialisation quality (top-k-of-RCS vs random)."""

import pytest

from repro.datasets.registry import EVALUATION_SUITE
from repro.experiments import EXPERIMENTS
from repro.experiments.exp_table7 import rcs_top_k_graph

from _bench_utils import run_once


@pytest.mark.parametrize("name", EVALUATION_SUITE)
def test_rcs_initialisation(benchmark, context, name):
    """Building the top-k-of-RCS graph (the measured quantity)."""
    benchmark.group = "table7:init"
    engine = context.engine(name)
    k = context.k_for(name)
    graph = run_once(benchmark, lambda: rcs_top_k_graph(engine, k))
    assert graph.edge_count() > 0


def test_table7_report(benchmark, context, save_report):
    benchmark.group = "table7:report"
    report = run_once(benchmark, lambda: EXPERIMENTS["table7"].run(context))
    save_report("table7", report)
    # Paper shape: RCS initialisation starts far above a random graph.
    for name in EVALUATION_SUITE:
        entry = report.data[name]
        assert entry["rcs_init"] > entry["random_init"]
