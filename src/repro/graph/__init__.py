"""KNN graph representation, metrics, analytics, I/O, update kernels."""

from .analysis import (
    GraphStats,
    analyze,
    in_degrees,
    reciprocity,
    similarity_by_rank,
    weakly_connected_components,
)
from .io import (
    graph_from_arrays,
    graph_to_arrays,
    load_graph,
    save_graph,
    to_networkx,
    write_edge_list,
)
from .knn_graph import MISSING, KnnGraph
from .metrics import average_similarity, per_user_recall, recall, strict_recall
from .updates import (
    ReverseNeighborIndex,
    dedupe_pairs,
    merge_topk,
    merge_topk_rows,
)

__all__ = [
    "GraphStats",
    "KnnGraph",
    "MISSING",
    "ReverseNeighborIndex",
    "analyze",
    "average_similarity",
    "dedupe_pairs",
    "graph_from_arrays",
    "graph_to_arrays",
    "in_degrees",
    "load_graph",
    "merge_topk",
    "merge_topk_rows",
    "per_user_recall",
    "recall",
    "reciprocity",
    "save_graph",
    "similarity_by_rank",
    "strict_recall",
    "to_networkx",
    "weakly_connected_components",
    "write_edge_list",
]
