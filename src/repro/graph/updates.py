"""Vectorised KNN-row updates shared by the fast algorithm paths.

All fast implementations (KIFF, NN-Descent, HyRec) face the same inner
step: given the current ``(neighbors, sims)`` arrays and a batch of
candidate edges ``(user, candidate, sim)``, produce each user's new top-k
and count how many slots changed — the paper's per-iteration change counter
``c``.  Doing this with sorting primitives instead of per-user heaps is
what makes the pure-Python reproduction tractable; the heap-based reference
path in :mod:`repro.core.heap` verifies the semantics match.
"""

from __future__ import annotations

import numpy as np

from ..layout import ID_DTYPE, SCORE_DTYPE
from .knn_graph import MISSING

__all__ = [
    "ReverseNeighborIndex",
    "merge_topk",
    "merge_topk_rows",
    "dedupe_pairs",
]


class ReverseNeighborIndex:
    """Inverted KNN adjacency: user -> rows whose top-k cites her.

    Streaming maintenance must find every row holding a stale entry for
    a dirty user.  Scanning ``neighbors`` with ``np.isin`` costs
    O(n_users * k) per refresh — a full-graph floor even for one dirty
    user.  This index answers the same query by lookup and is kept
    current from the same row diffs the top-k merge produces, so its
    maintenance cost is proportional to the rows a refresh actually
    touched.

    The structure is exact, not approximate: after ``apply_row(row, old,
    new)`` calls mirroring every row change, ``referrers_of(users)``
    equals the ``np.isin`` scan (the property suite pins this).
    """

    def __init__(self, neighbors: np.ndarray | None = None):
        self._referrers: dict[int, set[int]] = {}
        if neighbors is not None:
            self.rebuild(neighbors)

    def rebuild(self, neighbors: np.ndarray) -> None:
        """Re-derive the whole index from a ``(n_users, k)`` row array."""
        referrers: dict[int, set[int]] = {}
        rows, slots = np.nonzero(neighbors != MISSING)
        for row, neighbor in zip(
            rows.tolist(), neighbors[rows, slots].tolist()
        ):
            referrers.setdefault(neighbor, set()).add(row)
        self._referrers = referrers

    def referrers_of(self, users) -> np.ndarray:
        """Sorted unique rows citing any of *users* (compact id array)."""
        rows: set[int] = set()
        for user in np.asarray(users, dtype=np.int64).tolist():
            cited_by = self._referrers.get(user)
            if cited_by:
                rows.update(cited_by)
        return np.fromiter(sorted(rows), dtype=ID_DTYPE, count=len(rows))

    def add_referrer(self, neighbor: int, row: int) -> None:
        """Record that *row* cites *neighbor* (bulk-load primitive).

        Lets callers assemble an index from an externally partitioned
        edge scan (e.g. one pass over the rows of a sharded graph,
        routing each row to its owner's index) without materialising a
        masked copy of the neighbour array per partition.
        """
        self._referrers.setdefault(int(neighbor), set()).add(int(row))

    def apply_row(self, row: int, old_ids, new_ids) -> None:
        """Record that *row*'s neighbour list changed from old to new.

        ``old_ids`` / ``new_ids`` are the row's neighbour id arrays;
        ``MISSING`` slots are ignored.  Cost O(k) per changed row.
        """
        old = {int(i) for i in old_ids if i != MISSING}
        new = {int(i) for i in new_ids if i != MISSING}
        for neighbor in old - new:
            cited_by = self._referrers.get(neighbor)
            if cited_by is not None:
                cited_by.discard(row)
                if not cited_by:
                    del self._referrers[neighbor]
        for neighbor in new - old:
            self._referrers.setdefault(neighbor, set()).add(row)

    def referrer_count(self) -> int:
        """Total stored (user, citing-row) entries (for tests/benchmarks)."""
        return sum(len(rows) for rows in self._referrers.values())

    def referrer_counts(self, users) -> np.ndarray:
        """In-degree of each of *users*: how many rows cite them.

        This is the "blast radius" of a dirty user — the number of KNN
        rows a refresh of that user can invalidate — which the
        bounded-staleness scheduler uses to order deferred work.
        """
        users = np.asarray(users, dtype=np.int64)
        return np.fromiter(
            (len(self._referrers.get(int(u), ())) for u in users),
            dtype=np.int64,
            count=users.size,
        )


def dedupe_pairs(
    us: np.ndarray, vs: np.ndarray, n_users: int, ordered: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Remove duplicate pairs (and self pairs) from parallel pair arrays.

    With ``ordered=False`` pairs are treated as unordered: (u, v) and
    (v, u) collapse to one canonical (min, max) pair — the pivot-strategy
    semantics used when one similarity evaluation serves both endpoints.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    mask = us != vs
    us, vs = us[mask], vs[mask]
    if us.size == 0:
        return us, vs
    if ordered:
        keys = us * n_users + vs
    else:
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        keys = lo * n_users + hi
        us, vs = lo, hi
    _, unique_idx = np.unique(keys, return_index=True)
    return us[unique_idx], vs[unique_idx]


def merge_topk(
    neighbors: np.ndarray,
    sims: np.ndarray,
    cand_users: np.ndarray,
    cand_ids: np.ndarray,
    cand_sims: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Merge candidate edges into per-user top-k rows.

    Parameters
    ----------
    neighbors, sims:
        Current ``(n_users, k)`` state (canonical rows, MISSING = empty).
    cand_users, cand_ids, cand_sims:
        Parallel arrays of candidate edges: ``cand_ids[j]`` is proposed as
        a neighbour of ``cand_users[j]`` with similarity ``cand_sims[j]``.

    Returns
    -------
    (new_neighbors, new_sims, changes)
        New canonical state plus the number of changed slots, counted as
        the number of (user, neighbour) pairs present in the new state but
        not the old one — exactly the number of successful ``UPDATENN``
        heap insertions of Algorithm 1.

    Only users that actually receive candidates are re-ranked, so the cost
    of a merge is proportional to the batch, not to ``n_users * k`` — this
    matters for small-gamma KIFF runs whose late iterations touch few
    users.  Ties are broken by ascending neighbour id, matching
    ``KnnGraph`` canonical ordering, so fast and reference paths stay
    comparable.  :func:`merge_topk_rows` exposes the same computation
    without the O(n_users * k) full-array copies, for callers that write
    the re-ranked rows back in place (the streaming refresh paths).
    """
    active, new_sub_neighbors, new_sub_sims, changes = merge_topk_rows(
        neighbors, sims, cand_users, cand_ids, cand_sims
    )
    new_neighbors = neighbors.copy()
    new_sims = sims.copy()
    if active.size:
        new_neighbors[active] = new_sub_neighbors
        new_sims[active] = new_sub_sims
    return new_neighbors, new_sims, changes


def merge_topk_rows(
    neighbors: np.ndarray,
    sims: np.ndarray,
    cand_users: np.ndarray,
    cand_ids: np.ndarray,
    cand_sims: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """:func:`merge_topk` restricted to the rows that receive candidates.

    Returns ``(active, new_neighbors, new_sims, changes)`` where
    ``active`` is the sorted array of re-ranked row ids and the two
    ``(active.size, k)`` arrays are those rows' new canonical state —
    every row not in ``active`` is untouched.  Cost is proportional to
    the candidate batch; no full-graph array is copied, which is what
    lets shard workers merge disjoint row sets of one shared graph
    concurrently.
    """
    n_users, k = neighbors.shape
    cand_users = np.asarray(cand_users, dtype=np.int64)
    cand_ids = np.asarray(cand_ids, dtype=np.int64)
    cand_sims = np.asarray(cand_sims, dtype=np.float64)
    if cand_users.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return (
            empty,
            np.empty((0, k), dtype=ID_DTYPE),
            np.empty((0, k), dtype=SCORE_DTYPE),
            0,
        )

    # Work on the subset of rows that can change.
    active = np.unique(cand_users)
    cand_rows = np.searchsorted(active, cand_users)

    sub_neighbors = neighbors[active]
    sub_sims = sims[active]
    cur_mask = sub_neighbors != MISSING
    cur_rows = np.nonzero(cur_mask)[0]
    cur_ids = sub_neighbors[cur_mask]
    cur_sims = sub_sims[cur_mask]

    all_rows = np.concatenate([cur_rows, cand_rows])
    all_ids = np.concatenate([cur_ids, cand_ids])
    all_sims = np.concatenate([cur_sims, cand_sims])

    # Drop self edges defensively (rows are local; compare global ids).
    not_self = active[all_rows] != all_ids
    all_rows, all_ids, all_sims = (
        all_rows[not_self],
        all_ids[not_self],
        all_sims[not_self],
    )

    # Deduplicate (row, id) keeping the highest similarity.  Sorting by
    # (key, -sim) makes the first occurrence of each key the best one.
    # Neighbour ids are global (< n_users), so n_users is a safe stride.
    keys = all_rows * n_users + all_ids
    order = np.lexsort((-all_sims, keys))
    keys_sorted = keys[order]
    first = np.ones(keys_sorted.size, dtype=bool)
    first[1:] = keys_sorted[1:] != keys_sorted[:-1]
    pick = order[first]
    all_rows, all_ids, all_sims = all_rows[pick], all_ids[pick], all_sims[pick]

    # Per-row top-k: sort by (row, -sim, id) and keep rank < k.
    order = np.lexsort((all_ids, -all_sims, all_rows))
    all_rows, all_ids, all_sims = (
        all_rows[order],
        all_ids[order],
        all_sims[order],
    )
    boundaries = np.ones(all_rows.size, dtype=bool)
    boundaries[1:] = all_rows[1:] != all_rows[:-1]
    run_starts = np.flatnonzero(boundaries)
    run_lengths = np.diff(np.append(run_starts, all_rows.size))
    ranks = np.arange(all_rows.size) - np.repeat(run_starts, run_lengths)
    keep = ranks < k
    kept_rows, kept_ids, kept_sims, kept_ranks = (
        all_rows[keep],
        all_ids[keep],
        all_sims[keep],
        ranks[keep],
    )

    # Back to the at-rest layout.  The merge ran in int64/float64 —
    # stride keys need the width, and float32 values widen exactly — so
    # narrowing the kept entries loses nothing: every similarity here
    # was already cast to float32 at the score boundary.
    new_sub_neighbors = np.full((active.size, k), MISSING, dtype=ID_DTYPE)
    new_sub_sims = np.full((active.size, k), -np.inf, dtype=SCORE_DTYPE)
    new_sub_neighbors[kept_rows, kept_ranks] = kept_ids
    new_sub_sims[kept_rows, kept_ranks] = kept_sims

    changes = _count_new_edges(
        cur_rows, cur_ids, kept_rows, kept_ids, n_users
    )
    return active, new_sub_neighbors, new_sub_sims, changes


def _count_new_edges(
    old_rows: np.ndarray,
    old_ids: np.ndarray,
    new_rows: np.ndarray,
    new_ids: np.ndarray,
    stride: int,
) -> int:
    """Number of (row, neighbour) edges in new but not in old."""
    if new_rows.size == 0:
        return 0
    new_keys = new_rows * stride + new_ids
    if old_rows.size == 0:
        return int(new_keys.size)
    old_keys = old_rows * stride + old_ids
    return int((~np.isin(new_keys, old_keys)).sum())
