"""KNN graph representation.

A :class:`KnnGraph` is the object every construction algorithm in this
library produces: for each user, up to ``k`` neighbour ids with their
similarities, stored as dense ``(n_users, k)`` arrays.  Rows are kept in
canonical form — valid entries first, sorted by decreasing similarity with
ascending-id tie-breaks — so graphs can be compared entry-wise.

Missing entries (a user with fewer than ``k`` discovered neighbours) are
id ``-1`` with similarity ``-inf``.

Rows are stored at the compact layout (:mod:`repro.layout`): int32
neighbour ids, float32 similarities.  Scores arrive already cast at the
similarity boundary, so narrowing here never changes a value.
"""

from __future__ import annotations

import numpy as np

from ..layout import ID_DTYPE, SCORE_DTYPE

__all__ = ["KnnGraph", "MISSING"]

#: Sentinel id for an absent neighbour slot.
MISSING = -1


class KnnGraph:
    """A directed k-nearest-neighbour graph over users.

    Parameters
    ----------
    neighbors:
        ``(n_users, k)`` int array; ``MISSING`` marks empty slots.
    sims:
        ``(n_users, k)`` float array aligned with ``neighbors``; empty
        slots carry ``-inf``.
    """

    def __init__(self, neighbors: np.ndarray, sims: np.ndarray):
        neighbors = np.asarray(neighbors).astype(ID_DTYPE, copy=False)
        sims = np.asarray(sims).astype(SCORE_DTYPE, copy=False)
        if neighbors.ndim != 2 or neighbors.shape != sims.shape:
            raise ValueError(
                f"neighbors and sims must be equal-shape 2-D arrays, got "
                f"{neighbors.shape} vs {sims.shape}"
            )
        self.neighbors, self.sims = _canonical_rows(neighbors, sims)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_users: int, k: int) -> "KnnGraph":
        """A graph with all slots empty."""
        if n_users <= 0 or k <= 0:
            raise ValueError(
                f"n_users and k must be positive, got {n_users}, {k}"
            )
        neighbors = np.full((n_users, k), MISSING, dtype=ID_DTYPE)
        sims = np.full((n_users, k), -np.inf, dtype=SCORE_DTYPE)
        return cls(neighbors, sims)

    @classmethod
    def from_neighbor_dict(
        cls, mapping: dict[int, list[tuple[int, float]]], n_users: int, k: int
    ) -> "KnnGraph":
        """Build from ``{user: [(neighbor, sim), ...]}`` (test-friendly)."""
        graph = cls.empty(n_users, k)
        neighbors = graph.neighbors.copy()
        sims = graph.sims.copy()
        for user, entries in mapping.items():
            if len(entries) > k:
                raise ValueError(
                    f"user {user} has {len(entries)} entries, more than k={k}"
                )
            for slot, (neighbor, sim) in enumerate(entries):
                neighbors[user, slot] = neighbor
                sims[user, slot] = sim
        return cls(neighbors, sims)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return int(self.neighbors.shape[0])

    @property
    def k(self) -> int:
        return int(self.neighbors.shape[1])

    @property
    def valid_mask(self) -> np.ndarray:
        """Boolean mask of filled slots."""
        return self.neighbors != MISSING

    def degree(self) -> np.ndarray:
        """Number of filled slots per user."""
        return self.valid_mask.sum(axis=1)

    def edge_count(self) -> int:
        """Total number of directed KNN edges."""
        return int(self.valid_mask.sum())

    def is_complete(self) -> bool:
        """True when every user has exactly k neighbours."""
        return bool(np.all(self.valid_mask))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def neighbors_of(self, user: int) -> np.ndarray:
        """Valid neighbour ids of *user*, best first."""
        row = self.neighbors[user]
        return row[row != MISSING]

    def sims_of(self, user: int) -> np.ndarray:
        """Similarities aligned with :meth:`neighbors_of`."""
        row = self.neighbors[user]
        return self.sims[user][row != MISSING]

    def neighbor_sets(self) -> list[set[int]]:
        """Per-user neighbour-id sets (for set-based comparisons)."""
        return [set(self.neighbors_of(u).tolist()) for u in range(self.n_users)]

    def kth_sims(self) -> np.ndarray:
        """The k-th (worst kept) similarity per user; -inf if row not full.

        This is the per-user similarity threshold the paper's recall
        definition compares against.
        """
        return self.sims[:, -1].copy()

    def copy(self) -> "KnnGraph":
        """Deep copy (used by convergence-trace snapshots)."""
        return KnnGraph(self.neighbors.copy(), self.sims.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnnGraph):
            return NotImplemented
        return (
            self.neighbors.shape == other.neighbors.shape
            and bool(np.array_equal(self.neighbors, other.neighbors))
            and bool(
                np.array_equal(
                    # Widen before nan_to_num: -1e300 overflows float32.
                    np.nan_to_num(
                        self.sims.astype(np.float64), neginf=-1e300
                    ),
                    np.nan_to_num(
                        other.sims.astype(np.float64), neginf=-1e300
                    ),
                )
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KnnGraph(n_users={self.n_users}, k={self.k}, "
            f"edges={self.edge_count()})"
        )


def _canonical_rows(
    neighbors: np.ndarray, sims: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort each row by (-sim, neighbor id) with MISSING entries last."""
    sims = sims.copy()
    neighbors = neighbors.copy()
    sims[neighbors == MISSING] = -np.inf
    n_users, k = neighbors.shape
    # Sort key: missing last, then sim descending, then id ascending.
    sort_ids = np.where(
        neighbors == MISSING, np.iinfo(neighbors.dtype).max, neighbors
    )
    order = np.lexsort((sort_ids, -sims), axis=1)
    rows = np.arange(n_users)[:, None]
    return neighbors[rows, order], sims[rows, order]
