"""KNN graph quality metrics: the paper's recall (Equations 2-4).

The paper measures approximation quality as recall against a brute-force
exact graph.  Because exact KNN neighbourhoods are generally *not unique*
(ties in similarity are common on sparse binary data), Equation (3) defines
the recall of a user as the best overlap against *any* optimal
neighbourhood.  Operationally — and this is how the authors describe their
measurement in Section IV-C — this amounts to comparing *similarity
values*: an approximate neighbour counts as a hit when its similarity is at
least the k-th best exact similarity.
"""

from __future__ import annotations

import numpy as np

from .knn_graph import MISSING, KnnGraph

__all__ = [
    "per_user_recall",
    "recall",
    "strict_recall",
    "average_similarity",
]

#: Tolerance when comparing floating-point similarities for tie handling.
_TOL = 1e-9


def per_user_recall(
    approx: KnnGraph, exact: KnnGraph, tol: float = _TOL
) -> np.ndarray:
    """Equation (3) recall for every user, via similarity-value comparison.

    A filled slot in *approx* counts as a hit when its similarity is within
    *tol* of (or above) the user's worst exact similarity.  Hits are capped
    at the exact row's size, so the result lies in [0, 1] even in
    pathological tie plateaus.

    When the exact graph is complete (the brute-force case, and the only
    case the paper encounters) this is exactly Equation (3) computed on
    similarity values.  The definition additionally extends to partial
    exact rows: the denominator becomes the number of exact neighbours the
    user actually has, and a user with no exact neighbours scores 1.0
    (there was nothing to find).
    """
    _check_comparable(approx, exact)
    exact_counts = exact.degree()  # neighbours the exact graph holds
    # Threshold: the worst similarity among the exact row's valid entries
    # (rows are canonical, so that is the last valid slot).
    thresholds = np.full(exact.n_users, -np.inf)
    full = exact_counts > 0
    last_valid = np.maximum(exact_counts - 1, 0)
    thresholds[full] = exact.sims[np.arange(exact.n_users), last_valid][full]
    valid = approx.neighbors != MISSING
    hits = (valid & (approx.sims >= thresholds[:, None] - tol)).sum(axis=1)
    out = np.ones(exact.n_users, dtype=np.float64)
    out[full] = np.minimum(hits[full], exact_counts[full]) / exact_counts[full]
    return out


def recall(approx: KnnGraph, exact: KnnGraph, tol: float = _TOL) -> float:
    """Equation (4): mean per-user recall over all users."""
    return float(per_user_recall(approx, exact, tol).mean())


def strict_recall(approx: KnnGraph, exact: KnnGraph) -> float:
    """Equation (2) recall: exact neighbour-*id* overlap, ignoring ties.

    Lower-bounds :func:`recall`; useful in tests and when the exact KNN is
    known to be unique.
    """
    _check_comparable(approx, exact)
    hits = 0
    for user in range(exact.n_users):
        exact_ids = set(exact.neighbors_of(user).tolist())
        approx_ids = set(approx.neighbors_of(user).tolist())
        hits += len(exact_ids & approx_ids)
    return hits / (exact.n_users * exact.k)


def average_similarity(graph: KnnGraph) -> float:
    """Mean similarity over filled slots (0.0 for an empty graph).

    A tie-insensitive quality proxy: for a fixed k, higher is better, and
    the exact graph maximises it.
    """
    mask = graph.valid_mask
    if not mask.any():
        return 0.0
    return float(graph.sims[mask].mean())


def _check_comparable(approx: KnnGraph, exact: KnnGraph) -> None:
    if approx.n_users != exact.n_users:
        raise ValueError(
            f"graphs cover different user counts: {approx.n_users} vs "
            f"{exact.n_users}"
        )
    if approx.k != exact.k:
        raise ValueError(
            f"graphs have different k: {approx.k} vs {exact.k}"
        )
