"""KNN graph analytics.

Descriptive statistics of a constructed graph: in-degree concentration
(popular neighbours), edge reciprocity (symmetric neighbourhoods),
similarity-by-rank profiles, and weak connectivity.  These are the
standard sanity checks one runs on a KNN graph before shipping it to a
recommender, and they power the ``graph-stats`` CLI command.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .knn_graph import MISSING, KnnGraph

__all__ = [
    "GraphStats",
    "analyze",
    "in_degrees",
    "reciprocity",
    "similarity_by_rank",
    "weakly_connected_components",
]


def in_degrees(graph: KnnGraph) -> np.ndarray:
    """How many users point at each user (length ``n_users``)."""
    valid = graph.neighbors[graph.neighbors != MISSING]
    return np.bincount(valid, minlength=graph.n_users)


def reciprocity(graph: KnnGraph) -> float:
    """Fraction of directed KNN edges whose reverse edge also exists.

    Similarity is symmetric, so high reciprocity indicates the graph is
    close to its exact fixed point; random graphs sit near ``k / n``.
    Returns 0.0 for an edgeless graph.
    """
    edges = set()
    for user in range(graph.n_users):
        for neighbor in graph.neighbors_of(user):
            edges.add((user, int(neighbor)))
    if not edges:
        return 0.0
    mutual = sum((b, a) in edges for a, b in edges)
    return mutual / len(edges)


def similarity_by_rank(graph: KnnGraph) -> np.ndarray:
    """Mean similarity at each neighbourhood rank (best slot first).

    A well-formed KNN graph is non-increasing in rank.  Slots that are
    empty for a user are excluded from that rank's mean; ranks empty for
    every user yield NaN.
    """
    sims = np.where(graph.valid_mask, graph.sims, np.nan)
    with np.errstate(invalid="ignore"):
        return np.nanmean(sims, axis=0)


def weakly_connected_components(graph: KnnGraph) -> list[int]:
    """Sizes of weakly-connected components, largest first.

    Union-find over the undirected version of the KNN edges; isolated
    users form singleton components.
    """
    parent = np.arange(graph.n_users, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for user in range(graph.n_users):
        for neighbor in graph.neighbors_of(user):
            ru, rv = find(user), find(int(neighbor))
            if ru != rv:
                parent[rv] = ru
    roots = np.array([find(int(u)) for u in range(graph.n_users)])
    _, counts = np.unique(roots, return_counts=True)
    return sorted(counts.tolist(), reverse=True)


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one KNN graph."""

    n_users: int
    k: int
    edges: int
    completeness: float
    reciprocity: float
    max_in_degree: int
    mean_similarity: float
    largest_component: int
    n_components: int

    def as_rows(self) -> list[list]:
        """Key/value rows for report rendering."""
        return [
            ["users", self.n_users],
            ["k", self.k],
            ["edges", self.edges],
            ["completeness", f"{self.completeness:.1%}"],
            ["reciprocity", f"{self.reciprocity:.1%}"],
            ["max in-degree", self.max_in_degree],
            ["mean similarity", round(self.mean_similarity, 4)],
            ["largest component", self.largest_component],
            ["#components", self.n_components],
        ]


def analyze(graph: KnnGraph) -> GraphStats:
    """Compute a :class:`GraphStats` summary."""
    components = weakly_connected_components(graph)
    mask = graph.valid_mask
    mean_sim = float(graph.sims[mask].mean()) if mask.any() else 0.0
    return GraphStats(
        n_users=graph.n_users,
        k=graph.k,
        edges=graph.edge_count(),
        completeness=graph.edge_count() / (graph.n_users * graph.k),
        reciprocity=reciprocity(graph),
        max_in_degree=int(in_degrees(graph).max()),
        mean_similarity=mean_sim,
        largest_component=components[0] if components else 0,
        n_components=len(components),
    )
