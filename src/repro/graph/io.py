"""KNN graph persistence and interchange.

Graphs are expensive to build (the whole point of the paper), so users
need to keep them: ``save_graph``/``load_graph`` round-trip through a
single compressed ``.npz``; ``write_edge_list`` emits the
``user neighbor similarity`` text format common in graph tooling; and
``to_networkx`` hands the graph to `networkx` for downstream analysis.

Format version 2 stores the rows CSR-packed (``indptr``/``ids``/
``sims`` holding only the present entries, int32/float32) instead of
the version-1 dense ``(n, k)`` int64/float64 padding — partially filled
rows cost nothing at rest.  :func:`load_graph` reads both versions;
version-1 similarities narrow to float32 exactly, because the historical
writer stored the same pre-cast float64 values the score boundary now
rounds (see :mod:`repro.layout`).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..layout import pack_rows, unpack_rows
from .knn_graph import KnnGraph

__all__ = [
    "save_graph",
    "load_graph",
    "graph_to_arrays",
    "graph_from_arrays",
    "pack_graph_arrays",
    "unpack_graph_arrays",
    "write_edge_list",
    "to_networkx",
]

_FORMAT_VERSION = 2
_READABLE_VERSIONS = frozenset({1, 2})


def graph_to_arrays(graph: KnnGraph) -> dict[str, np.ndarray]:
    """*graph* as plain dense arrays, embeddable in larger archives.

    Tombstone rows (a removed user's all-``MISSING`` row) and 0-user
    graphs round-trip exactly.  Composite formats that want the packed
    at-rest form instead use :func:`pack_graph_arrays`.
    """
    return {"neighbors": graph.neighbors, "sims": graph.sims}


def graph_from_arrays(arrays) -> KnnGraph:
    """Inverse of :func:`graph_to_arrays` (accepts any array mapping)."""
    return KnnGraph(
        np.asarray(arrays["neighbors"]), np.asarray(arrays["sims"])
    )


def pack_graph_arrays(graph: KnnGraph) -> dict[str, np.ndarray]:
    """*graph* as CSR-packed arrays (the at-rest archive payload)."""
    indptr, ids, sims = pack_rows(graph.neighbors, graph.sims)
    return {
        "graph_indptr": indptr,
        "graph_ids": ids,
        "graph_sims": sims,
        "graph_k": np.int64(graph.k),
    }


def unpack_graph_arrays(arrays) -> KnnGraph:
    """Inverse of :func:`pack_graph_arrays` (accepts any array mapping)."""
    neighbors, sims = unpack_rows(
        np.asarray(arrays["graph_indptr"]),
        np.asarray(arrays["graph_ids"]),
        np.asarray(arrays["graph_sims"]),
        int(arrays["graph_k"]),
    )
    return KnnGraph(neighbors, sims)


def save_graph(graph: KnnGraph, path: str | Path) -> Path:
    """Write *graph* to a compressed ``.npz`` file (format version 2)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        **pack_graph_arrays(graph),
    )
    # np.savez appends .npz when missing; report the real location.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_graph(path: str | Path) -> KnnGraph:
    """Load a graph written by :func:`save_graph` (either version)."""
    with np.load(Path(path)) as archive:
        version = int(archive["version"])
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported graph file version {version} "
                f"(this library writes version {_FORMAT_VERSION} and "
                f"reads {sorted(_READABLE_VERSIONS)})"
            )
        if version == 1:
            return graph_from_arrays(archive)
        return unpack_graph_arrays(archive)


def write_edge_list(graph: KnnGraph, path: str | Path) -> Path:
    """Write ``user neighbor similarity`` lines (one directed edge each)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# knn graph: {graph.n_users} users, k={graph.k}\n")
        for user in range(graph.n_users):
            for neighbor, sim in zip(
                graph.neighbors_of(user), graph.sims_of(user)
            ):
                handle.write(f"{user}\t{neighbor}\t{sim:.9g}\n")
    return path


def to_networkx(graph: KnnGraph):
    """Convert to a directed ``networkx`` graph with ``weight`` attributes.

    Users with no neighbours still appear as isolated nodes, so node
    counts are preserved.
    """
    import networkx as nx

    out = nx.DiGraph()
    out.add_nodes_from(range(graph.n_users))
    for user in range(graph.n_users):
        for neighbor, sim in zip(graph.neighbors_of(user), graph.sims_of(user)):
            out.add_edge(user, int(neighbor), weight=float(sim))
    return out
