"""KNN graph persistence and interchange.

Graphs are expensive to build (the whole point of the paper), so users
need to keep them: ``save_graph``/``load_graph`` round-trip through a
single compressed ``.npz``; ``write_edge_list`` emits the
``user neighbor similarity`` text format common in graph tooling; and
``to_networkx`` hands the graph to `networkx` for downstream analysis.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .knn_graph import KnnGraph

__all__ = [
    "save_graph",
    "load_graph",
    "graph_to_arrays",
    "graph_from_arrays",
    "write_edge_list",
    "to_networkx",
]

_FORMAT_VERSION = 1


def graph_to_arrays(graph: KnnGraph) -> dict[str, np.ndarray]:
    """*graph* as plain arrays, embeddable in larger archives.

    The payload :func:`save_graph` writes, factored out so composite
    formats (e.g. :mod:`repro.persistence` checkpoints) can bundle a
    graph without a second file.  Tombstone rows (a removed user's
    all-``MISSING`` row) and 0-user graphs round-trip exactly.
    """
    return {"neighbors": graph.neighbors, "sims": graph.sims}


def graph_from_arrays(arrays) -> KnnGraph:
    """Inverse of :func:`graph_to_arrays` (accepts any array mapping)."""
    return KnnGraph(
        np.asarray(arrays["neighbors"]), np.asarray(arrays["sims"])
    )


def save_graph(graph: KnnGraph, path: str | Path) -> Path:
    """Write *graph* to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        **graph_to_arrays(graph),
    )
    # np.savez appends .npz when missing; report the real location.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_graph(path: str | Path) -> KnnGraph:
    """Load a graph written by :func:`save_graph`."""
    with np.load(Path(path)) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph file version {version} "
                f"(this library writes version {_FORMAT_VERSION})"
            )
        return graph_from_arrays(archive)


def write_edge_list(graph: KnnGraph, path: str | Path) -> Path:
    """Write ``user neighbor similarity`` lines (one directed edge each)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# knn graph: {graph.n_users} users, k={graph.k}\n")
        for user in range(graph.n_users):
            for neighbor, sim in zip(
                graph.neighbors_of(user), graph.sims_of(user)
            ):
                handle.write(f"{user}\t{neighbor}\t{sim:.9g}\n")
    return path


def to_networkx(graph: KnnGraph):
    """Convert to a directed ``networkx`` graph with ``weight`` attributes.

    Users with no neighbours still appear as isolated nodes, so node
    counts are preserved.
    """
    import networkx as nx

    out = nx.DiGraph()
    out.add_nodes_from(range(graph.n_users))
    for user in range(graph.n_users):
        for neighbor, sim in zip(graph.neighbors_of(user), graph.sims_of(user)):
            out.add_edge(user, int(neighbor), weight=float(sim))
    return out
