"""Spearman rank correlation between RCS order and true-metric order.

Figure 7 of the paper: for users whose RCS is longer than the termination
cut-off, correlate the RCS ranking (by shared-item count) with the ranking
of the same candidates under the full metric (cosine or Jaccard).  High
correlation means truncating the RCS tail rarely discards good candidates.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..core.rcs import RankedCandidateSets
from ..similarity.engine import SimilarityEngine

__all__ = ["spearman_rank_correlation", "rcs_metric_correlations"]


def spearman_rank_correlation(
    scores_a: np.ndarray, scores_b: np.ndarray
) -> float:
    """Spearman's rho between two score vectors (NaN-safe degenerate cases).

    Returns 1.0 when either vector is constant and both order the
    candidates identically trivially (zero variance); the paper's plots
    only include users with enough candidates for this not to matter, but
    property tests exercise the corners.
    """
    scores_a = np.asarray(scores_a, dtype=np.float64)
    scores_b = np.asarray(scores_b, dtype=np.float64)
    if scores_a.shape != scores_b.shape:
        raise ValueError(
            f"score vectors differ in length: {scores_a.size} vs {scores_b.size}"
        )
    if scores_a.size < 2:
        return 1.0
    if np.ptp(scores_a) == 0 or np.ptp(scores_b) == 0:
        return 1.0
    rho, _ = stats.spearmanr(scores_a, scores_b)
    if np.isnan(rho):
        return 1.0
    return float(rho)


def rcs_metric_correlations(
    engine: SimilarityEngine,
    rcs: RankedCandidateSets,
    min_size: int,
    max_users: int | None = None,
) -> list[tuple[int, int, float]]:
    """Figure 7 data: ``(user, |RCS_u|, spearman rho)`` per qualifying user.

    For each user with ``|RCS_u| >= min_size``, ranks her RCS candidates by
    shared-item count (the counting-phase order) and by the engine's metric,
    and reports Spearman's correlation between the two orders.  The
    similarity evaluations run outside any counter/timer accounting
    concern — this is offline analysis, not construction.
    """
    if rcs.counts is None:
        raise ValueError(
            "Figure 7 needs RCS multiplicities; build the RCS with strip=False"
        )
    sizes = rcs.sizes()
    qualifying = np.flatnonzero(sizes >= min_size)
    if max_users is not None:
        qualifying = qualifying[:max_users]
    results = []
    for user in qualifying:
        candidates = rcs.candidates_of(int(user))
        counts = rcs.counts_of(int(user)).astype(np.float64)
        us = np.full(candidates.size, user, dtype=np.int64)
        sims = engine.metric.score_batch(engine.index, us, candidates)
        rho = spearman_rank_correlation(counts, sims)
        results.append((int(user), int(candidates.size), rho))
    return results
