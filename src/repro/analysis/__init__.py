"""Offline analysis helpers: CCDFs and rank correlations."""

from .ccdf import ccdf, ccdf_at
from .spearman import rcs_metric_correlations, spearman_rank_correlation

__all__ = [
    "ccdf",
    "ccdf_at",
    "rcs_metric_correlations",
    "spearman_rank_correlation",
]
