"""Complementary cumulative distribution functions (Figures 4 and 6)."""

from __future__ import annotations

import numpy as np

__all__ = ["ccdf", "ccdf_at"]


def ccdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CCDF of *values*.

    Returns ``(xs, ps)`` with ``ps[j] = P(X >= xs[j])`` over the distinct
    values ``xs`` in increasing order — the form the paper plots in
    Figures 4 and 6.
    """
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("cannot compute the CCDF of an empty sample")
    xs, counts = np.unique(values, return_counts=True)
    # P(X >= x) = 1 - P(X < x); cumulative counts of values strictly below.
    below = np.concatenate([[0], np.cumsum(counts)[:-1]])
    ps = 1.0 - below / values.size
    return xs, ps


def ccdf_at(values: np.ndarray, threshold: float) -> float:
    """``P(X >= threshold)`` for the empirical distribution of *values*.

    Table VI's "% users with |RCS_u| > |RCS|cut" is
    ``ccdf_at(sizes, cut + 1)`` for integer sizes.
    """
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("cannot evaluate the CCDF of an empty sample")
    return float((values >= threshold).mean())
