"""Measurement substrate: similarity counters, phase timers, traces."""

from .counters import SimilarityCounter, scan_rate
from .timers import PHASES, PhaseTimer
from .trace import ConvergenceTrace, IterationRecord

__all__ = [
    "PHASES",
    "ConvergenceTrace",
    "IterationRecord",
    "PhaseTimer",
    "SimilarityCounter",
    "scan_rate",
]
