"""Measurement substrate: similarity counters, phase timers, traces."""

from .counters import MaintenanceCounter, SimilarityCounter, scan_rate
from .timers import PHASES, PhaseTimer
from .trace import ConvergenceTrace, IterationRecord

__all__ = [
    "PHASES",
    "ConvergenceTrace",
    "IterationRecord",
    "MaintenanceCounter",
    "PhaseTimer",
    "SimilarityCounter",
    "scan_rate",
]
