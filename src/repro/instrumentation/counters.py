"""Similarity-evaluation counting.

The paper's central cost metric is the *scan rate* (Section IV-C): the
number of similarity evaluations performed, normalised by the number of
possible user pairs ``|U| * (|U| - 1) / 2``.  Every similarity evaluation in
this library flows through a :class:`SimilarityCounter`, so scan rates are
measured, never estimated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimilarityCounter", "scan_rate"]


@dataclass
class SimilarityCounter:
    """Counts similarity evaluations (and nothing else).

    ``evaluations`` is the raw count; :meth:`scan_rate` normalises it the
    way the paper does.  ``checkpoints`` lets convergence traces snapshot
    the counter between iterations.
    """

    evaluations: int = 0
    checkpoints: list[int] = field(default_factory=list)

    def add(self, count: int = 1) -> None:
        """Record *count* similarity evaluations."""
        if count < 0:
            raise ValueError(f"cannot add a negative count ({count})")
        self.evaluations += count

    def checkpoint(self) -> int:
        """Snapshot the current total (e.g. at the end of an iteration)."""
        self.checkpoints.append(self.evaluations)
        return self.evaluations

    def reset(self) -> None:
        """Zero the counter and forget checkpoints."""
        self.evaluations = 0
        self.checkpoints.clear()

    def scan_rate(self, n_users: int) -> float:
        """Scan rate as a fraction: ``evaluations / (n(n-1)/2)``."""
        return scan_rate(self.evaluations, n_users)


def scan_rate(evaluations: int, n_users: int) -> float:
    """The paper's scan-rate normalisation (Section IV-C).

    ``scanrate = #(similarity evaluations) / (|U| * (|U| - 1) / 2)``
    """
    if n_users < 2:
        return 0.0
    possible_pairs = n_users * (n_users - 1) / 2
    return evaluations / possible_pairs
