"""Similarity-evaluation counting.

The paper's central cost metric is the *scan rate* (Section IV-C): the
number of similarity evaluations performed, normalised by the number of
possible user pairs ``|U| * (|U| - 1) / 2``.  Every similarity evaluation in
this library flows through a :class:`SimilarityCounter`, so scan rates are
measured, never estimated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MaintenanceCounter", "SimilarityCounter", "scan_rate"]


@dataclass
class MaintenanceCounter:
    """Counts the per-user work of incremental maintenance.

    The streaming subsystem's claim is that a refresh costs work
    proportional to the *dirty set*, not to the dataset.  Similarity
    evaluations are already counted by :class:`SimilarityCounter`; this
    counter covers the remaining full-dataset floors the incremental
    paths eliminate:

    * ``rows_materialized`` — CSR rows rebuilt from live profiles when a
      :class:`~repro.datasets.mutable.MutableBipartiteBuilder` snapshots
      (a full materialisation charges ``n_users``, an incremental patch
      only the dirty rows).
    * ``index_users_recomputed`` — users whose norms / profile sizes /
      metric caches a :class:`~repro.similarity.base.ProfileIndex`
      (re)computed (a cold build charges ``n_users``, an incremental
      ``update`` only the dirty users).

    The mode tallies (``snapshots_full`` vs ``snapshots_incremental``,
    ``index_builds_full`` vs ``index_updates_incremental``) record which
    path ran, so benchmarks can assert the fast paths actually engaged.
    ``candidate_cache_hits`` / ``candidate_cache_misses`` account the
    streaming layer's per-user candidate-set cache.

    The ``scheduler_*`` tallies account the bounded-staleness scheduler
    (:mod:`repro.scheduling`): scheduled refresh passes run, dirty
    users deferred past a pass (one user deferred across three passes
    counts three), backpressure signals raised by admission control,
    and events rejected under the ``"reject"`` backpressure mode.
    """

    rows_materialized: int = 0
    index_users_recomputed: int = 0
    snapshots_full: int = 0
    snapshots_incremental: int = 0
    index_builds_full: int = 0
    index_updates_incremental: int = 0
    candidate_cache_hits: int = 0
    candidate_cache_misses: int = 0
    scheduler_passes: int = 0
    scheduler_deferrals: int = 0
    scheduler_backpressure: int = 0
    scheduler_events_rejected: int = 0

    def reset(self) -> None:
        """Zero every tally."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


@dataclass
class SimilarityCounter:
    """Counts similarity evaluations (and nothing else).

    ``evaluations`` is the raw count; :meth:`scan_rate` normalises it the
    way the paper does.  ``checkpoints`` lets convergence traces snapshot
    the counter between iterations.
    """

    evaluations: int = 0
    checkpoints: list[int] = field(default_factory=list)

    def add(self, count: int = 1) -> None:
        """Record *count* similarity evaluations."""
        if count < 0:
            raise ValueError(f"cannot add a negative count ({count})")
        self.evaluations += count

    def checkpoint(self) -> int:
        """Snapshot the current total (e.g. at the end of an iteration)."""
        self.checkpoints.append(self.evaluations)
        return self.evaluations

    def reset(self) -> None:
        """Zero the counter and forget checkpoints."""
        self.evaluations = 0
        self.checkpoints.clear()

    def scan_rate(self, n_users: int) -> float:
        """Scan rate as a fraction: ``evaluations / (n(n-1)/2)``."""
        return scan_rate(self.evaluations, n_users)


def scan_rate(evaluations: int, n_users: int) -> float:
    """The paper's scan-rate normalisation (Section IV-C).

    ``scanrate = #(similarity evaluations) / (|U| * (|U| - 1) / 2)``
    """
    if n_users < 2:
        return 0.0
    possible_pairs = n_users * (n_users - 1) / 2
    return evaluations / possible_pairs
