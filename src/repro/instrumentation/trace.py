"""Per-iteration convergence traces.

Figure 8 of the paper plots, for each algorithm, the recall of the KNN
graph under construction and the number of graph updates as functions of
the cumulative scan rate.  :class:`ConvergenceTrace` records one
:class:`IterationRecord` per refinement iteration so those curves can be
regenerated after a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationRecord", "ConvergenceTrace"]


@dataclass(frozen=True)
class IterationRecord:
    """State of the construction at the end of one iteration.

    ``updates`` is the number of KNN heap changes performed during the
    iteration (the paper's variable ``c``); ``evaluations`` is the
    cumulative similarity-evaluation count; ``recall`` is filled in lazily
    by :meth:`ConvergenceTrace.attach_recalls` when an exact graph is
    available (computing it inline would perturb wall-times).
    """

    iteration: int
    evaluations: int
    updates: int
    recall: float | None = None
    snapshot: object | None = None


@dataclass
class ConvergenceTrace:
    """Sequence of per-iteration records for one algorithm run."""

    records: list[IterationRecord] = field(default_factory=list)
    keep_snapshots: bool = False

    def record(
        self,
        iteration: int,
        evaluations: int,
        updates: int,
        snapshot: object | None = None,
    ) -> None:
        """Append one iteration record (snapshot kept only if enabled)."""
        self.records.append(
            IterationRecord(
                iteration=iteration,
                evaluations=evaluations,
                updates=updates,
                snapshot=snapshot if self.keep_snapshots else None,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    @property
    def iterations(self) -> int:
        """Number of recorded iterations."""
        return len(self.records)

    def scan_rates(self, n_users: int) -> np.ndarray:
        """Cumulative scan rate after each iteration."""
        from .counters import scan_rate

        return np.array(
            [scan_rate(r.evaluations, n_users) for r in self.records]
        )

    def updates_per_user(self, n_users: int) -> np.ndarray:
        """Average graph updates per user in each iteration (Fig. 8b)."""
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        return np.array([r.updates / n_users for r in self.records])

    def recalls(self) -> np.ndarray:
        """Recall after each iteration (NaN where not attached)."""
        return np.array(
            [np.nan if r.recall is None else r.recall for r in self.records]
        )

    def attach_recalls(self, recalls: list[float]) -> None:
        """Fill in the recall column (one value per recorded iteration)."""
        if len(recalls) != len(self.records):
            raise ValueError(
                f"expected {len(self.records)} recall values, got {len(recalls)}"
            )
        self.records = [
            IterationRecord(
                iteration=record.iteration,
                evaluations=record.evaluations,
                updates=record.updates,
                recall=float(value),
                snapshot=record.snapshot,
            )
            for record, value in zip(self.records, recalls)
        ]

    def snapshots(self) -> list[object]:
        """All retained snapshots, in iteration order."""
        return [r.snapshot for r in self.records if r.snapshot is not None]
