"""Per-phase wall-clock timing.

Figures 1 and 5 of the paper break each algorithm's wall-time into three
activities (Section IV-C):

* ``preprocessing`` — loading the dataset, building user profiles, and for
  KIFF building item profiles and running the counting phase;
* ``candidate selection`` — constructing candidate neighbourhoods (RCS
  pops for KIFF, neighbour-of-neighbour joins for the greedy baselines);
* ``similarity`` — evaluating the similarity metric on candidate pairs.

:class:`PhaseTimer` accumulates wall-time per named phase through a context
manager, so the breakdown is additive and nesting mistakes fail loudly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["PhaseTimer", "PHASES"]

#: Canonical phase names, in the order the paper's figures stack them.
PHASES = ("preprocessing", "candidate_selection", "similarity")


@dataclass
class PhaseTimer:
    """Accumulates wall-clock seconds into named phases.

    Use :meth:`phase` as a context manager::

        timer = PhaseTimer()
        with timer.phase("similarity"):
            sims = engine.batch(us, vs)

    Phases may be entered many times; durations accumulate.  Re-entering a
    phase while it is already active raises, because that would double
    count.
    """

    seconds: dict[str, float] = field(default_factory=dict)
    _active: list[str] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str):
        """Time the enclosed block under *name*."""
        if name in self._active:
            raise RuntimeError(f"phase {name!r} is already active")
        self._active.append(name)
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self._active.remove(name)
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            # A nested phase's time belongs only to the innermost phase:
            # subtract it from any enclosing active phases by crediting
            # them negative elapsed time when they close.  Simpler: treat
            # phases as exclusive by subtracting from the parent now.
            if self._active:
                parent = self._active[-1]
                self.seconds[parent] = self.seconds.get(parent, 0.0) - elapsed

    def get(self, name: str) -> float:
        """Accumulated seconds for *name* (0.0 if never entered)."""
        return self.seconds.get(name, 0.0)

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Each phase's share of the total (empty dict if total is 0)."""
        total = self.total
        if total <= 0:
            return {}
        return {name: value / total for name, value in self.seconds.items()}

    def merge(self, other: "PhaseTimer") -> "PhaseTimer":
        """Return a new timer with both timers' phases summed."""
        merged = PhaseTimer()
        for source in (self, other):
            for name, value in source.seconds.items():
                merged.seconds[name] = merged.seconds.get(name, 0.0) + value
        return merged

    def as_breakdown(self) -> dict[str, float]:
        """Seconds per canonical phase, including zero entries."""
        return {name: self.get(name) for name in PHASES}
