"""Version-consistent queries against pinned graph snapshots.

Two query shapes, both pure functions of one :class:`GraphSnapshot`:

* :func:`neighbors_on` — a user's KNN row (ids + similarities);
* :func:`recommend_on` — user-based collaborative filtering: score the
  items a user's neighbours rated highly, weighted by neighbour
  similarity, excluding items the user has already rated.

The exclusion set is built from **the snapshot's own dataset view**,
not from whatever split the index was trained on.  The historical
``examples/movie_recommendations.py`` version froze its seen-items set
at the initial training matrix, so an item rated via a later streamed
event could be recommended straight back to the user; here the
exclusion travels with the snapshot, so a recommendation is consistent
with exactly the graph version stamped on it.

:class:`Recommender` wraps an index (flat or sharded) and pins one
snapshot per query — or serves many queries against one explicit pin,
which is what the batch server does.
"""

from __future__ import annotations

from dataclasses import dataclass

from .snapshot import GraphSnapshot

__all__ = [
    "NeighborReply",
    "Recommendation",
    "Recommender",
    "neighbors_on",
    "recommend_on",
]


@dataclass(frozen=True)
class NeighborReply:
    """One answered neighbour lookup, stamped with its graph version."""

    user: int
    version: int
    neighbors: tuple[int, ...]
    sims: tuple[float, ...]


@dataclass(frozen=True)
class Recommendation:
    """One answered top-N query, stamped with its graph version."""

    user: int
    version: int
    items: tuple[int, ...]
    scores: tuple[float, ...]


def _check_user(snapshot: GraphSnapshot, user: int) -> None:
    if not 0 <= user < snapshot.n_users:
        raise IndexError(
            f"user id {user} out of range [0, {snapshot.n_users}) at "
            f"snapshot version {snapshot.version}"
        )


def neighbors_on(snapshot: GraphSnapshot, user: int) -> NeighborReply:
    """*user*'s KNN row on *snapshot* (``MISSING`` slots dropped)."""
    user = int(user)
    _check_user(snapshot, user)
    # Slice the packed rows directly: O(row) per query, instead of
    # materialising the dense (n_users, k) arrays the property rebuilds.
    return NeighborReply(
        user=user,
        version=snapshot.version,
        neighbors=tuple(int(n) for n in snapshot.neighbors_of(user)),
        sims=tuple(float(s) for s in snapshot.sims_of(user)),
    )


def recommend_on(
    snapshot: GraphSnapshot,
    user: int,
    top_n: int = 10,
    min_neighbor_rating: float = 3.5,
) -> Recommendation:
    """Top-N unseen items for *user*, scored on *snapshot*.

    Classic user-based CF (the KIFF paper's motivating application):
    each positive-similarity neighbour contributes ``sim * rating`` for
    every item she rated at ``min_neighbor_rating`` or above that the
    querying user has not rated *in this snapshot's dataset*.  Ties
    break by item id ascending, so responses are bit-reproducible for
    the concurrent-reader parity suite.
    """
    user = int(user)
    _check_user(snapshot, user)
    dataset = snapshot.dataset
    seen = set(dataset.user_items(user).tolist())
    scores: dict[int, float] = {}
    row = snapshot.neighbors_of(user)
    row_sims = snapshot.sims_of(user)
    for neighbor, sim in zip(row.tolist(), row_sims.tolist()):
        if sim <= 0.0:
            continue
        items = dataset.user_items(neighbor)
        ratings = dataset.user_ratings(neighbor)
        for item, rating in zip(items.tolist(), ratings.tolist()):
            if item in seen or rating < min_neighbor_rating:
                continue
            scores[item] = scores.get(item, 0.0) + sim * rating
    ranked = sorted(scores.items(), key=lambda entry: (-entry[1], entry[0]))
    del ranked[top_n:]
    return Recommendation(
        user=user,
        version=snapshot.version,
        items=tuple(item for item, _ in ranked),
        scores=tuple(score for _, score in ranked),
    )


class Recommender:
    """Serve neighbour / top-N queries over an index's snapshots.

    Wraps a :class:`~repro.streaming.DynamicKnnIndex` (or sharded
    subclass).  Each query pins the latest published snapshot unless
    the caller passes an explicit one — batch callers pin once and
    reuse it, so every answer in the batch reports the same version.

    Reads never block the writer: ``apply()``/``refresh()`` may run
    concurrently on another thread, and a pinned snapshot stays
    bit-stable regardless.
    """

    def __init__(
        self,
        index,
        top_n: int = 10,
        min_neighbor_rating: float = 3.5,
    ):
        self.index = index
        self.top_n = int(top_n)
        self.min_neighbor_rating = float(min_neighbor_rating)

    def pin(self) -> GraphSnapshot:
        """Pin the index's latest published snapshot."""
        return self.index.pin()

    def neighbors(
        self, user: int, snapshot: GraphSnapshot | None = None
    ) -> NeighborReply:
        """*user*'s KNN row (on *snapshot*, or a fresh pin)."""
        if snapshot is None:
            snapshot = self.pin()
        return neighbors_on(snapshot, user)

    def recommend(
        self,
        user: int,
        top_n: int | None = None,
        snapshot: GraphSnapshot | None = None,
    ) -> Recommendation:
        """Top-N items for *user* (on *snapshot*, or a fresh pin)."""
        if snapshot is None:
            snapshot = self.pin()
        return recommend_on(
            snapshot,
            user,
            top_n=self.top_n if top_n is None else int(top_n),
            min_neighbor_rating=self.min_neighbor_rating,
        )
