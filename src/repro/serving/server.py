"""The ``repro serve`` asyncio batch server.

Protocol: newline-delimited JSON over TCP, one request object per line,
one reply object per line, answered in request order per connection::

    {"op": "neighbors", "user": 12}
    {"op": "recommend", "user": 12, "top_n": 5}
    {"op": "stats"}
    {"op": "rebalance", "shards": 4, "moves": [[12, 0]]}

Replies carry ``"ok"`` plus either the payload or an ``"error"``
string; every data reply is stamped with the graph ``version`` it was
computed from::

    {"ok": true, "op": "neighbors", "user": 12, "version": 87,
     "neighbors": [3, 9], "sims": [0.81, 0.77]}

Batching: every connection feeds a shared queue; a single dispatcher
drains whatever requests are waiting into one micro-batch, pins **one**
snapshot, and answers the whole batch against it.  Pipelined bursts
(many lines in one TCP write) therefore coalesce into a handful of
pins, every reply in a batch reports the same version, and readers
never block on the writer thread running ``apply()``/``refresh()``
concurrently — the snapshot swap is the only synchronisation point.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

from .recommend import Recommender
from .snapshot import GraphSnapshot

__all__ = ["KnnServer"]


class KnnServer:
    """Serve an index's snapshots over newline-delimited JSON TCP.

    Usage (the CLI's ``repro serve`` wraps exactly this)::

        server = KnnServer(index, host="127.0.0.1", port=0)
        await server.start()
        host, port = server.address
        ...
        await server.stop()

    ``stop()`` shuts the listener and dispatcher down but does **not**
    close the index — the caller owns its lifecycle (and is expected to
    ``index.close()`` in a ``finally``).
    """

    def __init__(
        self,
        index,
        host: str = "127.0.0.1",
        port: int = 0,
        top_n: int = 10,
        min_neighbor_rating: float = 3.5,
        max_batch: int = 256,
        scheduler=None,
        mutate_lock=None,
    ):
        self.index = index
        #: Optional :class:`~repro.scheduling.RefreshScheduler` driving
        #: the index's refreshes; when given, the ``stats`` op folds its
        #: state in (queue depth, deferred users, backpressure tallies)
        #: and the ``rebalance`` op routes through its queue bound.
        self.scheduler = scheduler
        #: Optional :class:`threading.Lock` shared with whatever thread
        #: mutates the index (the CLI's ingest writer); the
        #: ``rebalance`` admin op acquires it so a live migration never
        #: interleaves with a concurrent ``apply()``/``refresh()``.
        self.mutate_lock = mutate_lock
        self.recommender = Recommender(
            index, top_n=top_n, min_neighbor_rating=min_neighbor_rating
        )
        self.host = host
        self.port = int(port)
        self.max_batch = int(max_batch)
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        #: Served-traffic accounting (exposed by the ``stats`` op).
        self.requests = 0
        self.batches = 0
        self.max_batch_seen = 0

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemera)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "KnnServer":
        """Bind the listener and start the dispatcher task."""
        self._queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self) -> None:
        """Stop accepting and answering; idempotent."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until *stop* is set, then shut down."""
        await stop.wait()
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling: reader enqueues, per-connection writer
    # preserves reply order, the shared dispatcher batches.
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        replies: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_replies(replies, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                future = loop.create_future()
                await self._queue.put((stripped, future))
                await replies.put(future)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            await replies.put(None)
            with contextlib.suppress(Exception):
                await writer_task
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _write_replies(self, replies: asyncio.Queue, writer) -> None:
        while True:
            future = await replies.get()
            if future is None:
                return
            payload = await future
            try:
                writer.write(payload + b"\n")
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return  # client went away; drop the remaining replies

    # ------------------------------------------------------------------
    # Batched dispatch: one snapshot pin per micro-batch.
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._serve_batch(batch)
            # Yield so connection readers refill the queue before the
            # next drain — that's what turns bursts into batches.
            await asyncio.sleep(0)

    def _serve_batch(self, batch) -> None:
        self.batches += 1
        self.requests += len(batch)
        self.max_batch_seen = max(self.max_batch_seen, len(batch))
        try:
            snapshot = self.recommender.pin()
        except RuntimeError as error:
            payload = _encode({"ok": False, "error": str(error)})
            for _, future in batch:
                if not future.done():
                    future.set_result(payload)
            return
        for raw, future in batch:
            if not future.done():
                future.set_result(self._answer(raw, snapshot))

    def _answer(self, raw: bytes, snapshot: GraphSnapshot) -> bytes:
        try:
            request = json.loads(raw)
            if not isinstance(request, dict):
                raise ValueError(
                    f"request must be a JSON object, got "
                    f"{type(request).__name__}"
                )
            op = request.get("op")
            if op == "neighbors":
                reply = self.recommender.neighbors(
                    request["user"], snapshot=snapshot
                )
                body = {
                    "ok": True,
                    "op": op,
                    "user": reply.user,
                    "version": reply.version,
                    "neighbors": list(reply.neighbors),
                    "sims": list(reply.sims),
                }
            elif op == "recommend":
                reply = self.recommender.recommend(
                    request["user"],
                    top_n=request.get("top_n"),
                    snapshot=snapshot,
                )
                body = {
                    "ok": True,
                    "op": op,
                    "user": reply.user,
                    "version": reply.version,
                    "items": list(reply.items),
                    "scores": list(reply.scores),
                }
            elif op == "stats":
                # Staleness is observable end-to-end: the reply carries
                # the batch's pinned snapshot version, the index's
                # latest applied (WAL-aligned) sequence, and their gap —
                # how many journaled events this snapshot has not seen.
                last_seq = self.index.last_seq
                body = {
                    "ok": True,
                    "op": op,
                    "version": snapshot.version,
                    "last_seq": last_seq,
                    "snapshot_lag": last_seq - snapshot.version,
                    "dirty_users": len(self.index.dirty_users),
                    "n_users": snapshot.n_users,
                    "k": snapshot.k,
                    "requests": self.requests,
                    "batches": self.batches,
                    "max_batch": self.max_batch_seen,
                }
                if hasattr(self.index, "memory_stats"):
                    body["memory"] = {
                        key: int(value)
                        for key, value in self.index.memory_stats().items()
                    }
                if self.scheduler is not None:
                    body["scheduler"] = self.scheduler.stats()
                if hasattr(self.index, "n_shards"):
                    body["sharding"] = {
                        "n_shards": int(self.index.n_shards),
                        "executor": self.index.executor,
                        "overrides": len(
                            self.index.shard_map.overrides
                        ),
                        "rebalances": len(self.index.rebalance_log),
                    }
            elif op == "rebalance":
                body = self._rebalance(request)
            else:
                raise ValueError(
                    f"unknown op {op!r}; expected 'neighbors', "
                    f"'recommend', 'stats' or 'rebalance'"
                )
        except Exception as error:
            return _encode(
                {"ok": False, "error": f"{type(error).__name__}: {error}"}
            )
        return _encode(body)

    def _rebalance(self, request: dict) -> dict:
        """Answer the ``rebalance`` admin op (live shard migration).

        The request carries ``"shards"`` (target shard count) and/or
        ``"moves"`` (``[[user, shard], ...]`` override pairs).  The
        migration runs under :attr:`mutate_lock` (when provided) and
        through the scheduler's queue bound (when one is attached), so
        a live trigger composes with concurrent ingestion exactly like
        the in-process :meth:`ShardedKnnIndex.rebalance` API.
        """
        from ..streaming.sharding import ShardPlan

        if not hasattr(self.index, "rebalance"):
            raise ValueError(
                "index does not support rebalancing (not sharded)"
            )
        shards = request.get("shards")
        plan = ShardPlan(
            moves=tuple(
                (int(user), int(shard))
                for user, shard in (request.get("moves") or ())
            ),
            n_shards=None if shards is None else int(shards),
        )
        lock = (
            contextlib.nullcontext()
            if self.mutate_lock is None
            else self.mutate_lock
        )
        with lock:
            if self.scheduler is not None:
                stats = self.scheduler.rebalance(plan)
            else:
                stats = self.index.rebalance(plan)
        return {
            "ok": True,
            "op": "rebalance",
            "users_moved": stats.users_moved,
            "shards_before": stats.shards_before,
            "shards_after": stats.shards_after,
            "seq_begin": stats.seq_begin,
            "seq_commit": stats.seq_commit,
            "wall_time": stats.wall_time,
        }


def _encode(body: dict) -> bytes:
    return json.dumps(body, separators=(",", ":")).encode("utf-8")
