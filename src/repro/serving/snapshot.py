"""Immutable, versioned read views of a maintained KNN graph.

MVCC in one attribute store
---------------------------
``DynamicKnnIndex.refresh()`` mutates its graph rows in place, so a
reader walking those arrays concurrently could observe a half-applied
pass (rows cleared to ``MISSING`` but not yet re-merged).  Instead of
locking, the index *publishes*: at the end of every completed
``refresh()``/``rebuild()`` it freezes the live rows into a
:class:`GraphSnapshot` and stores it with a single attribute
assignment — atomic under the GIL, the pointer-swap of a classic MVCC
design.  Readers call ``index.pin()`` and hold the returned snapshot
for the duration of a query; the reference *is* the pin, and dropping
it is the unpin.

What is copied, what is shared
------------------------------
Only the graph rows are captured at publish time, because refresh
mutates them in place — and they are captured **CSR-packed**
(:func:`repro.layout.pack_rows`): an ``indptr`` plus flat int32 id /
float32 similarity arrays holding only the present entries.  Partially
filled rows (fresh cold-start users, tombstones of removed users) cost
nothing at rest, so a pinned old snapshot holds
``8 * present_edges + 4 * (n_users + 1)`` bytes of row state instead
of the dense ``16 * n_users * k``.  Everything else is shared by
reference, which is safe because the write path replaces those
structures wholesale instead of mutating them:
``MutableBipartiteBuilder.snapshot()`` materialises a fresh
:class:`~repro.datasets.bipartite.BipartiteDataset` (patching only
dirty CSR rows), and ``ProfileIndex.update()`` builds new norm/size
arrays before swapping them in.

Row reads go through :meth:`neighbors_of`/:meth:`sims_of`, which slice
the packed arrays directly — O(row) per query, no dense
materialisation.  The dense ``neighbors``/``sims`` properties rebuild
the classic ``(n_users, k)`` padded arrays on *every* access; they
exist for parity checks and tests, not the serving path.

The ``version`` is the covering WAL sequence number: the snapshot
reflects exactly the events ``1..version`` (``index.last_seq`` at
publish time), which is what lets the concurrent-reader suite replay
any served response bit-identically from a cold rebuild at that
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..datasets.bipartite import BipartiteDataset
from ..graph.knn_graph import KnnGraph
from ..layout import nbytes, pack_rows, unpack_rows

__all__ = ["GraphSnapshot"]


def _frozen(array: np.ndarray) -> np.ndarray:
    """A read-only view of *array* (the base buffer is untouched)."""
    view = array.view()
    view.flags.writeable = False
    return view


@dataclass(frozen=True, eq=False)
class GraphSnapshot:
    """One published version of the serving state.

    All arrays are read-only; ``indptr``/``packed_ids``/``packed_sims``
    are the private CSR-packed capture of the live rows,
    ``dataset``/``norms``/``sizes`` are shared with the index state that
    produced them (see the module docstring for why sharing is safe).
    """

    #: Covering WAL sequence: events ``1..version`` are reflected.
    version: int
    #: ``(n_users + 1,)`` row offsets into the packed arrays.
    indptr: np.ndarray
    #: Flat present neighbour ids, row-major, best first within a row.
    packed_ids: np.ndarray
    #: Flat similarities aligned with ``packed_ids``.
    packed_sims: np.ndarray
    #: The row width the packed rows were captured from.
    row_k: int
    #: The dataset view the rows were computed from (CSR + CSC).
    dataset: BipartiteDataset
    #: Per-user profile norms from the covering ProfileIndex.
    norms: np.ndarray
    #: Per-user profile sizes from the covering ProfileIndex.
    sizes: np.ndarray

    @classmethod
    def capture(
        cls,
        version: int,
        neighbors: np.ndarray,
        sims: np.ndarray,
        dataset: BipartiteDataset,
        norms: np.ndarray,
        sizes: np.ndarray,
    ) -> "GraphSnapshot":
        """Freeze the live index state into a new snapshot.

        The graph rows are packed into a private CSR copy (the writer
        keeps mutating the dense rows in place); the dataset and
        profile-index arrays are shared (the writer replaces, never
        mutates, those).
        """
        indptr, ids, packed_sims = pack_rows(neighbors, sims)
        return cls(
            version=int(version),
            indptr=_frozen(indptr),
            packed_ids=_frozen(ids),
            packed_sims=_frozen(packed_sims),
            row_k=int(neighbors.shape[1]),
            dataset=dataset,
            norms=_frozen(norms),
            sizes=_frozen(sizes),
        )

    def at_version(self, version: int) -> "GraphSnapshot":
        """This state re-published under a newer covering sequence.

        Used when a refresh absorbed only no-op events: the arrays are
        shared with ``self``, so republishing costs nothing.
        """
        return replace(self, version=int(version))

    @property
    def n_users(self) -> int:
        """Number of user rows frozen into this snapshot."""
        return int(self.indptr.shape[0]) - 1

    @property
    def k(self) -> int:
        """Neighbourhood size of the published rows."""
        return self.row_k

    @property
    def neighbors(self) -> np.ndarray:
        """Dense ``(n_users, k)`` neighbour ids, rebuilt on every access.

        For parity checks and tests; the serving path slices the packed
        arrays via :meth:`neighbors_of` instead.
        """
        neighbors, _ = unpack_rows(
            self.indptr, self.packed_ids, self.packed_sims, self.row_k
        )
        return neighbors

    @property
    def sims(self) -> np.ndarray:
        """Dense ``(n_users, k)`` similarities, rebuilt on every access."""
        _, sims = unpack_rows(
            self.indptr, self.packed_ids, self.packed_sims, self.row_k
        )
        return sims

    def neighbors_of(self, user: int) -> np.ndarray:
        """Present neighbour ids of *user*, best first (packed slice)."""
        return self.packed_ids[self.indptr[user] : self.indptr[user + 1]]

    def sims_of(self, user: int) -> np.ndarray:
        """Similarities aligned with :meth:`neighbors_of`."""
        return self.packed_sims[self.indptr[user] : self.indptr[user + 1]]

    def row_bytes(self) -> int:
        """Resident bytes of this snapshot's private packed row state."""
        return nbytes(self.indptr, self.packed_ids, self.packed_sims)

    def graph(self) -> KnnGraph:
        """Materialise a :class:`KnnGraph` copy (parity checks, not
        the serving path — serving reads the packed rows directly)."""
        neighbors, sims = unpack_rows(
            self.indptr, self.packed_ids, self.packed_sims, self.row_k
        )
        return KnnGraph(neighbors, sims)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSnapshot(version={self.version}, "
            f"n_users={self.n_users}, k={self.k})"
        )
