"""Immutable, versioned read views of a maintained KNN graph.

MVCC in one attribute store
---------------------------
``DynamicKnnIndex.refresh()`` mutates its graph rows in place, so a
reader walking those arrays concurrently could observe a half-applied
pass (rows cleared to ``MISSING`` but not yet re-merged).  Instead of
locking, the index *publishes*: at the end of every completed
``refresh()``/``rebuild()`` it freezes the live rows into a
:class:`GraphSnapshot` and stores it with a single attribute
assignment — atomic under the GIL, the pointer-swap of a classic MVCC
design.  Readers call ``index.pin()`` and hold the returned snapshot
for the duration of a query; the reference *is* the pin, and dropping
it is the unpin.

What is copied, what is shared
------------------------------
Only the graph rows are copied at publish time, because refresh mutates
them in place.  Everything else is shared by reference, which is safe
because the write path replaces those structures wholesale instead of
mutating them: ``MutableBipartiteBuilder.snapshot()`` materialises a
fresh :class:`~repro.datasets.bipartite.BipartiteDataset` (patching
only dirty CSR rows), and ``ProfileIndex.update()`` builds new
norm/size arrays before swapping them in.  An old snapshot therefore
stays bit-stable forever at the cost of one ``(n_users, k)`` row pair
(~``16 * n_users * k`` bytes) plus whatever dataset arrays are no
longer shared with the live index.

The ``version`` is the covering WAL sequence number: the snapshot
reflects exactly the events ``1..version`` (``index.last_seq`` at
publish time), which is what lets the concurrent-reader suite replay
any served response bit-identically from a cold rebuild at that
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..datasets.bipartite import BipartiteDataset
from ..graph.knn_graph import MISSING, KnnGraph

__all__ = ["GraphSnapshot"]


def _frozen(array: np.ndarray) -> np.ndarray:
    """A read-only view of *array* (the base buffer is untouched)."""
    view = array.view()
    view.flags.writeable = False
    return view


@dataclass(frozen=True, eq=False)
class GraphSnapshot:
    """One published version of the serving state.

    All arrays are read-only; ``neighbors``/``sims`` are private copies
    of the live rows, ``dataset``/``norms``/``sizes`` are shared with
    the index state that produced them (see the module docstring for
    why sharing is safe).
    """

    #: Covering WAL sequence: events ``1..version`` are reflected.
    version: int
    #: ``(n_users, k)`` neighbour ids, ``MISSING`` marking empty slots.
    neighbors: np.ndarray
    #: ``(n_users, k)`` similarities aligned with ``neighbors``.
    sims: np.ndarray
    #: The dataset view the rows were computed from (CSR + CSC).
    dataset: BipartiteDataset
    #: Per-user profile norms from the covering ProfileIndex.
    norms: np.ndarray
    #: Per-user profile sizes from the covering ProfileIndex.
    sizes: np.ndarray

    @classmethod
    def capture(
        cls,
        version: int,
        neighbors: np.ndarray,
        sims: np.ndarray,
        dataset: BipartiteDataset,
        norms: np.ndarray,
        sizes: np.ndarray,
    ) -> "GraphSnapshot":
        """Freeze the live index state into a new snapshot.

        The graph rows are copied (the writer keeps mutating them in
        place); the dataset and profile-index arrays are shared (the
        writer replaces, never mutates, those).
        """
        return cls(
            version=int(version),
            neighbors=_frozen(neighbors.copy()),
            sims=_frozen(sims.copy()),
            dataset=dataset,
            norms=_frozen(norms),
            sizes=_frozen(sizes),
        )

    def at_version(self, version: int) -> "GraphSnapshot":
        """This state re-published under a newer covering sequence.

        Used when a refresh absorbed only no-op events: the arrays are
        shared with ``self``, so republishing costs nothing.
        """
        return replace(self, version=int(version))

    @property
    def n_users(self) -> int:
        return int(self.neighbors.shape[0])

    @property
    def k(self) -> int:
        return int(self.neighbors.shape[1])

    def neighbors_of(self, user: int) -> np.ndarray:
        """Present neighbour ids of *user* (``MISSING`` slots dropped)."""
        row = self.neighbors[user]
        return row[row != MISSING]

    def sims_of(self, user: int) -> np.ndarray:
        """Similarities aligned with :meth:`neighbors_of`."""
        return self.sims[user][self.neighbors[user] != MISSING]

    def graph(self) -> KnnGraph:
        """Materialise a :class:`KnnGraph` copy (parity checks, not
        the serving path — serving reads the frozen rows directly)."""
        return KnnGraph(self.neighbors.copy(), self.sims.copy())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSnapshot(version={self.version}, "
            f"n_users={self.n_users}, k={self.k})"
        )
