"""Lock-free query serving over the maintained KNN graph.

The write path (PRs 1-5) keeps the converged KIFF graph exact under
typed events; this package is its read-side counterpart.  ``refresh()``
publishes an immutable, versioned :class:`GraphSnapshot` via an atomic
pointer swap, so readers pin one reference and answer queries without
locks and without ever observing a half-applied refinement pass:

* :class:`GraphSnapshot` — one published version: frozen graph rows
  plus the dataset / profile-index views they were computed from,
  stamped with the covering WAL sequence number.
* :class:`Recommender` / :func:`neighbors_on` / :func:`recommend_on` —
  version-consistent neighbour lookups and user-based CF top-N
  recommendations against a pinned snapshot.
* :class:`KnnServer` — the ``repro serve`` asyncio batch server:
  newline-delimited JSON over TCP, coalescing concurrent requests into
  one snapshot pin per batch while ``apply()``/``refresh()`` run on a
  writer thread.
"""

from .recommend import (
    NeighborReply,
    Recommendation,
    Recommender,
    neighbors_on,
    recommend_on,
)
from .server import KnnServer
from .snapshot import GraphSnapshot

__all__ = [
    "GraphSnapshot",
    "KnnServer",
    "NeighborReply",
    "Recommendation",
    "Recommender",
    "neighbors_on",
    "recommend_on",
]
