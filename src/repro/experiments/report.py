"""Plain-text report rendering for experiment output.

Every experiment produces an :class:`ExperimentReport`: a titled table
whose rows mirror the corresponding table or figure of the paper, plus a
``data`` payload with the raw series for programmatic use (tests assert on
``data``; humans read ``render()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentReport", "render_table", "format_value"]


def format_value(value) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    headers: list[str], rows: list[list], title: str = ""
) -> str:
    """Render an ASCII table with padded columns."""
    cells = [[format_value(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """Result of one experiment: a rendered table plus raw data.

    ``experiment`` identifies the paper artefact (e.g. ``"Table II"``),
    ``data`` holds raw numbers keyed by series name, and ``notes`` records
    caveats (scale, substitutions) that belong next to the numbers.
    """

    experiment: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        """The full printable report."""
        out = render_table(
            self.headers, self.rows, title=f"{self.experiment}: {self.title}"
        )
        if self.notes:
            out += f"\n\n{self.notes}"
        return out

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
