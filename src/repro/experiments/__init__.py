"""Experiment harness: one module per table/figure of the paper."""

from . import (
    exp_ablation,
    exp_beta,
    exp_figure1,
    exp_figure4,
    exp_figure5,
    exp_figure6,
    exp_figure7,
    exp_figure8,
    exp_figure9,
    exp_figure10,
    exp_table1,
    exp_table2,
    exp_table3,
    exp_table4,
    exp_table5,
    exp_table6,
    exp_table7,
    exp_streaming,
    exp_table8,
    exp_table9,
)
from .harness import ALGORITHMS, ExperimentContext, RunOutcome, default_k
from .report import ExperimentReport, render_table

#: Experiment registry: CLI name -> module with a ``run(context)`` function.
EXPERIMENTS = {
    "table1": exp_table1,
    "table2": exp_table2,
    "table3": exp_table3,
    "table4": exp_table4,
    "table5": exp_table5,
    "table6": exp_table6,
    "table7": exp_table7,
    "table8": exp_table8,
    "table9": exp_table9,
    "figure1": exp_figure1,
    "figure4": exp_figure4,
    "figure5": exp_figure5,
    "figure6": exp_figure6,
    "figure7": exp_figure7,
    "figure8": exp_figure8,
    "figure9": exp_figure9,
    "figure10": exp_figure10,
    "beta": exp_beta,
    "ablation": exp_ablation,
    "streaming": exp_streaming,
}

__all__ = [
    "ALGORITHMS",
    "EXPERIMENTS",
    "ExperimentContext",
    "ExperimentReport",
    "RunOutcome",
    "default_k",
    "render_table",
]
