"""Table I — dataset description.

Regenerates the paper's dataset-statistics table for the evaluation suite
at the context's scale, with the published values alongside.  At laptop
scale the absolute counts are smaller by construction; the column to
compare is the *ordering* of densities and the user/item profile shapes.
"""

from __future__ import annotations

from ..datasets.stats import describe
from .harness import ExperimentContext
from .paper_values import TABLE1
from .report import ExperimentReport

__all__ = ["run"]


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Table I report."""
    context = context or ExperimentContext()
    headers = [
        "Dataset",
        "|U|",
        "|I|",
        "|E|",
        "Density",
        "Avg |UPu|",
        "Avg |IPi|",
        "Paper density",
    ]
    rows = []
    data = {}
    for name in context.suite():
        stats = describe(context.dataset(name))
        paper = TABLE1[name]
        rows.append(
            [
                name,
                stats.n_users,
                stats.n_items,
                stats.n_ratings,
                f"{stats.density_percent:.4f}%",
                round(stats.avg_user_profile, 1),
                round(stats.avg_item_profile, 1),
                f"{paper['density_percent']:.4f}%",
            ]
        )
        data[name] = stats
    return ExperimentReport(
        experiment="Table I",
        title="Dataset description",
        headers=headers,
        rows=rows,
        notes=(
            f"Synthetic datasets at scale={context.scale!r} matching the "
            "paper's shape (see DESIGN.md for the substitution rationale)."
        ),
        data=data,
    )
