"""Figure 1 — time breakdown of the greedy baselines on Wikipedia.

The paper's motivating figure: NN-Descent and HyRec spend over 90% of
their computation time evaluating similarities.  We regenerate the
breakdown (preprocessing / candidate selection / similarity) for both
algorithms on the Wikipedia dataset.
"""

from __future__ import annotations

from .harness import ExperimentContext
from .report import ExperimentReport

__all__ = ["run", "DATASET"]

DATASET = "wikipedia"


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Figure 1 report."""
    context = context or ExperimentContext()
    headers = [
        "Approach",
        "total (s)",
        "preprocessing (s)",
        "candidate sel. (s)",
        "similarity (s)",
        "similarity share",
    ]
    rows = []
    data = {}
    for algorithm in ("nn-descent", "hyrec"):
        outcome = context.run(DATASET, algorithm)
        breakdown = outcome.breakdown
        total = sum(breakdown.values())
        share = breakdown["similarity"] / total if total > 0 else float("nan")
        data[algorithm] = {**breakdown, "similarity_share": share}
        rows.append(
            [
                algorithm,
                round(total, 2),
                round(breakdown["preprocessing"], 3),
                round(breakdown["candidate_selection"], 2),
                round(breakdown["similarity"], 2),
                f"{share:.1%}",
            ]
        )
    return ExperimentReport(
        experiment="Figure 1",
        title="Greedy approaches spend most time on similarity (Wikipedia)",
        headers=headers,
        rows=rows,
        notes=(
            "Paper expectation: similarity computation dominates (>90% in "
            "the paper's Java implementation; the exact share depends on "
            "the relative cost of the metric versus bookkeeping)."
        ),
        data=data,
    )
