"""Table IX — the MovieLens density family.

Regenerates the paper's derived datasets ML-1..ML-5 (random rating
removal from an ML-1-like base) and reports ratings, density and average
RCS size.  Expectation: density halves roughly at each step and the
average RCS size shrinks with it — the lever behind Figure 10.
"""

from __future__ import annotations

from ..core.rcs import build_rcs
from ..datasets.registry import load_movielens_family
from .harness import ExperimentContext
from .paper_values import TABLE9
from .report import ExperimentReport

__all__ = ["run", "family_stats"]


def family_stats(context: ExperimentContext) -> list[dict]:
    """Ratings / density / avg |RCS| for each family member."""
    stats = []
    for dataset in load_movielens_family(context.scale):
        context.add_dataset(dataset)
        rcs = build_rcs(dataset)
        stats.append(
            {
                "name": dataset.name,
                "ratings": dataset.n_ratings,
                "density_percent": dataset.density_percent,
                "avg_rcs": rcs.avg_size,
            }
        )
    return stats


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Table IX report."""
    context = context or ExperimentContext()
    headers = [
        "Dataset",
        "Ratings",
        "Density",
        "avg |RCS|",
        "paper density",
        "paper avg |RCS|",
    ]
    rows = []
    data = {}
    for stats in family_stats(context):
        name = stats["name"]
        paper = TABLE9[name]
        data[name] = stats
        rows.append(
            [
                name,
                stats["ratings"],
                f"{stats['density_percent']:.2f}%",
                round(stats["avg_rcs"], 1),
                f"{paper['density_percent']}%",
                paper["avg_rcs"],
            ]
        )
    return ExperimentReport(
        experiment="Table IX",
        title="MovieLens datasets with different density",
        headers=headers,
        rows=rows,
        notes=(
            "ML-2..ML-5 keep the paper's exact rating fractions of the "
            "ML-1-like base (random removal, seeded)."
        ),
        data=data,
    )
