"""Figure 5 — per-activity time breakdown, all algorithms, all datasets.

The paper's stacked bars: although KIFF pays a visible preprocessing cost
(its counting phase), that cost is repaid by far less similarity and
candidate-selection time than NN-Descent and HyRec.
"""

from __future__ import annotations

from .harness import ALGORITHMS, ExperimentContext
from .report import ExperimentReport

__all__ = ["run"]


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Figure 5 report."""
    context = context or ExperimentContext()
    headers = [
        "Dataset",
        "Approach",
        "preprocessing (s)",
        "candidate sel. (s)",
        "similarity (s)",
        "total (s)",
        "preproc share",
    ]
    rows = []
    data = {}
    for name in context.suite():
        for algorithm in ALGORITHMS:
            outcome = context.run(name, algorithm)
            breakdown = outcome.breakdown
            total = sum(breakdown.values())
            preproc_share = (
                breakdown["preprocessing"] / total if total > 0 else float("nan")
            )
            data[f"{name}/{algorithm}"] = breakdown
            rows.append(
                [
                    name,
                    algorithm,
                    round(breakdown["preprocessing"], 3),
                    round(breakdown["candidate_selection"], 2),
                    round(breakdown["similarity"], 2),
                    round(total, 2),
                    f"{preproc_share:.1%}",
                ]
            )
    return ExperimentReport(
        experiment="Figure 5",
        title="Computation time breakdown by activity",
        headers=headers,
        rows=rows,
        notes=(
            "Expectation: KIFF's preprocessing share is the largest of the "
            "three approaches, but its total time is the smallest — the "
            "counting phase buys cheaper refinement."
        ),
        data=data,
    )
