"""Figure 7 — rank correlation between RCS order and true metric order.

For Wikipedia users whose RCS exceeds the termination cut, the paper
correlates (Spearman) the RCS ordering (shared-item counts) with the
ordering of the same candidates under cosine and Jaccard.  High, size-
increasing correlations justify truncating RCS tails: the counting phase
rarely buries good candidates deep in the list.
"""

from __future__ import annotations

import numpy as np

from ..analysis.spearman import rcs_metric_correlations
from ..core.rcs import build_rcs
from ..similarity.engine import SimilarityEngine
from .harness import ExperimentContext
from .report import ExperimentReport

__all__ = ["run", "DATASET"]

DATASET = "wikipedia"


def run(
    context: ExperimentContext | None = None,
    max_users: int | None = 400,
) -> ExperimentReport:
    """Build the Figure 7 report (Wikipedia by default, like the paper)."""
    context = context or ExperimentContext()
    dataset = context.dataset(DATASET)
    outcome = context.run(DATASET, "kiff")
    cut = int(outcome.iterations * outcome.result.extras["gamma"])
    rcs = build_rcs(dataset)

    rows = []
    data = {"cut": cut}
    for metric in ("cosine", "jaccard"):
        engine = SimilarityEngine(dataset, metric=metric)
        points = rcs_metric_correlations(
            engine, rcs, min_size=max(cut, 1), max_users=max_users
        )
        if not points:
            # No user exceeds the cut at this scale; fall back to the
            # largest RCSs so the correlation is still measured.
            sizes = rcs.sizes()
            fallback = int(np.quantile(sizes[sizes > 1], 0.9))
            points = rcs_metric_correlations(
                engine, rcs, min_size=max(fallback, 2), max_users=max_users
            )
        rhos = np.array([rho for (_, _, rho) in points])
        sizes = np.array([size for (_, size, _) in points])
        data[metric] = points
        rows.append(
            [
                metric,
                len(points),
                round(float(rhos.mean()), 3) if rhos.size else float("nan"),
                round(float(rhos.min()), 3) if rhos.size else float("nan"),
                round(float(np.corrcoef(sizes, rhos)[0, 1]), 3)
                if rhos.size > 2 and np.ptp(sizes) > 0
                else float("nan"),
            ]
        )
    return ExperimentReport(
        experiment="Figure 7",
        title="Spearman correlation: RCS order vs metric order (Wikipedia)",
        headers=[
            "Metric",
            "#users",
            "mean rho",
            "min rho",
            "corr(size, rho)",
        ],
        rows=rows,
        notes=(
            "Paper expectation: mean rho around 0.6 for both metrics, "
            "increasing with RCS size. Per-user points in "
            "report.data['cosine'|'jaccard']."
        ),
        data=data,
    )
