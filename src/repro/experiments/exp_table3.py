"""Table III — average speed-up and recall gain of KIFF.

Aggregates Table II: KIFF's speed-up factor and recall improvement against
each competitor, averaged over the four datasets, plus the overall average
(the paper's headline "speed-up of 14, recall +0.19").
"""

from __future__ import annotations

from .exp_table2 import run as run_table2
from .harness import ExperimentContext
from .paper_values import TABLE3
from .report import ExperimentReport

__all__ = ["run", "aggregate_gains"]


def aggregate_gains(table2_data: dict) -> dict[str, dict[str, float]]:
    """Per-competitor average speed-up and recall gain across datasets."""
    gains: dict[str, dict[str, list[float]]] = {}
    for name, outcomes in table2_data.items():
        if name.endswith("/gain"):
            continue
        kiff_run = next(o for o in outcomes if o.algorithm == "kiff")
        for outcome in outcomes:
            if outcome.algorithm == "kiff":
                continue
            entry = gains.setdefault(
                outcome.algorithm, {"speedup": [], "recall_gain": []}
            )
            if kiff_run.wall_time > 0:
                entry["speedup"].append(outcome.wall_time / kiff_run.wall_time)
            entry["recall_gain"].append(kiff_run.recall - outcome.recall)
    aggregated = {
        algorithm: {
            "speedup": sum(v["speedup"]) / len(v["speedup"]),
            "recall_gain": sum(v["recall_gain"]) / len(v["recall_gain"]),
        }
        for algorithm, v in gains.items()
    }
    aggregated["average"] = {
        "speedup": sum(a["speedup"] for a in aggregated.values()) / len(aggregated),
        "recall_gain": sum(a["recall_gain"] for a in aggregated.values())
        / len(aggregated),
    }
    return aggregated


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Table III report (runs/reuses Table II)."""
    context = context or ExperimentContext()
    table2 = run_table2(context)
    gains = aggregate_gains(table2.data)
    headers = [
        "Competitor",
        "speed-up",
        "recall gain",
        "paper speed-up",
        "paper recall gain",
    ]
    rows = []
    for competitor in ("nn-descent", "hyrec", "average"):
        measured = gains[competitor]
        paper = TABLE3[competitor]
        rows.append(
            [
                competitor,
                f"x{measured['speedup']:.2f}",
                f"+{measured['recall_gain']:.2f}",
                f"x{paper['speedup']:.2f}",
                f"+{paper['recall_gain']:.2f}",
            ]
        )
    return ExperimentReport(
        experiment="Table III",
        title="Average speed-up and recall gain of KIFF",
        headers=headers,
        rows=rows,
        notes=(
            "Averaged over the four evaluation datasets. Paper recall gains "
            "are larger because NN-Descent/HyRec degrade more on the "
            "paper's 100k-700k user datasets than on laptop-scale replicas."
        ),
        data=gains,
    )
