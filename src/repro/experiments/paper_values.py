"""Published numbers from the paper, for side-by-side reporting.

Every experiment report prints the paper's value next to the measured one
where the paper gives a number.  Keys follow the paper's dataset casing
(lower-cased registry names).  These constants are *reference shapes*:
absolute wall-times were measured on the authors' 2015 Xeon with
multithreaded Java and do not transfer; recalls, scan-rate orderings and
win/lose relationships do.
"""

from __future__ import annotations

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "TABLE5",
    "TABLE6",
    "TABLE7",
    "TABLE8",
    "TABLE9",
]

#: Table I — dataset description.
TABLE1 = {
    "wikipedia": {
        "n_users": 6_110,
        "n_items": 2_381,
        "n_ratings": 103_689,
        "density_percent": 0.7127,
        "avg_user_profile": 16.9,
        "avg_item_profile": 43.5,
    },
    "arxiv": {
        "n_users": 18_772,
        "n_items": 18_772,
        "n_ratings": 396_160,
        "density_percent": 0.1124,
        "avg_user_profile": 21.1,
        "avg_item_profile": 21.1,
    },
    "gowalla": {
        "n_users": 107_092,
        "n_items": 1_280_969,
        "n_ratings": 3_981_334,
        "density_percent": 0.0029,
        "avg_user_profile": 37.1,
        "avg_item_profile": 3.1,
    },
    "dblp": {
        "n_users": 715_610,
        "n_items": 1_401_494,
        "n_ratings": 11_755_605,
        "density_percent": 0.0011,
        "avg_user_profile": 16.4,
        "avg_item_profile": 8.3,
    },
}

#: Table II — overall performance (k=20, DBLP k=50).
#: Per dataset, per algorithm: recall, wall-time (s), scan rate, #iters.
TABLE2 = {
    "arxiv": {
        "nn-descent": {"recall": 0.95, "wall_time": 41.8, "scan_rate": 0.176, "iterations": 9},
        "hyrec": {"recall": 0.90, "wall_time": 38.6, "scan_rate": 0.160, "iterations": 12},
        "kiff": {"recall": 0.99, "wall_time": 10.7, "scan_rate": 0.025, "iterations": 36},
    },
    "wikipedia": {
        "nn-descent": {"recall": 0.97, "wall_time": 13.1, "scan_rate": 0.5169, "iterations": 7},
        "hyrec": {"recall": 0.95, "wall_time": 9.4, "scan_rate": 0.4464, "iterations": 8},
        "kiff": {"recall": 0.99, "wall_time": 4.4, "scan_rate": 0.0737, "iterations": 22},
    },
    "gowalla": {
        "nn-descent": {"recall": 0.69, "wall_time": 307.9, "scan_rate": 0.0367, "iterations": 16},
        "hyrec": {"recall": 0.56, "wall_time": 253.2, "scan_rate": 0.0269, "iterations": 22},
        "kiff": {"recall": 0.99, "wall_time": 146.6, "scan_rate": 0.0084, "iterations": 115},
    },
    "dblp": {
        "nn-descent": {"recall": 0.78, "wall_time": 10_890.2, "scan_rate": 0.0308, "iterations": 19},
        "hyrec": {"recall": 0.63, "wall_time": 8_829.9, "scan_rate": 0.0237, "iterations": 26},
        "kiff": {"recall": 0.99, "wall_time": 568.0, "scan_rate": 0.0007, "iterations": 33},
    },
}

#: Table III — average speed-up and recall gain of KIFF.
TABLE3 = {
    "nn-descent": {"speedup": 15.42, "recall_gain": 0.14},
    "hyrec": {"speedup": 12.51, "recall_gain": 0.23},
    "average": {"speedup": 13.97, "recall_gain": 0.19},
}

#: Table IV — overhead of item-profile construction (ms / % of total).
TABLE4 = {
    "arxiv": {"up_ms": 135, "up_ip_ms": 185, "delta_ms": 50, "pct_total": 0.5},
    "wikipedia": {"up_ms": 59, "up_ip_ms": 69, "delta_ms": 10, "pct_total": 0.2},
    "gowalla": {"up_ms": 2_354, "up_ip_ms": 5_136, "delta_ms": 2_782, "pct_total": 1.9},
    "dblp": {"up_ms": 7_492, "up_ip_ms": 12_996, "delta_ms": 5_504, "pct_total": 1.0},
}

#: Table V — RCS construction cost and statistics.
TABLE5 = {
    "arxiv": {"rcs_ms": 1_404, "pct_total": 13.1, "avg_rcs": 247.0, "max_scan": 0.0263},
    "wikipedia": {"rcs_ms": 465, "pct_total": 10.6, "avg_rcs": 228.7, "max_scan": 0.0748},
    "gowalla": {"rcs_ms": 12_255, "pct_total": 8.4, "avg_rcs": 458.1, "max_scan": 0.0085},
    "dblp": {"rcs_ms": 42_829, "pct_total": 7.5, "avg_rcs": 267.8, "max_scan": 0.0007},
}

#: Table VI — impact of KIFF's termination mechanism.
TABLE6 = {
    "arxiv": {"iterations": 36, "rcs_cut": 720, "pct_truncated": 9.57},
    "wikipedia": {"iterations": 22, "rcs_cut": 440, "pct_truncated": 16.24},
    "gowalla": {"iterations": 115, "rcs_cut": 2_300, "pct_truncated": 4.82},
    "dblp": {"iterations": 33, "rcs_cut": 660, "pct_truncated": 10.32},
}

#: Table VII — initial recall: top-k-of-RCS versus random graph.
TABLE7 = {
    "arxiv": {"rcs_init": 0.82, "random_init": 0.08},
    "wikipedia": {"rcs_init": 0.54, "random_init": 0.01},
    "gowalla": {"rcs_init": 0.55, "random_init": 0.15},
    "dblp": {"rcs_init": 0.79, "random_init": 0.09},
}

#: Table VIII — recall / wall-time / scan rate at halved k
#: (k=10; DBLP k=20).
TABLE8 = {
    "arxiv": {
        "nn-descent": {"recall": 0.74, "wall_time": 17.7, "scan_rate": 0.0549},
        "hyrec": {"recall": 0.55, "wall_time": 16.4, "scan_rate": 0.0466},
        "kiff": {"recall": 0.99, "wall_time": 7.8, "scan_rate": 0.0197},
    },
    "wikipedia": {
        "nn-descent": {"recall": 0.86, "wall_time": 5.3, "scan_rate": 0.1639},
        "hyrec": {"recall": 0.74, "wall_time": 3.6, "scan_rate": 0.1398},
        "kiff": {"recall": 0.99, "wall_time": 3.2, "scan_rate": 0.0686},
    },
    "gowalla": {
        "nn-descent": {"recall": 0.35, "wall_time": 117.8, "scan_rate": 0.0089},
        "hyrec": {"recall": 0.26, "wall_time": 98.7, "scan_rate": 0.0061},
        "kiff": {"recall": 0.99, "wall_time": 120.4, "scan_rate": 0.0073},
    },
    "dblp": {
        "nn-descent": {"recall": 0.20, "wall_time": 2_673.4, "scan_rate": 0.0043},
        "hyrec": {"recall": 0.11, "wall_time": 2_272.5, "scan_rate": 0.0026},
        "kiff": {"recall": 0.99, "wall_time": 516.6, "scan_rate": 0.0007},
    },
}

#: Table IX — MovieLens density family.
TABLE9 = {
    "ml-1": {"ratings": 1_000_209, "density_percent": 4.47, "avg_rcs": 2_892.7},
    "ml-2": {"ratings": 500_009, "density_percent": 2.23, "avg_rcs": 2_060.6},
    "ml-3": {"ratings": 255_188, "density_percent": 1.14, "avg_rcs": 1_125.4},
    "ml-4": {"ratings": 131_668, "density_percent": 0.59, "avg_rcs": 510.8},
    "ml-5": {"ratings": 68_415, "density_percent": 0.30, "avg_rcs": 202.5},
}
