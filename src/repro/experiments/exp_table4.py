"""Table IV — overhead of item-profile construction in KIFF.

The paper measures the extra time taken to build item profiles (``IP_i``)
alongside the user profiles all approaches need, and shows it is a tiny
fraction (<2%) of KIFF's total running time.  Our substrate equivalent:
user profiles are the CSR matrix built from the raw edge arrays; item
profiles are its CSC conversion.
"""

from __future__ import annotations

import time

import scipy.sparse as sp

from ..datasets.bipartite import BipartiteDataset
from .harness import ExperimentContext
from .paper_values import TABLE4
from .report import ExperimentReport

__all__ = ["run", "measure_profile_build"]


def measure_profile_build(
    dataset: BipartiteDataset, repeats: int = 3
) -> tuple[float, float]:
    """Seconds to build user profiles only, and user+item profiles.

    Rebuilds the CSR matrix from raw COO edges (user profiles — every
    algorithm pays this), then additionally converts to CSC (item
    profiles — only KIFF needs this).  Best of *repeats* to suppress
    allocator noise.
    """
    coo = dataset.matrix.tocoo()
    rows, cols, vals = coo.row, coo.col, coo.data
    shape = dataset.matrix.shape

    up_times, both_times = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        csr = sp.csr_matrix((vals, (rows, cols)), shape=shape)
        up_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        csr = sp.csr_matrix((vals, (rows, cols)), shape=shape)
        _ = csr.tocsc()
        both_times.append(time.perf_counter() - start)
    return min(up_times), min(both_times)


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Table IV report."""
    context = context or ExperimentContext()
    headers = [
        "Dataset",
        "UP only (ms)",
        "UP & IP (ms)",
        "delta (ms)",
        "% of KIFF total",
        "paper %",
    ]
    rows = []
    data = {}
    for name in context.suite():
        dataset = context.dataset(name)
        up_s, both_s = measure_profile_build(dataset)
        delta_s = max(both_s - up_s, 0.0)
        kiff_total = context.run(name, "kiff").wall_time
        pct = 100.0 * delta_s / kiff_total if kiff_total > 0 else float("nan")
        data[name] = {
            "up_s": up_s,
            "both_s": both_s,
            "delta_s": delta_s,
            "pct_total": pct,
        }
        rows.append(
            [
                name,
                round(up_s * 1e3, 2),
                round(both_s * 1e3, 2),
                round(delta_s * 1e3, 2),
                f"{pct:.2f}%",
                f"{TABLE4[name]['pct_total']}%",
            ]
        )
    return ExperimentReport(
        experiment="Table IV",
        title="Overhead of item profile construction in KIFF",
        headers=headers,
        rows=rows,
        notes=(
            "Expectation from the paper: item-profile construction is a "
            "negligible share (<2%) of KIFF's total wall-time."
        ),
        data=data,
    )
