"""Figure 4 — CCDF of user and item profile sizes.

The paper plots ``P(|UP| >= x)`` and ``P(|IP| >= x)`` for the four
datasets, showing the long-tailed distributions ("most users have very
few ratings").  The report summarises each CCDF at reference sizes and
carries the full curves in ``data`` for plotting.
"""

from __future__ import annotations

import numpy as np

from ..datasets.stats import profile_size_ccdf
from .harness import ExperimentContext
from .report import ExperimentReport

__all__ = ["run", "tail_index"]

_REFERENCE_SIZES = (1, 10, 100, 1000)


def tail_index(xs: np.ndarray, ps: np.ndarray) -> float:
    """Log-log slope of the CCDF tail (rough power-law exponent).

    Fitted over the upper decade of sizes; a clearly negative slope
    confirms the long tail the paper shows.  Returns NaN when there are
    too few distinct sizes to fit.
    """
    mask = (xs > 0) & (ps > 0)
    xs, ps = xs[mask], ps[mask]
    if xs.size < 3:
        return float("nan")
    log_x, log_p = np.log10(xs), np.log10(ps)
    slope, _ = np.polyfit(log_x, log_p, deg=1)
    return float(slope)


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Figure 4 report."""
    context = context or ExperimentContext()
    headers = ["Dataset", "Axis"] + [
        f"P(size>={s})" for s in _REFERENCE_SIZES
    ] + ["tail slope"]
    rows = []
    data = {}
    for name in context.suite():
        dataset = context.dataset(name)
        for axis in ("user", "item"):
            xs, ps = profile_size_ccdf(dataset, axis=axis)
            data[f"{name}/{axis}"] = (xs, ps)
            cells = [name, axis]
            for size in _REFERENCE_SIZES:
                idx = np.searchsorted(xs, size)
                prob = ps[idx] if idx < xs.size else 0.0
                cells.append(f"{prob:.3f}")
            cells.append(round(tail_index(xs, ps), 2))
            rows.append(cells)
    return ExperimentReport(
        experiment="Figure 4",
        title="CCDF of user and item profile sizes",
        headers=headers,
        rows=rows,
        notes=(
            "Long-tailed curves (negative log-log slopes) reproduce the "
            "paper's observation that most users have very few ratings. "
            "Full curves are in report.data['<dataset>/<axis>']."
        ),
        data=data,
    )
