"""Ablation studies of KIFF's design choices (DESIGN.md section 5).

Three ablations the paper motivates but does not tabulate:

* **RCS construction path** — the faithful pure-Python multiset union
  versus the sparse ``B @ B.T`` co-occurrence product (identical output,
  large constant-factor gap).
* **Pivot strategy** — storing each candidate pair once (Section II-D)
  versus full symmetric RCSs: memory halves, result unchanged.
* **Rating-threshold pruning** — the paper's future-work heuristic
  (Section VII): only multi-rating items generate candidates, shrinking
  RCSs at a small recall cost.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.rcs import build_rcs, build_rcs_reference
from .harness import ExperimentContext
from .report import ExperimentReport

__all__ = ["run", "rcs_path_ablation", "pivot_ablation", "min_rating_ablation"]


def rcs_path_ablation(context: ExperimentContext, dataset_name: str) -> dict:
    """Timing + equality of the two counting-phase implementations."""
    dataset = context.dataset(dataset_name)
    start = time.perf_counter()
    fast = build_rcs(dataset)
    fast_seconds = time.perf_counter() - start
    start = time.perf_counter()
    reference = build_rcs_reference(dataset)
    reference_seconds = time.perf_counter() - start
    identical = bool(
        np.array_equal(fast.offsets, reference.offsets)
        and np.array_equal(fast.candidates, reference.candidates)
        and np.array_equal(fast.counts, reference.counts)
    )
    return {
        "fast_seconds": fast_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / fast_seconds if fast_seconds > 0 else float("inf"),
        "identical": identical,
    }


def pivot_ablation(context: ExperimentContext, dataset_name: str) -> dict:
    """Pivoted vs symmetric RCS: memory and run equivalence."""
    dataset = context.dataset(dataset_name)
    k = context.k_for(dataset_name)
    context.exact(dataset_name, k)  # warm the shared ground-truth cache
    pivoted = build_rcs(dataset, pivot=True)
    symmetric = build_rcs(dataset, pivot=False)
    run_pivot = context.run(dataset_name, "kiff", k=k, pivot=True)
    run_sym = context.run(dataset_name, "kiff", k=k, pivot=False)
    return {
        "pivot_entries": pivoted.total_candidates,
        "symmetric_entries": symmetric.total_candidates,
        "memory_ratio": symmetric.total_candidates
        / max(pivoted.total_candidates, 1),
        "pivot_recall": run_pivot.recall,
        "symmetric_recall": run_sym.recall,
        "pivot_scan": run_pivot.scan_rate,
        "symmetric_scan": run_sym.scan_rate,
    }


def min_rating_ablation(
    context: ExperimentContext, dataset_name: str, min_rating: float = 3.5
) -> dict:
    """The future-work heuristic: threshold RCS insertion on ratings."""
    dataset = context.dataset(dataset_name)
    k = context.k_for(dataset_name)
    context.exact(dataset_name, k)  # warm the shared ground-truth cache
    base_rcs = build_rcs(dataset)
    pruned_rcs = build_rcs(dataset, min_rating=min_rating)
    base = context.run(dataset_name, "kiff", k=k)
    pruned = context.run(dataset_name, "kiff", k=k, min_rating=min_rating)
    return {
        "base_avg_rcs": base_rcs.avg_size,
        "pruned_avg_rcs": pruned_rcs.avg_size,
        "rcs_shrinkage": 1.0
        - pruned_rcs.avg_size / max(base_rcs.avg_size, 1e-12),
        "base_recall": base.recall,
        "pruned_recall": pruned.recall,
        "base_time": base.wall_time,
        "pruned_time": pruned.wall_time,
        "base_scan": base.scan_rate,
        "pruned_scan": pruned.scan_rate,
    }


def run(
    context: ExperimentContext | None = None,
    rcs_dataset: str = "wikipedia",
    rating_dataset: str = "ml-1",
) -> ExperimentReport:
    """Build the ablation report.

    *rcs_dataset* hosts the construction-path and pivot ablations;
    *rating_dataset* must have count-valued ratings for the threshold
    heuristic to bite (gowalla/dblp in the registry).
    """
    context = context or ExperimentContext()
    path = rcs_path_ablation(context, rcs_dataset)
    pivot = pivot_ablation(context, rcs_dataset)
    threshold = min_rating_ablation(context, rating_dataset)
    rows = [
        [
            "RCS path (matmul vs reference)",
            rcs_dataset,
            f"speedup x{path['speedup']:.1f}",
            f"identical output: {path['identical']}",
        ],
        [
            "Pivot strategy",
            rcs_dataset,
            f"memory x{pivot['memory_ratio']:.2f} without pivot",
            f"recall {pivot['pivot_recall']:.3f} vs {pivot['symmetric_recall']:.3f}",
        ],
        [
            "Rating threshold (>=3.5)",
            rating_dataset,
            f"RCS -{threshold['rcs_shrinkage']:.0%}",
            f"recall {threshold['base_recall']:.3f} -> {threshold['pruned_recall']:.3f}, "
            f"time {threshold['base_time']:.2f}s -> {threshold['pruned_time']:.2f}s",
        ],
    ]
    return ExperimentReport(
        experiment="Ablations (Sec. II-D, VII)",
        title="Design-choice ablations",
        headers=["Ablation", "Dataset", "Cost effect", "Quality effect"],
        rows=rows,
        notes=(
            "Expectations: both RCS paths agree exactly; disabling the "
            "pivot doubles candidate storage without quality change; the "
            "rating threshold shrinks RCSs and time at a modest recall "
            "cost (the paper reports it 'improves the performance')."
        ),
        data={"rcs_path": path, "pivot": pivot, "min_rating": threshold},
    )
