"""Figure 8 — convergence behaviour on Arxiv.

Two curves per algorithm, both against cumulative scan rate:

* (a) recall of the graph under construction — KIFF starts high (its RCS
  initialisation) and terminates at a very small scan rate; the greedy
  baselines start near zero and need an order of magnitude more
  evaluations;
* (b) average graph updates per user per iteration — KIFF's updates are
  front-loaded (RCSs are ordered by decreasing common-item count), while
  the baselines show the paper's three-step random/improve/stall pattern.
"""

from __future__ import annotations

import numpy as np

from ..graph.metrics import recall
from .harness import ALGORITHMS, ExperimentContext
from .report import ExperimentReport

__all__ = ["run", "DATASET", "convergence_series"]

DATASET = "arxiv"


def convergence_series(
    context: ExperimentContext, dataset_name: str, algorithm: str
) -> dict[str, np.ndarray]:
    """Per-iteration (scan_rate, recall, updates/user) for one algorithm."""
    k = context.k_for(dataset_name)
    outcome = context.run(
        dataset_name, algorithm, k=k, track_snapshots=True
    )
    exact = context.exact(dataset_name, k)
    trace = outcome.result.trace
    n_users = context.dataset(dataset_name).n_users
    recalls = [
        recall(snapshot, exact) if snapshot is not None else np.nan
        for snapshot in (record.snapshot for record in trace.records)
    ]
    trace.attach_recalls(recalls)
    return {
        "scan_rate": trace.scan_rates(n_users),
        "recall": trace.recalls(),
        "updates_per_user": trace.updates_per_user(n_users),
        "final_recall": outcome.recall,
    }


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Figure 8 report."""
    context = context or ExperimentContext()
    rows = []
    data = {}
    for algorithm in ALGORITHMS:
        series = convergence_series(context, DATASET, algorithm)
        data[algorithm] = series
        scan = series["scan_rate"]
        rec = series["recall"]
        rows.append(
            [
                algorithm,
                len(scan),
                f"{rec[0]:.3f}" if len(rec) else "-",
                f"{rec[-1]:.3f}" if len(rec) else "-",
                f"{scan[-1]:.2%}" if len(scan) else "-",
                round(float(series["updates_per_user"][0]), 2)
                if len(scan)
                else "-",
            ]
        )
    return ExperimentReport(
        experiment="Figure 8",
        title="Convergence: recall and updates vs scan rate (Arxiv)",
        headers=[
            "Approach",
            "#iters",
            "recall@iter1",
            "final recall",
            "final scan rate",
            "updates/user@iter1",
        ],
        rows=rows,
        notes=(
            "Expectation: KIFF's first-iteration recall is already high "
            "and its final scan rate is far below the baselines'. Full "
            "series in report.data['<algorithm>']."
        ),
        data=data,
    )
