"""Table VIII — impact of halving k.

The paper reduces k from 20 to 10 (DBLP: 50 to 20) and shows that
NN-Descent and HyRec get much faster *but lose substantial recall*
(their candidate generation depends on neighbourhood size), while KIFF's
recall is unchanged — its candidates come from the RCSs, not from the
evolving graph.
"""

from __future__ import annotations

from .harness import ALGORITHMS, ExperimentContext
from .paper_values import TABLE8
from .report import ExperimentReport

__all__ = ["run"]


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Table VIII report."""
    context = context or ExperimentContext()
    headers = [
        "Dataset",
        "Approach",
        "recall (k/2)",
        "d recall",
        "wall-time (s)",
        "time ratio",
        "scan rate",
        "paper recall",
    ]
    rows = []
    data = {}
    for name in context.suite():
        base_k = context.k_for(name)
        half_k = context.k_for(name, reduced=True)
        for algorithm in ALGORITHMS:
            base = context.run(name, algorithm, k=base_k)
            reduced = context.run(name, algorithm, k=half_k)
            delta_recall = reduced.recall - base.recall
            time_ratio = (
                base.wall_time / reduced.wall_time
                if reduced.wall_time > 0
                else float("inf")
            )
            data[f"{name}/{algorithm}"] = {
                "base": base,
                "reduced": reduced,
                "delta_recall": delta_recall,
                "time_ratio": time_ratio,
            }
            rows.append(
                [
                    name,
                    algorithm,
                    round(reduced.recall, 3),
                    f"{delta_recall:+.3f}",
                    round(reduced.wall_time, 2),
                    f"/{time_ratio:.2f}",
                    f"{reduced.scan_rate:.2%}",
                    TABLE8[name][algorithm]["recall"],
                ]
            )
    return ExperimentReport(
        experiment="Table VIII",
        title="Impact of k on recall and wall-time (k halved)",
        headers=rows and headers,
        rows=rows,
        notes=(
            "Expectation: KIFF's recall is insensitive to k while "
            "NN-Descent and HyRec degrade; all approaches get faster."
        ),
        data=data,
    )
