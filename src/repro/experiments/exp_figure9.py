"""Figure 9 — impact of gamma on KIFF's wall-time.

Sweeps the number of candidates popped per iteration.  The paper finds a
shallow U-shape: very small gamma inflates iteration overhead, very large
gamma over-shoots the termination check, but overall "the impact of gamma
on the wall-time remains low".
"""

from __future__ import annotations

from .harness import ExperimentContext
from .report import ExperimentReport

__all__ = ["run", "GAMMAS", "gamma_sweep"]

GAMMAS = (5, 10, 20, 40, 80)


def gamma_sweep(
    context: ExperimentContext, dataset_name: str, gammas=GAMMAS
) -> list[dict]:
    """KIFF wall-time / scan-rate / recall per gamma on one dataset.

    The counting phase is rebuilt inside each run (it is part of KIFF's
    wall-time), but the exact graph for recall is shared via the context.
    """
    k = context.k_for(dataset_name)
    context.exact(dataset_name, k)  # warm the shared ground-truth cache
    results = []
    for gamma in gammas:
        outcome = context.run(dataset_name, "kiff", k=k, gamma=gamma)
        results.append(
            {
                "gamma": gamma,
                "wall_time": outcome.wall_time,
                "scan_rate": outcome.scan_rate,
                "recall": outcome.recall,
                "iterations": outcome.iterations,
            }
        )
    return results


def run(
    context: ExperimentContext | None = None,
    datasets: tuple[str, ...] | None = None,
) -> ExperimentReport:
    """Build the Figure 9 report."""
    context = context or ExperimentContext()
    datasets = datasets or context.suite()
    headers = [
        "Dataset",
        "gamma",
        "wall-time (s)",
        "scan rate",
        "recall",
        "#iters",
    ]
    rows = []
    data = {}
    for name in datasets:
        sweep = gamma_sweep(context, name)
        data[name] = sweep
        for point in sweep:
            rows.append(
                [
                    name,
                    point["gamma"],
                    round(point["wall_time"], 2),
                    f"{point['scan_rate']:.2%}",
                    round(point["recall"], 3),
                    point["iterations"],
                ]
            )
    return ExperimentReport(
        experiment="Figure 9",
        title="Impact of gamma on KIFF's wall-time",
        headers=headers,
        rows=rows,
        notes=(
            "Expectation: wall-time varies mildly across gamma (the paper "
            "reports a low impact, with small-gamma iteration overhead)."
        ),
        data=data,
    )
