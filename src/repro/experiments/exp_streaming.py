"""Streaming maintenance: staleness-vs-cost curves (beyond the paper).

The paper constructs its KNN graphs in one offline batch; this experiment
explores the dynamic setting its counting/refinement split enables.  A
dataset's ratings are 90%/10% split, a :class:`DynamicKnnIndex` is built
on the base and the hold-out is streamed back with a varying *refresh
interval* (events absorbed between refinement passes).  Per interval we
report:

* **staleness** — ``1 - recall`` of the maintained graph against the
  current exact converged graph, sampled just before refreshes (a stale
  graph serves wrong neighbours until the next refresh);
* **cost** — similarity evaluations spent on maintenance, and the exact
  cost a rebuild-per-refresh strategy would have paid instead.

Expectation: refreshing on every event keeps staleness at zero; widening
the interval trades a little staleness for fewer evaluations per event,
while any interval beats rebuild-per-refresh by a wide margin.
"""

from __future__ import annotations

import numpy as np

from ..core.config import KiffConfig
from ..graph.metrics import recall
from ..streaming.index import DynamicKnnIndex, cold_rebuild_graph
from ..streaming.workload import holdout_stream, replay_stream
from .harness import ExperimentContext
from .report import ExperimentReport

__all__ = ["run", "INTERVALS", "DATASET", "STREAM_FRACTION"]

#: Events absorbed between refinement passes.
INTERVALS = (1, 4, 16, 64)
DATASET = "wikipedia"
STREAM_FRACTION = 0.1
#: Staleness samples per interval (each needs an exact reference graph).
MAX_CHECKPOINTS = 4


def run(
    context: ExperimentContext | None = None,
    dataset_name: str = DATASET,
) -> ExperimentReport:
    """Build the staleness-vs-cost report."""
    context = context or ExperimentContext()
    dataset = context.dataset(dataset_name)
    k = context.k_for(dataset_name)
    base, users, items, ratings = holdout_stream(
        dataset, fraction=STREAM_FRACTION, seed=context.seed
    )
    headers = [
        "refresh interval",
        "refreshes",
        "max staleness",
        "events/s",
        "evals (incremental)",
        "evals (rebuild/refresh)",
        "savings",
    ]
    rows = []
    data = {}
    for interval in INTERVALS:
        index = DynamicKnnIndex(
            base, KiffConfig(k=k), metric=context.metric, auto_refresh=False
        )
        n_batches = -(-len(users) // interval)
        checkpoint_every = max(1, n_batches // MAX_CHECKPOINTS)
        staleness: list[float] = []
        state = {"batch": 0}

        def sample_staleness(idx: DynamicKnnIndex) -> None:
            state["batch"] += 1
            if state["batch"] % checkpoint_every:
                return
            truth = cold_rebuild_graph(
                idx.dataset, idx.config, metric=context.metric
            )
            staleness.append(1.0 - recall(idx.graph, truth))

        outcome = replay_stream(
            index, users, items, ratings,
            batch_size=interval,
            on_batch=sample_staleness,
        )
        data[interval] = {
            "replay": outcome,
            "staleness": staleness,
            "refresh_log": index.refresh_log,
        }
        rows.append(
            [
                interval,
                outcome.batches,
                round(float(np.max(staleness)) if staleness else 0.0, 4),
                round(outcome.events_per_second, 1),
                outcome.incremental_evaluations,
                outcome.rebuild_evaluations,
                f"{outcome.savings:.1f}x",
            ]
        )
    return ExperimentReport(
        experiment="Streaming maintenance (beyond the paper)",
        title=(
            f"Staleness vs cost of refresh intervals on {dataset_name} "
            f"({int(STREAM_FRACTION * 100)}% streamed, k={k})"
        ),
        headers=headers,
        rows=rows,
        notes=(
            "Staleness is 1 - recall of the maintained graph against the "
            "exact converged graph, sampled just before refreshes.  The "
            "rebuild column is the exact evaluation cost of cold-rebuilding "
            "at every refresh point (= sum of RCS totals)."
        ),
        data=data,
    )
