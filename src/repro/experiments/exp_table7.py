"""Table VII — impact of the initialisation method on initial recall.

The paper compares the recall of KIFF's implicit initialisation — each
user's top-k RCS candidates, before any refinement (``beta = inf``) —
against the random initial graph the greedy approaches start from.  The
RCS initialisation lands at 0.54-0.82 recall while random peaks at 0.15:
KIFF starts where its competitors hope to converge.
"""

from __future__ import annotations

import numpy as np

from ..baselines.random_graph import random_knn_graph
from ..core.rcs import build_rcs
from ..graph.knn_graph import KnnGraph
from ..graph.metrics import recall
from ..similarity.engine import SimilarityEngine
from .harness import ExperimentContext
from .paper_values import TABLE7
from .report import ExperimentReport

__all__ = ["run", "rcs_top_k_graph"]


def rcs_top_k_graph(engine: SimilarityEngine, k: int) -> KnnGraph:
    """The KNN graph formed by each user's k most-shared-item candidates.

    Uses the *symmetric* (un-pivoted) candidate sets — "the top k users of
    each RCS" in the paper's sense refers to each user's full candidate
    ranking, before the pivot memory optimisation splits storage.
    Similarities of the selected edges are evaluated so recall can be
    measured on similarity values.
    """
    rcs = build_rcs(engine.dataset, pivot=False)
    n_users = engine.n_users
    neighbors = np.full((n_users, k), -1, dtype=np.int64)
    sims = np.full((n_users, k), -np.inf, dtype=np.float64)
    users = []
    cands = []
    slots = []
    for user in range(n_users):
        top = rcs.candidates_of(user)[:k]
        users.extend([user] * top.size)
        cands.extend(top.tolist())
        slots.extend(range(top.size))
    if users:
        users_arr = np.asarray(users, dtype=np.int64)
        cands_arr = np.asarray(cands, dtype=np.int64)
        values = engine.batch(users_arr, cands_arr)
        neighbors[users_arr, slots] = cands_arr
        sims[users_arr, slots] = values
    return KnnGraph(neighbors, sims)


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Table VII report."""
    context = context or ExperimentContext()
    headers = [
        "Dataset",
        "top-k from RCS",
        "random",
        "paper RCS",
        "paper random",
    ]
    rows = []
    data = {}
    for name in context.suite():
        k = context.k_for(name)
        exact = context.exact(name, k)
        engine = context.engine(name)
        rcs_graph = rcs_top_k_graph(engine, k)
        rcs_recall = recall(rcs_graph, exact)
        random_graph = random_knn_graph(
            context.engine(name), k, seed=context.seed
        )
        random_recall = recall(random_graph, exact)
        data[name] = {"rcs_init": rcs_recall, "random_init": random_recall}
        rows.append(
            [
                name,
                round(rcs_recall, 3),
                round(random_recall, 3),
                TABLE7[name]["rcs_init"],
                TABLE7[name]["random_init"],
            ]
        )
    return ExperimentReport(
        experiment="Table VII",
        title="Impact of initialization method on initial recall",
        headers=headers,
        rows=rows,
        notes=(
            "Expectation: RCS top-k initialisation starts several times "
            "higher than a random graph on every dataset."
        ),
        data=data,
    )
