"""Figure 10 — KIFF vs NN-Descent across dataset density.

The paper's density study: on the ML-1..ML-5 family, run NN-Descent with
default parameters, then tune KIFF's ``beta`` *per dataset* so KIFF
reaches the same recall, and compare wall-time and scan rate at matched
quality.

Shape expectations: NN-Descent wins (or ties) on the dense end (ML-1,
ML-2); the ranking flips on the sparse end (ML-4, ML-5), with the
crossover around ML-3 (~1% density).  NN-Descent's scan rate is roughly
flat across the family while KIFF's drops sharply with density.
"""

from __future__ import annotations

import math

from .exp_table9 import family_stats
from .harness import ExperimentContext
from .report import ExperimentReport

__all__ = ["run", "match_beta", "BETA_LADDER"]

#: Candidate beta values tried from loosest to tightest.
BETA_LADDER = (math.inf, 2.0, 1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.001)

#: Tolerated recall shortfall when matching NN-Descent's recall.
_RECALL_SLACK = 0.01


def match_beta(
    context: ExperimentContext,
    dataset_name: str,
    target_recall: float,
    k: int | None = None,
):
    """Largest beta whose KIFF run reaches *target_recall* (paper protocol).

    Returns the matching run outcome.  Falls back to the tightest ladder
    value when no looser beta reaches the target.
    """
    if k is None:
        k = context.k_for(dataset_name)
    outcome = None
    for beta in BETA_LADDER:
        outcome = context.run(dataset_name, "kiff", k=k, beta=beta)
        if outcome.recall >= target_recall - _RECALL_SLACK:
            return outcome
    return outcome


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Figure 10 report."""
    context = context or ExperimentContext()
    # Materialise the family into the context's dataset cache.
    stats = family_stats(context)
    headers = [
        "Dataset",
        "density",
        "NND recall",
        "NND time (s)",
        "NND scan",
        "KIFF beta",
        "KIFF recall",
        "KIFF time (s)",
        "KIFF scan",
        "winner",
    ]
    rows = []
    data = {}
    k = context.k_for("ml-1")
    for entry in stats:
        name = entry["name"]
        nnd = context.run(name, "nn-descent", k=k)
        kiff_run = match_beta(context, name, nnd.recall, k=k)
        winner = "kiff" if kiff_run.wall_time < nnd.wall_time else "nn-descent"
        data[name] = {
            "density_percent": entry["density_percent"],
            "nnd": nnd,
            "kiff": kiff_run,
            "winner": winner,
        }
        rows.append(
            [
                name,
                f"{entry['density_percent']:.2f}%",
                round(nnd.recall, 3),
                round(nnd.wall_time, 2),
                f"{nnd.scan_rate:.2%}",
                "inf"
                if kiff_run.result.extras["beta"] == math.inf
                else kiff_run.result.extras["beta"],
                round(kiff_run.recall, 3),
                round(kiff_run.wall_time, 2),
                f"{kiff_run.scan_rate:.2%}",
                winner,
            ]
        )
    return ExperimentReport(
        experiment="Figure 10",
        title="Wall-time and scan rate vs density (KIFF vs NN-Descent)",
        headers=headers,
        rows=rows,
        notes=(
            "Expectation: NN-Descent leads on the dense end, KIFF on the "
            "sparse end, with KIFF's scan rate falling monotonically as "
            "density drops while NN-Descent's stays roughly flat."
        ),
        data=data,
    )
