"""Beta sensitivity (Section V-B2, in-text experiment).

The paper: on Arxiv, raising beta a hundredfold (0.001 -> 0.1) cuts
convergence time by ~36% and halves the scan rate, while recall drops by
only ~0.01.  This experiment sweeps beta and reports the trade-off curve.
"""

from __future__ import annotations

from .harness import ExperimentContext
from .report import ExperimentReport

__all__ = ["run", "BETAS", "DATASET"]

BETAS = (0.1, 0.05, 0.01, 0.001)
DATASET = "arxiv"


def run(
    context: ExperimentContext | None = None,
    dataset_name: str = DATASET,
) -> ExperimentReport:
    """Build the beta-sensitivity report."""
    context = context or ExperimentContext()
    k = context.k_for(dataset_name)
    headers = [
        "beta",
        "recall",
        "wall-time (s)",
        "scan rate",
        "#iters",
        "time vs beta=0.001",
    ]
    runs = {
        beta: context.run(dataset_name, "kiff", k=k, beta=beta)
        for beta in BETAS
    }
    baseline = runs[0.001]
    rows = []
    data = {}
    for beta in BETAS:
        outcome = runs[beta]
        ratio = (
            outcome.wall_time / baseline.wall_time
            if baseline.wall_time > 0
            else float("nan")
        )
        data[beta] = outcome
        rows.append(
            [
                beta,
                round(outcome.recall, 3),
                round(outcome.wall_time, 2),
                f"{outcome.scan_rate:.2%}",
                outcome.iterations,
                f"{ratio:.2f}x",
            ]
        )
    return ExperimentReport(
        experiment="Beta sensitivity (Sec. V-B2)",
        title=f"Recall / cost trade-off of beta on {dataset_name}",
        headers=headers,
        rows=rows,
        notes=(
            "Expectation: larger beta converges earlier with a lower scan "
            "rate at a small recall cost (paper: -0.01 recall for 100x "
            "beta on Arxiv)."
        ),
        data=data,
    )
