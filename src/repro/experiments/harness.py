"""Experiment harness: cached algorithm runs over registry datasets.

The paper's tables reuse each other's measurements (Table III aggregates
Table II; Figure 5 re-plots Table II's time breakdown; Table VI reuses
KIFF's iteration counts).  :class:`ExperimentContext` therefore caches
datasets, exact ground-truth graphs, and algorithm runs, so a full
regeneration of every table and figure performs each expensive computation
once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.brute_force import brute_force_knn
from ..baselines.hyrec import HyRecConfig, hyrec
from ..baselines.nndescent import NNDescentConfig, nn_descent
from ..core.config import KiffConfig
from ..core.kiff import kiff
from ..core.result import ConstructionResult
from ..datasets.bipartite import BipartiteDataset
from ..datasets.registry import EVALUATION_SUITE, load_dataset
from ..graph.knn_graph import KnnGraph
from ..graph.metrics import recall
from ..similarity.engine import SimilarityEngine

__all__ = ["ALGORITHMS", "ExperimentContext", "RunOutcome", "default_k"]

#: Algorithm display order used throughout the paper's tables.
ALGORITHMS = ("nn-descent", "hyrec", "kiff")

#: Section IV-D: "we set k = 20 (except for DBLP where we use k = 50)".
_DEFAULT_K = {"dblp": 50}
#: Table VIII halves k: "20 to 10 (from 50 to 20 for DBLP)".
_REDUCED_K = {"dblp": 20}


def default_k(dataset_name: str, reduced: bool = False) -> int:
    """The paper's per-dataset default (or Table VIII reduced) k."""
    table = _REDUCED_K if reduced else _DEFAULT_K
    return table.get(dataset_name, 10 if reduced else 20)


@dataclass
class RunOutcome:
    """One algorithm run plus its quality measurement."""

    dataset: str
    algorithm: str
    k: int
    recall: float
    result: ConstructionResult

    @property
    def wall_time(self) -> float:
        return self.result.wall_time

    @property
    def scan_rate(self) -> float:
        return self.result.scan_rate

    @property
    def iterations(self) -> int:
        return self.result.iterations

    @property
    def breakdown(self) -> dict[str, float]:
        return self.result.timer.as_breakdown()


@dataclass
class ExperimentContext:
    """Caching layer shared by all experiment modules.

    Parameters
    ----------
    scale:
        Registry scale every dataset is loaded at (``tiny`` for unit
        tests, ``laptop`` for the benchmark harness).
    metric:
        Similarity metric name used for construction *and* ground truth.
    seed:
        Seed forwarded to the randomised baselines.
    """

    scale: str = "laptop"
    metric: str = "cosine"
    seed: int = 0
    _datasets: dict = field(default_factory=dict, repr=False)
    _exact: dict = field(default_factory=dict, repr=False)
    _runs: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Datasets and ground truth
    # ------------------------------------------------------------------
    def k_for(self, name: str, reduced: bool = False) -> int:
        """Scale-aware default k.

        Laptop/paper scales use the paper's Section IV-D values; the tiny
        scale (a few hundred users, unit tests) shrinks k so that it stays
        below the typical candidate-pool size — the regime the paper
        operates in.
        """
        if self.scale == "tiny":
            return 4 if reduced else 8
        return default_k(name, reduced)

    def dataset(self, name: str) -> BipartiteDataset:
        """Load (and cache) a registry dataset at this context's scale."""
        if name not in self._datasets:
            self._datasets[name] = load_dataset(name, scale=self.scale)
        return self._datasets[name]

    def add_dataset(self, dataset: BipartiteDataset) -> None:
        """Register an externally built dataset (e.g. an ML family member)."""
        self._datasets[dataset.name] = dataset

    def engine(self, name: str) -> SimilarityEngine:
        """A *fresh* instrumented engine over the named dataset."""
        return SimilarityEngine(self.dataset(name), metric=self.metric)

    def exact(self, name: str, k: int) -> KnnGraph:
        """Cached brute-force exact KNN graph (not charged to any run)."""
        key = (name, k)
        if key not in self._exact:
            engine = self.engine(name)
            self._exact[key] = brute_force_knn(engine, k).graph
        return self._exact[key]

    # ------------------------------------------------------------------
    # Algorithm runs
    # ------------------------------------------------------------------
    def run(
        self,
        dataset_name: str,
        algorithm: str,
        k: int | None = None,
        cache: bool = True,
        **params,
    ) -> RunOutcome:
        """Run *algorithm* on *dataset_name* and measure recall.

        ``params`` are forwarded to the algorithm's config; runs are cached
        by (dataset, algorithm, k, params) so repeated table generation is
        free.
        """
        if k is None:
            k = self.k_for(dataset_name)
        key = (dataset_name, algorithm, k, tuple(sorted(params.items())))
        if cache and key in self._runs:
            return self._runs[key]
        engine = self.engine(dataset_name)
        result = self._dispatch(engine, algorithm, k, params)
        outcome = RunOutcome(
            dataset=dataset_name,
            algorithm=algorithm,
            k=k,
            recall=recall(result.graph, self.exact(dataset_name, k)),
            result=result,
        )
        if cache:
            self._runs[key] = outcome
        return outcome

    def run_all(
        self, dataset_name: str, k: int | None = None, **params
    ) -> list[RunOutcome]:
        """Run every comparison algorithm (paper order) on one dataset."""
        return [
            self.run(dataset_name, algorithm, k=k, **params)
            for algorithm in ALGORITHMS
        ]

    def suite(self) -> tuple[str, ...]:
        """The evaluation datasets of the paper, in Table I order."""
        return EVALUATION_SUITE

    def _dispatch(
        self,
        engine: SimilarityEngine,
        algorithm: str,
        k: int,
        params: dict,
    ) -> ConstructionResult:
        if algorithm == "kiff":
            return kiff(engine, KiffConfig(k=k, **params))
        if algorithm == "nn-descent":
            return nn_descent(
                engine, NNDescentConfig(k=k, seed=self.seed, **params)
            )
        if algorithm == "hyrec":
            return hyrec(engine, HyRecConfig(k=k, seed=self.seed, **params))
        if algorithm == "brute-force":
            return brute_force_knn(engine, k, count_evaluations=True, **params)
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{ALGORITHMS + ('brute-force',)}"
        )
