"""Table V — overhead of RCS construction and RCS statistics.

Measures the counting-phase cost (building the ranked candidate sets),
its share of KIFF's total wall-time, the average RCS size, and the
maximum scan rate the RCSs induce (the scan rate of a run that iterates
every RCS to exhaustion).

Shape expectations (paper): RCS construction is the bulk of KIFF's
preprocessing but stays near ~10% of total time, and the max scan rate is
close to the actual Table II scan rate because beta=0.001 exhausts most
RCSs.
"""

from __future__ import annotations

import time

from ..core.rcs import build_rcs
from .harness import ExperimentContext
from .paper_values import TABLE5
from .report import ExperimentReport

__all__ = ["run"]


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Table V report."""
    context = context or ExperimentContext()
    headers = [
        "Dataset",
        "RCS const. (ms)",
        "% of total",
        "avg |RCS|",
        "max RCS scan rate",
        "actual scan rate",
        "paper avg |RCS|",
    ]
    rows = []
    data = {}
    for name in context.suite():
        dataset = context.dataset(name)
        start = time.perf_counter()
        rcs = build_rcs(dataset)
        rcs_seconds = time.perf_counter() - start
        outcome = context.run(name, "kiff")
        total = outcome.wall_time
        pct = 100.0 * rcs_seconds / total if total > 0 else float("nan")
        data[name] = {
            "rcs_seconds": rcs_seconds,
            "pct_total": pct,
            "avg_rcs": rcs.avg_size,
            "max_scan": rcs.max_scan_rate(),
            "actual_scan": outcome.scan_rate,
        }
        rows.append(
            [
                name,
                round(rcs_seconds * 1e3, 1),
                f"{pct:.1f}%",
                round(rcs.avg_size, 1),
                f"{rcs.max_scan_rate():.2%}",
                f"{outcome.scan_rate:.2%}",
                TABLE5[name]["avg_rcs"],
            ]
        )
    return ExperimentReport(
        experiment="Table V",
        title="Overhead of RCS construction & statistics (KIFF)",
        headers=headers,
        rows=rows,
        notes=(
            "Expectation: actual scan rate is close to the RCS-induced "
            "maximum (beta=0.001 exhausts most candidate sets)."
        ),
        data=data,
    )
