"""Table II — overall performance of NN-Descent, HyRec and KIFF.

The paper's main result: recall, wall-time, scan rate and iteration count
of the three algorithms on the four evaluation datasets, plus per-dataset
"KIFF's gain" rows (recall improvement and speed-up over the average
competitor).

Shape expectations (paper): KIFF achieves ~0.99 recall everywhere, a scan
rate several times below the greedy baselines', and the best wall-time on
every dataset — with the margin growing as datasets get sparser.
"""

from __future__ import annotations

from .harness import ExperimentContext, RunOutcome
from .paper_values import TABLE2
from .report import ExperimentReport

__all__ = ["run", "kiff_gains"]


def kiff_gains(outcomes: list[RunOutcome]) -> tuple[float, float]:
    """The paper's per-dataset "KIFF's Gain" row.

    Returns ``(delta_recall, speedup)`` of KIFF against the *average* of
    the other algorithms in *outcomes*.
    """
    kiff_runs = [o for o in outcomes if o.algorithm == "kiff"]
    others = [o for o in outcomes if o.algorithm != "kiff"]
    if not kiff_runs or not others:
        raise ValueError("need a kiff run and at least one competitor")
    kiff_run = kiff_runs[0]
    avg_recall = sum(o.recall for o in others) / len(others)
    avg_time = sum(o.wall_time for o in others) / len(others)
    delta_recall = kiff_run.recall - avg_recall
    speedup = avg_time / kiff_run.wall_time if kiff_run.wall_time > 0 else float("inf")
    return delta_recall, speedup


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Table II report."""
    context = context or ExperimentContext()
    headers = [
        "Dataset",
        "Approach",
        "recall",
        "wall-time (s)",
        "scan rate",
        "#iter",
        "paper recall",
        "paper scan",
    ]
    rows: list[list] = []
    data: dict = {}
    for name in context.suite():
        outcomes = context.run_all(name)
        data[name] = outcomes
        for outcome in outcomes:
            paper = TABLE2[name][outcome.algorithm]
            rows.append(
                [
                    name,
                    outcome.algorithm,
                    round(outcome.recall, 3),
                    round(outcome.wall_time, 2),
                    f"{outcome.scan_rate:.2%}",
                    outcome.iterations,
                    paper["recall"],
                    f"{paper['scan_rate']:.2%}",
                ]
            )
        delta_recall, speedup = kiff_gains(outcomes)
        data[f"{name}/gain"] = {"delta_recall": delta_recall, "speedup": speedup}
        rows.append(
            [
                name,
                "KIFF's gain",
                f"+{delta_recall:.2f}",
                f"x{speedup:.1f}",
                "",
                "",
                "",
                "",
            ]
        )
    return ExperimentReport(
        experiment="Table II",
        title="Overall perf. of NN-Descent, HyRec & KIFF",
        headers=headers,
        rows=rows,
        notes=(
            "k=20 (DBLP: k=50), beta=0.001, gamma=2k, NN-Descent without "
            "sampling, HyRec r=0 — the paper's Section IV-D defaults."
        ),
        data=data,
    )
