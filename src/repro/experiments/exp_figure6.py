"""Figure 6 — CCDF of RCS sizes with the termination cut-offs.

Plots ``P(|RCS| >= x)`` per dataset and marks the ``|RCS|cut`` enforced by
KIFF's termination (Table VI), showing visually how much of each RCS
distribution the refinement phase actually consumes.
"""

from __future__ import annotations

import numpy as np

from ..analysis.ccdf import ccdf, ccdf_at
from ..core.rcs import build_rcs
from .harness import ExperimentContext
from .report import ExperimentReport

__all__ = ["run"]

_REFERENCE_SIZES = (1, 10, 100, 1000)


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Figure 6 report."""
    context = context or ExperimentContext()
    headers = ["Dataset"] + [f"P(|RCS|>={s})" for s in _REFERENCE_SIZES] + [
        "|RCS|cut",
        "P(|RCS|>cut)",
    ]
    rows = []
    data = {}
    for name in context.suite():
        rcs = build_rcs(context.dataset(name))
        sizes = rcs.sizes()
        xs, ps = ccdf(sizes)
        outcome = context.run(name, "kiff")
        cut = int(outcome.iterations * outcome.result.extras["gamma"])
        data[name] = {"ccdf": (xs, ps), "cut": cut}
        cells = [name]
        for size in _REFERENCE_SIZES:
            idx = np.searchsorted(xs, size)
            prob = ps[idx] if idx < xs.size else 0.0
            cells.append(f"{prob:.3f}")
        cells.append(cut)
        cells.append(f"{ccdf_at(sizes, cut + 1):.2%}")
        rows.append(cells)
    return ExperimentReport(
        experiment="Figure 6",
        title="CCDF of |RCS| with termination cut-offs",
        headers=headers,
        rows=rows,
        notes="Full curves in report.data['<dataset>']['ccdf'].",
        data=data,
    )
