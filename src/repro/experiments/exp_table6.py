"""Table VI — impact of KIFF's termination mechanism.

KIFF stops when fewer than ``beta`` changes per user happen in an
iteration; at that point each RCS has been consumed up to
``|RCS|cut = #iterations * gamma`` entries.  The table reports the cut and
the fraction of users whose RCS is longer (i.e. truncated — never fully
compared).  Figure 6 plots the same cut on the RCS-size CCDF.
"""

from __future__ import annotations

import numpy as np

from ..analysis.ccdf import ccdf_at
from .harness import ExperimentContext
from .paper_values import TABLE6
from .report import ExperimentReport

__all__ = ["run", "truncation_stats"]


def truncation_stats(
    rcs_sizes: np.ndarray, iterations: int, gamma: float
) -> tuple[int, float]:
    """``(|RCS|cut, fraction of users truncated)`` for one KIFF run."""
    cut = int(iterations * gamma)
    fraction = ccdf_at(rcs_sizes, cut + 1)
    return cut, fraction


def run(context: ExperimentContext | None = None) -> ExperimentReport:
    """Build the Table VI report."""
    context = context or ExperimentContext()
    headers = [
        "Dataset",
        "#iters",
        "|RCS|cut",
        "% users |RCS|>cut",
        "paper #iters",
        "paper % truncated",
    ]
    rows = []
    data = {}
    for name in context.suite():
        outcome = context.run(name, "kiff")
        sizes = outcome.result.extras["rcs_sizes"]
        gamma = outcome.result.extras["gamma"]
        cut, fraction = truncation_stats(sizes, outcome.iterations, gamma)
        data[name] = {
            "iterations": outcome.iterations,
            "rcs_cut": cut,
            "pct_truncated": 100.0 * fraction,
        }
        rows.append(
            [
                name,
                outcome.iterations,
                cut,
                f"{fraction:.2%}",
                TABLE6[name]["iterations"],
                f"{TABLE6[name]['pct_truncated']}%",
            ]
        )
    return ExperimentReport(
        experiment="Table VI",
        title="Impact of KIFF's termination mechanism",
        headers=headers,
        rows=rows,
        notes=(
            "Expectation: only a minority of users have truncated RCSs "
            "(the paper ranges from ~5% to ~16%)."
        ),
        data=data,
    )
