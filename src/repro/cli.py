"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    repro-kiff table2 --scale laptop
    repro-kiff all --scale tiny
    python -m repro figure8
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import EXPERIMENTS, ExperimentContext

__all__ = ["main", "build_parser"]


def _open_unit_fraction(value: str) -> float:
    """Argparse type for fractions strictly inside (0, 1)."""
    try:
        fraction = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {value!r}") from None
    if not 0.0 < fraction < 1.0:
        raise argparse.ArgumentTypeError(
            f"must be strictly between 0 and 1, got {value}"
        )
    return fraction


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-kiff",
        description=(
            "Regenerate the evaluation tables and figures of the KIFF "
            "paper (Boutet et al., ICDE 2016)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + [
            "all",
            "datasets",
            "graph-stats",
            "stream",
            "serve",
            "recover",
            "rebalance",
        ],
        help=(
            "which paper artefact to regenerate ('all' runs everything; "
            "'datasets' prints Table-I statistics for every registry "
            "preset and can cache them to disk; 'graph-stats' builds a "
            "KNN graph with KIFF and prints its analytics; 'stream' "
            "replays a hold-out rating stream through the dynamic KNN "
            "index and reports maintenance cost vs full rebuilds; "
            "'serve' answers neighbors/recommend queries over TCP from "
            "lock-free graph snapshots, optionally while a writer "
            "thread streams events; 'recover' restores a crashed "
            "streaming index from a state directory's checkpoint + "
            "write-ahead log tail; 'rebalance' restores a sharded state "
            "directory and applies a WAL-fenced shard re-balancing plan "
            "— --shards M and/or --move USER:SHARD)"
        ),
    )
    parser.add_argument(
        "directory",
        nargs="?",
        default=None,
        help=(
            "with 'recover'/'rebalance': the state directory holding "
            "wal[-<shard>].jsonl and checkpoint archives"
        ),
    )
    parser.add_argument(
        "--scale",
        default="laptop",
        choices=("tiny", "laptop", "paper"),
        help="dataset scale (default: laptop; 'paper' is very slow)",
    )
    parser.add_argument(
        "--metric",
        default="cosine",
        help="similarity metric (default: cosine)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for randomised baselines"
    )
    parser.add_argument(
        "--save-dir",
        default=None,
        help="with 'datasets': also write each preset as an edge list here",
    )
    parser.add_argument(
        "--dataset",
        default="wikipedia",
        help="with 'graph-stats'/'stream': the registry preset to build on",
    )
    parser.add_argument(
        "--k",
        type=int,
        default=None,
        help="with 'graph-stats'/'stream': neighbourhood size",
    )
    parser.add_argument(
        "--stream-fraction",
        type=_open_unit_fraction,
        default=0.1,
        help="with 'stream': fraction of ratings held out and streamed",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=10,
        help="with 'stream': events absorbed between refinement passes",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "with 'stream'/'serve': partition users across N shard "
            "workers (ShardedKnnIndex; default 1 = the sequential "
            "DynamicKnnIndex).  With --wal, events journal into "
            "per-shard wal-<i>.jsonl segments in the log's directory.  "
            "With 'rebalance': the target shard count to migrate the "
            "restored state to (default: keep the current count)"
        ),
    )
    parser.add_argument(
        "--move",
        action="append",
        metavar="USER:SHARD",
        default=None,
        help=(
            "with 'rebalance': pin user USER to shard SHARD "
            "(repeatable; combines with --shards, but a shard-count "
            "change resets previously journaled pins)"
        ),
    )
    parser.add_argument(
        "--executor",
        default="threads",
        choices=("serial", "threads", "processes"),
        help=(
            "with 'stream' + --shards > 1: how the shard refresh fans "
            "out (threads: one thread per shard; processes: one OS "
            "process per shard over shared-memory snapshots — the "
            "multi-core mode; serial: deterministic in-process order)"
        ),
    )
    parser.add_argument(
        "--kernel-backend",
        default=None,
        choices=("numpy", "numba", "torch"),
        help=(
            "with 'graph-stats'/'stream'/'serve': batch similarity "
            "kernel backend (default: the REPRO_KERNEL_BACKEND "
            "environment variable, then numpy).  numpy is always "
            "available and bit-identical; numba/torch are compiled "
            "backends that fall back to numpy with a warning when the "
            "optional dependency is missing"
        ),
    )
    parser.add_argument(
        "--wal",
        default=None,
        help=(
            "with 'stream': journal every event into this write-ahead "
            "log file (checkpoints land in the same directory)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help=(
            "with 'stream' + --wal: checkpoint the index every N "
            "batches (a seed checkpoint is always written before the "
            "stream starts)"
        ),
    )
    parser.add_argument(
        "--max-event-lag",
        type=int,
        default=None,
        help=(
            "with 'stream'/'serve': bounded-staleness scheduling — "
            "force a refresh once any dirty user trails the applied "
            "event sequence by this many events (see README "
            "'Scheduling'; any scheduler flag switches 'stream' to the "
            "scheduled burst replay)"
        ),
    )
    parser.add_argument(
        "--staleness-budget",
        type=float,
        default=None,
        help=(
            "with 'stream'/'serve': force a refresh once any dirty "
            "user has been deferred this many wall-clock seconds"
        ),
    )
    parser.add_argument(
        "--max-dirty-per-refresh",
        type=int,
        default=None,
        help=(
            "with 'stream'/'serve': cap each scheduled pass at this "
            "many dirty users, highest blast radius first; the tail "
            "defers to later passes"
        ),
    )
    parser.add_argument(
        "--queue-bound",
        type=int,
        default=None,
        help=(
            "with 'stream'/'serve': admission control — once this many "
            "dirty users queue up, submissions hit backpressure"
        ),
    )
    parser.add_argument(
        "--on-backpressure",
        default="refresh",
        choices=("refresh", "reject"),
        help=(
            "with --queue-bound: shed load with an immediate scheduled "
            "pass (refresh, default) or reject the submission and "
            "leave the retry to the caller"
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="with 'serve': interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help=(
            "with 'serve': TCP port (default: 0 = ephemeral; the bound "
            "port is printed on startup)"
        ),
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help=(
            "with 'serve': shut down cleanly after this many seconds "
            "(default: run until SIGINT/SIGTERM)"
        ),
    )
    parser.add_argument(
        "--serve-events",
        type=int,
        default=0,
        help=(
            "with 'serve': stream up to N held-out rating events "
            "through a writer thread while serving (--batch-size events "
            "per refresh), demonstrating reads during live ingestion"
        ),
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "with 'recover'/'rebalance': also cold-rebuild the "
            "converged graph on the recovered dataset and check exact "
            "parity (exit 1 on mismatch)"
        ),
    )
    return parser


def _run_datasets(args) -> int:
    """The 'datasets' utility command: stats (+ optional disk cache)."""
    from .datasets import dataset_names, describe, load_dataset, save_dataset
    from .experiments.report import render_table

    rows = []
    for name in dataset_names():
        dataset = load_dataset(name, scale=args.scale)
        rows.append(describe(dataset).as_row())
        if args.save_dir:
            save_dataset(dataset, args.save_dir)
    print(
        render_table(
            [
                "Dataset",
                "|U|",
                "|I|",
                "|E|",
                "Density",
                "Avg |UPu|",
                "Avg |IPi|",
            ],
            rows,
            title=f"Registry presets at scale={args.scale!r}",
        )
    )
    if args.save_dir:
        print(f"\nEdge lists written to {args.save_dir}")
    return 0


def _cli_k(args) -> int:
    """Scale-aware k default shared by the graph-stats/stream utilities."""
    if args.k is not None:
        return args.k
    return 8 if args.scale == "tiny" else 20


def _wants_scheduler(args) -> bool:
    """Did any scheduling flag opt this run into the scheduled path?"""
    return any(
        value is not None
        for value in (
            args.max_event_lag,
            args.staleness_budget,
            args.max_dirty_per_refresh,
            args.queue_bound,
        )
    )


def _stream_config(args, k: int):
    """Build the KiffConfig for stream/serve, folding scheduler knobs in.

    Returns ``(config, None)`` or ``(None, exit_code)`` when a knob
    fails :class:`~repro.core.config.KiffConfig` validation.
    """
    from .core import KiffConfig

    try:
        return (
            KiffConfig(
                k=k,
                kernel_backend=args.kernel_backend,
                max_event_lag=args.max_event_lag,
                staleness_budget=args.staleness_budget,
                max_dirty_per_refresh=args.max_dirty_per_refresh,
                queue_bound=args.queue_bound,
            ),
            None,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return None, 2


def _run_graph_stats(args) -> int:
    """The 'graph-stats' utility: build with KIFF, print analytics."""
    from .core import KiffConfig, kiff
    from .datasets import load_dataset
    from .experiments.report import render_table
    from .graph import analyze
    from .similarity import SimilarityEngine

    dataset = load_dataset(args.dataset, scale=args.scale)
    k = _cli_k(args)
    engine = SimilarityEngine(
        dataset, metric=args.metric, kernel_backend=args.kernel_backend
    )
    result = kiff(engine, KiffConfig(k=k, kernel_backend=args.kernel_backend))
    stats = analyze(result.graph)
    print(
        render_table(
            ["Statistic", "Value"],
            stats.as_rows(),
            title=(
                f"KIFF graph on {args.dataset} ({args.scale}), "
                f"metric={args.metric}, k={k}"
            ),
        )
    )
    print(
        f"\nConstruction: {result.iterations} iterations, "
        f"{result.evaluations:,} evaluations "
        f"(scan rate {result.scan_rate:.2%}), {result.wall_time:.2f}s"
    )
    return 0


def _run_stream(args) -> int:
    """The 'stream' utility: hold-out replay through the dynamic index."""
    from pathlib import Path

    from .datasets import load_dataset
    from .experiments.report import render_table
    from .streaming import (
        DynamicKnnIndex,
        ShardedKnnIndex,
        cold_rebuild_graph,
        holdout_stream,
        replay_stream,
    )

    if args.shards is None:
        args.shards = 1
    scheduled = _wants_scheduler(args)
    if args.checkpoint_every is not None and not args.wal:
        print("error: --checkpoint-every requires --wal", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None and args.checkpoint_every <= 0:
        print(
            f"error: --checkpoint-every must be a positive number of "
            f"batches, got {args.checkpoint_every}",
            file=sys.stderr,
        )
        return 2
    if scheduled and args.checkpoint_every is not None:
        print(
            "error: --checkpoint-every is not supported with scheduler "
            "flags (the scheduled replay owns the refresh cadence); "
            "checkpoint from the API or drop the scheduling flags",
            file=sys.stderr,
        )
        return 2
    if args.shards < 1:
        print(
            f"error: --shards must be >= 1, got {args.shards}",
            file=sys.stderr,
        )
        return 2
    dataset = load_dataset(args.dataset, scale=args.scale)
    k = _cli_k(args)
    base, users, items, ratings = holdout_stream(
        dataset, fraction=args.stream_fraction, seed=args.seed
    )
    config, code = _stream_config(args, k)
    if config is None:
        return code
    if args.shards > 1:
        index = ShardedKnnIndex(
            base,
            config,
            metric=args.metric,
            auto_refresh=False,
            n_shards=args.shards,
            executor=args.executor,
        )
    else:
        index = DynamicKnnIndex(
            base, config, metric=args.metric, auto_refresh=False
        )
    # Whatever happens mid-stream (validation error, SIGINT), the index
    # must release its worker pool and /dev/shm arena on the way out.
    try:
        state_dir = None
        if args.wal:
            wal_path = Path(args.wal)
            if args.shards > 1:
                from .persistence import PartitionedWriteAheadLog

                # Per-shard segments live in the log's directory; a bare
                # directory path is accepted directly.
                state_dir = (
                    wal_path.parent
                    if wal_path.suffix == ".jsonl"
                    else wal_path
                )
                wal = PartitionedWriteAheadLog(state_dir, args.shards)
                log_name = f"{state_dir}/wal-<shard>.jsonl"
            else:
                from .persistence import WriteAheadLog

                state_dir = wal_path.parent
                wal = WriteAheadLog(wal_path)
                log_name = str(wal_path)
            if wal.last_seq > 0:
                wal.close()
                print(
                    f"error: {log_name} already holds events up to "
                    f"sequence {wal.last_seq}; recover that state with "
                    f"'repro-kiff recover {state_dir}' or pass a fresh "
                    f"--wal path",
                    file=sys.stderr,
                )
                return 2
            index.attach_wal(wal)
            # Seed checkpoint: recovery needs a base to replay onto.
            index.checkpoint(state_dir)
        if scheduled:
            from .scheduling import (
                RefreshScheduler,
                SchedulerPolicy,
                scheduled_replay,
            )
            from .streaming import poisson_burst_sizes

            scheduler = RefreshScheduler(
                index,
                SchedulerPolicy.from_config(
                    config, on_backpressure=args.on_backpressure
                ),
            )
            # Bursty arrivals centred on --batch-size: lulls let wall
            # budgets fire, bursts exercise the queue bound.
            sizes = poisson_burst_sizes(
                len(users),
                seed=args.seed,
                base_rate=max(1.0, args.batch_size / 2),
                burst_rate=max(4.0, args.batch_size * 2),
            )
            outcome = scheduled_replay(
                scheduler, users, items, ratings, sizes
            )
            cold = cold_rebuild_graph(
                index.dataset, index.config, metric=args.metric
            )
            parity = index.graph == cold
            rows = [
                ["events streamed", outcome.events],
                ["bursts (submissions)", outcome.submissions],
                ["rejected submissions", outcome.rejected_submissions],
                ["scheduled passes", outcome.passes],
                ["drain passes", outcome.drain_passes],
                ["max queue depth", outcome.max_queue_depth],
                ["queue bound", scheduler.policy.queue_bound],
                ["backpressure signals", outcome.backpressure_signals],
                ["deferrals", outcome.deferrals],
                ["events/s", round(outcome.events_per_second, 1)],
                ["evals (incremental)", outcome.evaluations],
                ["parity with cold rebuild", parity],
            ]
            if args.shards > 1:
                rows.insert(1, ["shards", args.shards])
                rows.insert(2, ["executor", args.executor])
        else:
            outcome = replay_stream(
                index,
                users,
                items,
                ratings,
                batch_size=args.batch_size,
                checkpoint_every=(
                    args.checkpoint_every if state_dir else None
                ),
                checkpoint_dir=state_dir,
            )
            cold = cold_rebuild_graph(
                index.dataset, index.config, metric=args.metric
            )
            parity = index.graph == cold
            rows = [
                ["events streamed", outcome.events],
                ["batch size", args.batch_size],
                ["refreshes", outcome.batches],
                ["events/s", round(outcome.events_per_second, 1)],
                ["evals (incremental)", outcome.incremental_evaluations],
                ["evals (rebuild per batch)", outcome.rebuild_evaluations],
                ["savings", f"{outcome.savings:.1f}x"],
                ["parity with cold rebuild", parity],
            ]
            if args.shards > 1:
                rows.insert(1, ["shards", args.shards])
                rows.insert(2, ["executor", args.executor])
        if state_dir is not None:
            rows.append(["wal", str(index.wal.path)])
            rows.append(["last sequence", index.last_seq])
            if args.checkpoint_every is not None:
                rows.append(
                    [
                        "checkpoint cadence",
                        f"every {args.checkpoint_every} batches",
                    ]
                )
        print(
            render_table(
                ["Statistic", "Value"],
                rows,
                title=(
                    f"Streaming {int(args.stream_fraction * 100)}% of "
                    f"{args.dataset} ({args.scale}) through "
                    f"{type(index).__name__}, metric={args.metric}, k={k}"
                ),
            )
        )
        if scheduled:
            # One greppable line for smoke checks (CI asserts on it).
            print(
                f"scheduler: backpressure_signals="
                f"{outcome.backpressure_signals} "
                f"max_queue_depth={outcome.max_queue_depth} "
                f"scheduled_passes={outcome.passes} "
                f"drain_passes={outcome.drain_passes} "
                f"parity={parity}",
                flush=True,
            )
            if not parity:
                return 1
    finally:
        index.close()
    return 0


def _run_serve(args) -> int:
    """The 'serve' utility: lock-free query serving over TCP.

    Builds the index on the retained split of a hold-out stream, then
    answers newline-delimited JSON ``neighbors``/``recommend``/``stats``
    requests from pinned graph snapshots (see :mod:`repro.serving`).
    With ``--serve-events N`` a writer thread concurrently applies up
    to N held-out rating events (one refresh per ``--batch-size``
    batch), so queries are served against live, versioned publications
    while ingestion runs.  Shuts down on SIGINT/SIGTERM or after
    ``--duration`` seconds; the index is always closed on the way out.
    """
    import asyncio
    import signal
    import threading

    from .datasets import load_dataset
    from .serving import KnnServer
    from .streaming import (
        DynamicKnnIndex,
        ShardedKnnIndex,
        holdout_stream,
        ratings_batch,
    )

    if args.shards is None:
        args.shards = 1
    if args.shards < 1:
        print(
            f"error: --shards must be >= 1, got {args.shards}",
            file=sys.stderr,
        )
        return 2
    dataset = load_dataset(args.dataset, scale=args.scale)
    k = _cli_k(args)
    base, users, items, ratings = holdout_stream(
        dataset, fraction=args.stream_fraction, seed=args.seed
    )
    config, code = _stream_config(args, k)
    if config is None:
        return code
    if args.shards > 1:
        index = ShardedKnnIndex(
            base,
            config,
            metric=args.metric,
            auto_refresh=False,
            n_shards=args.shards,
            executor=args.executor,
        )
    else:
        index = DynamicKnnIndex(
            base, config, metric=args.metric, auto_refresh=False
        )
    scheduler = None
    if _wants_scheduler(args):
        from .scheduling import RefreshScheduler, SchedulerPolicy

        scheduler = RefreshScheduler(
            index,
            SchedulerPolicy.from_config(
                config, on_backpressure=args.on_backpressure
            ),
        )
    stop_writer = threading.Event()
    # Shared with the server's rebalance admin op, so a live migration
    # serializes against the writer thread's apply()/refresh() calls.
    mutate_lock = threading.Lock()
    writer = None
    try:
        n_events = min(args.serve_events, len(users))
        if n_events > 0:

            def _ingest() -> None:
                for lo in range(0, n_events, args.batch_size):
                    if stop_writer.is_set():
                        return
                    hi = min(lo + args.batch_size, n_events)
                    batch = ratings_batch(
                        users[lo:hi], items[lo:hi], ratings[lo:hi]
                    )
                    if scheduler is not None:
                        # Deferred-tail ingestion: the scheduler defers
                        # low-impact users and (if backpressure rejects)
                        # we retry after an explicit shedding pass.
                        while True:
                            with mutate_lock:
                                if scheduler.submit(batch).admitted:
                                    break
                            if stop_writer.is_set():
                                return
                            with mutate_lock:
                                scheduler.refresh()
                    else:
                        with mutate_lock:
                            index.apply(batch)
                            index.refresh()
                if scheduler is not None and not stop_writer.is_set():
                    with mutate_lock:
                        scheduler.drain()

            writer = threading.Thread(
                target=_ingest, name="repro-serve-writer", daemon=True
            )

        async def _serve() -> None:
            server = KnnServer(
                index,
                host=args.host,
                port=args.port,
                scheduler=scheduler,
                mutate_lock=mutate_lock,
            )
            await server.start()
            host, port = server.address
            print(
                f"serving {args.dataset} ({args.scale}, "
                f"{type(index).__name__}, k={k}) on {host}:{port} "
                f"at snapshot version {index.pin().version}",
                flush=True,
            )
            if writer is not None:
                writer.start()
            loop = asyncio.get_running_loop()
            done = asyncio.Event()
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, done.set)
            if args.duration is not None:
                loop.call_later(args.duration, done.set)
            await done.wait()
            await server.stop()
            print(
                f"served {server.requests} requests in {server.batches} "
                f"batches (max batch {server.max_batch_seen}), final "
                f"snapshot version {index.snapshot_version}",
                flush=True,
            )

        asyncio.run(_serve())
    finally:
        stop_writer.set()
        if writer is not None and writer.is_alive():
            writer.join(timeout=30)
        index.close()
        print("index closed", flush=True)
    return 0


def _run_recover(args) -> int:
    """The 'recover' utility: checkpoint + WAL-tail restart recovery.

    Handles both durable layouts: a flat ``wal.jsonl`` + ``checkpoint-
    *.npz`` directory restores a :class:`DynamicKnnIndex`, a partitioned
    one (``wal-<shard>.jsonl`` segments / ``checkpoint-*.shards``) a
    :class:`ShardedKnnIndex`.
    """
    from pathlib import Path

    from .experiments.report import render_table
    from .persistence import detect_state_layout
    from .streaming import DynamicKnnIndex, ShardedKnnIndex, cold_rebuild_graph

    if not args.directory:
        print(
            "error: recover needs a state directory "
            "(repro-kiff recover <dir>)",
            file=sys.stderr,
        )
        return 2
    directory = Path(args.directory)
    layout = detect_state_layout(directory)
    if layout is None:
        state = (
            "is missing"
            if not directory.is_dir()
            else "holds no recoverable streaming state (no "
            "wal[-<shard>].jsonl or checkpoint archives)"
        )
        print(
            f"error: {directory} {state}; stream with "
            f"'repro-kiff stream --wal {directory}/wal.jsonl' first",
            file=sys.stderr,
        )
        return 2
    if layout == "sharded":
        index = ShardedKnnIndex.restore(directory)
    else:
        index = DynamicKnnIndex.restore(directory)
    try:
        info = index.restore_info
        dataset = index.dataset
        rows = [
            ["layout", layout],
            ["checkpoint", info.checkpoint.name],
            ["checkpoint sequence", info.checkpoint_seq],
            ["wal events replayed", info.replayed_events],
            ["last sequence", info.last_seq],
            ["users", dataset.n_users],
            ["items", dataset.n_items],
            ["ratings", dataset.n_ratings],
            ["recovery evaluations", info.evaluations],
        ]
        if layout == "sharded":
            rows.insert(1, ["shards", index.n_shards])
        parity = None
        if args.verify:
            cold = cold_rebuild_graph(
                dataset, index.config, metric=index.engine.metric
            )
            parity = index.graph == cold
            rows.append(["parity with cold rebuild", parity])
        print(
            render_table(
                ["Statistic", "Value"],
                rows,
                title=(
                    f"Recovered {type(index).__name__} from "
                    f"{args.directory}"
                ),
            )
        )
    finally:
        index.close()
    return 0 if parity in (None, True) else 1


def _run_rebalance(args) -> int:
    """The 'rebalance' utility: restore, migrate shard ownership, exit.

    Restores the state directory (either layout — a flat one is adopted
    as sharded first), applies one WAL-fenced
    :class:`~repro.streaming.ShardPlan` built from ``--shards`` /
    ``--move``, and reports what moved.  The fence pair and the
    post-migration dirty set are journaled, so the next ``recover`` (or
    a crashed copy of this command) replays the flip exactly; a live
    server offers the same operation without a restart via the
    ``rebalance`` op of ``repro-kiff serve``.
    """
    from pathlib import Path

    from .experiments.report import render_table
    from .persistence import detect_state_layout
    from .streaming import ShardPlan, ShardedKnnIndex, cold_rebuild_graph

    if not args.directory:
        print(
            "error: rebalance needs a state directory "
            "(repro-kiff rebalance <dir> --shards M)",
            file=sys.stderr,
        )
        return 2
    moves = []
    for spec in args.move or ():
        user_text, _, shard_text = spec.partition(":")
        try:
            moves.append((int(user_text), int(shard_text)))
        except ValueError:
            print(
                f"error: --move expects USER:SHARD "
                f"(e.g. --move 12:0), got {spec!r}",
                file=sys.stderr,
            )
            return 2
    if args.shards is None and not moves:
        print(
            "error: nothing to do — pass --shards M and/or "
            "--move USER:SHARD",
            file=sys.stderr,
        )
        return 2
    directory = Path(args.directory)
    if detect_state_layout(directory) is None:
        print(
            f"error: {directory} holds no recoverable streaming state; "
            f"stream with 'repro-kiff stream --wal {directory}' first",
            file=sys.stderr,
        )
        return 2
    index = ShardedKnnIndex.restore(directory)
    parity = None
    try:
        before = index.n_shards
        try:
            stats = index.rebalance(
                ShardPlan(moves=tuple(moves), n_shards=args.shards)
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        index.refresh()  # pay the migration dirty set before exiting
        rows = [
            ["shards before", before],
            ["shards after", stats.shards_after],
            ["users moved", stats.users_moved],
            ["fence sequences", f"{stats.seq_begin}..{stats.seq_commit}"],
            ["last sequence", index.last_seq],
            ["overrides in effect", len(index.shard_map.overrides)],
            ["migration wall time", f"{stats.wall_time * 1e3:.1f}ms"],
        ]
        if args.verify:
            cold = cold_rebuild_graph(
                index.dataset, index.config, metric=index.engine.metric
            )
            parity = index.graph == cold
            rows.append(["parity with cold rebuild", parity])
        print(
            render_table(
                ["Statistic", "Value"],
                rows,
                title=f"Rebalanced {args.directory}",
            )
        )
    finally:
        index.close()
    return 0 if parity in (None, True) else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "datasets":
        return _run_datasets(args)
    if args.experiment == "graph-stats":
        return _run_graph_stats(args)
    if args.experiment == "stream":
        return _run_stream(args)
    if args.experiment == "serve":
        return _run_serve(args)
    if args.experiment == "recover":
        return _run_recover(args)
    if args.experiment == "rebalance":
        return _run_rebalance(args)
    context = ExperimentContext(
        scale=args.scale, metric=args.metric, seed=args.seed
    )
    names = (
        sorted(EXPERIMENTS)
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        report = module.run(context)
        elapsed = time.perf_counter() - start
        print(report.render())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
