"""Common result type returned by every graph-construction algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.knn_graph import KnnGraph
from ..instrumentation.counters import SimilarityCounter
from ..instrumentation.timers import PhaseTimer
from ..instrumentation.trace import ConvergenceTrace

__all__ = ["ConstructionResult"]


@dataclass
class ConstructionResult:
    """Everything a construction run produced, measurements included.

    ``extras`` carries algorithm-specific facts (e.g. KIFF's RCS statistics
    or NN-Descent's sampling configuration) that individual experiments
    report on.
    """

    graph: KnnGraph
    iterations: int
    counter: SimilarityCounter
    timer: PhaseTimer
    trace: ConvergenceTrace
    algorithm: str = "unknown"
    extras: dict = field(default_factory=dict)

    @property
    def evaluations(self) -> int:
        """Total similarity evaluations performed."""
        return self.counter.evaluations

    @property
    def scan_rate(self) -> float:
        """Scan rate over the run (the paper's cost metric)."""
        return self.counter.scan_rate(self.graph.n_users)

    @property
    def wall_time(self) -> float:
        """Total measured wall-time across phases, in seconds."""
        return self.timer.total

    def summary(self) -> dict:
        """Flat dictionary for report tables."""
        return {
            "algorithm": self.algorithm,
            "iterations": self.iterations,
            "evaluations": self.evaluations,
            "scan_rate": self.scan_rate,
            "wall_time": self.wall_time,
            **{
                f"time_{name}": value
                for name, value in self.timer.as_breakdown().items()
            },
        }
