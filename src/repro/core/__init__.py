"""KIFF: the paper's primary contribution."""

from .config import KiffConfig
from .heap import KnnHeap
from .kiff import kiff
from .rcs import (
    RankedCandidateSets,
    RcsDelta,
    build_rcs,
    build_rcs_reference,
    delta_rcs,
    count_rcs_candidates,
)
from .result import ConstructionResult

__all__ = [
    "ConstructionResult",
    "KiffConfig",
    "KnnHeap",
    "RankedCandidateSets",
    "RcsDelta",
    "build_rcs",
    "build_rcs_reference",
    "delta_rcs",
    "count_rcs_candidates",
    "kiff",
]
