"""KIFF configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["KiffConfig"]


@dataclass(frozen=True)
class KiffConfig:
    """Parameters of Algorithm 1.

    Defaults follow Section IV-D of the paper: ``k = 20``, ``gamma = 2k``,
    ``beta = 0.001``, cosine similarity (the metric lives on the engine,
    not here).

    Parameters
    ----------
    k:
        Neighbourhood size.
    gamma:
        Candidates popped from each RCS per iteration.  ``None`` means the
        paper's default ``2 * k``; ``math.inf`` exhausts every RCS in the
        first iteration, which (for metrics satisfying properties (5)/(6))
        yields the *exact* KNN graph (Section III-D).
    beta:
        Termination threshold: stop when the average number of
        neighbourhood changes per user in an iteration falls below
        ``beta``.  ``beta = math.inf`` stops after the first iteration
        (the "no convergence" configuration of Table VII).
    max_iterations:
        Safety bound; the RCS-exhaustion guarantee means KIFF always
        terminates, this just caps pathological configurations.
    min_rating:
        Optional rating threshold for RCS construction — the paper's
        future-work pruning heuristic (Section VII).
    pivot:
        Use the lower-id-stores-the-pair strategy (Section II-D).  The
        ablation benches disable it to measure its effect.
    mode:
        ``"fast"`` (vectorised, default) or ``"reference"`` (per-user
        heaps, a line-by-line transcription of Algorithm 1).
    track_snapshots:
        Keep a copy of the graph after each iteration (needed by the
        Figure 8 convergence study; costs memory).
    kernel_backend:
        Batch-scoring backend for metric evaluation: ``"numpy"``
        (default, bit-identical to the historical scipy path),
        ``"numba"`` or ``"torch"`` (compiled, tolerance-based parity),
        or any :func:`repro.similarity.kernels.register_backend` name.
        ``None`` defers to the ``REPRO_KERNEL_BACKEND`` environment
        variable, then ``"numpy"``.  Unavailable compiled backends
        degrade to ``"numpy"`` with a one-time warning.
    max_event_lag:
        Bounded-staleness scheduling knob (``None`` = unscheduled):
        maximum events absorbed since a user went dirty before a
        refresh is forced.  Consumed by
        :class:`repro.scheduling.SchedulerPolicy.from_config`.
    staleness_budget:
        Scheduling knob: maximum wall-clock seconds a dirty user may
        stay deferred before a refresh is forced.
    max_dirty_per_refresh:
        Scheduling knob: cap on dirty users processed per scheduled
        refresh; the low-blast-radius tail beyond it is deferred.
    queue_bound:
        Scheduling knob: admission-control bound on the dirty-user
        queue; submissions beyond it trigger backpressure.
    """

    k: int = 20
    gamma: float | None = None
    beta: float = 0.001
    max_iterations: int = 10_000
    min_rating: float | None = None
    pivot: bool = True
    mode: str = "fast"
    track_snapshots: bool = False
    kernel_backend: str | None = None
    max_event_lag: int | None = None
    staleness_budget: float | None = None
    max_dirty_per_refresh: int | None = None
    queue_bound: int | None = None

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.gamma is not None:
            if self.gamma != math.inf and (
                self.gamma <= 0 or int(self.gamma) != self.gamma
            ):
                raise ValueError(
                    f"gamma must be a positive integer or math.inf, got {self.gamma}"
                )
        if self.beta < 0:
            raise ValueError(f"beta must be >= 0, got {self.beta}")
        if self.max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.mode not in ("fast", "reference"):
            raise ValueError(
                f"mode must be 'fast' or 'reference', got {self.mode!r}"
            )
        if self.kernel_backend is not None:
            from ..similarity.kernels import backend_names

            if self.kernel_backend not in backend_names():
                raise ValueError(
                    f"unknown kernel_backend {self.kernel_backend!r}; "
                    f"registered backends: {backend_names()}"
                )
        if self.max_event_lag is not None and self.max_event_lag < 1:
            raise ValueError(
                f"max_event_lag must be >= 1, got {self.max_event_lag}"
            )
        if self.staleness_budget is not None and self.staleness_budget < 0:
            raise ValueError(
                f"staleness_budget must be >= 0, got {self.staleness_budget}"
            )
        if (
            self.max_dirty_per_refresh is not None
            and self.max_dirty_per_refresh < 1
        ):
            raise ValueError(
                f"max_dirty_per_refresh must be >= 1, got "
                f"{self.max_dirty_per_refresh}"
            )
        if self.queue_bound is not None and self.queue_bound < 1:
            raise ValueError(
                f"queue_bound must be >= 1, got {self.queue_bound}"
            )

    @property
    def effective_gamma(self) -> float:
        """``gamma`` with the paper's ``2k`` default applied."""
        return 2 * self.k if self.gamma is None else self.gamma
