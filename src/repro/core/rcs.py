"""KIFF's counting phase: item profiles and Ranked Candidate Sets.

Algorithm 1, lines 1-4: invert the user-item graph into item profiles
``IP_i``, then give each user ``u`` the multiset union of the item profiles
of her items, restricted to ids ``v > u`` (the pivot strategy of
Section II-D).  Each candidate's multiplicity is the number of items it
shares with ``u``; the RCS is then sorted by decreasing multiplicity and
*stripped* of the counts, "since only this order is used in the refinement
phase" (Section III-C).

Two construction paths are provided:

* :func:`build_rcs_reference` — a line-by-line transcription of the
  pseudocode (dict-of-Counter).  O(sum of |IP_i|^2); fine for tests.
* :func:`build_rcs` — the default: the co-occurrence counts for *all*
  users are exactly the sparse matrix product ``B @ B.T`` of the binarised
  rating matrix, whose strict upper triangle is the pivot-filtered
  candidate multiset.  Same output, orders of magnitude faster.

Both honour the paper's future-work heuristic (Section VII): an optional
``min_rating`` threshold that only lets positively-rated items contribute
candidates, shrinking the RCSs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..datasets.bipartite import BipartiteDataset

__all__ = [
    "RankedCandidateSets",
    "RcsDelta",
    "build_rcs",
    "build_rcs_reference",
    "count_rcs_candidates",
    "delta_rcs",
]


@dataclass(frozen=True)
class RankedCandidateSets:
    """All users' RCSs in one compressed structure.

    ``candidates[offsets[u]:offsets[u+1]]`` are user ``u``'s candidates in
    rank order (decreasing shared-item count, ascending id among ties).
    ``counts`` mirrors ``candidates`` with the shared-item multiplicities
    and is ``None`` once stripped.
    """

    offsets: np.ndarray
    candidates: np.ndarray
    counts: np.ndarray | None = None

    @property
    def n_users(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def total_candidates(self) -> int:
        """Sum of all RCS sizes — KIFF's similarity-evaluation upper bound."""
        return int(self.candidates.size)

    def candidates_of(self, user: int) -> np.ndarray:
        """User *user*'s ranked candidates (zero-copy slice)."""
        return self.candidates[self.offsets[user] : self.offsets[user + 1]]

    def counts_of(self, user: int) -> np.ndarray:
        """Shared-item counts aligned with :meth:`candidates_of`."""
        if self.counts is None:
            raise ValueError("counts were stripped; build with strip=False")
        return self.counts[self.offsets[user] : self.offsets[user + 1]]

    def sizes(self) -> np.ndarray:
        """``|RCS_u|`` for every user."""
        return np.diff(self.offsets)

    @property
    def avg_size(self) -> float:
        """Average RCS size — the "avg |RCS|" column of Table V."""
        if self.n_users == 0:
            return 0.0
        return self.total_candidates / self.n_users

    def max_scan_rate(self) -> float:
        """Scan rate if every RCS were fully iterated (Table V).

        ``max_scan = (|U| * avg|RCS|) / (|U| * (|U| - 1) / 2)
                   = 2 * avg|RCS| / (|U| - 1)``
        """
        if self.n_users < 2:
            return 0.0
        return 2.0 * self.avg_size / (self.n_users - 1)

    def stripped(self) -> "RankedCandidateSets":
        """Drop the multiplicity column (the paper's memory optimisation)."""
        return RankedCandidateSets(
            offsets=self.offsets, candidates=self.candidates, counts=None
        )


def _binarized(dataset: BipartiteDataset, min_rating: float | None):
    """The 0/1 candidacy matrix: entries rated ``>= min_rating`` (all,
    when None).  Shared by :func:`build_rcs` and
    :func:`count_rcs_candidates` so their thresholding cannot diverge."""
    binary = dataset.matrix.copy()
    if min_rating is not None:
        binary.data = np.where(binary.data >= min_rating, 1.0, 0.0)
        binary.eliminate_zeros()
    else:
        binary.data = np.ones_like(binary.data)
    return binary


def build_rcs(
    dataset: BipartiteDataset,
    pivot: bool = True,
    min_rating: float | None = None,
    strip: bool = False,
) -> RankedCandidateSets:
    """Counting phase via sparse co-occurrence product (default path).

    Parameters
    ----------
    pivot:
        Keep only candidates ``v > u`` (Section II-D).  Disable to get the
        full symmetric candidate sets (costs ~2x memory, used by the
        pivot-strategy ablation).
    min_rating:
        The paper's future-work pruning heuristic: only items rated
        ``>= min_rating`` by *both* users generate candidacies.
    strip:
        Drop the multiplicity column after sorting, as the paper's
        implementation does.  Kept by default because the analysis
        experiments (Figure 7) need the counts.
    """
    binary = _binarized(dataset, min_rating)

    # Co-occurrence: cooc[u, v] = number of items shared by u and v.
    cooc = (binary @ binary.T).tocoo()
    if pivot:
        mask = cooc.row < cooc.col
    else:
        mask = cooc.row != cooc.col
    rows = cooc.row[mask].astype(np.int64)
    cols = cooc.col[mask].astype(np.int64)
    counts = cooc.data[mask]
    return _pack(rows, cols, counts, dataset.n_users, strip)


def count_rcs_candidates(
    dataset: BipartiteDataset,
    pivot: bool = True,
    min_rating: float | None = None,
) -> int:
    """``build_rcs(...).total_candidates`` without materialising the RCSs.

    The total is the number of co-rating ordered (or, with the pivot,
    unordered) user pairs — exactly the evaluation count of a converged
    KIFF run.  Counting only needs the co-occurrence sparsity pattern, so
    the sort/pack of :func:`build_rcs` is skipped; cost accounting that
    runs per stream batch (``repro.streaming.workload``) uses this.
    """
    binary = _binarized(dataset, min_rating)
    cooc = (binary @ binary.T).tocsr()
    diagonal_entries = int(np.count_nonzero(cooc.diagonal()))
    off_diagonal = int(cooc.nnz) - diagonal_entries
    # cooc is symmetric: the strict upper triangle holds half the
    # off-diagonal entries.
    return off_diagonal // 2 if pivot else off_diagonal


@dataclass(frozen=True)
class RcsDelta:
    """The re-derived candidate rows of a dirty-user subset.

    ``users`` is the sorted array of dirty users;
    ``candidates[offsets[j]:offsets[j+1]]`` are ``users[j]``'s candidates
    in RCS rank order (decreasing shared-item count, ascending id), with
    ``counts`` aligned.  When a ``base`` was supplied to
    :func:`delta_rcs`, ``added`` / ``removed`` hold each dirty user's
    candidate-set difference against her base row.
    """

    users: np.ndarray
    offsets: np.ndarray
    candidates: np.ndarray
    counts: np.ndarray
    added: dict[int, np.ndarray] | None = None
    removed: dict[int, np.ndarray] | None = None

    @property
    def total_candidates(self) -> int:
        """Sum of the dirty users' RCS sizes."""
        return int(self.candidates.size)

    def _position(self, user: int) -> int:
        pos = int(np.searchsorted(self.users, user))
        if pos == self.users.size or self.users[pos] != user:
            raise KeyError(f"user {user} is not in this delta")
        return pos

    def candidates_of(self, user: int) -> np.ndarray:
        """Dirty user *user*'s new ranked candidates (zero-copy slice)."""
        pos = self._position(user)
        return self.candidates[self.offsets[pos] : self.offsets[pos + 1]]

    def counts_of(self, user: int) -> np.ndarray:
        """Shared-item counts aligned with :meth:`candidates_of`."""
        pos = self._position(user)
        return self.counts[self.offsets[pos] : self.offsets[pos + 1]]


def delta_rcs(
    dataset: BipartiteDataset,
    dirty_users,
    base: RankedCandidateSets | None = None,
    pivot: bool = False,
    min_rating: float | None = None,
) -> RcsDelta:
    """Candidate-set changes of *dirty_users*, from touched items only.

    The counting phase's full product ``B @ B.T`` pays an
    O(sum |IP_i|^2) floor over the whole dataset; when only a few users'
    profiles changed, their new candidate rows are exactly the sparse
    product of *their* binarised rows against ``B.T`` — the computation
    touches only the item profiles of the dirty users' items, the same
    locality guarantee KIFF's counting phase gives per user.  The
    returned rows are bit-identical to the corresponding
    :func:`build_rcs` rows on the same dataset (tests pin this), which
    is what lets the streaming subsystem re-derive candidate sets for
    dirty users without re-running the full counting phase.

    Parameters
    ----------
    base:
        Optional previous :class:`RankedCandidateSets` (built with the
        same ``pivot`` / ``min_rating``); when given, each dirty user's
        ``added`` / ``removed`` candidate difference is included.
    pivot:
        As for :func:`build_rcs`.  Note the pivot constraint applies to
        the returned rows only: with ``pivot=True`` a dirty user ``u``
        also vanishes from / appears in rows of users ``< u``, which this
        per-row delta deliberately does not chase — callers wanting
        symmetric change sets (e.g. streaming maintenance) use
        ``pivot=False``.
    min_rating:
        As for :func:`build_rcs` (an item contributes candidacies only
        when both users rate it ``>= min_rating``).
    """
    dirty = np.unique(np.asarray(list(dirty_users), dtype=np.int64))
    if dirty.size and (dirty[0] < 0 or dirty[-1] >= dataset.n_users):
        raise ValueError(
            f"dirty user ids must be in [0, {dataset.n_users}), got "
            f"[{dirty[0] if dirty.size else '-'}, {dirty[-1] if dirty.size else '-'}]"
        )
    binary = _binarized(dataset, min_rating)
    if dirty.size:
        cooc = (binary[dirty] @ binary.T).tocoo()
        local_rows = cooc.row.astype(np.int64)
        cols = cooc.col.astype(np.int64)
        counts = cooc.data
        global_rows = dirty[local_rows]
        if pivot:
            mask = global_rows < cols
        else:
            mask = global_rows != cols
        local_rows, cols, counts = local_rows[mask], cols[mask], counts[mask]
    else:
        local_rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
        counts = np.empty(0, dtype=np.float64)
    # Same per-user ordering as _pack: decreasing count, ascending id.
    order = np.lexsort((cols, -counts, local_rows))
    local_rows, cols, counts = local_rows[order], cols[order], counts[order]
    offsets = np.zeros(dirty.size + 1, dtype=np.int64)
    if local_rows.size:
        np.cumsum(
            np.bincount(local_rows, minlength=dirty.size), out=offsets[1:]
        )
    added: dict[int, np.ndarray] | None = None
    removed: dict[int, np.ndarray] | None = None
    if base is not None:
        added, removed = {}, {}
        for pos, user in enumerate(dirty.tolist()):
            new_row = cols[offsets[pos] : offsets[pos + 1]]
            old_row = (
                base.candidates_of(user)
                if user < base.n_users
                else np.empty(0, dtype=np.int64)
            )
            added[user] = np.setdiff1d(new_row, old_row)
            removed[user] = np.setdiff1d(old_row, new_row)
    return RcsDelta(
        users=dirty,
        offsets=offsets,
        candidates=cols.astype(np.int64),
        counts=counts.astype(np.int64),
        added=added,
        removed=removed,
    )


def build_rcs_reference(
    dataset: BipartiteDataset,
    pivot: bool = True,
    min_rating: float | None = None,
    strip: bool = False,
) -> RankedCandidateSets:
    """Counting phase exactly as written in Algorithm 1 (lines 1-4).

    Builds item profiles ``IP_i`` while scanning user profiles, then takes
    per-user multiset unions with the ``v > u`` pivot constraint.  Pure
    Python; used to validate :func:`build_rcs` and in the ablation bench.
    """
    # Lines 1-2: item profiles, built "at loading time".
    item_profiles: list[list[int]] = [[] for _ in range(dataset.n_items)]
    for user, items, ratings in dataset.iter_user_profiles():
        for item, rating in zip(items, ratings):
            if min_rating is not None and rating < min_rating:
                continue
            item_profiles[item].append(user)

    # Lines 3-4: multiset union over the user's items.
    rows: list[int] = []
    cols: list[int] = []
    counts: list[int] = []
    for user, items, ratings in dataset.iter_user_profiles():
        multiset: Counter = Counter()
        for item, rating in zip(items, ratings):
            if min_rating is not None and rating < min_rating:
                continue
            for other in item_profiles[item]:
                if pivot:
                    if other > user:
                        multiset[other] += 1
                elif other != user:
                    multiset[other] += 1
        for other, count in multiset.items():
            rows.append(user)
            cols.append(other)
            counts.append(count)
    return _pack(
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(counts, dtype=np.float64),
        dataset.n_users,
        strip,
    )


def _pack(
    rows: np.ndarray,
    cols: np.ndarray,
    counts: np.ndarray,
    n_users: int,
    strip: bool,
) -> RankedCandidateSets:
    """Sort candidate triples into the compressed RCS layout.

    Order within a user: decreasing shared-item count, then ascending
    candidate id (a deterministic tie-break the paper leaves unspecified).
    """
    order = np.lexsort((cols, -counts, rows))
    rows, cols, counts = rows[order], cols[order], counts[order]
    offsets = np.zeros(n_users + 1, dtype=np.int64)
    if rows.size:
        np.cumsum(np.bincount(rows, minlength=n_users), out=offsets[1:])
    rcs = RankedCandidateSets(
        offsets=offsets,
        candidates=cols.astype(np.int64),
        counts=counts.astype(np.int64),
    )
    return rcs.stripped() if strip else rcs
