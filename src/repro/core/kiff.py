"""KIFF — K-nearest-neighbour Impressively Fast and eFficient (Algorithm 1).

The algorithm has two phases:

1. **Counting** (``repro.core.rcs``): build item profiles and Ranked
   Candidate Sets.  Charged to the ``preprocessing`` timer phase, exactly
   as the paper accounts for it (Section IV-C).
2. **Refinement**: per iteration, each user pops her top ``gamma``
   remaining RCS candidates, similarities are evaluated once per popped
   pair, and — because of the pivot strategy — both endpoints' KNN heaps
   are updated.  The loop stops when the average number of neighbourhood
   changes per user drops below ``beta``, or every RCS is exhausted.

Two execution modes produce the same graph:

* ``mode="reference"`` — per-user :class:`KnnHeap` updates inside the user
  loop, a direct transcription of Algorithm 1.  The change counter ``c``
  counts every successful ``UPDATENN`` (gross changes).
* ``mode="fast"`` — one vectorised batch per iteration.  The change
  counter counts edges present after the iteration that were absent
  before (net changes), a lower bound on the gross count.  Since KIFF's
  candidates come from the precomputed RCSs — never from the evolving
  neighbourhoods — batching an iteration does not change the graph, only
  (marginally) the termination accounting; tests pin both behaviours.
"""

from __future__ import annotations

import math

import numpy as np

from ..graph.knn_graph import KnnGraph
from ..graph.updates import merge_topk
from ..layout import ID_DTYPE, SCORE_DTYPE
from ..instrumentation.trace import ConvergenceTrace
from ..similarity.engine import SimilarityEngine
from .config import KiffConfig
from .heap import KnnHeap
from .rcs import RankedCandidateSets, build_rcs
from .result import ConstructionResult

__all__ = ["kiff", "KiffConfig"]


def kiff(
    engine: SimilarityEngine,
    config: KiffConfig | None = None,
    rcs: RankedCandidateSets | None = None,
) -> ConstructionResult:
    """Run KIFF on *engine*'s dataset and return the constructed graph.

    Parameters
    ----------
    engine:
        Instrumented similarity engine (carries the dataset, the metric,
        and the counter/timer the run reports into).
    config:
        Algorithm parameters; defaults to the paper's defaults.
    rcs:
        Pre-built ranked candidate sets.  When omitted (the normal case)
        the counting phase runs here and is charged to preprocessing;
        passing one in lets experiments reuse a counting phase across
        parameter sweeps (e.g. the gamma sweep of Figure 9).
    """
    config = config or KiffConfig()
    if rcs is None:
        with engine.timer.phase("preprocessing"):
            rcs = build_rcs(
                engine.dataset,
                pivot=config.pivot,
                min_rating=config.min_rating,
            )
    trace = ConvergenceTrace(keep_snapshots=config.track_snapshots)
    if config.mode == "reference":
        graph, iterations = _refine_reference(engine, config, rcs, trace)
    else:
        graph, iterations = _refine_fast(engine, config, rcs, trace)
    return ConstructionResult(
        graph=graph,
        iterations=iterations,
        counter=engine.counter,
        timer=engine.timer,
        trace=trace,
        algorithm="kiff",
        extras={
            "rcs_avg_size": rcs.avg_size,
            "rcs_total": rcs.total_candidates,
            "rcs_max_scan_rate": rcs.max_scan_rate(),
            "rcs_sizes": rcs.sizes(),
            "gamma": config.effective_gamma,
            "beta": config.beta,
            "k": config.k,
        },
    )


# ----------------------------------------------------------------------
# Fast (vectorised) refinement
# ----------------------------------------------------------------------
def _refine_fast(
    engine: SimilarityEngine,
    config: KiffConfig,
    rcs: RankedCandidateSets,
    trace: ConvergenceTrace,
) -> tuple[KnnGraph, int]:
    n_users = engine.n_users
    k = config.k
    gamma = config.effective_gamma
    cursors = rcs.offsets[:-1].astype(np.int64).copy()
    ends = rcs.offsets[1:]
    neighbors = np.full((n_users, k), -1, dtype=ID_DTYPE)
    sims = np.full((n_users, k), -np.inf, dtype=SCORE_DTYPE)

    iteration = 0
    while iteration < config.max_iterations:
        iteration += 1
        with engine.timer.phase("candidate_selection"):
            us, vs = _pop_candidates(rcs, cursors, ends, gamma)
        if us.size == 0:
            iteration -= 1  # nothing happened; don't count the iteration
            break
        pair_sims = engine.batch(us, vs)
        with engine.timer.phase("candidate_selection"):
            if config.pivot:
                # One evaluation serves both directions (Section II-D).
                cand_users = np.concatenate([us, vs])
                cand_ids = np.concatenate([vs, us])
                cand_sims = np.concatenate([pair_sims, pair_sims])
            else:
                cand_users, cand_ids, cand_sims = us, vs, pair_sims
            neighbors, sims, changes = merge_topk(
                neighbors, sims, cand_users, cand_ids, cand_sims
            )
        snapshot = (
            KnnGraph(neighbors, sims) if config.track_snapshots else None
        )
        trace.record(iteration, engine.counter.evaluations, changes, snapshot)
        if changes / n_users < config.beta:
            break
    return KnnGraph(neighbors, sims), iteration


def _pop_candidates(
    rcs: RankedCandidateSets,
    cursors: np.ndarray,
    ends: np.ndarray,
    gamma: float,
) -> tuple[np.ndarray, np.ndarray]:
    """``top-pop(RCS_u, gamma)`` for all users at once (Algorithm 1 line 9).

    Advances ``cursors`` in place and returns the popped (user, candidate)
    pairs.
    """
    remaining = ends - cursors
    if gamma == math.inf:
        take = remaining
    else:
        take = np.minimum(remaining, int(gamma))
    active = take > 0
    if not active.any():
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    users = np.flatnonzero(active)
    counts = take[active]
    starts = cursors[users]
    total = int(counts.sum())
    # Flatten the per-user slices [start, start+count) into one index array.
    segment_offsets = np.zeros(users.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=segment_offsets[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(segment_offsets, counts)
    gather = np.repeat(starts, counts) + within
    us = np.repeat(users, counts)
    vs = rcs.candidates[gather]
    cursors[users] += counts
    return us, vs


# ----------------------------------------------------------------------
# Reference refinement (Algorithm 1, line by line)
# ----------------------------------------------------------------------
def _refine_reference(
    engine: SimilarityEngine,
    config: KiffConfig,
    rcs: RankedCandidateSets,
    trace: ConvergenceTrace,
) -> tuple[KnnGraph, int]:
    n_users = engine.n_users
    gamma = config.effective_gamma
    heaps = [KnnHeap(config.k) for _ in range(n_users)]  # line 5
    cursors = [int(rcs.offsets[u]) for u in range(n_users)]
    ends = [int(rcs.offsets[u + 1]) for u in range(n_users)]

    iteration = 0
    while iteration < config.max_iterations:  # repeat (line 6)
        iteration += 1
        changes = 0  # line 7
        popped_any = False
        for user in range(n_users):  # line 8
            end = (
                ends[user]
                if gamma == math.inf
                else min(cursors[user] + int(gamma), ends[user])
            )
            candidates = rcs.candidates[cursors[user] : end]  # line 9: top-pop
            cursors[user] = end
            for other in candidates:  # line 10 (v > u by construction)
                other = int(other)
                popped_any = True
                sim = engine.pair(user, other)  # line 11
                changes += heaps[user].update(other, sim)  # line 12
                if config.pivot:
                    changes += heaps[other].update(user, sim)
        if not popped_any:
            iteration -= 1
            break
        snapshot = (
            _heaps_to_graph(heaps, config.k) if config.track_snapshots else None
        )
        trace.record(iteration, engine.counter.evaluations, changes, snapshot)
        if changes / n_users < config.beta:  # line 13
            break
    return _heaps_to_graph(heaps, config.k), iteration


def _heaps_to_graph(heaps: list[KnnHeap], k: int) -> KnnGraph:
    # k is passed in (not read off heaps[0]) so a 0-user dataset yields
    # an empty (0, k) graph instead of an IndexError.
    n_users = len(heaps)
    neighbors = np.full((n_users, k), -1, dtype=ID_DTYPE)
    sims = np.full((n_users, k), -np.inf, dtype=SCORE_DTYPE)
    for user, heap in enumerate(heaps):
        row_neighbors, row_sims = heap.to_arrays()
        neighbors[user] = row_neighbors
        sims[user] = row_sims
    return KnnGraph(neighbors, sims)
