"""Bounded KNN heap — the ``UPDATENN`` structure of Algorithm 1.

The paper stores each user's approximate neighbourhood as "a heap of
maximum size k, with the similarity between u and its neighbors used as
priority" (Section III-C).  :class:`KnnHeap` reproduces that structure: a
min-heap on similarity holding at most ``k`` distinct neighbours, whose
:meth:`update` returns 1 when the heap changed and 0 otherwise — the value
``UPDATENN`` feeds into the change counter ``c``.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["KnnHeap"]


class KnnHeap:
    """Bounded min-heap of ``(similarity, neighbour)`` pairs.

    Ties at the eviction boundary are broken by ascending neighbour id
    (an entry only displaces the current minimum if it is strictly better
    under the ``(sim, -id)`` order), matching the canonical ordering of
    :class:`repro.graph.KnnGraph` so reference and fast paths agree
    entry-for-entry, not just in similarity values.
    """

    __slots__ = ("k", "_heap", "_members")

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        # Heap entries are (sim, -neighbor): the heap minimum is the entry
        # with the lowest similarity, highest id among equals — exactly the
        # entry canonical ordering evicts first.
        self._heap: list[tuple[float, int]] = []
        self._members: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, neighbor: int) -> bool:
        return neighbor in self._members

    @property
    def is_full(self) -> bool:
        return len(self._members) >= self.k

    def update(self, neighbor: int, sim: float) -> int:
        """Offer ``(neighbor, sim)``; return 1 if the heap changed.

        Implements ``UPDATENN`` (Algorithm 1 lines 14-16):

        * a neighbour already present is refreshed only if the new
          similarity is higher (profiles are static in this paper, so in
          practice re-offers carry the same value and return 0);
        * when not full, any new neighbour is inserted;
        * when full, the new entry must beat the current minimum under the
          ``(sim, -id)`` order to displace it.
        """
        if neighbor in self._members:
            if sim > self._members[neighbor]:
                self._remove(neighbor)
                self._insert(neighbor, sim)
                return 1
            return 0
        if not self.is_full:
            self._insert(neighbor, sim)
            return 1
        worst_sim, neg_worst_id = self._heap[0]
        if (sim, -neighbor) > (worst_sim, neg_worst_id):
            self._remove(-neg_worst_id)
            self._insert(neighbor, sim)
            return 1
        return 0

    def _insert(self, neighbor: int, sim: float) -> None:
        heapq.heappush(self._heap, (sim, -neighbor))
        self._members[neighbor] = sim

    def _remove(self, neighbor: int) -> None:
        sim = self._members.pop(neighbor)
        self._heap.remove((sim, -neighbor))
        heapq.heapify(self._heap)

    def entries(self) -> list[tuple[int, float]]:
        """``(neighbor, sim)`` pairs, best first (canonical order)."""
        return sorted(self._members.items(), key=lambda item: (-item[1], item[0]))

    def min_similarity(self) -> float:
        """Similarity of the weakest kept neighbour (-inf when empty)."""
        if not self._heap:
            return -np.inf
        return self._heap[0][0]

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Canonical ``(neighbors, sims)`` rows padded to length k."""
        from ..graph.knn_graph import MISSING

        neighbors = np.full(self.k, MISSING, dtype=np.int64)
        sims = np.full(self.k, -np.inf, dtype=np.float64)
        for slot, (neighbor, sim) in enumerate(self.entries()):
            neighbors[slot] = neighbor
            sims[slot] = sim
        return neighbors, sims
