"""Canonical compact array layout shared by every storage tier.

The million-user ceiling of this reproduction is memory, not compute:
the ROADMAP's scale item names per-user state (graph rows, candidate
multisets, reverse index, CSR indices) as the actual limit, and the
historical layout spent ``int64`` on every id and ``float64`` on every
at-rest similarity.  This module is the single place the compact
contract is written down; every layer imports its dtypes from here
instead of hard-coding ``np.int64``/``np.float64``:

* **Ids** (users, items, neighbor slots) are :data:`ID_DTYPE`
  (``int32``) at rest.  2^31 - 1 users/items is far above the paper's
  scale and the north star's; arithmetic that builds stride keys
  (``u * n + v``) must still widen to ``int64`` first — NumPy's NEP 50
  promotion keeps ``int32_array * python_int`` at int32, which silently
  overflows — which is what :func:`wide_ids` is for.
* **Similarities** are :data:`SCORE_DTYPE` (``float32``) at rest, with
  **float64 accumulation inside kernels**: every scoring path computes
  the metric formula in :data:`ACCUM_DTYPE` and casts exactly once at
  the score boundary (``repro.similarity.kernels._finalize`` and the
  engine's ``pair``/``batch``/``block``).  Casting at the boundary —
  not at storage — is what preserves bit-parity: a freshly computed
  score and a stored one are always the *same* float32 value, so
  near-tie comparisons in ``merge_topk`` can never disagree between an
  incremental refresh and a cold rebuild.
* **CSR indptr** arrays take :func:`indptr_dtype` — ``int32`` while the
  nnz fits, ``int64`` past 2^31 entries.
* **Rating data stays float64**: it is the accumulation input, and the
  canonical dataset equality/parity contracts are defined on it.

Ragged row packing (:func:`pack_rows`/:func:`unpack_rows`) turns dense
``(n, k)`` neighbor rows padded with ``MISSING`` into CSR-style
``(indptr, ids, values)`` triples holding only the present entries —
the at-rest form used by graph archives, checkpoints and published
serving snapshots, where partially filled rows (cold-start users, small
profiles) would otherwise pay for ``k`` slots each.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ACCUM_DTYPE",
    "ID_DTYPE",
    "ID_MAX",
    "LEGACY_ID_DTYPE",
    "LEGACY_SCORE_DTYPE",
    "SCORE_DTYPE",
    "compact_csr",
    "compact_ids",
    "compact_scores",
    "dtype_tags",
    "indptr_dtype",
    "legacy_nbytes",
    "nbytes",
    "pack_rows",
    "unpack_rows",
    "wide_ids",
]

#: At-rest dtype for user/item/neighbor ids.
ID_DTYPE = np.dtype(np.int32)
#: At-rest dtype for similarity scores.
SCORE_DTYPE = np.dtype(np.float32)
#: Accumulation dtype inside kernels (cast once at the score boundary).
ACCUM_DTYPE = np.dtype(np.float64)
#: The historical at-rest dtypes (checkpoint version 1, pre-compaction).
LEGACY_ID_DTYPE = np.dtype(np.int64)
LEGACY_SCORE_DTYPE = np.dtype(np.float64)
#: Largest id representable at rest.
ID_MAX = int(np.iinfo(ID_DTYPE).max)


def indptr_dtype(nnz: int) -> np.dtype:
    """The indptr dtype for a CSR block of *nnz* entries.

    ``int32`` while every offset fits (2^31 - 1 entries covers the
    million-user soak with thousands of ratings per user), ``int64``
    beyond.
    """
    return ID_DTYPE if nnz <= ID_MAX else np.dtype(np.int64)


def compact_ids(array: np.ndarray) -> np.ndarray:
    """*array* as at-rest ids (:data:`ID_DTYPE`), copying only if needed."""
    return np.asarray(array).astype(ID_DTYPE, copy=False)


def compact_scores(array: np.ndarray) -> np.ndarray:
    """*array* as at-rest scores (:data:`SCORE_DTYPE`), cast-once boundary."""
    return np.asarray(array).astype(SCORE_DTYPE, copy=False)


def wide_ids(array: np.ndarray) -> np.ndarray:
    """*array* widened to int64 for overflow-safe stride-key arithmetic."""
    return np.asarray(array).astype(np.int64, copy=False)


def compact_csr(matrix):
    """Downcast a scipy CSR/CSC matrix's index arrays in place.

    ``indices`` go to :data:`ID_DTYPE` (every column/row id fits by the
    shape check below) and ``indptr`` to :func:`indptr_dtype` of the
    nnz.  The data array is left untouched — ratings stay float64.
    Returns *matrix* for chaining.
    """
    if max(matrix.shape) - 1 <= ID_MAX:
        matrix.indices = matrix.indices.astype(ID_DTYPE, copy=False)
    matrix.indptr = matrix.indptr.astype(
        indptr_dtype(int(matrix.indptr[-1])), copy=False
    )
    return matrix


# ----------------------------------------------------------------------
# Ragged (CSR-packed) neighbor rows
# ----------------------------------------------------------------------
def pack_rows(
    neighbors: np.ndarray,
    sims: np.ndarray,
    missing: int = -1,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack dense ``(n, k)`` rows into ``(indptr, ids, values)``.

    Slots equal to *missing* are dropped; the surviving entries keep
    their within-row order, so ``unpack_rows`` restores the dense rows
    bit-identically (padding included — merge results always left-align
    present entries).
    """
    present = neighbors != missing
    counts = np.count_nonzero(present, axis=1)
    total = int(counts.sum())
    indptr = np.zeros(neighbors.shape[0] + 1, dtype=indptr_dtype(total))
    np.cumsum(counts, out=indptr[1:])
    return (
        indptr,
        compact_ids(neighbors[present]),
        compact_scores(sims[present]),
    )


def unpack_rows(
    indptr: np.ndarray,
    ids: np.ndarray,
    values: np.ndarray,
    k: int,
    missing: int = -1,
    fill_value: float = -np.inf,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand packed rows back into dense ``(n, k)`` padded arrays."""
    n = int(indptr.size - 1)
    counts = np.diff(wide_ids(indptr))
    neighbors = np.full((n, k), missing, dtype=ID_DTYPE)
    sims = np.full((n, k), fill_value, dtype=SCORE_DTYPE)
    total = int(counts.sum())
    if total:
        rows = np.repeat(np.arange(n, dtype=np.int64), counts)
        cols = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        neighbors[rows, cols] = ids
        sims[rows, cols] = values
    return neighbors, sims


# ----------------------------------------------------------------------
# Byte accounting (memory_stats / soak-bench counters)
# ----------------------------------------------------------------------
def nbytes(*arrays) -> int:
    """Total bytes of the given arrays (None entries are free)."""
    return int(
        sum(array.nbytes for array in arrays if array is not None)
    )


def legacy_nbytes(*arrays) -> int:
    """What the same arrays would cost at the historical dtypes.

    Ids and indptr re-priced at int64, scores at float64; float64
    payloads (ratings, norms) are unchanged.  This is the deterministic
    "before" column of the soak bench's bytes-per-user comparison — an
    analytic model, not a measurement, so it is exact and gateable.
    """
    total = 0
    for array in arrays:
        if array is None:
            continue
        if array.dtype == ID_DTYPE or array.dtype == SCORE_DTYPE:
            total += array.size * 8
        else:
            total += array.nbytes
    return int(total)


def dtype_tags() -> dict[str, str]:
    """The layout contract as serializable tags (checkpoint metadata)."""
    return {
        "ids": ID_DTYPE.str,
        "scores": SCORE_DTYPE.str,
        "accumulation": ACCUM_DTYPE.str,
    }
