"""Scheduled stream replay — the burst-workload driver.

:func:`scheduled_replay` is the scheduling analogue of
:func:`repro.streaming.workload.replay_stream`: it pushes an event
stream through a :class:`~repro.scheduling.RefreshScheduler` in
arrival *bursts* (variable batch sizes, e.g. from
:func:`repro.streaming.workload.poisson_burst_sizes`), retrying
rejected submissions after a shedding pass, and finishes with a
:meth:`~repro.scheduling.RefreshScheduler.drain` so the final graph is
exact.  The result separates ingest throughput from convergence cost,
which is what the scheduler benchmark gates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..streaming.events import ratings_batch
from .scheduler import RefreshScheduler

__all__ = ["ScheduledReplayResult", "scheduled_replay"]


@dataclass(frozen=True)
class ScheduledReplayResult:
    """Cost accounting for one scheduled burst replay."""

    #: Primitive events admitted and applied.
    events: int
    #: Submissions made (one per non-empty arrival burst, retries
    #: included).
    submissions: int
    #: Submissions refused by admission control before succeeding.
    rejected_submissions: int
    #: Scheduled refresh passes run during ingest (shed + triggered).
    passes: int
    #: Full passes the closing drain() needed.
    drain_passes: int
    #: Deepest the dirty-user queue ever got (sampled after every
    #: submission, before any drain).
    max_queue_depth: int
    #: Backpressure signals raised during the replay.
    backpressure_signals: int
    #: Dirty-user deferrals accumulated across passes.
    deferrals: int
    #: Similarity evaluations spent by ingest passes + drain.
    evaluations: int
    #: Wall seconds over submit/refresh/drain (instrumentation excluded).
    wall_time: float
    #: Wall seconds of the closing drain alone.
    drain_wall_time: float

    @property
    def events_per_second(self) -> float:
        """Ingest throughput, drain included (the end-to-end rate)."""
        if self.wall_time <= 0:
            return float("inf")
        return self.events / self.wall_time


def scheduled_replay(
    scheduler: RefreshScheduler,
    users: np.ndarray,
    items: np.ndarray,
    ratings: np.ndarray,
    batch_sizes,
    max_retries: int = 1000,
) -> ScheduledReplayResult:
    """Replay an event stream through *scheduler* in arrival bursts.

    ``batch_sizes`` partitions the parallel event arrays into
    successive submissions (zero-sized entries are idle ticks: the
    scheduler's :meth:`~RefreshScheduler.tick` runs instead of a
    submission, so wall-staleness budgets fire during lulls).  Under
    ``on_backpressure="reject"`` a refused submission is retried after
    an explicit :meth:`~RefreshScheduler.refresh` — the caller-side
    half of the backpressure contract — with *max_retries* bounding the
    loop against a misconfigured bound.
    """
    maintenance = scheduler.index.maintenance
    counter = scheduler.index.engine.counter
    passes_before = maintenance.scheduler_passes
    backpressure_before = maintenance.scheduler_backpressure
    deferrals_before = maintenance.scheduler_deferrals
    evaluations_before = counter.evaluations
    events = 0
    submissions = 0
    rejected = 0
    max_queue_depth = 0
    wall_time = 0.0
    offset = 0
    for size in batch_sizes:
        size = int(size)
        if size == 0:
            start = time.perf_counter()
            scheduler.tick()
            wall_time += time.perf_counter() - start
            continue
        hi = offset + size
        batch = ratings_batch(
            users[offset:hi], items[offset:hi], ratings[offset:hi]
        )
        offset = hi
        start = time.perf_counter()
        result = scheduler.submit(batch)
        retries = 0
        while not result.admitted:
            rejected += 1
            retries += 1
            if retries > max_retries:
                raise RuntimeError(
                    f"submission still rejected after {max_retries} "
                    f"refresh retries; queue bound "
                    f"{scheduler.policy.queue_bound} cannot admit a "
                    f"burst of {size} events"
                )
            scheduler.refresh()
            result = scheduler.submit(batch)
        wall_time += time.perf_counter() - start
        submissions += 1 + retries
        events += result.accepted
        max_queue_depth = max(max_queue_depth, scheduler.queue_depth)
    start = time.perf_counter()
    drain_stats = scheduler.drain()
    drain_wall_time = time.perf_counter() - start
    wall_time += drain_wall_time
    return ScheduledReplayResult(
        events=events,
        submissions=submissions,
        rejected_submissions=rejected,
        passes=maintenance.scheduler_passes
        - passes_before
        - len(drain_stats),
        drain_passes=len(drain_stats),
        max_queue_depth=max_queue_depth,
        backpressure_signals=maintenance.scheduler_backpressure
        - backpressure_before,
        deferrals=maintenance.scheduler_deferrals - deferrals_before,
        evaluations=counter.evaluations - evaluations_before,
        wall_time=wall_time,
        drain_wall_time=drain_wall_time,
    )
