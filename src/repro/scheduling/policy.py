"""Scheduling policies and backpressure signals.

A :class:`SchedulerPolicy` is the staleness/latency budget a
:class:`~repro.scheduling.RefreshScheduler` enforces between
``apply()`` and ``refresh()``.  Every knob is optional; with none set
the scheduler degenerates to the always-exact behavior of
``auto_refresh=True`` (one full refresh per submission), which is what
makes the scheduled path a strict generalisation of the PR 1–7
pipeline.

The knobs compose as *budgets*, not hints:

* ``max_event_lag`` — no dirty user may trail the applied event
  sequence by more than this many events before a refresh covers her.
* ``max_wall_staleness`` — no dirty user may stay deferred longer than
  this many wall-clock seconds (measured on the scheduler's injectable
  clock, so tests and benchmarks stay deterministic).
* ``max_dirty_per_refresh`` — a scheduled pass processes at most this
  many dirty users, highest blast radius first; the tail is deferred.
  Budget beats cap: users forced by the two staleness budgets are
  always included, even past the cap.
* ``queue_bound`` — admission control: when the dirty-user queue
  reaches the bound, a submission raises a caller-visible
  :class:`Backpressure` signal and either sheds load with an immediate
  scheduled pass (``on_backpressure="refresh"``) or rejects the events
  outright (``"reject"``), leaving the caller to retry after a
  ``refresh()``/``tick()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.config import KiffConfig

__all__ = ["Backpressure", "SchedulerPolicy"]

#: Valid admission-control reactions when the queue bound is hit.
BACKPRESSURE_MODES = ("refresh", "reject")


@dataclass(frozen=True)
class SchedulerPolicy:
    """The staleness/latency budget of one scheduler (all knobs optional).

    Parameters
    ----------
    max_event_lag:
        Maximum applied events a dirty user may trail before a refresh
        is forced (``None`` = unbounded).
    max_wall_staleness:
        Maximum wall-clock seconds a dirty user may stay deferred
        before a refresh is forced (``None`` = unbounded).
    max_dirty_per_refresh:
        Per-pass cap on dirty users processed; the low-blast-radius
        tail beyond it is deferred (``None`` = no cap: every pass is a
        full refresh).
    queue_bound:
        Dirty-user queue bound for admission control (``None`` = no
        admission control, backpressure never fires).
    on_backpressure:
        ``"refresh"`` (default) sheds load with an immediate scheduled
        pass and then admits; ``"reject"`` refuses the submission.
    """

    max_event_lag: int | None = None
    max_wall_staleness: float | None = None
    max_dirty_per_refresh: int | None = None
    queue_bound: int | None = None
    on_backpressure: str = "refresh"

    def __post_init__(self) -> None:
        if self.max_event_lag is not None and self.max_event_lag < 1:
            raise ValueError(
                f"max_event_lag must be >= 1, got {self.max_event_lag}"
            )
        if self.max_wall_staleness is not None and (
            self.max_wall_staleness < 0
            or not math.isfinite(self.max_wall_staleness)
        ):
            raise ValueError(
                f"max_wall_staleness must be finite and >= 0, got "
                f"{self.max_wall_staleness}"
            )
        if (
            self.max_dirty_per_refresh is not None
            and self.max_dirty_per_refresh < 1
        ):
            raise ValueError(
                f"max_dirty_per_refresh must be >= 1, got "
                f"{self.max_dirty_per_refresh}"
            )
        if self.queue_bound is not None and self.queue_bound < 1:
            raise ValueError(
                f"queue_bound must be >= 1, got {self.queue_bound}"
            )
        if self.on_backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                f"on_backpressure must be one of {BACKPRESSURE_MODES}, "
                f"got {self.on_backpressure!r}"
            )

    @property
    def always_exact(self) -> bool:
        """No staleness knob set: refresh fully on every submission."""
        return (
            self.max_event_lag is None
            and self.max_wall_staleness is None
            and self.max_dirty_per_refresh is None
        )

    @classmethod
    def from_config(
        cls, config: KiffConfig, on_backpressure: str = "refresh"
    ) -> "SchedulerPolicy":
        """Lift the scheduling knobs out of a :class:`KiffConfig`.

        ``staleness_budget`` maps to ``max_wall_staleness``; the other
        three knobs carry their names.  This is the path ``repro stream
        --staleness-budget/--max-dirty-per-refresh/--queue-bound``
        takes.
        """
        return cls(
            max_event_lag=config.max_event_lag,
            max_wall_staleness=config.staleness_budget,
            max_dirty_per_refresh=config.max_dirty_per_refresh,
            queue_bound=config.queue_bound,
            on_backpressure=on_backpressure,
        )


@dataclass(frozen=True)
class Backpressure:
    """Caller-visible admission-control signal (the queue bound was hit).

    Carried on the :class:`~repro.scheduling.SubmitResult` of the
    submission that hit the bound; under ``on_backpressure="reject"``
    it accompanies ``accepted == 0`` and the caller owns the retry.
    """

    #: Dirty users queued when the signal fired.
    queue_depth: int
    #: The policy's configured bound.
    queue_bound: int
    #: Events absorbed but not yet covered by any refresh.
    pending_events: int
    #: Age in seconds of the oldest queued dirty user (0.0 if none).
    oldest_age: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"backpressure: queue {self.queue_depth}/{self.queue_bound}, "
            f"{self.pending_events} pending events, oldest "
            f"{self.oldest_age:.3f}s"
        )
