"""Bounded-staleness refresh scheduling (the SLO layer).

The exact bit-identical refresh of :mod:`repro.streaming` is the wrong
default under burst traffic: the event queue outruns refresh capacity
and ingest latency collapses.  This package turns exactness into a
*convergence guarantee* — a :class:`RefreshScheduler` accepts a
:class:`SchedulerPolicy` (staleness/latency budget), prioritizes dirty
users by blast radius, defers the low-impact tail across refreshes,
and applies admission control (:class:`Backpressure`) when arrivals
outrun capacity; :meth:`RefreshScheduler.drain` restores bit-identity
to the unscheduled index.  See README "Scheduling".
"""

from .policy import Backpressure, SchedulerPolicy
from .replay import ScheduledReplayResult, scheduled_replay
from .scheduler import RefreshScheduler, SubmitResult

__all__ = [
    "Backpressure",
    "RefreshScheduler",
    "ScheduledReplayResult",
    "SchedulerPolicy",
    "SubmitResult",
    "scheduled_replay",
]
