"""The bounded-staleness refresh scheduler.

:class:`RefreshScheduler` sits between ``index.apply()`` and
``index.refresh()``: events are **submitted** through it, it decides
*when* a refinement pass runs and *which* dirty users the pass covers,
and it applies admission control when arrivals outrun refresh capacity.
Exactness becomes a convergence guarantee instead of a per-event
invariant: the graph may serve stale rows while a burst is absorbed,
and :meth:`drain` (or simply load dropping below the budgets) restores
the bit-exact converged graph — the same graph ``auto_refresh=True``
would have maintained the whole time, verified by the drain-to-parity
suite against the differential-parity corpus.

Scheduling model
----------------
Every dirty user is stamped with the event sequence and wall-clock
time she first went dirty.  A submission triggers a scheduled pass
when any stamp violates the policy's ``max_event_lag`` or
``max_wall_staleness`` budget (with neither budget set, every
submission triggers a pass — the always-exact degenerate case).  A
scheduled pass under a ``max_dirty_per_refresh`` cap selects the
highest **blast-radius** dirty users first — in-degree from the
index's :class:`~repro.graph.updates.ReverseNeighborIndex`, i.e. how
many rows a user's refresh can invalidate — and defers the low-impact
tail; budget-violating users are always included, even past the cap.

Deferral works on both index classes and all executors because it is
implemented *inside* ``refresh(dirty_subset=...)``: deferred users
simply stay in the index's dirty set, which the WAL/checkpoint layer
already journals, so a crash + :meth:`restore` resumes with the same
pending set and the same convergence guarantee.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..streaming.events import EVENT_TYPES, ApplyResult, flatten_events
from ..streaming.index import DynamicKnnIndex, RefreshStats
from .policy import Backpressure, SchedulerPolicy

__all__ = ["RefreshScheduler", "SubmitResult"]


@dataclass(frozen=True)
class SubmitResult:
    """Outcome of one :meth:`RefreshScheduler.submit` call."""

    #: Primitive events applied (0 when the submission was rejected).
    accepted: int
    #: Primitive events refused by admission control.
    rejected: int
    #: User ids minted by AddUser events in the submission.
    new_users: tuple
    #: Refresh passes this submission triggered (shed + scheduled).
    refreshes: tuple
    #: The admission-control signal, when the queue bound was hit.
    backpressure: Backpressure | None
    #: Why a scheduled pass ran: ``"eager"``, ``"event_lag"``,
    #: ``"staleness"`` or None (no budget violated, work deferred).
    trigger: str | None
    #: The index's WAL-aligned sequence after the submission.
    last_seq: int

    @property
    def admitted(self) -> bool:
        """Did the events land (False only under ``"reject"`` mode)?"""
        return self.rejected == 0


class RefreshScheduler:
    """Schedules refreshes of a maintained index under a staleness budget.

    Parameters
    ----------
    index:
        A :class:`~repro.streaming.DynamicKnnIndex` or
        :class:`~repro.streaming.ShardedKnnIndex` (any executor).  The
        scheduler takes ownership of refresh timing: ``auto_refresh``
        is forced off, and all ingestion should flow through
        :meth:`submit`.
    policy:
        The :class:`SchedulerPolicy` budget; defaults to
        ``SchedulerPolicy.from_config(index.config)`` so knobs set on
        the :class:`~repro.core.config.KiffConfig` apply directly.
    clock:
        Monotonic-seconds callable used for every wall-staleness
        decision (injectable so tests and benchmarks control time;
        defaults to :func:`time.monotonic`).

    Restored dirty users (an index recovered with ``refresh=False``)
    are stamped at construction time, so a restart resumes the same
    pending set with fresh staleness clocks.
    """

    def __init__(
        self,
        index: DynamicKnnIndex,
        policy: SchedulerPolicy | None = None,
        clock=time.monotonic,
    ):
        if index.closed:
            raise RuntimeError("cannot schedule a closed index")
        self.index = index
        self.policy = policy or SchedulerPolicy.from_config(index.config)
        self.clock = clock
        index.auto_refresh = False
        #: user -> (seq, wall) stamp of when she first went dirty.
        self._since: dict[int, tuple[int, float]] = {}
        #: Dirty users that have survived at least one scheduled pass.
        self._deferred: set[int] = set()
        self._stamp_new_dirty(index.last_seq)

    # ------------------------------------------------------------------
    # Ingestion with admission control
    # ------------------------------------------------------------------
    def submit(self, events) -> SubmitResult:
        """Apply *events* through the policy — the scheduled ingest path.

        Admission control runs first: at or past the queue bound, a
        :class:`Backpressure` signal is raised and the policy either
        sheds load with an immediate scheduled pass (``"refresh"``) or
        rejects the submission (``"reject"``, ``accepted == 0``; the
        caller retries after :meth:`refresh`/:meth:`tick`).  Admitted
        events are applied (journaled into any attached WAL), their
        dirty users stamped, and a scheduled pass runs if a staleness
        budget is violated — otherwise the work is deferred.
        """
        index = self.index
        refreshes: list[RefreshStats] = []
        backpressure = None
        if (
            self.policy.queue_bound is not None
            and self.queue_depth >= self.policy.queue_bound
        ):
            backpressure = Backpressure(
                queue_depth=self.queue_depth,
                queue_bound=self.policy.queue_bound,
                pending_events=index.pending_events,
                oldest_age=self.oldest_deferred_age,
            )
            index.maintenance.scheduler_backpressure += 1
            if self.policy.on_backpressure == "reject":
                rejected = self._count_primitives(events)
                index.maintenance.scheduler_events_rejected += rejected
                return SubmitResult(
                    accepted=0,
                    rejected=rejected,
                    new_users=(),
                    refreshes=(),
                    backpressure=backpressure,
                    trigger=None,
                    last_seq=index.last_seq,
                )
            # Shed until the queue is back under the bound — each pass
            # retires at least min(cap, depth) users and nothing new
            # arrives meanwhile, so this terminates.  The queue is then
            # bounded by queue_bound plus one burst at every admission
            # point.
            while self.queue_depth >= self.policy.queue_bound:
                refreshes.append(self.refresh())
        seq_before = index.last_seq
        applied: ApplyResult = index.apply(events)
        self._stamp_new_dirty(seq_before)
        trigger = self._violated_budget()
        if trigger is not None:
            refreshes.append(self.refresh())
        return SubmitResult(
            accepted=applied.events,
            rejected=0,
            new_users=applied.new_users,
            refreshes=tuple(refreshes),
            backpressure=backpressure,
            trigger=trigger,
            last_seq=index.last_seq,
        )

    def rebalance(self, plan):
        """Run a live shard re-balance through the staleness policy.

        Migration work is not free: every moved user goes dirty so the
        next pass seeds her destination shard's candidate cache, and
        that work counts against the same ``queue_bound`` as ingestion.
        At or past the bound the scheduler sheds first (a rebalance is
        operator-initiated, so it is never rejected), then delegates to
        ``index.rebalance(plan)``, stamps the moved users' staleness
        clocks, and runs an immediate pass if the migration itself
        violated a budget.

        Returns the index's ``RebalanceStats``.  Raises
        :class:`AttributeError` when the underlying index is not
        sharded.
        """
        index = self.index
        if (
            self.policy.queue_bound is not None
            and self.queue_depth >= self.policy.queue_bound
        ):
            index.maintenance.scheduler_backpressure += 1
            while self.queue_depth >= self.policy.queue_bound:
                self.refresh()
        seq_before = index.last_seq
        stats = index.rebalance(plan)
        self._stamp_new_dirty(seq_before)
        if self._violated_budget() is not None:
            self.refresh()
        return stats

    # ------------------------------------------------------------------
    # Scheduled refinement
    # ------------------------------------------------------------------
    def refresh(self) -> RefreshStats:
        """Run one scheduled pass over the highest-impact dirty users.

        Under a ``max_dirty_per_refresh`` cap the pass selects dirty
        users by descending blast radius (ties broken by ascending user
        id, so passes are deterministic), always including every user
        whose staleness budget is already violated; the rest defer.
        Without a cap (or with the queue under it) the pass is a full
        refresh.
        """
        index = self.index
        dirty = np.fromiter(
            sorted(index.dirty_users), dtype=np.int64
        )
        cap = self.policy.max_dirty_per_refresh
        subset = None
        if cap is not None and dirty.size > cap:
            radius = index.referrer_counts(dirty)
            # Highest blast radius first; ascending id on ties.
            order = np.lexsort((dirty, -radius))
            chosen = set(dirty[order[:cap]].tolist())
            chosen.update(self._forced_users())
            subset = chosen
        stats = index.refresh(dirty_subset=subset)
        maintenance = index.maintenance
        maintenance.scheduler_passes += 1
        maintenance.scheduler_deferrals += stats.deferred_users
        self._prune_stamps()
        self._deferred = set(index.dirty_users)
        return stats

    def tick(self) -> RefreshStats | None:
        """Idle-time budget check (no new events).

        Runs a scheduled pass when a deferred user's wall-staleness (or
        event-lag) budget has been violated since the last submission —
        the hook a serving loop calls periodically so deferred work
        converges even when ingestion goes quiet.  Returns the pass's
        stats, or None when every budget holds.
        """
        if not self.index.dirty_users:
            return None
        if self._violated_budget() is None:
            return None
        return self.refresh()

    def drain(self) -> tuple[RefreshStats, ...]:
        """Complete all deferred work — the convergence barrier.

        Runs full refreshes until the dirty set and the pending-event
        count are both empty; afterwards the graph is bit-identical to
        the one an unscheduled (``auto_refresh=True``) index would hold
        on the same event history.  Idempotent: draining a clean index
        runs nothing.
        """
        index = self.index
        passes: list[RefreshStats] = []
        while index.dirty_users or index.pending_events:
            passes.append(index.refresh())
            index.maintenance.scheduler_passes += 1
        self._since.clear()
        self._deferred.clear()
        return tuple(passes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Dirty users awaiting a refresh (the ingest queue's depth)."""
        return len(self.index.dirty_users)

    @property
    def deferred_users(self) -> int:
        """Dirty users that have survived at least one scheduled pass."""
        if not self._deferred:
            return 0
        dirty = self.index.dirty_users
        return sum(1 for user in self._deferred if user in dirty)

    @property
    def oldest_deferred_age(self) -> float:
        """Seconds since the oldest queued dirty user went dirty."""
        if not self._since:
            return 0.0
        now = self.clock()
        return max(now - wall for _, wall in self._since.values())

    @property
    def oldest_event_lag(self) -> int:
        """Events applied since the oldest queued dirty user went dirty."""
        if not self._since:
            return 0
        seq = self.index.last_seq
        return max(seq - since for since, _ in self._since.values())

    def stats(self) -> dict:
        """Scheduler state for the serving stats op (plain JSON types)."""
        index = self.index
        version = index.snapshot_version
        return {
            "queue_depth": self.queue_depth,
            "queue_bound": self.policy.queue_bound,
            "deferred_users": self.deferred_users,
            "oldest_deferred_age": self.oldest_deferred_age,
            "oldest_event_lag": self.oldest_event_lag,
            "pending_events": index.pending_events,
            "scheduler_passes": index.maintenance.scheduler_passes,
            "scheduler_deferrals": index.maintenance.scheduler_deferrals,
            "backpressure_signals": (
                index.maintenance.scheduler_backpressure
            ),
            "events_rejected": (
                index.maintenance.scheduler_events_rejected
            ),
            "last_seq": index.last_seq,
            "snapshot_version": version,
            "snapshot_lag": index.last_seq - (version or 0),
        }

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str | Path) -> Path:
        """Checkpoint the underlying index (deferred set included).

        The index's dirty set *is* the deferred queue, and checkpoints
        already serialize it — so scheduler durability needs no extra
        state beyond the staleness clocks, which restart on restore.
        """
        return self.index.checkpoint(directory)

    @classmethod
    def restore(
        cls,
        index_cls,
        directory: str | Path,
        policy: SchedulerPolicy | None = None,
        metric=None,
        fsync_every: int | None = 64,
        clock=time.monotonic,
        **index_kwargs,
    ) -> "RefreshScheduler":
        """Recover an index and resume scheduling its pending set.

        Restores *index_cls* from *directory* with ``refresh=False`` —
        checkpoint plus WAL-tail replay, **without** the closing
        refresh — so deferred-but-journaled events come back as the
        same dirty set they were before the crash, and the scheduler
        (not the restore path) decides when they are paid for.  The
        restored users' staleness clocks restart at restore time.
        """
        index = index_cls.restore(
            directory,
            metric=metric,
            refresh=False,
            fsync_every=fsync_every,
            **index_kwargs,
        )
        index.auto_refresh = False
        return cls(index, policy, clock=clock)

    def close(self) -> None:
        """Close the underlying index (idempotent)."""
        self.index.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stamp_new_dirty(self, seq_before: int) -> None:
        """Stamp users that went dirty since the last bookkeeping point."""
        now = self.clock()
        since = self._since
        for user in self.index.dirty_users:
            if user not in since:
                since[user] = (seq_before, now)

    def _prune_stamps(self) -> None:
        """Drop stamps of users a completed pass just cleaned."""
        dirty = self.index.dirty_users
        self._since = {
            user: stamp
            for user, stamp in self._since.items()
            if user in dirty
        }

    def _violated_budget(self) -> str | None:
        """Which budget (if any) forces a pass right now."""
        if not self.index.dirty_users:
            return None
        policy = self.policy
        if (
            policy.max_event_lag is None
            and policy.max_wall_staleness is None
        ):
            # No staleness budget: every submission refreshes (possibly
            # capped, deferring the tail) — the eager degenerate case.
            return "eager"
        if (
            policy.max_event_lag is not None
            and self.oldest_event_lag >= policy.max_event_lag
        ):
            return "event_lag"
        if (
            policy.max_wall_staleness is not None
            and self.oldest_deferred_age >= policy.max_wall_staleness
        ):
            return "staleness"
        return None

    def _forced_users(self) -> list[int]:
        """Queued users whose individual staleness budget is violated."""
        policy = self.policy
        if (
            policy.max_event_lag is None
            and policy.max_wall_staleness is None
        ):
            return []
        seq = self.index.last_seq
        now = self.clock()
        forced = []
        for user, (since_seq, since_wall) in self._since.items():
            if (
                policy.max_event_lag is not None
                and seq - since_seq >= policy.max_event_lag
            ) or (
                policy.max_wall_staleness is not None
                and now - since_wall >= policy.max_wall_staleness
            ):
                forced.append(user)
        return forced

    @staticmethod
    def _count_primitives(events) -> int:
        if isinstance(events, EVENT_TYPES):
            events = (events,)
        return sum(len(flatten_events(event)) for event in events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RefreshScheduler(queue_depth={self.queue_depth}, "
            f"deferred={self.deferred_users}, policy={self.policy})"
        )
