"""Dataset substrate: bipartite user-item datasets, generators, presets."""

from .bipartite import BipartiteDataset, DatasetError
from .checkins import gowalla_like
from .coauthorship import arxiv_like, dblp_like
from .generators import (
    GeneratorConfig,
    large_scale_dataset,
    power_law_bipartite,
)
from .loaders import load_dataset_dir, load_edge_list, save_dataset, save_edge_list
from .movielens import movielens_family, movielens_like
from .mutable import MutableBipartiteBuilder
from .registry import (
    EVALUATION_SUITE,
    SCALES,
    dataset_names,
    load_dataset,
    load_evaluation_suite,
    load_movielens_family,
)
from .stats import DatasetStats, describe, profile_size_ccdf
from .transforms import (
    filter_items,
    filter_users,
    iterative_core,
    train_test_split,
)
from .votes import wikipedia_like

__all__ = [
    "BipartiteDataset",
    "DatasetError",
    "DatasetStats",
    "EVALUATION_SUITE",
    "GeneratorConfig",
    "MutableBipartiteBuilder",
    "SCALES",
    "arxiv_like",
    "dataset_names",
    "dblp_like",
    "describe",
    "filter_items",
    "filter_users",
    "iterative_core",
    "gowalla_like",
    "load_dataset",
    "load_dataset_dir",
    "load_edge_list",
    "load_evaluation_suite",
    "load_movielens_family",
    "movielens_family",
    "movielens_like",
    "large_scale_dataset",
    "power_law_bipartite",
    "profile_size_ccdf",
    "save_dataset",
    "save_edge_list",
    "train_test_split",
    "wikipedia_like",
]
