"""Gowalla-style location check-in dataset generator.

In the paper's Gowalla dataset a user's profile lists the locations she
checked in at, rated by visit count.  The dataset is characterised by a
huge, sparsely shared item universe: 1.28M locations for 107k users, an
average item profile of only 3.1 users, and a density of 0.0029%.
"""

from __future__ import annotations

from .bipartite import BipartiteDataset
from .generators import GeneratorConfig, power_law_bipartite

__all__ = ["gowalla_like"]

#: Published shape of the paper's Gowalla dataset (Table I).
GOWALLA_PAPER_SHAPE = {
    "n_users": 107_092,
    "n_items": 1_280_969,
    "n_ratings": 3_981_334,
}


def gowalla_like(
    n_users: int = 5_000,
    n_items: int = 40_000,
    avg_checkins: float = 26.0,
    seed: int = 44,
    name: str = "gowalla",
) -> BipartiteDataset:
    """Generate a Gowalla-like check-in dataset.

    Keeps the defining properties: an item universe much larger than the
    user population (items >> users, so the average item profile stays in
    the low single digits), count-valued ratings, and a density orders of
    magnitude below the Wikipedia/Arxiv datasets.
    """
    n_ratings = int(n_users * avg_checkins)
    config = GeneratorConfig(
        name=name,
        n_users=n_users,
        n_items=n_items,
        n_ratings=n_ratings,
        user_exponent=0.7,
        item_exponent=0.45,
        rating_model="count",
        symmetric=False,
        seed=seed,
        min_profile_size=3,
    )
    return power_law_bipartite(config)
