"""Dataset statistics: the columns of Table I and the CCDFs of Figure 4."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bipartite import BipartiteDataset

__all__ = ["DatasetStats", "describe", "profile_size_ccdf"]


@dataclass(frozen=True)
class DatasetStats:
    """One row of the paper's Table I."""

    name: str
    n_users: int
    n_items: int
    n_ratings: int
    density_percent: float
    avg_user_profile: float
    avg_item_profile: float

    def as_row(self) -> list:
        """Values in Table I column order."""
        return [
            self.name,
            self.n_users,
            self.n_items,
            self.n_ratings,
            f"{self.density_percent:.4f}%",
            f"{self.avg_user_profile:.1f}",
            f"{self.avg_item_profile:.1f}",
        ]


def describe(dataset: BipartiteDataset) -> DatasetStats:
    """Compute the Table I statistics of *dataset*."""
    return DatasetStats(
        name=dataset.name,
        n_users=dataset.n_users,
        n_items=dataset.n_items,
        n_ratings=dataset.n_ratings,
        density_percent=dataset.density_percent,
        avg_user_profile=dataset.avg_user_profile_size,
        avg_item_profile=dataset.avg_item_profile_size,
    )


def profile_size_ccdf(
    dataset: BipartiteDataset, axis: str = "user"
) -> tuple[np.ndarray, np.ndarray]:
    """CCDF of profile sizes, as plotted in Figure 4 of the paper.

    Returns ``(sizes, probabilities)`` where ``probabilities[j]`` is
    ``P(|profile| >= sizes[j])``.  ``axis`` selects ``"user"`` (``|UP_u|``,
    Fig. 4a) or ``"item"`` (``|IP_i|``, Fig. 4b).
    """
    if axis == "user":
        sizes = dataset.user_profile_sizes()
    elif axis == "item":
        sizes = dataset.item_profile_sizes()
    else:
        raise ValueError(f"axis must be 'user' or 'item', got {axis!r}")
    from ..analysis.ccdf import ccdf

    return ccdf(sizes)
