"""Bipartite user-item dataset substrate.

Every algorithm in this library operates on a :class:`BipartiteDataset`: a
set of *users* connected to a set of *items* through weighted edges
(ratings), exactly the labelled bipartite graph ``G = (V, E, rho)`` of
Section III-A of the KIFF paper.  The dataset is stored as a
``scipy.sparse.csr_matrix`` of shape ``(n_users, n_items)`` whose row ``u``
is the *user profile* ``UP_u`` and, after a CSC conversion, whose column
``i`` is the *item profile* ``IP_i``.

The class is deliberately immutable: derivation helpers such as
:meth:`BipartiteDataset.sparsify` return new datasets, never mutate in
place, so experiment sweeps (e.g. the MovieLens density family of Table IX)
can share one parent dataset safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..layout import compact_csr

__all__ = [
    "BipartiteDataset",
    "DatasetError",
]


class DatasetError(ValueError):
    """Raised when a dataset is malformed or an operation is invalid."""


def _canonicalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Return *matrix* as a canonical CSR matrix.

    Canonical means: CSR format, float64 data, duplicate entries summed,
    explicit zeros removed, column indices sorted within each row — and
    the compact index layout (:mod:`repro.layout`): int32 indices, an
    indptr sized by the nnz.  All downstream code (profile views,
    merge-based similarity, the shared-memory transport) relies on
    these invariants.  The rating data itself stays float64: it is the
    kernels' accumulation input.
    """
    csr = sp.csr_matrix(matrix, dtype=np.float64, copy=True)
    csr.sum_duplicates()
    csr.eliminate_zeros()
    csr.sort_indices()
    return compact_csr(csr)


@dataclass(frozen=True)
class BipartiteDataset:
    """An immutable user-item rating dataset.

    Parameters
    ----------
    matrix:
        Sparse ``(n_users, n_items)`` rating matrix.  A stored entry
        ``matrix[u, i] = r`` means user ``u`` rated item ``i`` with value
        ``r`` (``r = 1.0`` for binary / single-valued datasets).
    name:
        Human-readable dataset name, used by reports and the registry.
    symmetric:
        True for co-authorship style datasets (Arxiv, DBLP) where users and
        items are the same population and the matrix is square.
    """

    matrix: sp.csr_matrix
    name: str = "unnamed"
    symmetric: bool = False
    _csc_cache: list = field(default_factory=list, repr=False, compare=False)

    def __post_init__(self) -> None:
        canonical = _canonicalize(self.matrix)
        if canonical.shape[0] == 0 or canonical.shape[1] == 0:
            raise DatasetError(
                f"dataset {self.name!r} must have at least one user and one "
                f"item, got shape {canonical.shape}"
            )
        if canonical.data.size and not np.all(np.isfinite(canonical.data)):
            raise DatasetError(f"dataset {self.name!r} contains non-finite ratings")
        if self.symmetric and canonical.shape[0] != canonical.shape[1]:
            raise DatasetError(
                f"symmetric dataset {self.name!r} must be square, got shape "
                f"{canonical.shape}"
            )
        object.__setattr__(self, "matrix", canonical)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        users: np.ndarray | list,
        items: np.ndarray | list,
        ratings: np.ndarray | list | None = None,
        n_users: int | None = None,
        n_items: int | None = None,
        name: str = "unnamed",
        symmetric: bool = False,
    ) -> "BipartiteDataset":
        """Build a dataset from parallel edge arrays.

        ``ratings`` defaults to all-ones (binary dataset).  ``n_users`` /
        ``n_items`` default to ``max(id) + 1``; passing them explicitly
        keeps users or items with no edges in the universe.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise DatasetError(
                f"users and items must have equal length, got "
                f"{users.size} vs {items.size}"
            )
        if ratings is None:
            ratings = np.ones(users.size, dtype=np.float64)
        else:
            ratings = np.asarray(ratings, dtype=np.float64)
            if ratings.shape != users.shape:
                raise DatasetError(
                    f"ratings length {ratings.size} does not match edge "
                    f"count {users.size}"
                )
        if users.size and (users.min() < 0 or items.min() < 0):
            raise DatasetError("user and item ids must be non-negative")
        shape_users = n_users if n_users is not None else (int(users.max()) + 1 if users.size else 1)
        shape_items = n_items if n_items is not None else (int(items.max()) + 1 if items.size else 1)
        if users.size and users.max() >= shape_users:
            raise DatasetError(
                f"user id {int(users.max())} out of range for n_users={shape_users}"
            )
        if items.size and items.max() >= shape_items:
            raise DatasetError(
                f"item id {int(items.max())} out of range for n_items={shape_items}"
            )
        matrix = sp.csr_matrix(
            (ratings, (users, items)), shape=(shape_users, shape_items)
        )
        return cls(matrix=matrix, name=name, symmetric=symmetric)

    @classmethod
    def from_profiles(
        cls,
        profiles: dict[int, dict[int, float]] | list[dict[int, float]],
        n_users: int | None = None,
        n_items: int | None = None,
        name: str = "unnamed",
        symmetric: bool = False,
    ) -> "BipartiteDataset":
        """Build a dataset from per-user ``{item: rating}`` dictionaries.

        This mirrors the paper's ``UP_u`` dictionaries and is the most
        convenient constructor for hand-written fixtures in tests.
        """
        if isinstance(profiles, dict):
            pairs = profiles.items()
        else:
            pairs = enumerate(profiles)
        users: list[int] = []
        items: list[int] = []
        ratings: list[float] = []
        max_user = -1
        for user, profile in pairs:
            max_user = max(max_user, int(user))
            for item, rating in profile.items():
                users.append(int(user))
                items.append(int(item))
                ratings.append(float(rating))
        return cls.from_edges(
            users,
            items,
            ratings,
            n_users=n_users if n_users is not None else max(max_user + 1, 1),
            n_items=n_items,
            name=name,
            symmetric=symmetric,
        )

    # ------------------------------------------------------------------
    # Basic shape / statistics
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of users ``|U|`` (rows)."""
        return int(self.matrix.shape[0])

    @property
    def n_items(self) -> int:
        """Number of items ``|I|`` (columns)."""
        return int(self.matrix.shape[1])

    @property
    def n_ratings(self) -> int:
        """Number of ratings ``|E|`` (stored entries)."""
        return int(self.matrix.nnz)

    @property
    def density(self) -> float:
        """Bipartite density ``|E| / (|U| * |I|)`` as a fraction in [0, 1]."""
        return self.n_ratings / (self.n_users * self.n_items)

    @property
    def density_percent(self) -> float:
        """Density expressed in percent, as Table I of the paper reports it."""
        return 100.0 * self.density

    def user_profile_sizes(self) -> np.ndarray:
        """Array of ``|UP_u|`` for every user (length ``n_users``)."""
        return np.diff(self.matrix.indptr)

    def item_profile_sizes(self) -> np.ndarray:
        """Array of ``|IP_i|`` for every item (length ``n_items``)."""
        return np.diff(self.csc.indptr)

    @property
    def avg_user_profile_size(self) -> float:
        """Mean ``|UP_u|`` — the "Avg |UPu|" column of Table I."""
        return self.n_ratings / self.n_users

    @property
    def avg_item_profile_size(self) -> float:
        """Mean ``|IP_i|`` — the "Avg |IPi|" column of Table I."""
        return self.n_ratings / self.n_items

    # ------------------------------------------------------------------
    # Profile access
    # ------------------------------------------------------------------
    @property
    def csc(self) -> sp.csc_matrix:
        """CSC view of the matrix: column ``i`` is the item profile ``IP_i``.

        Computed lazily and cached; the conversion is the "item profile
        construction" overhead the paper measures in Table IV.
        """
        if not self._csc_cache:
            self._csc_cache.append(self.matrix.tocsc())
        return self._csc_cache[0]

    def user_items(self, user: int) -> np.ndarray:
        """Sorted item ids rated by *user* (a zero-copy CSR slice)."""
        self._check_user(user)
        start, end = self.matrix.indptr[user], self.matrix.indptr[user + 1]
        return self.matrix.indices[start:end]

    def user_ratings(self, user: int) -> np.ndarray:
        """Ratings aligned with :meth:`user_items` for *user*."""
        self._check_user(user)
        start, end = self.matrix.indptr[user], self.matrix.indptr[user + 1]
        return self.matrix.data[start:end]

    def user_profile(self, user: int) -> dict[int, float]:
        """The profile ``UP_u`` as a plain ``{item: rating}`` dictionary."""
        return dict(
            zip(self.user_items(user).tolist(), self.user_ratings(user).tolist())
        )

    def item_users(self, item: int) -> np.ndarray:
        """Sorted user ids that rated *item* — the item profile ``IP_i``."""
        self._check_item(item)
        csc = self.csc
        start, end = csc.indptr[item], csc.indptr[item + 1]
        return csc.indices[start:end]

    def iter_user_profiles(self):
        """Yield ``(user, item_ids, ratings)`` for every user, in order."""
        indptr, indices, data = (
            self.matrix.indptr,
            self.matrix.indices,
            self.matrix.data,
        )
        for user in range(self.n_users):
            start, end = indptr[user], indptr[user + 1]
            yield user, indices[start:end], data[start:end]

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def binarized(self, name: str | None = None) -> "BipartiteDataset":
        """Return a copy with all ratings replaced by 1.0."""
        matrix = self.matrix.copy()
        matrix.data = np.ones_like(matrix.data)
        return BipartiteDataset(
            matrix=matrix,
            name=name or f"{self.name}-binary",
            symmetric=self.symmetric,
        )

    def sparsify(
        self,
        keep_fraction: float,
        seed: int | np.random.Generator = 0,
        name: str | None = None,
        min_profile_size: int = 0,
    ) -> "BipartiteDataset":
        """Randomly keep *keep_fraction* of the ratings.

        This is exactly the procedure the paper uses to derive the ML-2 to
        ML-5 datasets from ML-1 (Section V-B3): "we progressively remove
        randomly chosen ratings".  ``min_profile_size`` optionally protects
        that many ratings per user from removal, so no user drops to an
        empty profile.
        """
        if not 0.0 < keep_fraction <= 1.0:
            raise DatasetError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}"
            )
        rng = np.random.default_rng(seed)
        coo = self.matrix.tocoo()
        n_keep = int(round(keep_fraction * coo.nnz))
        keep_mask = np.zeros(coo.nnz, dtype=bool)
        if min_profile_size > 0:
            # Protect a random min_profile_size ratings per user first.
            order = rng.permutation(coo.nnz)
            protected_count = np.zeros(self.n_users, dtype=np.int64)
            for idx in order:
                user = coo.row[idx]
                if protected_count[user] < min_profile_size:
                    protected_count[user] += 1
                    keep_mask[idx] = True
        n_protected = int(keep_mask.sum())
        remaining = np.flatnonzero(~keep_mask)
        extra = max(n_keep - n_protected, 0)
        if extra > 0 and remaining.size:
            chosen = rng.choice(remaining, size=min(extra, remaining.size), replace=False)
            keep_mask[chosen] = True
        matrix = sp.csr_matrix(
            (coo.data[keep_mask], (coo.row[keep_mask], coo.col[keep_mask])),
            shape=self.matrix.shape,
        )
        return BipartiteDataset(
            matrix=matrix,
            name=name or f"{self.name}-keep{keep_fraction:g}",
            symmetric=self.symmetric,
        )

    def subset_users(
        self, users: np.ndarray | list, name: str | None = None
    ) -> "BipartiteDataset":
        """Restrict the dataset to the given user rows (items unchanged)."""
        users = np.asarray(users, dtype=np.int64)
        if users.size == 0:
            raise DatasetError("cannot subset to zero users")
        if users.min() < 0 or users.max() >= self.n_users:
            raise DatasetError("user ids out of range in subset_users")
        matrix = self.matrix[users]
        return BipartiteDataset(
            matrix=matrix, name=name or f"{self.name}-subset", symmetric=False
        )

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def _check_user(self, user: int) -> None:
        if not 0 <= user < self.n_users:
            raise DatasetError(
                f"user id {user} out of range [0, {self.n_users})"
            )

    def _check_item(self, item: int) -> None:
        if not 0 <= item < self.n_items:
            raise DatasetError(
                f"item id {item} out of range [0, {self.n_items})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BipartiteDataset(name={self.name!r}, users={self.n_users}, "
            f"items={self.n_items}, ratings={self.n_ratings}, "
            f"density={self.density_percent:.4f}%)"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteDataset):
            return NotImplemented
        if self.matrix.shape != other.matrix.shape:
            return False
        diff = self.matrix - other.matrix
        return diff.nnz == 0

    def __hash__(self) -> int:
        return hash((self.name, self.matrix.shape, self.n_ratings))
