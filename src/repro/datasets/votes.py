"""Wikipedia-adminship-vote style dataset generator.

The paper's Wikipedia dataset records editors (users) voting in support of
adminship candidates (items); a positive vote is a binary rating of 1.  It
is the *densest* of the four evaluation datasets (0.71%), with 6,110 users,
2,381 items, and 103,689 votes.
"""

from __future__ import annotations

from .bipartite import BipartiteDataset
from .generators import GeneratorConfig, power_law_bipartite

__all__ = ["wikipedia_like"]

#: Published shape of the paper's Wikipedia dataset (Table I).
WIKIPEDIA_PAPER_SHAPE = {"n_users": 6_110, "n_items": 2_381, "n_ratings": 103_689}


def wikipedia_like(
    n_users: int = 1_500,
    n_items: int = 600,
    density: float = 0.0125,
    seed: int = 43,
    name: str = "wikipedia",
) -> BipartiteDataset:
    """Generate a Wikipedia-vote-like binary bipartite dataset.

    Keeps the key properties of the original: binary ratings, the highest
    density of the evaluation suite, and heavily skewed item popularity
    (a few candidacies attract most votes; the paper's avg ``|IP_i|`` is
    43.5 versus avg ``|UP_u|`` of 17).
    """
    n_ratings = int(density * n_users * n_items)
    config = GeneratorConfig(
        name=name,
        n_users=n_users,
        n_items=n_items,
        n_ratings=n_ratings,
        user_exponent=0.85,
        item_exponent=0.7,
        rating_model="binary",
        symmetric=False,
        seed=seed,
        min_profile_size=4,
    )
    return power_law_bipartite(config)
