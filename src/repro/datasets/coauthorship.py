"""Co-authorship dataset generators (Arxiv- and DBLP-like).

In the paper's Arxiv and DBLP datasets authors play both roles: a user's
profile is the set of her co-authors, so the bipartite matrix is square and
symmetric, and ratings count co-publications (DBLP) or are binary (Arxiv).
"""

from __future__ import annotations

from .bipartite import BipartiteDataset
from .generators import GeneratorConfig, power_law_bipartite

__all__ = ["arxiv_like", "dblp_like"]

#: Published shape of the paper's Arxiv dataset (Table I).
ARXIV_PAPER_SHAPE = {"n_users": 18_772, "n_items": 18_772, "n_ratings": 396_160}

#: Published shape of the paper's DBLP dataset (Table I).
DBLP_PAPER_SHAPE = {"n_users": 715_610, "n_items": 715_610, "n_ratings": 11_755_605}


def arxiv_like(
    n_authors: int = 3_000,
    avg_coauthors: float = 14.0,
    seed: int = 42,
    name: str = "arxiv",
) -> BipartiteDataset:
    """Generate an Arxiv-like symmetric co-authorship dataset.

    The paper's Arxiv (GR-QC + ASTRO-PH) has 18,772 authors with on average
    21.1 co-authors each and binary links.  The default laptop-scale preset
    keeps the long-tailed collaboration distribution and an average
    co-author count in the same regime.
    """
    n_ratings = int(n_authors * avg_coauthors)
    config = GeneratorConfig(
        name=name,
        n_users=n_authors,
        n_items=n_authors,
        n_ratings=n_ratings,
        user_exponent=0.6,
        item_exponent=0.6,
        rating_model="binary",
        symmetric=True,
        seed=seed,
        min_profile_size=3,
    )
    return power_law_bipartite(config)


def dblp_like(
    n_authors: int = 8_000,
    avg_coauthors: float = 16.0,
    seed: int = 47,
    name: str = "dblp",
) -> BipartiteDataset:
    """Generate a DBLP-like symmetric co-authorship dataset.

    The paper's DBLP snapshot has 715,610 authors (>= 5 co-publications
    each), 16.4 co-authors on average, and ratings counting co-authored
    papers.  We keep the count-valued ratings and the very low density
    (DBLP is the sparsest dataset in Table I); the author population is
    scaled down for single-machine pure-Python runs.
    """
    n_ratings = int(n_authors * avg_coauthors)
    config = GeneratorConfig(
        name=name,
        n_users=n_authors,
        n_items=n_authors,
        n_ratings=n_ratings,
        user_exponent=0.5,
        item_exponent=0.5,
        rating_model="count",
        symmetric=True,
        seed=seed,
        # The paper's DBLP snapshot only keeps authors with >= 5
        # co-publications; apply the same floor.
        min_profile_size=5,
    )
    return power_law_bipartite(config)
