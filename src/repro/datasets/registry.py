"""Named dataset presets.

The experiment harness and benchmarks refer to datasets by name
(``"arxiv"``, ``"wikipedia"``, ``"gowalla"``, ``"dblp"``, ``"ml-1"`` ..
``"ml-5"``).  Each name maps to a seeded generator call, so every run of a
given preset at a given scale produces the identical dataset.

Two scales are provided:

``laptop`` (default)
    1.5k-9k users; every table and figure regenerates in minutes of pure
    Python.  Shapes preserve the paper's *orderings* (density, item-profile
    size, user/item ratio) rather than absolute counts.
``paper``
    The published Table I shapes.  Generation is fast but running the
    greedy baselines on DBLP-paper in pure Python takes hours; reserved
    for patient offline validation.
``tiny``
    A few hundred users, for unit tests and smoke benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable

from .bipartite import BipartiteDataset, DatasetError
from .checkins import GOWALLA_PAPER_SHAPE, gowalla_like
from .coauthorship import (
    ARXIV_PAPER_SHAPE,
    DBLP_PAPER_SHAPE,
    arxiv_like,
    dblp_like,
)
from .movielens import movielens_family, movielens_like
from .votes import WIKIPEDIA_PAPER_SHAPE, wikipedia_like

__all__ = [
    "SCALES",
    "dataset_names",
    "load_dataset",
    "load_evaluation_suite",
    "load_movielens_family",
]

SCALES = ("tiny", "laptop", "paper")

#: The four datasets of the paper's main evaluation, in Table I order.
EVALUATION_SUITE = ("wikipedia", "arxiv", "gowalla", "dblp")


def _wikipedia(scale: str) -> BipartiteDataset:
    if scale == "tiny":
        return wikipedia_like(n_users=300, n_items=150, density=0.02)
    if scale == "laptop":
        return wikipedia_like()
    return wikipedia_like(
        n_users=WIKIPEDIA_PAPER_SHAPE["n_users"],
        n_items=WIKIPEDIA_PAPER_SHAPE["n_items"],
        density=WIKIPEDIA_PAPER_SHAPE["n_ratings"]
        / (WIKIPEDIA_PAPER_SHAPE["n_users"] * WIKIPEDIA_PAPER_SHAPE["n_items"]),
    )


def _arxiv(scale: str) -> BipartiteDataset:
    if scale == "tiny":
        return arxiv_like(n_authors=400, avg_coauthors=8.0)
    if scale == "laptop":
        return arxiv_like()
    return arxiv_like(
        n_authors=ARXIV_PAPER_SHAPE["n_users"],
        avg_coauthors=ARXIV_PAPER_SHAPE["n_ratings"] / ARXIV_PAPER_SHAPE["n_users"],
    )


def _gowalla(scale: str) -> BipartiteDataset:
    if scale == "tiny":
        return gowalla_like(n_users=400, n_items=3_000, avg_checkins=12.0)
    if scale == "laptop":
        return gowalla_like()
    return gowalla_like(
        n_users=GOWALLA_PAPER_SHAPE["n_users"],
        n_items=GOWALLA_PAPER_SHAPE["n_items"],
        avg_checkins=GOWALLA_PAPER_SHAPE["n_ratings"] / GOWALLA_PAPER_SHAPE["n_users"],
    )


def _dblp(scale: str) -> BipartiteDataset:
    if scale == "tiny":
        return dblp_like(n_authors=500, avg_coauthors=6.0)
    if scale == "laptop":
        return dblp_like()
    return dblp_like(
        n_authors=DBLP_PAPER_SHAPE["n_users"],
        avg_coauthors=DBLP_PAPER_SHAPE["n_ratings"] / DBLP_PAPER_SHAPE["n_users"],
    )


def _ml(index: int) -> Callable[[str], BipartiteDataset]:
    def build(scale: str) -> BipartiteDataset:
        family = load_movielens_family(scale)
        return family[index - 1]

    return build


_REGISTRY: dict[str, Callable[[str], BipartiteDataset]] = {
    "wikipedia": _wikipedia,
    "arxiv": _arxiv,
    "gowalla": _gowalla,
    "dblp": _dblp,
    "ml-1": _ml(1),
    "ml-2": _ml(2),
    "ml-3": _ml(3),
    "ml-4": _ml(4),
    "ml-5": _ml(5),
}


def dataset_names() -> list[str]:
    """All registered preset names, in registry order."""
    return list(_REGISTRY)


def load_dataset(name: str, scale: str = "laptop") -> BipartiteDataset:
    """Instantiate the named preset at the given scale.

    Raises :class:`DatasetError` for unknown names or scales so callers
    fail fast on typos.
    """
    if scale not in SCALES:
        raise DatasetError(f"unknown scale {scale!r}; expected one of {SCALES}")
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {dataset_names()}"
        ) from None
    return builder(scale)


def load_evaluation_suite(scale: str = "laptop") -> list[BipartiteDataset]:
    """The paper's four evaluation datasets, in Table I order."""
    return [load_dataset(name, scale) for name in EVALUATION_SUITE]


def load_movielens_family(scale: str = "laptop") -> list[BipartiteDataset]:
    """The ML-1..ML-5 density family of Table IX at the given scale."""
    if scale == "tiny":
        base = movielens_like(
            n_users=250, n_items=160, density=0.05, min_ratings_per_user=8
        )
    elif scale == "laptop":
        base = movielens_like()
    elif scale == "paper":
        from .movielens import ML_PAPER_SHAPE

        base = movielens_like(
            n_users=ML_PAPER_SHAPE["n_users"],
            n_items=ML_PAPER_SHAPE["n_items"],
            density=ML_PAPER_SHAPE["n_ratings"]
            / (ML_PAPER_SHAPE["n_users"] * ML_PAPER_SHAPE["n_items"]),
        )
    else:
        raise DatasetError(f"unknown scale {scale!r}; expected one of {SCALES}")
    return movielens_family(base=base)
