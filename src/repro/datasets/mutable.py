"""Append-friendly builder for evolving bipartite datasets.

:class:`BipartiteDataset` is deliberately immutable — experiment sweeps
share datasets safely because nothing can mutate them.  Streaming
maintenance (``repro.streaming``) needs the opposite: a store that absorbs
a continuous feed of ``(user, item, rating)`` events cheaply and can
produce an immutable snapshot on demand.

:class:`MutableBipartiteBuilder` is that store.  It keeps

* per-user profiles as ``{item: rating}`` dictionaries (the paper's
  ``UP_u``), updated in O(1) per event, and
* an incremental inverted index ``item -> {users}`` (the paper's item
  profiles ``IP_i``), which is what lets the streaming subsystem compute
  a user's candidate set without touching the rest of the population.

``snapshot()`` materialises the current state as a canonical
:class:`BipartiteDataset`; the result is cached until the next mutation,
so repeated reads between event batches are free.
"""

from __future__ import annotations

import math

from .bipartite import BipartiteDataset, DatasetError

__all__ = ["MutableBipartiteBuilder"]


class MutableBipartiteBuilder:
    """A mutable user-item rating store with incremental item profiles.

    User ids are allocated densely by :meth:`add_user` and never reused:
    removing a user clears its profile but keeps the id in the universe,
    so KNN graph rows and snapshots stay aligned across the stream.
    """

    def __init__(self, n_items: int = 0, name: str = "stream"):
        if n_items < 0:
            raise DatasetError(f"n_items must be >= 0, got {n_items}")
        self.name = name
        self._profiles: list[dict[int, float]] = []
        self._item_users: dict[int, set[int]] = {}
        self._n_items = int(n_items)
        self._n_ratings = 0
        self._snapshot: BipartiteDataset | None = None

    @classmethod
    def from_dataset(cls, dataset: BipartiteDataset) -> "MutableBipartiteBuilder":
        """Seed a builder with every rating of an existing dataset."""
        builder = cls(n_items=dataset.n_items, name=dataset.name)
        for _, items, ratings in dataset.iter_user_profiles():
            builder.add_user(items.tolist(), ratings.tolist())
        # The seed dataset IS the current state; reuse it as the snapshot.
        builder._snapshot = dataset
        return builder

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of allocated user ids (removed users included)."""
        return len(self._profiles)

    @property
    def n_items(self) -> int:
        """Size of the item universe (grows monotonically)."""
        return self._n_items

    @property
    def n_ratings(self) -> int:
        """Number of stored ratings."""
        return self._n_ratings

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_user(self, items=(), ratings=None) -> int:
        """Allocate the next user id, optionally with an initial profile.

        Returns the new id (always ``n_users`` before the call).  The
        profile is validated *before* the id is allocated, so a rejected
        call leaves the builder unchanged (no phantom user).
        """
        items = [int(item) for item in items]
        if ratings is None:
            ratings = [1.0] * len(items)
        else:
            ratings = [float(rating) for rating in ratings]
        if len(items) != len(ratings):
            raise DatasetError(
                f"items and ratings must have equal length, got "
                f"{len(items)} vs {len(ratings)}"
            )
        for item, rating in zip(items, ratings):
            if item < 0:
                raise DatasetError(f"item id must be non-negative, got {item}")
            if not math.isfinite(rating):
                raise DatasetError(f"rating must be finite, got {rating}")
        user = len(self._profiles)
        self._profiles.append({})
        for item, rating in zip(items, ratings):
            self.set_rating(user, item, rating)
        self._snapshot = None
        return user

    def set_rating(self, user: int, item: int, rating: float = 1.0) -> None:
        """Set (or overwrite) one rating; ``rating = 0`` deletes the edge.

        Mirrors :class:`BipartiteDataset` canonicalisation, where explicit
        zeros are eliminated, so a snapshot round-trips exactly.
        """
        self._check_user(user)
        if item < 0:
            raise DatasetError(f"item id must be non-negative, got {item}")
        rating = float(rating)
        if not math.isfinite(rating):
            raise DatasetError(f"rating must be finite, got {rating}")
        profile = self._profiles[user]
        had = item in profile
        if rating == 0.0:
            if not had:
                return  # deleting an absent edge: nothing changes
            del profile[item]
            self._n_ratings -= 1
            users = self._item_users.get(item)
            if users is not None:
                users.discard(user)
                if not users:
                    del self._item_users[item]
        else:
            if had and profile[item] == rating:
                return  # identical overwrite: nothing changes
            profile[item] = rating
            if not had:
                self._n_ratings += 1
                self._item_users.setdefault(item, set()).add(user)
            self._n_items = max(self._n_items, item + 1)
        self._snapshot = None

    def clear_user(self, user: int) -> None:
        """Remove every rating of *user* (the id stays allocated)."""
        self._check_user(user)
        profile = self._profiles[user]
        for item in profile:
            users = self._item_users.get(item)
            if users is not None:
                users.discard(user)
                if not users:
                    del self._item_users[item]
        self._n_ratings -= len(profile)
        profile.clear()
        self._snapshot = None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def profile(self, user: int) -> dict[int, float]:
        """User *user*'s live ``{item: rating}`` profile (do not mutate)."""
        self._check_user(user)
        return self._profiles[user]

    def rating(self, user: int, item: int) -> float:
        """The stored rating, or ``0.0`` when the edge is absent."""
        self._check_user(user)
        return self._profiles[user].get(item, 0.0)

    def users_of(self, item: int) -> set[int]:
        """The live item profile ``IP_i`` (do not mutate)."""
        return self._item_users.get(item, _EMPTY_SET)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self, name: str | None = None) -> BipartiteDataset:
        """The current state as an immutable dataset (cached until mutated).

        Raises :class:`DatasetError` while no user exists — a dataset
        needs at least one user, and padding one in would break the
        id-alignment invariant this class documents.  An item universe is
        padded to one column when empty (users may exist before any
        rating lands; item ids are allocated by the ratings themselves).
        """
        if self.n_users == 0:
            raise DatasetError(
                "cannot snapshot a builder with no users; add_user first"
            )
        if self._snapshot is None or name is not None:
            users: list[int] = []
            items: list[int] = []
            ratings: list[float] = []
            for user, profile in enumerate(self._profiles):
                for item, rating in profile.items():
                    users.append(user)
                    items.append(item)
                    ratings.append(rating)
            dataset = BipartiteDataset.from_edges(
                users,
                items,
                ratings,
                n_users=self.n_users,
                n_items=max(self._n_items, 1),
                name=name or self.name,
            )
            if name is not None:
                return dataset
            self._snapshot = dataset
        return self._snapshot

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def _check_user(self, user: int) -> None:
        if not 0 <= user < len(self._profiles):
            raise DatasetError(
                f"user id {user} out of range [0, {len(self._profiles)})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutableBipartiteBuilder(name={self.name!r}, users={self.n_users}, "
            f"items={self.n_items}, ratings={self.n_ratings})"
        )


_EMPTY_SET: set[int] = set()
