"""Append-friendly builder for evolving bipartite datasets.

:class:`BipartiteDataset` is deliberately immutable — experiment sweeps
share datasets safely because nothing can mutate them.  Streaming
maintenance (``repro.streaming``) needs the opposite: a store that absorbs
a continuous feed of ``(user, item, rating)`` events cheaply and can
produce an immutable snapshot on demand.

:class:`MutableBipartiteBuilder` is that store.  It keeps

* per-user profiles as ``{item: rating}`` dictionaries (the paper's
  ``UP_u``), updated in O(1) per event, and
* an incremental inverted index ``item -> {users}`` (the paper's item
  profiles ``IP_i``), which is what lets the streaming subsystem compute
  a user's candidate set without touching the rest of the population.

``snapshot()`` materialises the current state as a canonical
:class:`BipartiteDataset`; the result is cached until the next mutation,
so repeated reads between event batches are free.

Incremental snapshotting
------------------------
The builder tracks which users mutated since the last materialised
snapshot.  When a new snapshot is requested and a previous one exists,
only the *dirty* CSR rows are re-materialised from the live profiles —
clean rows are block-copied from the previous snapshot — and, when the
previous snapshot had its CSC mirror built, the mirror is patched
column-wise the same way.  The result is exactly equal to a full
materialisation (the Hypothesis suite interleaves both paths and asserts
equality); when the fast path's preconditions fail (no base snapshot, a
supplied ``dirty_users`` hint that does not cover the tracked dirty set,
or a dirty set too large to be worth patching) the builder falls back to
the full path, which is always exact.  Row-materialisation work is
tallied into a :class:`~repro.instrumentation.counters.MaintenanceCounter`
so benchmarks can assert snapshot cost scales with the dirty set, not
with ``n_ratings``.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from ..instrumentation.counters import MaintenanceCounter
from ..layout import indptr_dtype
from .bipartite import BipartiteDataset, DatasetError

__all__ = [
    "MutableBipartiteBuilder",
    "dataset_from_canonical_arrays",
    "snapshot_from_arrays",
    "snapshot_to_arrays",
    "splice_compressed",
]


def snapshot_to_arrays(dataset: BipartiteDataset) -> dict[str, np.ndarray]:
    """A snapshot's ratings as plain arrays (for checkpoint archives).

    Captures the canonical CSR triplet plus the matrix shape, so
    tombstone rows (a removed user's empty profile) and trailing empty
    item columns survive the round-trip — :class:`BipartiteDataset`
    equality holds exactly after :func:`snapshot_from_arrays`.
    """
    matrix = dataset.matrix
    return {
        "dataset_indptr": matrix.indptr,
        "dataset_indices": matrix.indices,
        "dataset_data": matrix.data,
        "dataset_shape": np.asarray(matrix.shape, dtype=np.int64),
    }


def snapshot_from_arrays(arrays, name: str = "restored") -> BipartiteDataset:
    """Inverse of :func:`snapshot_to_arrays` (accepts any array mapping).

    The result is a canonical dataset; seeding a
    :class:`MutableBipartiteBuilder` from it (``from_dataset``) restores
    the builder state the snapshot was taken from, dense user ids,
    tombstones and item universe included.
    """
    shape = tuple(int(extent) for extent in np.asarray(arrays["dataset_shape"]))
    matrix = sp.csr_matrix(
        (
            np.asarray(arrays["dataset_data"], dtype=np.float64),
            # Index dtypes are normalized by canonicalization below, so
            # legacy int64 archives and compact int32 ones both restore.
            np.asarray(arrays["dataset_indices"]),
            np.asarray(arrays["dataset_indptr"]),
        ),
        shape=shape,
    )
    return BipartiteDataset(matrix=matrix, name=name)


def dataset_from_canonical_arrays(
    arrays, name: str = "shared"
) -> BipartiteDataset:
    """A :class:`BipartiteDataset` over *arrays* without copying them.

    :func:`snapshot_from_arrays` re-canonicalizes (and therefore copies)
    its input — right for untrusted checkpoint archives, wrong for the
    shared-memory transport, where the whole point is that workers view
    the parent's buffers in place.  This constructor trusts the caller's
    contract instead: the CSR triplet under the ``dataset_*`` keys is
    already canonical (float64 data, sorted indices, no duplicates or
    explicit zeros) **and must never be mutated** — exactly what a
    published snapshot guarantees, since canonical snapshots are the
    only thing the streaming side ever publishes.
    """
    shape = tuple(int(extent) for extent in np.asarray(arrays["dataset_shape"]))
    matrix = sp.csr_matrix(
        (
            arrays["dataset_data"],
            arrays["dataset_indices"],
            arrays["dataset_indptr"],
        ),
        shape=shape,
        copy=False,
    )
    dataset = object.__new__(BipartiteDataset)
    object.__setattr__(dataset, "matrix", matrix)
    object.__setattr__(dataset, "name", name)
    object.__setattr__(dataset, "symmetric", False)
    object.__setattr__(dataset, "_csc_cache", [])
    return dataset


def splice_compressed(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    n_segments: int,
    dirty: np.ndarray,
    replacements: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rebuild a compressed (CSR/CSC) structure with some segments replaced.

    ``dirty`` is a sorted array of segment ids whose contents are replaced
    by the aligned ``replacements``; every other segment is block-copied
    from the old arrays.  ``n_segments`` may exceed the old segment count:
    new segments default to empty unless listed dirty.  Python-level work
    is O(len(dirty)); clean spans move as bulk ``memcpy`` slices.
    """
    n_old = indptr.size - 1
    lengths = np.zeros(n_segments, dtype=np.int64)
    lengths[:n_old] = np.diff(indptr)
    for pos, seg in enumerate(dirty.tolist()):
        lengths[seg] = replacements[pos][0].size
    new_indptr = np.zeros(n_segments + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_indptr[1:])
    total = int(new_indptr[-1])
    new_indices = np.empty(total, dtype=indices.dtype)
    new_data = np.empty(total, dtype=data.dtype)

    def copy_clean(lo: int, hi: int) -> None:
        hi = min(hi, n_old)
        if lo >= hi:
            return
        src_lo, src_hi = indptr[lo], indptr[hi]
        dst_lo = new_indptr[lo]
        new_indices[dst_lo : dst_lo + (src_hi - src_lo)] = indices[src_lo:src_hi]
        new_data[dst_lo : dst_lo + (src_hi - src_lo)] = data[src_lo:src_hi]

    prev = 0
    for pos, seg in enumerate(dirty.tolist()):
        copy_clean(prev, seg)
        seg_indices, seg_data = replacements[pos]
        lo = new_indptr[seg]
        new_indices[lo : lo + seg_indices.size] = seg_indices
        new_data[lo : lo + seg_data.size] = seg_data
        prev = seg + 1
    copy_clean(prev, n_old)
    # indptr computed in int64 (cumsum can momentarily need the width),
    # stored at the compact layout when the nnz permits.
    return (
        new_indptr.astype(indptr_dtype(total), copy=False),
        new_indices,
        new_data,
    )


class MutableBipartiteBuilder:
    """A mutable user-item rating store with incremental item profiles.

    User ids are allocated densely by :meth:`add_user` and never reused:
    removing a user clears its profile but keeps the id in the universe,
    so KNN graph rows and snapshots stay aligned across the stream.

    ``maintenance`` (optional) is a shared
    :class:`~repro.instrumentation.counters.MaintenanceCounter` that
    tallies snapshot row materialisations; a private one is created when
    omitted.
    """

    def __init__(
        self,
        n_items: int = 0,
        name: str = "stream",
        maintenance: MaintenanceCounter | None = None,
    ):
        if n_items < 0:
            raise DatasetError(f"n_items must be >= 0, got {n_items}")
        self.name = name
        self.maintenance = (
            maintenance if maintenance is not None else MaintenanceCounter()
        )
        self._profiles: list[dict[int, float]] = []
        self._item_users: dict[int, set[int]] = {}
        self._n_items = int(n_items)
        self._n_ratings = 0
        #: Last materialised snapshot — the patch base for the fast path.
        self._base: BipartiteDataset | None = None
        #: Users mutated since ``_base``; empty means ``_base`` is current.
        self._dirty_rows: set[int] = set()

    @classmethod
    def from_dataset(
        cls,
        dataset: BipartiteDataset,
        maintenance: MaintenanceCounter | None = None,
    ) -> "MutableBipartiteBuilder":
        """Seed a builder with every rating of an existing dataset."""
        builder = cls(
            n_items=dataset.n_items, name=dataset.name, maintenance=maintenance
        )
        for _, items, ratings in dataset.iter_user_profiles():
            builder.add_user(items.tolist(), ratings.tolist())
        # The seed dataset IS the current state; reuse it as the snapshot.
        builder._base = dataset
        builder._dirty_rows.clear()
        return builder

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of allocated user ids (removed users included)."""
        return len(self._profiles)

    @property
    def n_items(self) -> int:
        """Size of the item universe (grows monotonically)."""
        return self._n_items

    @property
    def n_ratings(self) -> int:
        """Number of stored ratings."""
        return self._n_ratings

    @property
    def dirty_rows(self) -> frozenset:
        """Users mutated since the last materialised snapshot."""
        return frozenset(self._dirty_rows)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_user(self, items=(), ratings=None) -> int:
        """Allocate the next user id, optionally with an initial profile.

        Returns the new id (always ``n_users`` before the call).  The
        profile is validated *before* the id is allocated, so a rejected
        call leaves the builder unchanged (no phantom user).
        """
        items = [int(item) for item in items]
        if ratings is None:
            ratings = [1.0] * len(items)
        else:
            ratings = [float(rating) for rating in ratings]
        if len(items) != len(ratings):
            raise DatasetError(
                f"items and ratings must have equal length, got "
                f"{len(items)} vs {len(ratings)}"
            )
        for item, rating in zip(items, ratings):
            if item < 0:
                raise DatasetError(f"item id must be non-negative, got {item}")
            if not math.isfinite(rating):
                raise DatasetError(f"rating must be finite, got {rating}")
        user = len(self._profiles)
        self._profiles.append({})
        for item, rating in zip(items, ratings):
            self.set_rating(user, item, rating)
        # A new (possibly empty) row exists either way; the snapshot must
        # grow even when no rating landed.
        self._dirty_rows.add(user)
        return user

    def set_rating(self, user: int, item: int, rating: float = 1.0) -> None:
        """Set (or overwrite) one rating; ``rating = 0`` deletes the edge.

        Mirrors :class:`BipartiteDataset` canonicalisation, where explicit
        zeros are eliminated, so a snapshot round-trips exactly.
        """
        self._check_user(user)
        if item < 0:
            raise DatasetError(f"item id must be non-negative, got {item}")
        rating = float(rating)
        if not math.isfinite(rating):
            raise DatasetError(f"rating must be finite, got {rating}")
        profile = self._profiles[user]
        had = item in profile
        if rating == 0.0:
            if not had:
                return  # deleting an absent edge: nothing changes
            del profile[item]
            self._n_ratings -= 1
            users = self._item_users.get(item)
            if users is not None:
                users.discard(user)
                if not users:
                    del self._item_users[item]
        else:
            if had and profile[item] == rating:
                return  # identical overwrite: nothing changes
            profile[item] = rating
            if not had:
                self._n_ratings += 1
                self._item_users.setdefault(item, set()).add(user)
            self._n_items = max(self._n_items, item + 1)
        self._dirty_rows.add(user)

    def clear_user(self, user: int) -> None:
        """Remove every rating of *user* (the id stays allocated)."""
        self._check_user(user)
        profile = self._profiles[user]
        if not profile:
            return  # already empty: the snapshot is unaffected
        for item in profile:
            users = self._item_users.get(item)
            if users is not None:
                users.discard(user)
                if not users:
                    del self._item_users[item]
        self._n_ratings -= len(profile)
        profile.clear()
        self._dirty_rows.add(user)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def profile(self, user: int) -> dict[int, float]:
        """User *user*'s live ``{item: rating}`` profile (do not mutate)."""
        self._check_user(user)
        return self._profiles[user]

    def rating(self, user: int, item: int) -> float:
        """The stored rating, or ``0.0`` when the edge is absent."""
        self._check_user(user)
        return self._profiles[user].get(item, 0.0)

    def users_of(self, item: int) -> set[int]:
        """The live item profile ``IP_i`` (do not mutate)."""
        return self._item_users.get(item, _EMPTY_SET)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(
        self,
        name: str | None = None,
        dirty_users=None,
    ) -> BipartiteDataset:
        """The current state as an immutable dataset (cached until mutated).

        When a previous snapshot exists, only the rows of users mutated
        since it (plus any extra ids in the optional ``dirty_users`` hint)
        are re-materialised; everything else is block-copied, so snapshot
        cost scales with the dirty set.  ``dirty_users`` must cover the
        internally tracked dirty set — a hint that does not triggers the
        exact-equality fallback (a full materialisation), as does a dirty
        set spanning more than half the population, where patching stops
        paying for itself.  Passing ``name`` returns a fresh, uncached
        dataset and leaves the builder's cache state untouched.

        Raises :class:`DatasetError` while no user exists — a dataset
        needs at least one user, and padding one in would break the
        id-alignment invariant this class documents.  An item universe is
        padded to one column when empty (users may exist before any
        rating lands; item ids are allocated by the ratings themselves).
        """
        if self.n_users == 0:
            raise DatasetError(
                "cannot snapshot a builder with no users; add_user first"
            )
        if self._base is not None and not self._dirty_rows and name is None:
            return self._base
        dirty: set[int] | None = set(self._dirty_rows)
        if dirty_users is not None:
            supplied = {int(u) for u in dirty_users}
            for u in supplied:
                self._check_user(u)
            if dirty <= supplied:
                dirty = supplied
            else:
                dirty = None  # hint misses mutations: exact fallback
        fast = (
            dirty is not None
            and self._base is not None
            and 2 * len(dirty) <= self.n_users
        )
        if fast:
            dataset = self._materialize_incremental(sorted(dirty), name)
            self.maintenance.rows_materialized += len(dirty)
            self.maintenance.snapshots_incremental += 1
        else:
            dataset = self._materialize_full(name)
            self.maintenance.rows_materialized += self.n_users
            self.maintenance.snapshots_full += 1
        if name is not None:
            return dataset
        self._base = dataset
        self._dirty_rows.clear()
        return dataset

    def _materialize_full(self, name: str | None) -> BipartiteDataset:
        """Rebuild the whole matrix from the live profiles (exact path)."""
        users: list[int] = []
        items: list[int] = []
        ratings: list[float] = []
        for user, profile in enumerate(self._profiles):
            for item, rating in profile.items():
                users.append(user)
                items.append(item)
                ratings.append(rating)
        return BipartiteDataset.from_edges(
            users,
            items,
            ratings,
            n_users=self.n_users,
            n_items=max(self._n_items, 1),
            name=name or self.name,
        )

    def _materialize_incremental(
        self, dirty_sorted: list[int], name: str | None
    ) -> BipartiteDataset:
        """Patch the previous snapshot's CSR rows (and CSC mirror)."""
        base = self._base
        assert base is not None
        base_matrix = base.matrix
        n_users = self.n_users
        n_items = max(self._n_items, 1)
        dirty_arr = np.asarray(dirty_sorted, dtype=np.int64)
        replacements: list[tuple[np.ndarray, np.ndarray]] = []
        for user in dirty_sorted:
            profile = self._profiles[user]
            row_items = np.fromiter(profile.keys(), np.int64, len(profile))
            row_data = np.fromiter(profile.values(), np.float64, len(profile))
            order = np.argsort(row_items)  # canonical rows sort indices
            replacements.append((row_items[order], row_data[order]))
        indptr, indices, data = splice_compressed(
            base_matrix.indptr,
            base_matrix.indices,
            base_matrix.data,
            n_users,
            dirty_arr,
            replacements,
        )
        matrix = sp.csr_matrix((data, indices, indptr), shape=(n_users, n_items))
        # symmetric stays False to match the full path (from_edges default).
        dataset = BipartiteDataset(matrix=matrix, name=name or self.name)
        if base._csc_cache:
            dataset._csc_cache.append(
                self._patch_csc(
                    base, dirty_arr, replacements, n_users, n_items
                )
            )
        return dataset

    def _patch_csc(
        self,
        base: BipartiteDataset,
        dirty_arr: np.ndarray,
        replacements: list[tuple[np.ndarray, np.ndarray]],
        n_users: int,
        n_items: int,
    ) -> sp.csc_matrix:
        """Patch the base snapshot's cached CSC mirror column-wise.

        Affected columns are the union of the dirty users' old and new
        items; each is rebuilt by dropping the dirty users' old entries
        and merging their new ones in row order.  Every other column is
        block-copied, so the mirror stays as cheap as the CSR patch.
        """
        old_csc = base.csc
        n_old_users = base.n_users
        n_old_items = old_csc.shape[1]
        # Inserted entries, grouped by column then row.
        ins_cols = (
            np.concatenate([r[0] for r in replacements])
            if replacements
            else np.empty(0, dtype=np.int64)
        )
        ins_rows = np.repeat(
            dirty_arr, [r[0].size for r in replacements]
        )
        ins_data = (
            np.concatenate([r[1] for r in replacements])
            if replacements
            else np.empty(0, dtype=np.float64)
        )
        order = np.lexsort((ins_rows, ins_cols))
        ins_cols, ins_rows, ins_data = (
            ins_cols[order],
            ins_rows[order],
            ins_data[order],
        )
        old_cols = [
            base.matrix.indices[
                base.matrix.indptr[u] : base.matrix.indptr[u + 1]
            ]
            for u in dirty_arr.tolist()
            if u < n_old_users
        ]
        affected = np.union1d(
            np.unique(ins_cols),
            np.unique(np.concatenate(old_cols))
            if old_cols
            else np.empty(0, dtype=np.int64),
        ).astype(np.int64)
        new_columns: list[tuple[np.ndarray, np.ndarray]] = []
        for col in affected.tolist():
            if col < n_old_items:
                lo, hi = old_csc.indptr[col], old_csc.indptr[col + 1]
                col_rows = old_csc.indices[lo:hi]
                col_data = old_csc.data[lo:hi]
                pos = np.searchsorted(dirty_arr, col_rows)
                pos_c = np.minimum(pos, dirty_arr.size - 1)
                is_dirty = (pos < dirty_arr.size) & (
                    dirty_arr[pos_c] == col_rows
                )
                col_rows = col_rows[~is_dirty]
                col_data = col_data[~is_dirty]
            else:
                col_rows = np.empty(0, dtype=old_csc.indices.dtype)
                col_data = np.empty(0, dtype=np.float64)
            lo = np.searchsorted(ins_cols, col, side="left")
            hi = np.searchsorted(ins_cols, col, side="right")
            merged_rows = np.concatenate([col_rows, ins_rows[lo:hi]])
            merged_data = np.concatenate([col_data, ins_data[lo:hi]])
            row_order = np.argsort(merged_rows, kind="stable")
            new_columns.append(
                (merged_rows[row_order], merged_data[row_order])
            )
        indptr, indices, data = splice_compressed(
            old_csc.indptr,
            old_csc.indices,
            old_csc.data,
            n_items,
            affected,
            new_columns,
        )
        return sp.csc_matrix((data, indices, indptr), shape=(n_users, n_items))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def _check_user(self, user: int) -> None:
        if not 0 <= user < len(self._profiles):
            raise DatasetError(
                f"user id {user} out of range [0, {len(self._profiles)})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutableBipartiteBuilder(name={self.name!r}, users={self.n_users}, "
            f"items={self.n_items}, ratings={self.n_ratings})"
        )


_EMPTY_SET: set[int] = set()
