"""Dataset persistence: plain-text edge lists and JSON metadata.

The paper's datasets ship as SNAP-style whitespace-separated edge lists.
This module round-trips :class:`BipartiteDataset` through that format (plus
a small JSON sidecar capturing name/shape/symmetry) so generated datasets
can be cached on disk and reloaded instead of regenerated.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .bipartite import BipartiteDataset, DatasetError

__all__ = ["save_edge_list", "load_edge_list", "save_dataset", "load_dataset_dir"]

_META_SUFFIX = ".meta.json"


def save_edge_list(dataset: BipartiteDataset, path: str | Path) -> Path:
    """Write ``user item rating`` lines (SNAP-style, ``#`` comments).

    Ratings equal to 1 are written as integers to keep binary datasets
    compact and diff-friendly.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    coo = dataset.matrix.tocoo()
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# dataset: {dataset.name}\n")
        handle.write(
            f"# users: {dataset.n_users} items: {dataset.n_items} "
            f"ratings: {dataset.n_ratings}\n"
        )
        for user, item, rating in zip(coo.row, coo.col, coo.data):
            if rating == int(rating):
                handle.write(f"{user}\t{item}\t{int(rating)}\n")
            else:
                # repr precision: float ratings must round-trip exactly.
                handle.write(f"{user}\t{item}\t{float(rating)!r}\n")
    return path


def load_edge_list(
    path: str | Path,
    n_users: int | None = None,
    n_items: int | None = None,
    name: str | None = None,
    symmetric: bool = False,
) -> BipartiteDataset:
    """Parse a SNAP-style edge list written by :func:`save_edge_list`.

    Lines are ``user item [rating]``; a missing rating column means 1.0.
    ``#`` lines are comments.  Malformed lines raise :class:`DatasetError`
    with the offending line number.
    """
    path = Path(path)
    users: list[int] = []
    items: list[int] = []
    ratings: list[float] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise DatasetError(
                    f"{path}:{lineno}: expected 'user item [rating]', got {line!r}"
                )
            try:
                users.append(int(parts[0]))
                items.append(int(parts[1]))
                ratings.append(float(parts[2]) if len(parts) == 3 else 1.0)
            except ValueError as exc:
                raise DatasetError(f"{path}:{lineno}: {exc}") from exc
    if not users:
        raise DatasetError(f"{path}: no edges found")
    return BipartiteDataset.from_edges(
        np.asarray(users),
        np.asarray(items),
        np.asarray(ratings),
        n_users=n_users,
        n_items=n_items,
        name=name or path.stem,
        symmetric=symmetric,
    )


def save_dataset(dataset: BipartiteDataset, directory: str | Path) -> Path:
    """Persist *dataset* as ``<name>.edges`` + ``<name>.meta.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    edge_path = directory / f"{dataset.name}.edges"
    save_edge_list(dataset, edge_path)
    meta = {
        "name": dataset.name,
        "n_users": dataset.n_users,
        "n_items": dataset.n_items,
        "n_ratings": dataset.n_ratings,
        "symmetric": dataset.symmetric,
    }
    meta_path = directory / f"{dataset.name}{_META_SUFFIX}"
    meta_path.write_text(json.dumps(meta, indent=2), encoding="utf-8")
    return edge_path


def load_dataset_dir(directory: str | Path, name: str) -> BipartiteDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    meta_path = directory / f"{name}{_META_SUFFIX}"
    edge_path = directory / f"{name}.edges"
    if not meta_path.exists() or not edge_path.exists():
        raise DatasetError(f"no saved dataset {name!r} under {directory}")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    dataset = load_edge_list(
        edge_path,
        n_users=meta["n_users"],
        n_items=meta["n_items"],
        name=meta["name"],
        symmetric=meta["symmetric"],
    )
    if dataset.n_ratings != meta["n_ratings"]:
        raise DatasetError(
            f"{edge_path}: expected {meta['n_ratings']} ratings, "
            f"loaded {dataset.n_ratings}"
        )
    return dataset
