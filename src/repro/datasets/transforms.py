"""Dataset transformations: filtering, splitting, relabelling.

Real KNN-graph pipelines rarely consume a dataset raw: cold items are
dropped, inactive users pruned (the paper's own DBLP snapshot keeps only
authors with >= 5 co-publications), and ratings are split for held-out
evaluation.  These helpers perform those steps while preserving the
:class:`BipartiteDataset` invariants.
"""

from __future__ import annotations

import numpy as np

from .bipartite import BipartiteDataset, DatasetError

__all__ = [
    "filter_items",
    "filter_users",
    "iterative_core",
    "train_test_split",
]


def filter_items(
    dataset: BipartiteDataset,
    min_degree: int = 1,
    max_degree: int | None = None,
    name: str | None = None,
) -> BipartiteDataset:
    """Keep items whose profile size lies in ``[min_degree, max_degree]``.

    The item universe keeps its size (columns are zeroed, not removed) so
    item ids stay stable — important when datasets are compared before
    and after filtering.
    """
    degrees = dataset.item_profile_sizes()
    keep = degrees >= min_degree
    if max_degree is not None:
        keep &= degrees <= max_degree
    if not keep.any():
        raise DatasetError("item filter removed every rating")
    mask_matrix = dataset.matrix.copy().tocsc()
    for item in np.flatnonzero(~keep):
        start, end = mask_matrix.indptr[item], mask_matrix.indptr[item + 1]
        mask_matrix.data[start:end] = 0.0
    matrix = mask_matrix.tocsr()
    return BipartiteDataset(
        matrix=matrix,
        name=name or f"{dataset.name}-itemfiltered",
        symmetric=False,
    )


def filter_users(
    dataset: BipartiteDataset,
    min_profile: int = 1,
    name: str | None = None,
) -> BipartiteDataset:
    """Drop users with fewer than *min_profile* ratings (rows removed).

    User ids are compacted; the mapping back to original ids is not kept
    (use :func:`iterative_core` when symmetric id stability matters).
    """
    sizes = dataset.user_profile_sizes()
    keep = np.flatnonzero(sizes >= min_profile)
    if keep.size == 0:
        raise DatasetError("user filter removed every user")
    return dataset.subset_users(keep, name=name or f"{dataset.name}-userfiltered")


def iterative_core(
    dataset: BipartiteDataset,
    min_user_profile: int,
    min_item_profile: int,
    max_rounds: int = 50,
    name: str | None = None,
) -> BipartiteDataset:
    """Iteratively prune until every user and item meets its floor.

    The classic "k-core" style cleaning: removing cold items can push
    users below their floor and vice versa, so the filters alternate
    until a fixed point (or *max_rounds*).
    """
    current = dataset
    for _ in range(max_rounds):
        item_degrees = current.item_profile_sizes()
        user_sizes = current.user_profile_sizes()
        items_ok = np.all(
            (item_degrees == 0) | (item_degrees >= min_item_profile)
        )
        users_ok = np.all(user_sizes >= min_user_profile)
        if items_ok and users_ok:
            break
        if not items_ok:
            current = filter_items(current, min_degree=min_item_profile)
        user_sizes = current.user_profile_sizes()
        if np.any(user_sizes < min_user_profile):
            current = filter_users(current, min_profile=min_user_profile)
    return BipartiteDataset(
        matrix=current.matrix,
        name=name or f"{dataset.name}-core",
        symmetric=False,
    )


def train_test_split(
    dataset: BipartiteDataset,
    holdout_fraction: float = 0.2,
    min_train_profile: int = 1,
    seed: int = 0,
) -> tuple[BipartiteDataset, dict[int, set[int]]]:
    """Hide a fraction of each user's ratings for held-out evaluation.

    Returns ``(train_dataset, held_out)`` where ``held_out[u]`` is the set
    of item ids hidden from user ``u``.  At least *min_train_profile*
    ratings per user are protected from removal, so no training profile
    goes empty.
    """
    if not 0.0 < holdout_fraction < 1.0:
        raise DatasetError(
            f"holdout_fraction must be in (0, 1), got {holdout_fraction}"
        )
    train = dataset.sparsify(
        1.0 - holdout_fraction,
        seed=seed,
        min_profile_size=min_train_profile,
        name=f"{dataset.name}-train",
    )
    held_out: dict[int, set[int]] = {}
    for user in range(dataset.n_users):
        full = set(dataset.user_items(user).tolist())
        kept = set(train.user_items(user).tolist())
        held_out[user] = full - kept
    return train, held_out
