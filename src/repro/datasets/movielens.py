"""MovieLens-style rating dataset and the paper's density family.

Section V-B3 of the paper studies how density affects KIFF versus
NN-Descent.  Starting from MovieLens-1M ("ML-1": 6,040 users, 3,706
movies, 1,000,209 ratings, density 4.47%, every user has >= 20 ratings),
the authors randomly remove ratings to derive four sparser datasets
ML-2..ML-5 whose densities halve at each step (Table IX).

This module generates an ML-1-like dense dataset and applies exactly the
same random-removal procedure to derive the family.
"""

from __future__ import annotations

import numpy as np

from .bipartite import BipartiteDataset
from .generators import GeneratorConfig, power_law_bipartite

__all__ = ["movielens_like", "movielens_family", "ML_KEEP_FRACTIONS"]

#: Published shape of the paper's ML-1 dataset (Section V-B3).
ML_PAPER_SHAPE = {"n_users": 6_040, "n_items": 3_706, "n_ratings": 1_000_209}

#: Ratings kept in ML-1..ML-5 relative to ML-1, from Table IX of the paper
#: (1,000,209 / 500,009 / 255,188 / 131,668 / 68,415 ratings).
ML_KEEP_FRACTIONS = (1.0, 0.49990, 0.25513, 0.13164, 0.06840)


def movielens_like(
    n_users: int = 1_200,
    n_items: int = 740,
    density: float = 0.0447,
    min_ratings_per_user: int = 20,
    seed: int = 45,
    name: str = "ml-1",
) -> BipartiteDataset:
    """Generate an ML-1-like dense 5-star rating dataset.

    Defaults scale the published 6,040 x 3,706 shape down ~5x while keeping
    the published density (4.47%) and the ">= 20 ratings per user" floor the
    MovieLens curators enforce.
    """
    n_ratings = int(density * n_users * n_items)
    config = GeneratorConfig(
        name=name,
        n_users=n_users,
        n_items=n_items,
        n_ratings=n_ratings,
        user_exponent=0.6,
        item_exponent=0.75,
        rating_model="stars",
        symmetric=False,
        seed=seed,
    )
    dataset = power_law_bipartite(config)
    return _enforce_min_profile(dataset, min_ratings_per_user, seed, name)


def _enforce_min_profile(
    dataset: BipartiteDataset, min_size: int, seed: int, name: str
) -> BipartiteDataset:
    """Top up users below *min_size* ratings with uniformly random items."""
    sizes = dataset.user_profile_sizes()
    deficient = np.flatnonzero(sizes < min_size)
    if deficient.size == 0:
        return dataset
    rng = np.random.default_rng(seed + 1)
    coo = dataset.matrix.tocoo()
    users = [coo.row]
    items = [coo.col]
    ratings = [coo.data]
    for user in deficient:
        have = set(dataset.user_items(int(user)).tolist())
        missing = min_size - len(have)
        pool = np.setdiff1d(
            np.arange(dataset.n_items), np.fromiter(have, dtype=np.int64, count=len(have))
        )
        extra = rng.choice(pool, size=min(missing, pool.size), replace=False)
        users.append(np.full(extra.size, user, dtype=np.int64))
        items.append(extra.astype(np.int64))
        stars = rng.choice(np.arange(0.5, 5.01, 0.5), size=extra.size)
        ratings.append(stars)
    return BipartiteDataset.from_edges(
        np.concatenate(users),
        np.concatenate(items),
        np.concatenate(ratings),
        n_users=dataset.n_users,
        n_items=dataset.n_items,
        name=name,
    )


def movielens_family(
    base: BipartiteDataset | None = None,
    keep_fractions: tuple[float, ...] = ML_KEEP_FRACTIONS,
    seed: int = 46,
    **base_kwargs,
) -> list[BipartiteDataset]:
    """Build the ML-1..ML-5 density family of Table IX.

    The first element is the base dataset itself; each subsequent dataset
    keeps the published fraction of the base's ratings, chosen uniformly at
    random — the paper's exact derivation procedure.
    """
    if base is None:
        base = movielens_like(**base_kwargs)
    family = []
    for index, fraction in enumerate(keep_fractions, start=1):
        name = f"ml-{index}"
        if fraction >= 1.0:
            dataset = (
                base
                if base.name == name
                else BipartiteDataset(matrix=base.matrix, name=name)
            )
        else:
            dataset = base.sparsify(fraction, seed=seed + index, name=name)
        family.append(dataset)
    return family
