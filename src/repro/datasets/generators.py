"""Synthetic bipartite dataset generators.

The paper evaluates KIFF on four public SNAP datasets (Arxiv, Wikipedia,
Gowalla, DBLP) and a MovieLens density family.  Those archives are not
available in this offline environment, so this module provides *seeded
synthetic generators* that reproduce the statistical shape the paper's
analysis depends on:

* long-tailed (power-law) user- and item-profile size distributions
  (Figure 4 of the paper),
* target user/item counts and density (Table I),
* rating models matching each dataset (binary votes, visit counts,
  co-publication counts, 5-star ratings).

The generators are deliberately simple: edges are sampled from independent
Zipf-like endpoint distributions and de-duplicated.  This is the classic
bipartite configuration-style model and produces CCDFs with the straight
log-log tails the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bipartite import BipartiteDataset, DatasetError

__all__ = [
    "GeneratorConfig",
    "zipf_weights",
    "sample_power_law_edges",
    "power_law_bipartite",
    "ensure_min_user_profile",
    "large_scale_dataset",
    "RATING_MODELS",
    "draw_ratings",
]


def zipf_weights(n: int, exponent: float, rng: np.random.Generator | None = None) -> np.ndarray:
    """Return normalised Zipf(``exponent``) sampling weights over ``n`` ranks.

    ``weights[r] ~ 1 / (r + 1) ** exponent``.  The ranks are shuffled when a
    generator is supplied so that popularity is not correlated with id order
    (ids are pivot keys in KIFF, and correlating them with popularity would
    bias the pivot strategy in a way real datasets do not).
    """
    if n <= 0:
        raise DatasetError(f"need at least one element, got n={n}")
    if exponent < 0:
        raise DatasetError(f"zipf exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    if rng is not None:
        rng.shuffle(weights)
    return weights / weights.sum()


def draw_ratings(
    model: str, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``size`` ratings from a named rating model.

    Models
    ------
    ``binary``
        All ratings are 1.0 (Wikipedia votes, Arxiv co-authorship links).
    ``count``
        Geometric counts >= 1 (Gowalla check-in counts, DBLP
        co-publication counts): most pairs occur once, a long tail repeats.
    ``stars``
        MovieLens-style 5-star scale with half-star increments
        (0.5, 1.0, ..., 5.0), J-shaped towards 3-4 stars.
    """
    if model not in RATING_MODELS:
        raise DatasetError(
            f"unknown rating model {model!r}; expected one of "
            f"{sorted(RATING_MODELS)}"
        )
    return RATING_MODELS[model](size, rng)


def _binary_ratings(size: int, rng: np.random.Generator) -> np.ndarray:
    return np.ones(size, dtype=np.float64)


def _count_ratings(size: int, rng: np.random.Generator) -> np.ndarray:
    return rng.geometric(p=0.55, size=size).astype(np.float64)


def _star_ratings(size: int, rng: np.random.Generator) -> np.ndarray:
    stars = np.arange(0.5, 5.01, 0.5)
    # Empirical MovieLens-like shape: mass concentrated on 3-4 stars.
    weights = np.array([1, 2, 3, 5, 8, 14, 18, 23, 14, 12], dtype=np.float64)
    weights /= weights.sum()
    return rng.choice(stars, size=size, p=weights)


RATING_MODELS = {
    "binary": _binary_ratings,
    "count": _count_ratings,
    "stars": _star_ratings,
}


def sample_power_law_edges(
    n_users: int,
    n_items: int,
    n_ratings: int,
    user_exponent: float,
    item_exponent: float,
    rng: np.random.Generator,
    max_rounds: int = 12,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n_ratings`` *distinct* (user, item) edges.

    Endpoints are drawn independently from Zipf-like distributions and
    duplicate edges are rejected.  Sampling proceeds in rounds with
    over-provisioning, so the expected number of rounds is small even for
    dense targets.  Raises :class:`DatasetError` if the target cannot be
    reached (e.g. ``n_ratings > n_users * n_items``).
    """
    capacity = n_users * n_items
    if n_ratings > capacity:
        raise DatasetError(
            f"cannot place {n_ratings} distinct edges in a "
            f"{n_users}x{n_items} bipartite graph"
        )
    if n_ratings <= 0:
        raise DatasetError(f"n_ratings must be positive, got {n_ratings}")
    user_w = zipf_weights(n_users, user_exponent, rng)
    item_w = zipf_weights(n_items, item_exponent, rng)
    keys = np.empty(0, dtype=np.int64)
    for _ in range(max_rounds):
        missing = n_ratings - keys.size
        if missing <= 0:
            break
        draw = int(missing * 1.6) + 32
        users = rng.choice(n_users, size=draw, p=user_w)
        items = rng.choice(n_items, size=draw, p=item_w)
        new_keys = users.astype(np.int64) * n_items + items
        keys = np.unique(np.concatenate([keys, new_keys]))
    if keys.size < n_ratings:
        # Very dense target relative to the skew: fall back to filling with
        # uniform samples over the not-yet-used cells.
        missing = n_ratings - keys.size
        pool = np.setdiff1d(
            rng.choice(capacity, size=min(capacity, 4 * missing + 64), replace=False),
            keys,
            assume_unique=False,
        )
        if pool.size < missing:
            pool = np.setdiff1d(np.arange(capacity, dtype=np.int64), keys)
        keys = np.concatenate([keys, rng.permutation(pool)[:missing]])
    keys = rng.permutation(keys)[:n_ratings]
    return keys // n_items, keys % n_items


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of one synthetic bipartite dataset.

    ``user_exponent`` / ``item_exponent`` control the skew of the profile
    size distributions (larger = heavier tail concentration on few nodes;
    the paper's datasets are well described by exponents in [0.6, 1.1]).
    ``min_profile_size`` tops up users below that many ratings — real
    datasets have such floors (the paper's DBLP snapshot keeps only authors
    with >= 5 co-publications; MovieLens requires >= 20 ratings).
    """

    name: str
    n_users: int
    n_items: int
    n_ratings: int
    user_exponent: float = 0.8
    item_exponent: float = 0.8
    rating_model: str = "binary"
    symmetric: bool = False
    seed: int = 42
    min_profile_size: int = 0

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.n_items <= 0:
            raise DatasetError(
                f"{self.name}: n_users and n_items must be positive"
            )
        if self.symmetric and self.n_users != self.n_items:
            raise DatasetError(
                f"{self.name}: symmetric datasets need n_users == n_items"
            )
        if self.rating_model not in RATING_MODELS:
            raise DatasetError(
                f"{self.name}: unknown rating model {self.rating_model!r}"
            )

    @property
    def density(self) -> float:
        return self.n_ratings / (self.n_users * self.n_items)


def power_law_bipartite(config: GeneratorConfig) -> BipartiteDataset:
    """Generate a :class:`BipartiteDataset` from a :class:`GeneratorConfig`.

    Symmetric configurations (co-authorship graphs) generate an undirected
    edge set over one population and mirror it, so the resulting matrix is
    symmetric and ``n_ratings`` counts *directed* edges as the paper does
    (each co-authorship contributes one rating in each direction).
    """
    rng = np.random.default_rng(config.seed)
    if config.symmetric:
        dataset = _symmetric_dataset(config, rng)
    else:
        users, items = sample_power_law_edges(
            config.n_users,
            config.n_items,
            config.n_ratings,
            config.user_exponent,
            config.item_exponent,
            rng,
        )
        ratings = draw_ratings(config.rating_model, users.size, rng)
        dataset = BipartiteDataset.from_edges(
            users,
            items,
            ratings,
            n_users=config.n_users,
            n_items=config.n_items,
            name=config.name,
            symmetric=False,
        )
    if config.min_profile_size > 0:
        dataset = ensure_min_user_profile(
            dataset, config.min_profile_size, rng, config.rating_model
        )
    return dataset


def large_scale_dataset(
    n_users: int,
    *,
    ratings_per_user: float = 5.0,
    n_items: int | None = None,
    item_exponent: float = 0.9,
    rating_model: str = "binary",
    seed: int = 0,
    name: str | None = None,
) -> BipartiteDataset:
    """A million-user-class synthetic dataset built in one vectorized pass.

    :func:`power_law_bipartite` targets the paper's table shapes via
    rejection sampling over the full key space, which does not scale to
    the soak harness's 10^6 users.  Here profile sizes are geometric
    with mean *ratings_per_user* (floor 1 — every user rates something),
    item endpoints are Zipf-weighted so the popularity tail matches the
    paper's CCDFs, and duplicate edges collapse through a single
    ``np.unique`` over int64 stride keys.  Everything is seeded, so
    bytes-per-user counters derived from the result are deterministic.
    """
    if n_users <= 0:
        raise DatasetError(f"n_users must be positive, got {n_users}")
    if ratings_per_user < 1.0:
        raise DatasetError(
            f"ratings_per_user must be >= 1, got {ratings_per_user}"
        )
    if n_items is None:
        n_items = max(64, n_users // 100)
    rng = np.random.default_rng(seed)
    sizes = np.minimum(
        rng.geometric(p=1.0 / ratings_per_user, size=n_users), n_items
    )
    users = np.repeat(np.arange(n_users, dtype=np.int64), sizes)
    item_w = zipf_weights(n_items, item_exponent, rng)
    items = rng.choice(n_items, size=users.size, p=item_w).astype(np.int64)
    keys = np.unique(users * n_items + items)
    users, items = keys // n_items, keys % n_items
    ratings = draw_ratings(rating_model, users.size, rng)
    return BipartiteDataset.from_edges(
        users,
        items,
        ratings,
        n_users=n_users,
        n_items=n_items,
        name=name or f"synthetic-scale-{n_users}",
        symmetric=False,
    )


def ensure_min_user_profile(
    dataset: BipartiteDataset,
    min_size: int,
    rng: np.random.Generator,
    rating_model: str = "binary",
) -> BipartiteDataset:
    """Top up users with fewer than *min_size* ratings.

    Non-symmetric datasets receive uniformly random extra items; symmetric
    (co-authorship) datasets receive random extra partners, with the edge
    mirrored so the matrix stays symmetric.
    """
    sizes = dataset.user_profile_sizes()
    deficient = np.flatnonzero(sizes < min_size)
    if deficient.size == 0:
        return dataset
    coo = dataset.matrix.tocoo()
    users = [coo.row.astype(np.int64)]
    items = [coo.col.astype(np.int64)]
    values = [coo.data]
    for user in deficient:
        user = int(user)
        have = dataset.user_items(user)
        missing = min_size - have.size
        forbidden = set(have.tolist())
        if dataset.symmetric:
            forbidden.add(user)
        pool = np.array(
            [i for i in rng.choice(dataset.n_items, size=min(dataset.n_items, 8 * min_size + 16), replace=False) if i not in forbidden],
            dtype=np.int64,
        )
        extra = pool[:missing]
        if extra.size == 0:
            continue
        new_ratings = draw_ratings(rating_model, extra.size, rng)
        users.append(np.full(extra.size, user, dtype=np.int64))
        items.append(extra)
        values.append(new_ratings)
        if dataset.symmetric:
            users.append(extra)
            items.append(np.full(extra.size, user, dtype=np.int64))
            values.append(new_ratings)
    return BipartiteDataset.from_edges(
        np.concatenate(users),
        np.concatenate(items),
        np.concatenate(values),
        n_users=dataset.n_users,
        n_items=dataset.n_items,
        name=dataset.name,
        symmetric=dataset.symmetric,
    )


def _symmetric_dataset(
    config: GeneratorConfig, rng: np.random.Generator
) -> BipartiteDataset:
    """Generate a symmetric co-authorship-style dataset.

    We sample undirected pairs (u < v) with Zipf endpoint weights, then
    mirror them.  ``n_ratings`` is the directed edge target, so we aim for
    ``n_ratings / 2`` undirected pairs.
    """
    n = config.n_users
    target_pairs = max(config.n_ratings // 2, 1)
    weights = zipf_weights(n, config.user_exponent, rng)
    keys = np.empty(0, dtype=np.int64)
    for _ in range(16):
        missing = target_pairs - keys.size
        if missing <= 0:
            break
        draw = int(missing * 1.7) + 32
        a = rng.choice(n, size=draw, p=weights)
        b = rng.choice(n, size=draw, p=weights)
        lo, hi = np.minimum(a, b), np.maximum(a, b)
        mask = lo != hi
        new_keys = lo[mask].astype(np.int64) * n + hi[mask]
        keys = np.unique(np.concatenate([keys, new_keys]))
    keys = rng.permutation(keys)[:target_pairs]
    lo, hi = keys // n, keys % n
    ratings = draw_ratings(config.rating_model, lo.size, rng)
    users = np.concatenate([lo, hi])
    items = np.concatenate([hi, lo])
    values = np.concatenate([ratings, ratings])
    return BipartiteDataset.from_edges(
        users,
        items,
        values,
        n_users=n,
        n_items=n,
        name=config.name,
        symmetric=True,
    )
