"""KIFF: KNN graph construction for sparse datasets.

A complete reproduction of Boutet, Kermarrec, Mittal & Taïani, *Being
prepared in a sparse world: the case of KNN graph construction*
(ICDE 2016): the KIFF algorithm, its greedy competitors (NN-Descent,
HyRec), an exact brute-force baseline, synthetic datasets matching the
paper's evaluation suite, and a harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import KiffConfig, SimilarityEngine, kiff, load_dataset

    dataset = load_dataset("wikipedia", scale="tiny")
    engine = SimilarityEngine(dataset, metric="cosine")
    result = kiff(engine, KiffConfig(k=10))
    print(result.graph.neighbors_of(0), result.scan_rate)

Streaming maintenance
---------------------
When ratings arrive continuously, :class:`repro.streaming.DynamicKnnIndex`
keeps the converged KIFF graph exact under typed events (``AddRating``,
``RemoveRating``, ``AddUser``, ``RemoveUser``, ``Batch``) through
dirty-set-driven localized refinement — see ``README.md`` ("Streaming
maintenance") and ``examples/streaming_updates.py``::

    from repro import AddRating, DynamicKnnIndex

    index = DynamicKnnIndex(dataset, KiffConfig(k=10))
    index.apply(AddRating(user=3, item=12))   # graph stays exact

With a :class:`repro.persistence.WriteAheadLog` attached and periodic
``index.checkpoint(dir)`` calls, ``DynamicKnnIndex.restore(dir)``
recovers a bit-identical graph after a crash (README: "Durability").
:class:`repro.streaming.ShardedKnnIndex` runs the refinement
shard-parallel across workers — bit-identical at any shard count — with
per-shard ``wal-<shard>.jsonl`` segments and partitioned checkpoints
(README: "Sharding").
"""

from .baselines import (
    HyRecConfig,
    LshConfig,
    NNDescentConfig,
    brute_force_knn,
    hyrec,
    lsh_knn,
    nn_descent,
    random_knn_graph,
)
from .core import (
    ConstructionResult,
    KiffConfig,
    KnnHeap,
    RankedCandidateSets,
    RcsDelta,
    build_rcs,
    build_rcs_reference,
    delta_rcs,
    kiff,
)
from .datasets import (
    BipartiteDataset,
    DatasetError,
    MutableBipartiteBuilder,
    load_dataset,
    load_evaluation_suite,
    load_movielens_family,
)
from .graph import (
    KnnGraph,
    ReverseNeighborIndex,
    average_similarity,
    per_user_recall,
    recall,
    strict_recall,
)
from .instrumentation import (
    ConvergenceTrace,
    MaintenanceCounter,
    PhaseTimer,
    SimilarityCounter,
    scan_rate,
)
from .persistence import PartitionedWriteAheadLog, WriteAheadLog
from .scheduling import (
    Backpressure,
    RefreshScheduler,
    SchedulerPolicy,
    SubmitResult,
)
from .serving import (
    GraphSnapshot,
    KnnServer,
    NeighborReply,
    Recommendation,
    Recommender,
    neighbors_on,
    recommend_on,
)
from .similarity import (
    ProfileIndex,
    SimilarityEngine,
    SimilarityMetric,
    get_metric,
    metric_names,
    register_metric,
)
from .streaming import (
    AddRating,
    AddUser,
    ApplyResult,
    Batch,
    DynamicKnnIndex,
    RebalanceStats,
    RefreshStats,
    RemoveRating,
    RemoveUser,
    ShardMap,
    ShardPlan,
    ShardedKnnIndex,
    ratings_batch,
)

__version__ = "1.2.0"

__all__ = [
    "AddRating",
    "AddUser",
    "ApplyResult",
    "Backpressure",
    "Batch",
    "BipartiteDataset",
    "ConstructionResult",
    "ConvergenceTrace",
    "DatasetError",
    "DynamicKnnIndex",
    "GraphSnapshot",
    "HyRecConfig",
    "KiffConfig",
    "KnnGraph",
    "KnnHeap",
    "KnnServer",
    "LshConfig",
    "MaintenanceCounter",
    "MutableBipartiteBuilder",
    "NNDescentConfig",
    "NeighborReply",
    "PartitionedWriteAheadLog",
    "PhaseTimer",
    "ProfileIndex",
    "RankedCandidateSets",
    "RcsDelta",
    "RebalanceStats",
    "Recommendation",
    "Recommender",
    "RefreshScheduler",
    "RefreshStats",
    "RemoveRating",
    "RemoveUser",
    "ReverseNeighborIndex",
    "SchedulerPolicy",
    "ShardMap",
    "ShardPlan",
    "SimilarityCounter",
    "SimilarityEngine",
    "ShardedKnnIndex",
    "SimilarityMetric",
    "SubmitResult",
    "WriteAheadLog",
    "__version__",
    "average_similarity",
    "brute_force_knn",
    "build_rcs",
    "build_rcs_reference",
    "delta_rcs",
    "get_metric",
    "hyrec",
    "kiff",
    "load_dataset",
    "load_evaluation_suite",
    "load_movielens_family",
    "lsh_knn",
    "metric_names",
    "neighbors_on",
    "nn_descent",
    "per_user_recall",
    "random_knn_graph",
    "ratings_batch",
    "recall",
    "recommend_on",
    "register_metric",
    "scan_rate",
    "strict_recall",
]
