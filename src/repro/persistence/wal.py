"""Durable write-ahead event log (append-only JSONL).

Every event a :class:`~repro.streaming.index.DynamicKnnIndex` applies is
journaled here *before* it mutates in-memory state, so a crash loses at
most the unsynced tail of the current fsync batch.  Recovery is
checkpoint + log-tail replay (see :mod:`repro.persistence.checkpoint`).

Format: one JSON object per line.  The first line is a header carrying
the format version; every subsequent record carries a strictly
monotonically increasing ``seq`` starting at 1, so replay can resume
"after sequence N" and detect gaps.  A torn final line (the crash wrote
half a record) is tolerated on read and truncated away when the log is
reopened for append — the standard WAL recovery rule.

Durability is tunable through ``fsync_every``: every append is flushed
to the OS (so a same-machine reader and a SIGKILL survive it), but
``fsync`` — the expensive disk barrier — runs once per *N* appends, on
:meth:`WriteAheadLog.flush` and on close.  ``fsync_every=1`` is
strictest; ``None`` never fsyncs (OS-crash durability traded for
throughput).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

from ..streaming.events import (
    AddRating,
    AddUser,
    Batch,
    Event,
    MigrateBegin,
    MigrateCommit,
    RemoveRating,
    RemoveUser,
    flatten_events,
)

__all__ = [
    "PersistenceError",
    "WalError",
    "WriteAheadLog",
    "WAL_FILENAME",
    "decode_event",
    "encode_event",
    "fsync_dir",
    "read_wal",
    "rotate_superseded",
]


class PersistenceError(ValueError):
    """Raised when durable state is malformed or an operation is invalid."""


class WalError(PersistenceError):
    """Raised when a write-ahead log is corrupt or misused."""


#: Format version written into (and required of) the header line.
WAL_VERSION = 1

#: Conventional log filename inside a state directory (what
#: ``DynamicKnnIndex.restore`` and ``repro-kiff recover`` look for).
WAL_FILENAME = "wal.jsonl"


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so just-created/renamed entries survive power loss.

    ``fsync`` on a file makes its *bytes* durable; the directory entry
    pointing at them is metadata of the *parent directory* and needs its
    own fsync — without it, a power loss right after an ``os.replace``
    can silently roll the rename back, losing a checkpoint or log the
    caller already reported as committed.  Best effort on platforms that
    cannot open directories (e.g. Windows); tests monkeypatch this hook
    to assert the durability barriers are actually requested.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def rotate_superseded(path: str | Path, last_seq: int) -> Path:
    """Rotate a superseded log aside as ``<name>.superseded-<seq>``.

    Used by recovery when a durable checkpoint got further than the
    fsync-batched log (the crash ate the unsynced tail): the events are
    already inside the checkpoint, so the stale log is renamed out of
    the way and journaling restarts fresh.  The rename is made durable
    with a parent-directory fsync — otherwise a power loss could resurrect
    the stale log next to the new one and desynchronize a later replay.
    """
    path = Path(path)
    target = path.with_name(f"{path.name}.superseded-{last_seq}")
    os.replace(path, target)
    fsync_dir(path.parent)
    return target


def encode_event(event: Event) -> dict:
    """*event* as a JSON-serializable record (without its ``seq``)."""
    if isinstance(event, AddRating):
        return {
            "type": "add_rating",
            "user": int(event.user),
            "item": int(event.item),
            "rating": float(event.rating),
        }
    if isinstance(event, RemoveRating):
        return {
            "type": "remove_rating",
            "user": int(event.user),
            "item": int(event.item),
        }
    if isinstance(event, AddUser):
        return {
            "type": "add_user",
            "items": [int(item) for item in event.items],
            "ratings": (
                None
                if event.ratings is None
                else [float(rating) for rating in event.ratings]
            ),
        }
    if isinstance(event, RemoveUser):
        return {"type": "remove_user", "user": int(event.user)}
    if isinstance(event, (MigrateBegin, MigrateCommit)):
        kind = (
            "migrate_begin"
            if isinstance(event, MigrateBegin)
            else "migrate_commit"
        )
        return {
            "type": kind,
            "moves": [
                [int(user), int(shard)] for user, shard in event.moves
            ],
            "n_shards": (
                None if event.n_shards is None else int(event.n_shards)
            ),
        }
    if isinstance(event, Batch):
        raise WalError(
            "batches are journaled flattened; encode their primitive events"
        )
    raise TypeError(f"unknown streaming event {event!r}")


def decode_event(record: dict) -> Event:
    """Inverse of :func:`encode_event`."""
    kind = record.get("type")
    try:
        if kind == "add_rating":
            return AddRating(
                int(record["user"]), int(record["item"]), float(record["rating"])
            )
        if kind == "remove_rating":
            return RemoveRating(int(record["user"]), int(record["item"]))
        if kind == "add_user":
            ratings = record["ratings"]
            return AddUser(
                tuple(int(item) for item in record["items"]),
                None
                if ratings is None
                else tuple(float(rating) for rating in ratings),
            )
        if kind == "remove_user":
            return RemoveUser(int(record["user"]))
        if kind in ("migrate_begin", "migrate_commit"):
            cls = MigrateBegin if kind == "migrate_begin" else MigrateCommit
            n_shards = record["n_shards"]
            return cls(
                tuple(
                    (int(user), int(shard))
                    for user, shard in record["moves"]
                ),
                None if n_shards is None else int(n_shards),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise WalError(f"malformed WAL record {record!r}") from exc
    raise WalError(f"unknown WAL record type {kind!r}")


def _parse(
    raw: bytes, path: Path, contiguous: bool = True
) -> tuple[list[tuple[int, dict]], int]:
    """Parse raw log bytes into ``[(seq, record), ...]`` + clean length.

    A torn *final* line (no trailing newline, or undecodable JSON at the
    very end) is dropped; the returned clean length excludes it so a
    reopen can truncate.  Corruption anywhere else — an undecodable line
    followed by valid data, a sequence gap, a bad header — raises
    :class:`WalError`, because silently skipping records would replay a
    different history than the one that was applied.

    ``contiguous=False`` relaxes the gap rule to *strictly increasing*:
    a partitioned segment (``wal-<shard>.jsonl``) records only the events
    routed to its shard, so gaps in its global sequence numbers are
    expected — cross-segment contiguity is checked by the merged reader
    (:func:`repro.persistence.partition.read_partitioned_wal`) instead.
    """
    records: list[tuple[int, dict]] = []
    clean = 0
    offset = 0
    saw_header = False
    lines = raw.split(b"\n")
    for pos, line in enumerate(lines):
        is_last = pos == len(lines) - 1
        if line == b"":
            offset += 1  # the split point's newline (or trailing empty)
            continue
        torn = is_last  # no newline terminated this line
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except (ValueError, UnicodeDecodeError) as exc:
            if torn:
                break  # torn tail: recovered by truncation
            raise WalError(
                f"corrupt WAL record at byte {offset} of {path}"
            ) from exc
        if torn:
            break  # a complete-looking but unterminated record: drop it
        if not saw_header:
            if record.get("type") != "header":
                raise WalError(f"{path} does not start with a WAL header")
            version = record.get("version")
            if version != WAL_VERSION:
                raise WalError(
                    f"unsupported WAL version {version!r} in {path} "
                    f"(this library writes version {WAL_VERSION})"
                )
            saw_header = True
        else:
            seq = record.get("seq")
            if records:
                # Contiguous after the first record; the log may *start*
                # at any sequence (journaling can begin mid-history,
                # with a checkpoint covering everything before it).
                expected = records[-1][0] + 1
                if contiguous and seq != expected:
                    raise WalError(
                        f"WAL sequence gap in {path}: expected {expected}, "
                        f"got {seq!r}"
                    )
                if not contiguous and (
                    not isinstance(seq, int) or seq < expected
                ):
                    raise WalError(
                        f"WAL sequence regression in {path}: expected "
                        f">= {expected}, got {seq!r}"
                    )
            elif not isinstance(seq, int) or seq < 1:
                raise WalError(
                    f"WAL record in {path} has invalid sequence {seq!r}"
                )
            records.append((seq, record))
        offset += len(line) + 1
        clean = offset
    return records, clean


def read_wal(
    path: str | Path, after: int = 0, contiguous: bool = True
) -> Iterator[tuple[int, Event]]:
    """Yield ``(seq, event)`` for every logged event with ``seq > after``.

    Tolerates a torn final line; raises :class:`WalError` on any other
    corruption (mid-file garbage, sequence gaps, version mismatch).
    ``contiguous=False`` reads one partitioned segment, whose global
    sequence numbers may legitimately hold gaps (see :func:`_parse`).
    """
    path = Path(path)
    records, _ = _parse(path.read_bytes(), path, contiguous=contiguous)
    for seq, record in records:
        if seq > after:
            yield seq, decode_event(record)


class WriteAheadLog:
    """Append-only durable event journal with fsync batching.

    Parameters
    ----------
    path:
        The JSONL file.  A missing file is created (with its header); an
        existing one is recovered — torn tail truncated, last sequence
        number adopted — and appended to.
    fsync_every:
        Run ``os.fsync`` once per this many appends (plus on
        :meth:`flush` and :meth:`close`).  ``1`` syncs every append;
        ``None`` never syncs (every append is still flushed to the OS).
    contiguous:
        When True (default) sequence numbers must be gap-free and
        :meth:`append` auto-assigns ``last_seq + 1``.  ``False`` opens a
        *partitioned segment* (``wal-<shard>.jsonl``): the caller
        assigns each record its global sequence number explicitly and
        gaps are expected (events routed to other shards).
    """

    def __init__(
        self,
        path: str | Path,
        fsync_every: int | None = 64,
        contiguous: bool = True,
    ):
        if fsync_every is not None and fsync_every <= 0:
            raise ValueError(
                f"fsync_every must be positive or None, got {fsync_every}"
            )
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.contiguous = contiguous
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._last_seq = 0
        self._unsynced = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            raw = self.path.read_bytes()
            records, clean = _parse(raw, self.path, contiguous=contiguous)
            if clean < len(raw):
                # Torn tail from a crash mid-write: truncate before
                # appending, or the next record would corrupt the file.
                with self.path.open("r+b") as handle:
                    handle.truncate(clean)
            self._last_seq = records[-1][0] if records else 0
            self._handle = self.path.open("ab")
            if clean == 0:
                # Even the header line was torn (crash at creation):
                # the truncation emptied the file, so re-create it, or
                # every future read would reject a header-less log.
                self._write_record({"type": "header", "version": WAL_VERSION})
                self.flush()
        else:
            self._handle = self.path.open("ab")
            self._write_record({"type": "header", "version": WAL_VERSION})
            self.flush()
            # Make the new log's directory entry durable: a power loss
            # must not leave a durable checkpoint referring to a log the
            # filesystem forgot it created.
            fsync_dir(self.path.parent)

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended event."""
        return self._last_seq

    def advance_to(self, seq: int) -> None:
        """Fast-forward an *empty* log to sequence *seq*.

        Lets journaling begin mid-history (the index is at event N, a
        checkpoint covers 1..N, the log records N+1 onward).  Refused on
        a log that already holds events — renumbering history would
        desynchronize replay.
        """
        if self._last_seq != 0:
            raise WalError(
                f"cannot advance {self.path} to sequence {seq}: the log "
                f"already holds events up to {self._last_seq}"
            )
        if seq < 0:
            raise ValueError(f"seq must be >= 0, got {seq}")
        self._last_seq = int(seq)

    @property
    def closed(self) -> bool:
        """Whether the underlying file handle has been closed."""
        return self._handle.closed

    def _write_record(self, record: dict) -> None:
        if self._handle.closed:
            raise WalError(f"write-ahead log {self.path} is closed")
        self._handle.write(
            json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"
        )

    def append(self, event: Event, seq: int | None = None) -> int:
        """Journal one primitive event; returns its sequence number.

        The record is flushed to the OS immediately (a SIGKILL of this
        process cannot lose it) and fsynced per the batching policy.
        A failed write (disk full) leaves the sequence counter and —
        best effort — the file exactly as before, so a caller retry
        reuses the same sequence number instead of leaving a gap that
        would render the log unreadable.

        ``seq`` (partitioned segments only) assigns the record an
        explicit global sequence number; it must advance — contiguously
        for a contiguous log, strictly for a segment.
        """
        record = encode_event(event)
        if self._handle.closed:
            raise WalError(f"write-ahead log {self.path} is closed")
        if seq is not None:
            seq = int(seq)
            if self.contiguous and seq != self._last_seq + 1:
                raise WalError(
                    f"contiguous log {self.path} is at {self._last_seq}; "
                    f"cannot append explicit sequence {seq}"
                )
            if seq <= self._last_seq:
                raise WalError(
                    f"sequence must advance past {self._last_seq} in "
                    f"{self.path}, got {seq}"
                )
        self._handle.flush()
        offset = self._handle.tell()
        if seq is None:
            seq = self._last_seq + 1
        try:
            self._write_record({"seq": seq, **record})
            self._handle.flush()
        except Exception:
            try:
                # Drop any partially landed bytes; if even this fails,
                # the next reopen's torn-tail truncation recovers.
                os.ftruncate(self._handle.fileno(), offset)
            except OSError:
                pass
            raise
        self._last_seq = seq
        self._unsynced += 1
        if self.fsync_every is not None and self._unsynced >= self.fsync_every:
            self._fsync()
        return self._last_seq

    def append_many(self, events) -> int:
        """Journal a batch (flattened); returns the last sequence number."""
        for event in events:
            for primitive in flatten_events(event):
                self.append(primitive)
        return self._last_seq

    def mark(self) -> tuple[int, int]:
        """The current ``(last_seq, byte offset)`` — a :meth:`rollback`
        target taken before a multi-event journaling unit."""
        if self._handle.closed:
            raise WalError(f"write-ahead log {self.path} is closed")
        self._handle.flush()
        return (self._last_seq, self._handle.tell())

    def rollback(self, mark: tuple[int, int]) -> None:
        """Discard every append made after :meth:`mark`.

        Restores journal/state atomicity when journaling a batch fails
        partway (e.g. disk full on the Kth record): without the
        rollback, already-journaled events the index never absorbed
        would replay as phantoms — and a caller retry would journal them
        twice, silently diverging recovery from the live run.
        """
        seq, offset = mark
        if self._handle.closed:
            raise WalError(f"write-ahead log {self.path} is closed")
        self._handle.flush()
        os.ftruncate(self._handle.fileno(), offset)
        os.fsync(self._handle.fileno())
        self._last_seq = seq
        self._unsynced = 0

    def _fsync(self) -> None:
        os.fsync(self._handle.fileno())
        self._unsynced = 0

    def flush(self) -> None:
        """Flush and fsync everything appended so far."""
        if not self._handle.closed:
            self._handle.flush()
            self._fsync()

    def close(self) -> None:
        """Flush, fsync and close the log file (idempotent)."""
        if not self._handle.closed:
            self.flush()
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog(path={str(self.path)!r}, "
            f"last_seq={self._last_seq}, fsync_every={self.fsync_every})"
        )
