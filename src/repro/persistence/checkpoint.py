"""Checkpoint format: the full maintained streaming state in one archive.

A checkpoint serializes everything a
:class:`~repro.streaming.index.DynamicKnnIndex` needs to resume exactly
where it was: the dataset snapshot (via
:func:`repro.datasets.mutable.snapshot_to_arrays`), the KNN graph rows
(CSR-packed via :func:`repro.graph.io.pack_graph_arrays`), the dirty
set, the
delta-maintained candidate-multiset cache (in insertion order, so
eviction order survives), and the cost counters.  The reverse-neighbor
index is *not* stored: it is a pure function of the graph rows and is
re-derived on load, which is both cheaper than parsing it and immune to
drift.

Recovery = latest checkpoint + :mod:`write-ahead log
<repro.persistence.wal>` tail replay.  Because the maintained graph is
the converged KIFF fixed point — independent of the refresh schedule —
the restored index's refreshed graph is **bit-identical** to the
uninterrupted run's (the recovery parity suite pins this across
randomized kill points).

Checkpoints are written atomically (temp file + ``os.replace``) as
``checkpoint-<seq>.npz`` so a crash mid-checkpoint leaves the previous
one intact and :func:`latest_checkpoint` always finds a complete file.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.config import KiffConfig
from ..datasets.bipartite import BipartiteDataset
from ..datasets.mutable import snapshot_from_arrays, snapshot_to_arrays
from ..graph.io import graph_from_arrays, pack_graph_arrays, unpack_graph_arrays
from ..graph.knn_graph import KnnGraph
from ..layout import ID_DTYPE, SCORE_DTYPE, dtype_tags, indptr_dtype
from . import wal as _wal
from .wal import WAL_FILENAME, PersistenceError, WriteAheadLog, read_wal

__all__ = [
    "CheckpointError",
    "CheckpointState",
    "RestoreInfo",
    "cache_from_arrays",
    "cache_to_arrays",
    "checkpoint_meta",
    "checkpoint_path",
    "install_checkpoint_state",
    "latest_checkpoint",
    "load_checkpoint",
    "load_latest_checkpoint",
    "restore_index",
    "save_checkpoint",
]


class CheckpointError(PersistenceError):
    """Raised when a checkpoint is missing, corrupt or incompatible."""


#: Version written by this library.  Version 2 stores the graph rows
#: CSR-packed at the compact layout (int32 ids, float32 sims; see
#: :mod:`repro.layout`) and tags the metadata with the dtype contract.
CHECKPOINT_VERSION = 2
#: Versions :func:`load_checkpoint` can restore.  Version-1 archives
#: (dense int64/float64 graph rows) restore bit-correctly: the legacy
#: writer stored the same pre-cast float64 values the score boundary
#: now rounds, so narrowing them to float32 reproduces today's scores.
SUPPORTED_CHECKPOINT_VERSIONS = frozenset({1, 2})
_PREFIX = "checkpoint-"


@dataclass(frozen=True)
class CheckpointState:
    """Everything :func:`load_checkpoint` recovers from one archive."""

    path: Path
    seq: int
    name: str
    metric: str
    config: KiffConfig
    auto_refresh: bool
    pending_events: int
    candidate_cache_size: int | None
    initial_evaluations: int
    evaluations: int
    maintenance: dict
    dataset: BipartiteDataset
    neighbors: np.ndarray
    sims: np.ndarray
    dirty: tuple[int, ...]
    #: ``(user, {candidate: count})`` pairs in cache-insertion order.
    cache: tuple


@dataclass(frozen=True)
class RestoreInfo:
    """Provenance of a restored index (stashed as ``index.restore_info``)."""

    checkpoint: Path
    checkpoint_seq: int
    #: WAL-tail events replayed on top of the checkpoint.
    replayed_events: int
    last_seq: int
    #: Similarity evaluations the restore spent (tail replay + refresh).
    evaluations: int


def checkpoint_path(directory: str | Path, seq: int) -> Path:
    """Canonical archive path for a checkpoint at sequence *seq*."""
    return Path(directory) / f"{_PREFIX}{seq:012d}.npz"


def _checkpoint_candidates(directory: Path) -> list[Path]:
    """Every ``checkpoint-*.npz`` under *directory*, newest first."""
    return [path for _, path in sorted(_discover_flat(directory), reverse=True)]


def latest_checkpoint(directory: str | Path) -> Path | None:
    """The highest-sequence ``checkpoint-*.npz`` under *directory*."""
    candidates = _checkpoint_candidates(Path(directory))
    return candidates[0] if candidates else None


def cache_to_arrays(candidate_counts: dict) -> dict[str, np.ndarray]:
    """A candidate-multiset cache as compressed parallel arrays.

    Insertion order is preserved (it is the cache's eviction order).
    The inverse is :func:`cache_from_arrays`.
    """
    cache_users = list(candidate_counts)
    cache_lengths = [len(candidate_counts[u]) for u in cache_users]
    cache_indptr = np.zeros(len(cache_users) + 1, dtype=np.int64)
    np.cumsum(cache_lengths, out=cache_indptr[1:])
    cache_candidates = np.concatenate(
        [
            np.fromiter(counts.keys(), np.int64, len(counts))
            for counts in (candidate_counts[u] for u in cache_users)
        ]
        or [np.empty(0, dtype=np.int64)]
    )
    cache_counts = np.concatenate(
        [
            np.fromiter(counts.values(), np.int64, len(counts))
            for counts in (candidate_counts[u] for u in cache_users)
        ]
        or [np.empty(0, dtype=np.int64)]
    )
    # User/candidate ids and shared-item counts all fit the compact id
    # width; cache_from_arrays round-trips via tolist(), so the dtype is
    # purely an at-rest size choice.
    return {
        "cache_users": np.asarray(cache_users, dtype=ID_DTYPE),
        "cache_indptr": cache_indptr.astype(
            indptr_dtype(int(cache_indptr[-1])), copy=False
        ),
        "cache_candidates": cache_candidates.astype(ID_DTYPE, copy=False),
        "cache_counts": cache_counts.astype(ID_DTYPE, copy=False),
    }


def cache_from_arrays(archive) -> tuple:
    """Inverse of :func:`cache_to_arrays` (accepts any array mapping)."""
    cache_users = np.asarray(archive["cache_users"]).tolist()
    cache_indptr = np.asarray(archive["cache_indptr"])
    cache_candidates = np.asarray(archive["cache_candidates"])
    cache_counts = np.asarray(archive["cache_counts"])
    return tuple(
        (
            user,
            dict(
                zip(
                    cache_candidates[
                        cache_indptr[pos] : cache_indptr[pos + 1]
                    ].tolist(),
                    cache_counts[
                        cache_indptr[pos] : cache_indptr[pos + 1]
                    ].tolist(),
                )
            ),
        )
        for pos, user in enumerate(cache_users)
    )


def checkpoint_meta(index, dataset) -> dict:
    """The JSON metadata block shared by the flat and sharded layouts."""
    return {
        "version": CHECKPOINT_VERSION,
        "dtypes": dtype_tags(),
        "seq": index.last_seq,
        "name": dataset.name,
        "metric": index.engine.metric.name,
        "config": asdict(index.config),
        "auto_refresh": bool(index.auto_refresh),
        "pending_events": int(index.pending_events),
        "candidate_cache_size": index.candidate_cache_size,
        "initial_evaluations": int(index.initial_evaluations),
        "evaluations": int(index.engine.counter.evaluations),
        "maintenance": {
            field: int(getattr(index.maintenance, field))
            for field in index.maintenance.__dataclass_fields__
        },
    }


def save_checkpoint(index, directory: str | Path) -> Path:
    """Serialize *index* into ``directory/checkpoint-<seq>.npz``.

    Callable at any point of the stream — pending (unrefreshed) events
    are captured through the dataset snapshot plus the dirty set, so a
    restore followed by one refresh lands on the same converged graph.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dataset = index.builder.snapshot()
    neighbors, sims = index._rows()
    graph_arrays = pack_graph_arrays(KnnGraph(neighbors, sims))
    cache_arrays = cache_to_arrays(index._candidate_counts)
    meta = checkpoint_meta(index, dataset)
    path = checkpoint_path(directory, index.last_seq)
    tmp = path.with_name(path.name + ".tmp.npz")
    try:
        np.savez_compressed(
            tmp,
            meta=np.asarray(json.dumps(meta)),
            **graph_arrays,
            dirty=np.asarray(sorted(index._dirty), dtype=np.int64),
            **cache_arrays,
            **snapshot_to_arrays(dataset),
        )
        # Make the data durable before the rename makes it visible —
        # otherwise a power loss can leave a durable name pointing at
        # lost bytes (restore still falls back to older checkpoints).
        with tmp.open("rb+") as handle:
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        # ... and make the *rename* durable: the new directory entry
        # lives in the parent's metadata, which needs its own fsync or
        # a power loss can silently undo the just-"committed" rename.
        _wal.fsync_dir(directory)
    finally:
        if tmp.exists():  # savez failed before the atomic rename
            tmp.unlink()
    return path


def load_checkpoint(path: str | Path) -> CheckpointState:
    """Parse a checkpoint archive back into a :class:`CheckpointState`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        try:
            meta = json.loads(str(np.asarray(archive["meta"]).item()))
        except (KeyError, ValueError) as exc:
            raise CheckpointError(f"corrupt checkpoint metadata in {path}") from exc
        version = meta.get("version")
        if version not in SUPPORTED_CHECKPOINT_VERSIONS:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} in {path} "
                f"(this library writes version {CHECKPOINT_VERSION} and "
                f"reads {sorted(SUPPORTED_CHECKPOINT_VERSIONS)})"
            )
        if "graph_neighbors" in archive:
            # Version-1 dense rows; KnnGraph narrows them to the compact
            # layout bit-correctly (see SUPPORTED_CHECKPOINT_VERSIONS).
            graph = graph_from_arrays(
                {
                    "neighbors": archive["graph_neighbors"],
                    "sims": archive["graph_sims"],
                }
            )
        else:
            graph = unpack_graph_arrays(archive)
        dataset = snapshot_from_arrays(archive, name=meta["name"])
        cache = cache_from_arrays(archive)
        return checkpoint_state_from_meta(
            meta,
            path=path,
            dataset=dataset,
            neighbors=graph.neighbors,
            sims=graph.sims,
            dirty=tuple(archive["dirty"].tolist()),
            cache=cache,
        )


def checkpoint_state_from_meta(
    meta: dict, cls=None, **fields
) -> CheckpointState:
    """Assemble a :class:`CheckpointState` (or subclass) from metadata."""
    config_fields = dict(meta["config"])
    gamma = config_fields.get("gamma")
    if gamma is not None:
        config_fields["gamma"] = float(gamma)
    return (cls or CheckpointState)(
        seq=int(meta["seq"]),
        name=meta["name"],
        metric=meta["metric"],
        config=KiffConfig(**config_fields),
        auto_refresh=bool(meta["auto_refresh"]),
        pending_events=int(meta["pending_events"]),
        candidate_cache_size=meta["candidate_cache_size"],
        initial_evaluations=int(meta["initial_evaluations"]),
        evaluations=int(meta["evaluations"]),
        maintenance=dict(meta["maintenance"]),
        **fields,
    )


def load_latest_checkpoint(directory: Path, loaders) -> "CheckpointState":
    """Newest *readable* checkpoint state under *directory*.

    ``loaders`` maps a glob-discovery function to a load function; every
    discovered candidate is tried newest-first, falling back past
    unreadable archives (a crash can leave the latest one truncated even
    with atomic renames) — the WAL tail bridges whatever an older
    checkpoint is missing, and replay verifies sequence contiguity and
    fails loudly if it can't.
    """
    candidates: list[tuple[int, Path, object]] = []
    for discover, load in loaders:
        for seq, path in discover(directory):
            candidates.append((seq, path, load))
    if not candidates:
        raise CheckpointError(
            f"no checkpoint archives under {directory}; call "
            f"index.checkpoint(directory) at least once before restoring"
        )
    failures: list[str] = []
    for seq, path, load in sorted(
        candidates, key=lambda entry: entry[0], reverse=True
    ):
        try:
            return load(path)
        except Exception as exc:  # noqa: BLE001 - any corruption: try older
            failures.append(f"{path.name}: {exc}")
    raise CheckpointError(
        f"no readable checkpoint under {directory} ({'; '.join(failures)})"
    )


def _discover_flat(directory: Path) -> list[tuple[int, Path]]:
    """``(seq, path)`` for every flat ``checkpoint-*.npz`` candidate."""
    found: list[tuple[int, Path]] = []
    if not directory.is_dir():
        return found
    for path in directory.glob(f"{_PREFIX}*.npz"):
        stem = path.name[len(_PREFIX) : -len(".npz")]
        try:
            found.append((int(stem), path))
        except ValueError:
            continue
    return found


def install_checkpoint_state(index, state: CheckpointState) -> None:
    """Install a loaded checkpoint into a freshly built (build=False) index.

    Works through the index's own state surfaces (``_dirty``,
    ``_reverse``, ``_cache_insert``) rather than raw assignment, so a
    :class:`~repro.streaming.sharding.ShardedKnnIndex` — whose surfaces
    route to per-shard slices — restores through the same code path.
    """
    # Checkpoint states carry compact rows (legacy archives were cast at
    # load); astype(copy=True) also tolerates a hand-built wide state.
    index._neighbors = np.asarray(state.neighbors).astype(ID_DTYPE)
    index._sims = np.asarray(state.sims).astype(SCORE_DTYPE)
    index._n_rows = state.neighbors.shape[0]
    index._reverse.rebuild(state.neighbors)
    index._dirty.clear()
    index._dirty.update(state.dirty)
    index._pending_events = state.pending_events
    for user, counts in state.cache:
        index._cache_insert(int(user), dict(counts))
    index.engine.counter.evaluations = state.evaluations
    index.initial_evaluations = state.initial_evaluations
    for field, value in state.maintenance.items():
        if field in index.maintenance.__dataclass_fields__:
            setattr(index.maintenance, field, value)
    index._seq = state.seq


def restore_index(
    cls,
    directory: str | Path,
    metric=None,
    refresh: bool = True,
    fsync_every: int | None = 64,
):
    """Recover a ``DynamicKnnIndex`` from *directory* (checkpoint + WAL).

    Loads the latest checkpoint, replays the write-ahead log tail
    (events with ``seq`` beyond the checkpoint) with refinement
    suppressed, then runs one refresh — restoring the converged graph at
    a cost proportional to the tail's dirty set, not the dataset.  When
    a ``wal.jsonl`` is present it is reopened for append, so the
    restored index keeps journaling where the crashed one stopped.

    *cls* is the index class (passed in to avoid a circular import);
    call this as ``DynamicKnnIndex.restore(directory)``.
    """
    directory = Path(directory)
    from .partition import detect_state_layout

    if detect_state_layout(directory) == "sharded":
        raise CheckpointError(
            f"{directory} holds a partitioned (sharded) state layout; "
            f"recover it with ShardedKnnIndex.restore(...) or "
            f"'repro-kiff recover {directory}' — replaying only the flat "
            f"artifacts would silently drop the per-shard events"
        )
    state = load_latest_checkpoint(directory, [(_discover_flat, load_checkpoint)])
    ckpt = state.path
    index = cls(
        state.dataset,
        state.config,
        metric=state.metric if metric is None else metric,
        auto_refresh=False,
        build=False,
        candidate_cache_size=state.candidate_cache_size,
    )
    # build=False left an all-dirty empty graph; install the checkpoint.
    install_checkpoint_state(index, state)
    wal_file = directory / WAL_FILENAME
    replayed = 0
    if wal_file.exists():
        for seq, event in read_wal(wal_file, after=state.seq):
            if seq != index._seq + 1:
                # The log's first surviving record starts beyond the
                # checkpoint (e.g. the newer checkpoint that covered
                # the gap is the corrupt one we skipped): replaying
                # would silently drop the events in between.
                raise CheckpointError(
                    f"write-ahead log {wal_file} resumes at sequence "
                    f"{seq} but checkpoint {ckpt.name} ends at "
                    f"{index._seq}; events {index._seq + 1}..{seq - 1} "
                    f"are not recoverable from this state directory"
                )
            index._absorb(event)
            index._pending_events += 1
            index._seq = seq
            replayed += 1
    if refresh:
        index.refresh()
    index.auto_refresh = state.auto_refresh
    if wal_file.exists():
        wal = WriteAheadLog(wal_file, fsync_every=fsync_every)
        if wal.last_seq < index.last_seq:
            # An fsync-batched tail died with the crash while a durable
            # checkpoint got further: the checkpoint already contains
            # those events, so rotate the superseded log aside and
            # restart journaling at the index's sequence.
            wal.close()
            _wal.rotate_superseded(wal_file, index.last_seq)
            wal = WriteAheadLog(wal_file, fsync_every=fsync_every)
        index.attach_wal(wal)
    index.restore_info = RestoreInfo(
        checkpoint=ckpt,
        checkpoint_seq=state.seq,
        replayed_events=replayed,
        last_seq=index.last_seq,
        evaluations=index.engine.counter.evaluations - state.evaluations,
    )
    return index
