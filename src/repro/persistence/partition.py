"""Partitioned durable state: per-shard WAL segments + sharded checkpoints.

A :class:`~repro.streaming.sharding.ShardedKnnIndex` hash-partitions
users across shards; this module gives each shard its own slice of the
durable state so recovery is a per-partition operation:

* **Partitioned WAL** — ``wal-<shard>.jsonl`` segments, one per shard,
  in the same header/record format as the flat ``wal.jsonl``
  (:mod:`repro.persistence.wal`).  Every record carries the *global*
  event sequence number, so one segment holds gaps (events routed to
  other shards) but the union of all segments is the contiguous event
  history.  :func:`read_partitioned_wal` merges the segments (plus a
  flat ``wal.jsonl`` left behind by a pre-sharding run) back into global
  order for replay.
* **Sharded checkpoints** — ``checkpoint-<seq>.shards/`` directories
  holding ``meta.json``, a ``base.npz`` (dataset snapshot + graph rows,
  shared state) and one ``shard-<i>.npz`` per shard (that shard's dirty
  slice and candidate-multiset cache).  Written atomically (temp
  directory + ``os.replace`` + parent-directory fsync), exactly like the
  flat archives.

:func:`restore_sharded_index` recovers from **either** layout — the
latest readable checkpoint (flat ``.npz`` or sharded ``.shards``) plus
the merged log tail — so a flat state directory can be adopted by a
sharded index (and re-sharded: ownership never affects graph content,
so per-shard slices are re-derived at any shard count; live-move
overrides survive only a same-count restore).
The flat :func:`~repro.persistence.checkpoint.restore_index` refuses
sharded directories instead of silently dropping per-shard events.
"""

from __future__ import annotations

import heapq
import json
import os
import re
import shutil
from pathlib import Path
from typing import Iterator

import numpy as np

from ..datasets.mutable import snapshot_from_arrays, snapshot_to_arrays
from ..graph.io import (
    graph_from_arrays,
    pack_graph_arrays,
    unpack_graph_arrays,
)
from ..graph.knn_graph import KnnGraph
from ..streaming.events import Event
from . import wal as _wal
from .checkpoint import (
    CHECKPOINT_VERSION,
    SUPPORTED_CHECKPOINT_VERSIONS,
    CheckpointError,
    CheckpointState,
    RestoreInfo,
    _PREFIX,
    _discover_flat,
    cache_from_arrays,
    cache_to_arrays,
    checkpoint_meta,
    checkpoint_state_from_meta,
    install_checkpoint_state,
    load_checkpoint,
    load_latest_checkpoint,
)
from .wal import WAL_FILENAME, WalError, WriteAheadLog, read_wal

__all__ = [
    "PartitionedWriteAheadLog",
    "ShardedCheckpointState",
    "detect_state_layout",
    "load_sharded_checkpoint",
    "read_partitioned_wal",
    "restore_sharded_index",
    "save_sharded_checkpoint",
    "sharded_checkpoint_path",
    "wal_segment_path",
]

#: Suffix distinguishing sharded checkpoint directories from flat archives.
SHARDED_SUFFIX = ".shards"

_SEGMENT_RE = re.compile(r"^wal-(\d+)\.jsonl$")


def wal_segment_path(directory: str | Path, shard: int) -> Path:
    """Canonical path of shard *shard*'s WAL segment."""
    return Path(directory) / f"wal-{int(shard)}.jsonl"


def _segments(directory: Path) -> list[Path]:
    """Every ``wal-<shard>.jsonl`` under *directory*, by shard id."""
    found: list[tuple[int, Path]] = []
    if directory.is_dir():
        for path in directory.glob("wal-*.jsonl"):
            match = _SEGMENT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def detect_state_layout(directory: str | Path) -> str | None:
    """``"sharded"``, ``"flat"`` or ``None`` for a state directory.

    Sharded artifacts (WAL segments or ``.shards`` checkpoints) win over
    flat ones: a migrated directory holds both, and only the merged
    sharded reader replays its full history.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    if _segments(directory) or _discover_sharded(directory):
        return "sharded"
    if _discover_flat(directory) or (directory / WAL_FILENAME).exists():
        return "flat"
    return None


def read_partitioned_wal(
    directory: str | Path, after: int = 0
) -> Iterator[tuple[int, Event]]:
    """Yield ``(seq, event)`` with ``seq > after`` in global order.

    Merges every ``wal-<shard>.jsonl`` segment — plus a flat
    ``wal.jsonl`` left behind by a pre-sharding run — by their global
    sequence numbers.  Each event is journaled into exactly one segment,
    so a duplicated sequence number means the segments belong to
    different histories and raises :class:`WalError`.  Contiguity
    relative to a checkpoint is the *caller's* check (it knows which
    gaps a checkpoint covers).
    """
    directory = Path(directory)
    streams = []
    flat = directory / WAL_FILENAME
    if flat.exists():
        streams.append(read_wal(flat, after=after))
    for segment in _segments(directory):
        streams.append(read_wal(segment, after=after, contiguous=False))
    previous = None
    for seq, event in heapq.merge(*streams, key=lambda item: item[0]):
        if previous is not None and seq <= previous:
            raise WalError(
                f"duplicate WAL sequence {seq} across the segments of "
                f"{directory}; the logs do not belong to one history"
            )
        previous = seq
        yield seq, event


class PartitionedWriteAheadLog:
    """One write-ahead log, physically partitioned into per-shard segments.

    Quacks like a :class:`~repro.persistence.wal.WriteAheadLog` for the
    index attachment protocol (``last_seq`` / ``advance_to`` / ``mark``
    / ``rollback`` / ``flush`` / ``close``), but every append names the
    shard whose segment journals the event, and sequence numbers are
    assigned from one *global* counter — the segment files interleave
    into a single totally ordered history (the partition log the sharded
    refresh keys its outboxes by).

    Unlike the flat log, a lagging global counter after a crash is not
    rotated away: records carry explicit sequence numbers, so journaling
    can resume past a gap the latest checkpoint covers, while recovery
    from an *older* checkpoint still fails loudly at the gap instead of
    silently skipping it.

    ``fsync_every`` batches at the *group* level: every ``N`` appends
    (across all segments) fsyncs **every** segment holding unsynced
    records, never a single segment on its own cadence.  Independent
    per-segment fsync schedules would let a power loss keep a durable
    high sequence in one segment while dropping a lower unsynced one in
    another — a mid-history gap that no replay can bridge — whereas the
    group commit keeps the durable record set a prefix of the global
    history at every barrier, the same guarantee the flat log's tail
    gives.
    """

    def __init__(
        self,
        directory: str | Path,
        n_shards: int,
        fsync_every: int | None = 64,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if fsync_every is not None and fsync_every <= 0:
            raise ValueError(
                f"fsync_every must be positive or None, got {fsync_every}"
            )
        self.directory = Path(directory)
        self.fsync_every = fsync_every
        self._unsynced = 0
        # Segments never fsync on their own (fsync_every=None): the
        # group-commit barrier below syncs them together, in one batch.
        self.segments = [
            WriteAheadLog(
                wal_segment_path(self.directory, shard),
                fsync_every=None,
                contiguous=False,
            )
            for shard in range(n_shards)
        ]
        self._last_seq = max(
            (segment.last_seq for segment in self.segments), default=0
        )
        # Stray segments beyond n_shards (a previous run at a higher
        # shard count) and a flat pre-migration log still advance the
        # global counter — new appends must never reuse their sequences.
        for path in _segments(self.directory):
            if path not in {segment.path for segment in self.segments}:
                records, _ = _wal._parse(
                    path.read_bytes(), path, contiguous=False
                )
                if records:
                    self._last_seq = max(self._last_seq, records[-1][0])
        flat = self.directory / WAL_FILENAME
        if flat.exists():
            records, _ = _wal._parse(flat.read_bytes(), flat)
            if records:
                self._last_seq = max(self._last_seq, records[-1][0])

    @property
    def path(self) -> Path:
        """The state directory (the log's identity in error messages)."""
        return self.directory

    @property
    def n_shards(self) -> int:
        """Number of per-shard segments this log writes."""
        return len(self.segments)

    @property
    def last_seq(self) -> int:
        """Global sequence number of the most recently appended event."""
        return self._last_seq

    @property
    def closed(self) -> bool:
        """Whether any segment has been closed (the log is unusable)."""
        return any(segment.closed for segment in self.segments)

    def advance_to(self, seq: int) -> None:
        """Fast-forward the *global* counter to *seq*.

        Allowed whenever it does not renumber history (``seq`` at or
        past the current counter) — the segments keep their events, and
        the skipped sequences are understood to be covered by a
        checkpoint (journaling began mid-history, or a crash ate an
        fsync-batched tail a durable checkpoint had already absorbed).
        """
        seq = int(seq)
        if seq < self._last_seq:
            raise WalError(
                f"cannot advance {self.directory} to sequence {seq}: the "
                f"segments already hold events up to {self._last_seq}"
            )
        self._last_seq = seq

    def append(self, event: Event, shard: int) -> int:
        """Journal one event into *shard*'s segment; returns its seq.

        The record is flushed to the OS immediately (per-segment); the
        disk barrier runs as a group commit over all segments once per
        ``fsync_every`` appends, so the durable set stays a prefix of
        the global sequence at every barrier.
        """
        if not 0 <= shard < len(self.segments):
            raise ValueError(
                f"shard {shard} out of range [0, {len(self.segments)})"
            )
        seq = self._last_seq + 1
        self.segments[shard].append(event, seq=seq)
        self._last_seq = seq
        self._unsynced += 1
        if self.fsync_every is not None and self._unsynced >= self.fsync_every:
            self._fsync_all()
        return seq

    def _fsync_all(self) -> None:
        """The group-commit barrier: fsync every segment together."""
        for segment in self.segments:
            segment.flush()
        self._unsynced = 0

    def mark(self) -> tuple[int, tuple]:
        """Rollback target spanning every segment (see ``rollback``)."""
        return (
            self._last_seq,
            tuple(segment.mark() for segment in self.segments),
        )

    def rollback(self, mark: tuple[int, tuple]) -> None:
        """Discard every append made after :meth:`mark`, on all segments."""
        seq, segment_marks = mark
        for segment, segment_mark in zip(self.segments, segment_marks):
            segment.rollback(segment_mark)
        self._last_seq = seq
        self._unsynced = 0

    def flush(self) -> None:
        """Flush and fsync everything appended so far (all segments)."""
        self._fsync_all()

    def close(self) -> None:
        """Flush, fsync and close every segment."""
        for segment in self.segments:
            segment.close()

    def __enter__(self) -> "PartitionedWriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedWriteAheadLog(directory={str(self.directory)!r}, "
            f"n_shards={self.n_shards}, last_seq={self._last_seq})"
        )


# ----------------------------------------------------------------------
# Sharded checkpoint layout
# ----------------------------------------------------------------------
def sharded_checkpoint_path(directory: str | Path, seq: int) -> Path:
    """Canonical directory path for a sharded checkpoint at *seq*."""
    return Path(directory) / f"{_PREFIX}{seq:012d}{SHARDED_SUFFIX}"


def _discover_sharded(directory: Path) -> list[tuple[int, Path]]:
    """``(seq, path)`` for every ``checkpoint-*.shards`` candidate."""
    found: list[tuple[int, Path]] = []
    if not directory.is_dir():
        return found
    for path in directory.glob(f"{_PREFIX}*{SHARDED_SUFFIX}"):
        if not path.is_dir():
            continue
        stem = path.name[len(_PREFIX) : -len(SHARDED_SUFFIX)]
        try:
            found.append((int(stem), path))
        except ValueError:
            continue
    return found


class ShardedCheckpointState(CheckpointState):
    """A loaded sharded checkpoint: flat state + the ownership rule.

    The per-shard slices are *not* kept separate here: shard ownership
    is derivable from ``n_shards`` plus the (usually empty)
    ``shard_overrides`` table left behind by live
    :meth:`~repro.streaming.sharding.ShardedKnnIndex.rebalance` moves,
    so the installer re-derives each shard's dirty slice and cache from
    the merged tuples — which is also what makes restoring at a
    different shard count (re-sharding) exact: a count change re-derives
    ownership from the new modulus (resetting the overrides, exactly as
    a live count-changing rebalance does).
    """

    def __init__(
        self, n_shards: int, shard_overrides: dict | None = None, **fields
    ):
        super().__init__(**fields)
        object.__setattr__(self, "n_shards", int(n_shards))
        object.__setattr__(
            self, "shard_overrides", dict(shard_overrides or {})
        )


def _fsync_file(path: Path) -> None:
    with path.open("rb+") as handle:
        os.fsync(handle.fileno())


def save_sharded_checkpoint(index, directory: str | Path) -> Path:
    """Serialize *index* into ``directory/checkpoint-<seq>.shards/``.

    The layout partitions the maintained state the same way the workers
    do: ``base.npz`` holds the shared read-only state (dataset snapshot,
    graph rows), ``shard-<i>.npz`` holds shard *i*'s dirty slice and
    candidate cache.  The directory is staged under a temp name, every
    file fsynced, then atomically renamed into place with a parent
    fsync — a crash mid-checkpoint leaves the previous one intact.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dataset = index.builder.snapshot()
    neighbors, sims = index._rows()
    graph_arrays = pack_graph_arrays(KnnGraph(neighbors, sims))
    meta = checkpoint_meta(index, dataset)
    meta["layout"] = "sharded"
    meta["n_shards"] = int(index.n_shards)
    overrides = index._shard_map.overrides
    if overrides:
        # Live-rebalance ownership overrides; JSON stringifies the keys,
        # the loader re-ints them.
        meta["shard_overrides"] = overrides
    path = sharded_checkpoint_path(directory, index.last_seq)
    tmp = path.with_name(path.name + ".tmp")
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    try:
        meta_file = tmp / "meta.json"
        meta_file.write_text(json.dumps(meta), encoding="utf-8")
        _fsync_file(meta_file)
        np.savez_compressed(
            tmp / "base.npz",
            **graph_arrays,
            **snapshot_to_arrays(dataset),
        )
        _fsync_file(tmp / "base.npz")
        for shard in index._shards:
            shard_file = tmp / f"shard-{shard.shard_id}.npz"
            np.savez_compressed(
                shard_file,
                dirty=np.asarray(sorted(shard.dirty), dtype=np.int64),
                **cache_to_arrays(shard.candidate_counts),
            )
            _fsync_file(shard_file)
        _wal.fsync_dir(tmp)
        if path.exists():
            # Re-checkpoint at the same sequence (same state): replace.
            shutil.rmtree(path)
        os.replace(tmp, path)
        _wal.fsync_dir(directory)
    finally:
        if tmp.exists():  # staging failed before the atomic rename
            shutil.rmtree(tmp, ignore_errors=True)
    return path


def load_sharded_checkpoint(path: str | Path) -> ShardedCheckpointState:
    """Parse a ``checkpoint-<seq>.shards`` directory back into state."""
    path = Path(path)
    meta_file = path / "meta.json"
    try:
        meta = json.loads(meta_file.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"corrupt sharded checkpoint metadata in {path}"
        ) from exc
    version = meta.get("version")
    if version not in SUPPORTED_CHECKPOINT_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} in {path} "
            f"(this library writes version {CHECKPOINT_VERSION} and "
            f"reads {sorted(SUPPORTED_CHECKPOINT_VERSIONS)})"
        )
    n_shards = int(meta.get("n_shards", 0))
    if n_shards < 1:
        raise CheckpointError(f"invalid shard count in {path}: {n_shards}")
    with np.load(path / "base.npz", allow_pickle=False) as archive:
        if "graph_neighbors" in archive:
            # Version-1 dense rows, narrowed bit-correctly on load.
            graph = graph_from_arrays(
                {
                    "neighbors": archive["graph_neighbors"],
                    "sims": archive["graph_sims"],
                }
            )
        else:
            graph = unpack_graph_arrays(archive)
        dataset = snapshot_from_arrays(archive, name=meta["name"])
    dirty: list[int] = []
    cache: list[tuple] = []
    for shard in range(n_shards):
        with np.load(
            path / f"shard-{shard}.npz", allow_pickle=False
        ) as archive:
            dirty.extend(archive["dirty"].tolist())
            cache.extend(cache_from_arrays(archive))
    return checkpoint_state_from_meta(
        meta,
        cls=ShardedCheckpointState,
        n_shards=n_shards,
        shard_overrides={
            int(user): int(shard)
            for user, shard in (meta.get("shard_overrides") or {}).items()
        },
        path=path,
        dataset=dataset,
        neighbors=graph.neighbors,
        sims=graph.sims,
        dirty=tuple(sorted(dirty)),
        cache=tuple(cache),
    )


def restore_sharded_index(
    cls,
    directory: str | Path,
    metric=None,
    refresh: bool = True,
    fsync_every: int | None = 64,
    n_shards: int | None = None,
    executor: str | None = None,
):
    """Recover a ``ShardedKnnIndex`` from *directory* (either layout).

    Loads the newest readable checkpoint — sharded ``.shards`` directory
    or flat ``.npz`` archive, whichever carries the highest sequence —
    replays the merged partitioned log tail in global order with
    refinement suppressed, runs one refresh, and reattaches a
    :class:`PartitionedWriteAheadLog` so journaling continues where the
    crashed run stopped.  ``n_shards`` defaults to the checkpoint's
    shard count (2 when restoring a flat layout); any other value
    re-shards the state exactly, re-deriving ownership from the new
    modulus (live-rebalance overrides recorded in the checkpoint are
    reset, exactly as a live count-changing rebalance resets them).

    Replayed ``migrate_begin``/``migrate_commit`` fences re-apply live
    rebalances at their exact sequence positions; a ``migrate_begin``
    with no matching commit (crash mid-rebalance) replays as a no-op,
    rolling the ownership flip back to the fence.

    *cls* is the index class (passed in to avoid a circular import);
    call this as ``ShardedKnnIndex.restore(directory)``.
    """
    from ..streaming.events import CONTROL_EVENTS
    from ..streaming.sharding import ShardMap

    directory = Path(directory)
    state = load_latest_checkpoint(
        directory,
        [
            (_discover_sharded, load_sharded_checkpoint),
            (_discover_flat, load_checkpoint),
        ],
    )
    checkpoint_shards = getattr(state, "n_shards", None)
    requested = None if n_shards is None else int(n_shards)
    if n_shards is None:
        n_shards = checkpoint_shards if checkpoint_shards else 2
    index_kwargs = {} if executor is None else {"executor": executor}
    index = cls(
        state.dataset,
        state.config,
        metric=state.metric if metric is None else metric,
        auto_refresh=False,
        build=False,
        candidate_cache_size=state.candidate_cache_size,
        n_shards=n_shards,
        **index_kwargs,
    )
    overrides = getattr(state, "shard_overrides", None)
    if overrides and index.n_shards == checkpoint_shards:
        # Same shard count as the checkpoint: adopt its live-rebalance
        # overrides before the installer routes per-user state, so
        # dirty/cache/reverse slices land on their overridden owners.
        index._shard_map = ShardMap(index.n_shards, overrides)
    install_checkpoint_state(index, state)
    replayed = 0
    for seq, event in read_partitioned_wal(directory, after=state.seq):
        if seq != index._seq + 1:
            raise CheckpointError(
                f"partitioned log under {directory} resumes at sequence "
                f"{seq} but checkpoint {state.path.name} ends at "
                f"{index._seq}; events {index._seq + 1}..{seq - 1} are "
                f"not recoverable from this state directory"
            )
        index._absorb(event)
        index._seq = seq
        replayed += 1
        if not isinstance(event, CONTROL_EVENTS):
            index._pending_events += 1
    if requested is not None and index.n_shards != requested:
        # The caller pinned a shard count but a replayed rebalance (or
        # the checkpoint itself) left the index elsewhere: one final
        # non-journaled re-shard honours the explicit request.
        index._apply_plan_flip((), requested)
    if refresh:
        index.refresh()
    index.auto_refresh = state.auto_refresh
    wal = PartitionedWriteAheadLog(
        directory, index.n_shards, fsync_every=fsync_every
    )
    if wal.last_seq < index.last_seq:
        # A crash ate an fsync-batched tail that a durable checkpoint
        # had already absorbed: jump the global counter past the gap.
        # The segments keep their records (explicit sequence numbers
        # make that safe) and recovery from an older checkpoint still
        # fails loudly at the gap instead of silently skipping it.
        wal.advance_to(index.last_seq)
    index.attach_wal(wal)
    index.restore_info = RestoreInfo(
        checkpoint=state.path,
        checkpoint_seq=state.seq,
        replayed_events=replayed,
        last_seq=index.last_seq,
        evaluations=index.engine.counter.evaluations - state.evaluations,
    )
    return index
