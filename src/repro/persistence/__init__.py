"""Durability for streaming KNN maintenance: WAL + checkpoint/restore.

The streaming subsystem keeps the converged KIFF graph exact under live
events; this package makes that state survive restarts:

* :class:`WriteAheadLog` — an append-only JSONL journal every applied
  event flows through (fsync-batched, sequence-numbered, torn-tail
  tolerant).
* :func:`save_checkpoint` / :func:`load_checkpoint` — one ``.npz``
  archive holding the full maintained state (dataset snapshot, graph
  rows, dirty set, candidate cache, counters).
* :func:`restore_index` — latest checkpoint + WAL-tail replay; the
  refreshed result is bit-identical to the uninterrupted run.

Sharded deployments partition the same durable state per worker
(:mod:`repro.persistence.partition`):

* :class:`PartitionedWriteAheadLog` — ``wal-<shard>.jsonl`` segments
  sharing one global sequence; :func:`read_partitioned_wal` merges them
  back into the total event order for replay.
* :func:`save_sharded_checkpoint` / :func:`restore_sharded_index` —
  ``checkpoint-<seq>.shards/`` directories with per-shard state files;
  restore handles both layouts (and re-shards exactly).

Use through the index: ``index.checkpoint(dir)`` and
``DynamicKnnIndex.restore(dir)`` / ``ShardedKnnIndex.restore(dir)`` —
see README ("Durability" / "Sharding").
"""

from .checkpoint import (
    CheckpointError,
    CheckpointState,
    RestoreInfo,
    checkpoint_path,
    install_checkpoint_state,
    latest_checkpoint,
    load_checkpoint,
    restore_index,
    save_checkpoint,
)
from .partition import (
    PartitionedWriteAheadLog,
    ShardedCheckpointState,
    detect_state_layout,
    load_sharded_checkpoint,
    read_partitioned_wal,
    restore_sharded_index,
    save_sharded_checkpoint,
    sharded_checkpoint_path,
    wal_segment_path,
)
from .wal import (
    WAL_FILENAME,
    PersistenceError,
    WalError,
    WriteAheadLog,
    decode_event,
    encode_event,
    fsync_dir,
    read_wal,
    rotate_superseded,
)

__all__ = [
    "CheckpointError",
    "CheckpointState",
    "PartitionedWriteAheadLog",
    "PersistenceError",
    "RestoreInfo",
    "ShardedCheckpointState",
    "WAL_FILENAME",
    "WalError",
    "WriteAheadLog",
    "checkpoint_path",
    "decode_event",
    "detect_state_layout",
    "encode_event",
    "fsync_dir",
    "install_checkpoint_state",
    "latest_checkpoint",
    "load_checkpoint",
    "load_sharded_checkpoint",
    "read_partitioned_wal",
    "read_wal",
    "restore_index",
    "restore_sharded_index",
    "rotate_superseded",
    "save_checkpoint",
    "save_sharded_checkpoint",
    "sharded_checkpoint_path",
    "wal_segment_path",
]
