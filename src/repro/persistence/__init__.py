"""Durability for streaming KNN maintenance: WAL + checkpoint/restore.

The streaming subsystem keeps the converged KIFF graph exact under live
events; this package makes that state survive restarts:

* :class:`WriteAheadLog` — an append-only JSONL journal every applied
  event flows through (fsync-batched, sequence-numbered, torn-tail
  tolerant).
* :func:`save_checkpoint` / :func:`load_checkpoint` — one ``.npz``
  archive holding the full maintained state (dataset snapshot, graph
  rows, dirty set, candidate cache, counters).
* :func:`restore_index` — latest checkpoint + WAL-tail replay; the
  refreshed result is bit-identical to the uninterrupted run.

Use through the index: ``index.checkpoint(dir)`` and
``DynamicKnnIndex.restore(dir)`` — see README ("Durability").
"""

from .checkpoint import (
    CheckpointError,
    CheckpointState,
    RestoreInfo,
    checkpoint_path,
    latest_checkpoint,
    load_checkpoint,
    restore_index,
    save_checkpoint,
)
from .wal import (
    WAL_FILENAME,
    PersistenceError,
    WalError,
    WriteAheadLog,
    decode_event,
    encode_event,
    read_wal,
)

__all__ = [
    "CheckpointError",
    "CheckpointState",
    "PersistenceError",
    "RestoreInfo",
    "WAL_FILENAME",
    "WalError",
    "WriteAheadLog",
    "checkpoint_path",
    "decode_event",
    "encode_event",
    "latest_checkpoint",
    "load_checkpoint",
    "read_wal",
    "restore_index",
    "save_checkpoint",
]
