"""Event vocabulary for streaming KNN maintenance.

A stream is a sequence of three event kinds, mirroring the mutations a
production rating front-end produces:

* :class:`AddRating` — one ``(user, item, rating)`` edge lands (or an
  existing rating is overwritten; ``rating = 0`` deletes the edge).
* :class:`AddUser` — a new user joins with an optional initial profile.
* :class:`RemoveUser` — a user leaves; her profile is cleared but the id
  stays allocated so graph rows remain aligned.

:func:`apply_events` replays a stream against a
:class:`~repro.streaming.index.DynamicKnnIndex`.  The test harness
(``tests/conftest.py`` and the parity suite) replays its randomized
streams through this function, so the tested event semantics are the
library's own.  Bulk consumers (the CLI and benchmarks) use the
array-based ``add_ratings`` batch API directly instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["AddRating", "AddUser", "RemoveUser", "Event", "apply_events"]


@dataclass(frozen=True)
class AddRating:
    """Set one rating; ``rating = 0.0`` removes the edge."""

    user: int
    item: int
    rating: float = 1.0


@dataclass(frozen=True)
class AddUser:
    """Allocate the next user id with an optional initial profile."""

    items: tuple = ()
    ratings: tuple | None = None


@dataclass(frozen=True)
class RemoveUser:
    """Clear one user's profile (the id stays in the universe)."""

    user: int


#: Any streaming event.
Event = Union[AddRating, AddUser, RemoveUser]


def apply_events(index, events) -> list[int]:
    """Replay *events* against *index*; returns ids minted by AddUser.

    Events are applied in order through the index's public API, so the
    index's ``auto_refresh`` policy decides when refinement runs.
    """
    minted: list[int] = []
    for event in events:
        if isinstance(event, AddRating):
            index.add_ratings([event.user], [event.item], [event.rating])
        elif isinstance(event, AddUser):
            minted.append(index.add_user(event.items, event.ratings))
        elif isinstance(event, RemoveUser):
            index.remove_user(event.user)
        else:
            raise TypeError(f"unknown streaming event {event!r}")
    return minted
