"""Typed event vocabulary for streaming KNN maintenance.

Every mutation of a :class:`~repro.streaming.index.DynamicKnnIndex` is one
of five event kinds, mirroring what a production rating front-end
produces:

* :class:`AddRating` — one ``(user, item, rating)`` edge lands (or an
  existing rating is overwritten; ``rating = 0`` deletes the edge).
* :class:`RemoveRating` — one edge is deleted (first-class form of
  ``AddRating(rating=0)``, so deletion intent survives in logs).
* :class:`AddUser` — a new user joins with an optional initial profile.
* :class:`RemoveUser` — a user leaves; her profile is cleared but the id
  stays allocated so graph rows remain aligned.
* :class:`Batch` — a group of events validated together, applied as one
  unit and refreshed once (the bulk form the array helpers construct).

Typed events are the **only** ingestion path:
``DynamicKnnIndex.apply(events)`` is the single entry point every
mutation flows through (the historical ``add_ratings`` / ``add_user`` /
``remove_user`` methods are deprecated shims that construct events and
delegate).  That single choke point is what lets the
:mod:`repro.persistence` subsystem journal every applied event into a
:class:`~repro.persistence.WriteAheadLog` and recover a bit-identical
graph from a checkpoint plus the log tail.

:func:`apply_events` is the legacy free-function replay helper; it now
delegates to ``index.apply`` and returns the structured
:class:`ApplyResult` (which still iterates like the historical
``list[int]`` of minted user ids, with a :class:`DeprecationWarning`).
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (hints only)
    from .index import RefreshStats

__all__ = [
    "AddRating",
    "AddUser",
    "ApplyResult",
    "Batch",
    "Event",
    "MigrateBegin",
    "MigrateCommit",
    "RemoveRating",
    "RemoveUser",
    "apply_events",
    "flatten_events",
    "ratings_batch",
]


@dataclass(frozen=True)
class AddRating:
    """Set one rating; ``rating = 0.0`` removes the edge."""

    user: int
    item: int
    rating: float = 1.0


@dataclass(frozen=True)
class RemoveRating:
    """Delete one rating edge (a no-op when the edge is absent)."""

    user: int
    item: int


@dataclass(frozen=True)
class AddUser:
    """Allocate the next user id with an optional initial profile."""

    items: tuple = ()
    ratings: tuple | None = None


@dataclass(frozen=True)
class RemoveUser:
    """Clear one user's profile (the id stays in the universe)."""

    user: int


@dataclass(frozen=True)
class Batch:
    """A group of events applied as one unit.

    The whole batch is validated before anything mutates (a bad event
    cannot leave earlier ones applied but unrefreshed) and, under
    ``auto_refresh``, triggers a single refinement pass instead of one
    per event.  Batches may nest; they are flattened on application and
    journaled as their primitive events.
    """

    events: tuple = ()


@dataclass(frozen=True)
class MigrateBegin:
    """Fence opening one live shard re-balancing window.

    Journaled (never fed through ``apply``) by
    :meth:`~repro.streaming.sharding.ShardedKnnIndex.rebalance` before
    ownership changes.  A log tail holding a ``MigrateBegin`` without
    its :class:`MigrateCommit` means the migration never took effect:
    replay rolls back to this fence by simply not flipping ownership.

    ``moves`` is a tuple of ``(user, target_shard)`` pairs;
    ``n_shards`` is the post-migration shard count (``None`` when the
    count is unchanged).
    """

    moves: tuple = ()
    n_shards: int | None = None


@dataclass(frozen=True)
class MigrateCommit:
    """Fence closing a re-balancing window; ownership flips here.

    Carries the same payload as its :class:`MigrateBegin` so replay can
    apply the flip from the commit record alone, at its exact sequence
    number relative to the surrounding rating events.
    """

    moves: tuple = ()
    n_shards: int | None = None


#: Any streaming event.
Event = Union[AddRating, RemoveRating, AddUser, RemoveUser, Batch]

#: The event kinds that directly mutate state (everything but Batch).
PRIMITIVE_EVENTS = (AddRating, RemoveRating, AddUser, RemoveUser)

#: Every event kind accepted by ``DynamicKnnIndex.apply``.
EVENT_TYPES = PRIMITIVE_EVENTS + (Batch,)

#: WAL-only control records (sharding ownership fences).  Not accepted
#: by ``apply`` — they are journaled directly by ``rebalance()`` and
#: absorbed during replay via ``_absorb_control``.
CONTROL_EVENTS = (MigrateBegin, MigrateCommit)


def flatten_events(event: Event) -> list:
    """*event* as a flat list of primitive events (batches unnested)."""
    if isinstance(event, Batch):
        flat: list = []
        for sub in event.events:
            flat.extend(flatten_events(sub))
        return flat
    if isinstance(event, PRIMITIVE_EVENTS):
        return [event]
    raise TypeError(f"unknown streaming event {event!r}")


def ratings_batch(users, items, ratings=None) -> Batch:
    """A :class:`Batch` of :class:`AddRating` events from parallel arrays.

    The bulk form the deprecated ``add_ratings`` wrapper (and the
    replay helpers) construct; ``ratings`` defaults to all-ones.
    """
    users = np.asarray(users, dtype=np.int64)
    items = np.asarray(items, dtype=np.int64)
    if ratings is None:
        ratings = np.ones(users.size, dtype=np.float64)
    else:
        ratings = np.asarray(ratings, dtype=np.float64)
    if users.shape != items.shape or users.shape != ratings.shape:
        raise ValueError(
            f"users, items and ratings must have equal length, got "
            f"{users.size}, {items.size}, {ratings.size}"
        )
    return Batch(
        tuple(
            AddRating(user, item, rating)
            for user, item, rating in zip(
                users.tolist(), items.tolist(), ratings.tolist()
            )
        )
    )


@dataclass(frozen=True, eq=False)
class ApplyResult:
    """Structured outcome of one ``DynamicKnnIndex.apply`` call.

    For backwards compatibility with the historical ``apply_events``
    contract (a bare ``list[int]`` of minted user ids), the result still
    iterates, indexes and compares like that list — each such use emits a
    :class:`DeprecationWarning`; read :attr:`new_users` instead.
    """

    #: User ids minted by AddUser events, in application order.
    new_users: tuple[int, ...]
    #: RefreshStats of every refinement pass this apply triggered.
    refreshes: tuple["RefreshStats", ...]
    #: Primitive events applied (batches counted flattened).
    events: int
    #: The index's event sequence number after the last applied event.
    last_seq: int

    def _warn_list_compat(self) -> None:
        # One warning per *call site*, not per dunder: a single
        # ``list(result)`` invokes both ``__len__`` (presizing) and
        # ``__iter__`` from the same caller line, which would otherwise
        # double-warn — noise under always-on filters and a miscount
        # under ``-W error`` migrations.  The caller's location is two
        # frames up (this helper + the dunder; C-level callers like
        # ``list()`` add no frame), matching ``stacklevel=3`` below.
        try:
            frame = sys._getframe(2)
            site = (frame.f_code.co_filename, frame.f_lineno)
        except (AttributeError, ValueError):  # pragma: no cover - non-CPython
            site = None
        if site is not None:
            seen = self.__dict__.get("_warned_sites")
            if seen is None:
                seen = set()
                object.__setattr__(self, "_warned_sites", seen)
            if site in seen:
                return
            seen.add(site)
        warnings.warn(
            "treating ApplyResult as the legacy list of minted user ids "
            "is deprecated; read result.new_users instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def __iter__(self):
        self._warn_list_compat()
        return iter(self.new_users)

    def __len__(self) -> int:
        self._warn_list_compat()
        return len(self.new_users)

    def __getitem__(self, index):
        self._warn_list_compat()
        return list(self.new_users)[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ApplyResult):
            return (
                self.new_users == other.new_users
                and self.refreshes == other.refreshes
                and self.events == other.events
                and self.last_seq == other.last_seq
            )
        if isinstance(other, (list, tuple)):
            self._warn_list_compat()
            return list(self.new_users) == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        # eq=False (the custom __eq__ above) would otherwise leave the
        # frozen dataclass unhashable.
        return hash((self.new_users, self.refreshes, self.events, self.last_seq))


def apply_events(index, events) -> ApplyResult:
    """Replay *events* against *index* (legacy helper).

    .. deprecated::
        Call ``index.apply(events)`` directly; this shim delegates to it.
        The return value changed from a bare ``list[int]`` of minted user
        ids to a structured :class:`ApplyResult`; the historical list
        behaviour is preserved (with a warning) by the result itself.
    """
    warnings.warn(
        "apply_events() is deprecated; call DynamicKnnIndex.apply(events)",
        DeprecationWarning,
        stacklevel=2,
    )
    return index.apply(events)
