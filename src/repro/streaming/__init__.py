"""Streaming KNN maintenance: KIFF as an online subsystem.

See :mod:`repro.streaming.index` for the maintenance invariant and
``README.md`` ("Streaming maintenance") for usage.  The subsystem keeps
the converged KIFF graph exact under continuous ``(user, item, rating)``
events at a fraction of the full-rebuild similarity cost.
"""

from .events import AddRating, AddUser, Event, RemoveUser, apply_events
from .index import (
    DynamicKnnIndex,
    RefreshStats,
    cold_rebuild_graph,
    converged_config,
)
from .workload import StreamReplayResult, holdout_stream, replay_stream

__all__ = [
    "AddRating",
    "AddUser",
    "DynamicKnnIndex",
    "Event",
    "RefreshStats",
    "RemoveUser",
    "StreamReplayResult",
    "apply_events",
    "cold_rebuild_graph",
    "converged_config",
    "holdout_stream",
    "replay_stream",
]
