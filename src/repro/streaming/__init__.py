"""Streaming KNN maintenance: KIFF as an online subsystem.

See :mod:`repro.streaming.index` for the maintenance invariant and
``README.md`` ("Streaming maintenance" / "Durability") for usage.  The
subsystem keeps the converged KIFF graph exact under continuous typed
events — :meth:`DynamicKnnIndex.apply` is the single ingestion path —
at a fraction of the full-rebuild similarity cost, and (with
:mod:`repro.persistence`) survives restarts via a write-ahead log plus
checkpoint/restore.  :class:`ShardedKnnIndex` (see
:mod:`repro.streaming.sharding`) runs the same refinement
shard-parallel across workers, bit-identically, with partitioned WAL
segments and checkpoints, and re-balances shard ownership live
(WAL-fenced :meth:`ShardedKnnIndex.rebalance`) without stopping
ingestion.
"""

from .events import (
    AddRating,
    AddUser,
    ApplyResult,
    Batch,
    Event,
    MigrateBegin,
    MigrateCommit,
    RemoveRating,
    RemoveUser,
    apply_events,
    ratings_batch,
)
from .index import (
    DynamicKnnIndex,
    RefreshStats,
    cold_rebuild_graph,
    converged_config,
)
from .sharding import (
    RebalanceStats,
    ShardMap,
    ShardOutbox,
    ShardPlan,
    ShardedKnnIndex,
    shard_of,
)
from .workload import (
    StreamReplayResult,
    flash_crowd_events,
    holdout_stream,
    poisson_burst_sizes,
    replay_stream,
)

__all__ = [
    "AddRating",
    "AddUser",
    "ApplyResult",
    "Batch",
    "DynamicKnnIndex",
    "Event",
    "MigrateBegin",
    "MigrateCommit",
    "RebalanceStats",
    "RefreshStats",
    "RemoveRating",
    "RemoveUser",
    "ShardMap",
    "ShardOutbox",
    "ShardPlan",
    "ShardedKnnIndex",
    "StreamReplayResult",
    "apply_events",
    "cold_rebuild_graph",
    "converged_config",
    "flash_crowd_events",
    "holdout_stream",
    "poisson_burst_sizes",
    "ratings_batch",
    "replay_stream",
    "shard_of",
]
