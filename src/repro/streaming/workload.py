"""Streaming workload helpers shared by the CLI, experiments and benches.

The canonical maintenance workload is *hold-out replay*: take a dataset,
hold out a fraction of its ratings, cold-build the index on the rest and
stream the hold-out back in batches.  The final state equals the original
dataset, so parity against a cold rebuild is checkable by construction.

The full-rebuild baseline cost is computed exactly without running the
rebuilds: a converged KIFF run (``beta = 0``) evaluates each Ranked
Candidate Set entry exactly once, so its evaluation count *is* the RCS
total of the snapshot (pinned by
``tests/core/test_kiff.py::TestTermination::test_terminates_with_beta_zero``),
which :func:`repro.core.rcs.count_rcs_candidates` computes from the
co-occurrence sparsity pattern alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.rcs import count_rcs_candidates
from ..datasets.bipartite import BipartiteDataset
from .events import ratings_batch
from .index import DynamicKnnIndex

__all__ = [
    "StreamReplayResult",
    "flash_crowd_events",
    "holdout_stream",
    "poisson_burst_sizes",
    "replay_stream",
]


@dataclass(frozen=True)
class StreamReplayResult:
    """Cost accounting for one hold-out replay."""

    events: int
    batches: int
    wall_time: float
    #: Similarity evaluations spent by incremental maintenance.
    incremental_evaluations: int
    #: Exact evaluations a cold converged rebuild per batch would spend.
    rebuild_evaluations: int

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_time if self.wall_time > 0 else float("inf")

    @property
    def savings(self) -> float:
        """How many times fewer evaluations than rebuild-per-batch."""
        if self.incremental_evaluations == 0:
            return float("inf")
        return self.rebuild_evaluations / self.incremental_evaluations


def holdout_stream(
    dataset: BipartiteDataset,
    fraction: float = 0.1,
    seed: int = 0,
) -> tuple[BipartiteDataset, np.ndarray, np.ndarray, np.ndarray]:
    """Split *dataset* into a base dataset and a shuffled event stream.

    Returns ``(base, users, items, ratings)`` where streaming the parallel
    event arrays into an index built on ``base`` reproduces *dataset*.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    coo = dataset.matrix.tocoo()
    rng = np.random.default_rng(seed)
    order = rng.permutation(coo.nnz)
    n_stream = max(1, int(round(fraction * coo.nnz)))
    stream, base = order[:n_stream], order[n_stream:]
    if base.size == 0:
        raise ValueError("hold-out fraction leaves no base ratings")
    base_dataset = BipartiteDataset.from_edges(
        coo.row[base],
        coo.col[base],
        coo.data[base],
        n_users=dataset.n_users,
        n_items=dataset.n_items,
        name=f"{dataset.name}-base",
    )
    return (
        base_dataset,
        coo.row[stream].astype(np.int64),
        coo.col[stream].astype(np.int64),
        coo.data[stream].astype(np.float64),
    )


def poisson_burst_sizes(
    n_events: int,
    seed: int = 0,
    base_rate: float = 2.0,
    burst_rate: float = 20.0,
    p_enter: float = 0.05,
    p_exit: float = 0.25,
) -> np.ndarray:
    """Bursty arrival-batch sizes summing exactly to *n_events*.

    A two-state Markov-modulated Poisson process, the standard bursty
    traffic model: each tick the arrival process sits in a *base* or
    *burst* state (entered with probability ``p_enter``, left with
    ``p_exit``) and emits ``Poisson(rate)`` events at that state's
    rate.  Zero-sized ticks are kept — they are the idle lulls a
    wall-staleness budget needs to observe (the scheduled replay runs
    ``tick()`` on them).  The tail is clipped (and the final tick
    padded) so the sizes partition an *n_events*-long stream exactly.
    """
    if n_events < 0:
        raise ValueError(f"n_events must be >= 0, got {n_events}")
    if base_rate <= 0 or burst_rate <= 0:
        raise ValueError(
            f"rates must be positive, got base={base_rate} "
            f"burst={burst_rate}"
        )
    if not (0 <= p_enter <= 1 and 0 <= p_exit <= 1):
        raise ValueError(
            f"transition probabilities must be in [0, 1], got "
            f"enter={p_enter} exit={p_exit}"
        )
    rng = np.random.default_rng(seed)
    sizes: list[int] = []
    total = 0
    bursting = False
    while total < n_events:
        if bursting:
            if rng.random() < p_exit:
                bursting = False
        elif rng.random() < p_enter:
            bursting = True
        size = int(rng.poisson(burst_rate if bursting else base_rate))
        size = min(size, n_events - total)
        sizes.append(size)
        total += size
    if total < n_events:  # n_events == 0 never enters the loop
        sizes.append(n_events - total)
    return np.asarray(sizes, dtype=np.int64)


def flash_crowd_events(
    dataset: BipartiteDataset,
    n_events: int,
    seed: int = 0,
    hot_item: int | None = None,
    hot_fraction: float = 0.8,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A flash-crowd rating stream: one item suddenly gains raters.

    Returns ``(users, items, ratings)`` where ``hot_fraction`` of the
    events rate *hot_item* (default: a brand-new item id, the
    cold-start-goes-viral case) and the rest land uniformly on the
    existing catalogue.  Every event dirties its user *and* — through
    the shared hot item — couples the raters' candidate sets, so
    refreshing any one of them has a growing blast radius: the
    worst-case concentration the scheduler's prioritization is built
    for.  Ratings are uniform integers in [1, 5]; users are drawn
    uniformly, so a long stream revisits users (overwrites, the
    realistic case).
    """
    if n_events < 0:
        raise ValueError(f"n_events must be >= 0, got {n_events}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    if dataset.n_users == 0:
        raise ValueError("dataset has no users to rate with")
    rng = np.random.default_rng(seed)
    if hot_item is None:
        hot_item = dataset.n_items
    users = rng.integers(0, dataset.n_users, size=n_events, dtype=np.int64)
    items = np.full(n_events, int(hot_item), dtype=np.int64)
    cold = rng.random(n_events) >= hot_fraction
    n_cold = int(cold.sum())
    if n_cold and dataset.n_items:
        items[cold] = rng.integers(
            0, dataset.n_items, size=n_cold, dtype=np.int64
        )
    ratings = rng.integers(1, 6, size=n_events).astype(np.float64)
    return users, items, ratings


def replay_stream(
    index: DynamicKnnIndex,
    users: np.ndarray,
    items: np.ndarray,
    ratings: np.ndarray,
    batch_size: int = 10,
    track_rebuild_cost: bool = True,
    on_batch=None,
    checkpoint_every: int | None = None,
    checkpoint_dir=None,
) -> StreamReplayResult:
    """Stream events into *index* in batches, refreshing after each batch.

    ``on_batch(index)`` (when given) is called *before* each refresh, with
    the graph stale — the hook the staleness experiment uses to sample
    recall.  The rebuild baseline is accumulated per refresh point, i.e.
    the cost of the "just rebuild on every batch" strategy the streaming
    subsystem replaces.  Only the maintenance work (event absorption +
    refresh) is timed; the hook, the baseline accounting and checkpoint
    writes run outside the measured window so ``events_per_second``
    reflects the subsystem, not the instrumentation.

    ``checkpoint_every`` (with ``checkpoint_dir``) checkpoints the index
    every that many batches — the durability cadence ``repro-kiff stream
    --wal ... --checkpoint-every N`` drives; attach the WAL on the index
    itself.

    *index* may be any maintained index sharing the ``apply`` /
    ``refresh`` / ``checkpoint`` surface — in particular a
    :class:`~repro.streaming.sharding.ShardedKnnIndex`, whose refreshes
    then run shard-parallel (``repro-kiff stream --shards N``).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if checkpoint_every is not None:
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
    evaluations_before = index.engine.counter.evaluations
    rebuild_evaluations = 0
    batches = 0
    wall_time = 0.0
    for lo in range(0, len(users), batch_size):
        hi = lo + batch_size
        batch = ratings_batch(users[lo:hi], items[lo:hi], ratings[lo:hi])
        was_auto = index.auto_refresh
        index.auto_refresh = False
        start = time.perf_counter()
        try:
            index.apply(batch)
        finally:
            index.auto_refresh = was_auto
        if on_batch is not None:
            wall_time += time.perf_counter() - start
            on_batch(index)
            start = time.perf_counter()
        index.refresh()
        wall_time += time.perf_counter() - start
        batches += 1
        if checkpoint_every is not None and batches % checkpoint_every == 0:
            index.checkpoint(checkpoint_dir)
        if track_rebuild_cost:
            rebuild_evaluations += count_rcs_candidates(
                index.dataset,
                pivot=index.config.pivot,
                min_rating=index.config.min_rating,
            )
    return StreamReplayResult(
        events=int(len(users)),
        batches=batches,
        wall_time=wall_time,
        incremental_evaluations=index.engine.counter.evaluations - evaluations_before,
        rebuild_evaluations=int(rebuild_evaluations),
    )
