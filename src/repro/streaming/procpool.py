"""The process-backed shard executor: persistent workers over shared memory.

:class:`~repro.streaming.sharding.ShardedKnnIndex` with
``executor="processes"`` fans its refresh stages out to one OS process
per shard, so the Python-level plan/merge work — GIL-serialized under
the thread executor — runs truly in parallel.  The division of state:

* **Parent (authoritative)** — the mutable rating builder, the WAL, the
  dirty set, the graph rows, the engine's :class:`ProfileIndex`.
* **Worker (owned slice)** — the shard's candidate-multiset cache, its
  row-restricted reverse index, and a mirror of the graph rows it owns
  (full-size arrays; only owned rows are ever read or written).
* **Shared memory** — the read-only per-refresh state (snapshot CSR
  triplet + profile arrays), published by the parent into an
  :class:`~repro.streaming.shm.ShmArena` and rebuilt as zero-copy numpy
  views in every worker.

Protocol (one duplex pipe per worker):

* ``("delta", ops)`` — fire-and-forget per-event deltas shipped after
  each ``apply()``: candidacy flips (with the item's qualifying raters
  captured at event time), cache evictions (with the evicted profile's
  items), and row growth (absolute, hence replay-idempotent).
* ``(req_id, kind, payload)`` — one request per refresh stage
  (``stage_a`` / ``plan`` / ``merge``); the worker replies
  ``(req_id, "ok", result)`` or ``(req_id, "error", exception)``.
  Replies are matched by ``req_id`` so an aborted pass's stale replies
  are drained, not misread.
* ``("stop",)`` — orderly shutdown.

Crash safety: the parent applies nothing until every worker has
answered the final stage, so a worker death at any point leaves the
authoritative state untouched.  The pool is then reset and respawned —
each worker reseeded from the authoritative rows plus a replay of the
delta tail accumulated since the last completed refresh — and the pass
reruns.  A respawned worker starts with an empty candidate cache, which
is always exact (caches are an exact-or-absent optimization; misses are
re-derived in bulk), so bit-identical parity survives any kill point.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import weakref

import numpy as np

from ..graph.knn_graph import MISSING
from ..graph.updates import ReverseNeighborIndex
from ..layout import ID_DTYPE, SCORE_DTYPE
from ..similarity.base import ProfileIndex
from .index import _bump, cache_store_insert, derive_candidate_sets
from .sharding import merge_shard_pairs, plan_shard_pairs, score_pairs_chunked
from .shm import attach_block, unpack_arrays

__all__ = ["ProcessShardPool", "WorkerCrash"]


class WorkerCrash(RuntimeError):
    """A worker process died mid-conversation (pipe closed / send failed)."""


def default_start_method() -> str:
    """``fork`` on Linux (cheap, inherits imports), ``spawn`` elsewhere."""
    if sys.platform.startswith("linux"):
        if "fork" in multiprocessing.get_all_start_methods():
            return "fork"
    return "spawn"


class _SnapshotStore:
    """Read-only stand-in for the rating builder inside a worker.

    The cache-store primitives (:func:`cache_store_insert`,
    :func:`derive_candidate_sets`) consult the builder for profiles and
    snapshots; at refresh time the builder's live state equals the
    published snapshot, so a thin view over the shared-memory dataset
    answers identically.
    """

    __slots__ = ("_dataset",)

    def __init__(self, dataset):
        self._dataset = dataset

    def snapshot(self):
        return self._dataset

    def profile(self, user: int) -> dict[int, float]:
        matrix = self._dataset.matrix
        lo, hi = matrix.indptr[user], matrix.indptr[user + 1]
        return dict(
            zip(
                matrix.indices[lo:hi].tolist(),
                matrix.data[lo:hi].tolist(),
            )
        )

    @property
    def n_users(self) -> int:
        return self._dataset.n_users


class _WorkerState:
    """One worker's owned shard state plus its per-refresh context."""

    def __init__(self, init: dict):
        self.shard_id = int(init["shard_id"])
        self.n_shards = int(init["n_shards"])
        #: The ownership rule at spawn time.  A rebalance resets the
        #: pool, so a live worker's map is always current.
        self.shard_map = init["shard_map"]
        self.config = init["config"]
        self.metric = init["metric"]
        self.batch_size = int(init["batch_size"])
        # Resolved parent-side; missing-dependency fallback (with its
        # one-time warning) already happened there, so this resolve can
        # only downgrade further if the worker's environment differs.
        self.kernel_backend = init.get("kernel_backend")
        self.cache_limit = init["cache_limit"]
        # Full-size mirrors of the graph rows; only owned rows are live.
        self.neighbors = np.array(init["neighbors"], dtype=ID_DTYPE)
        self.sims = np.array(init["sims"], dtype=SCORE_DTYPE)
        self.n_rows = int(self.neighbors.shape[0])
        self.reverse = ReverseNeighborIndex()
        self._rebuild_reverse()
        self.counts_map: dict[int, dict[int, int]] = {}
        self.raters_map: dict[int, set[int]] = {}
        # Shared-memory attachment + per-refresh context.
        self.block = None
        self.block_name = None
        self.index = None
        self.store = None
        self.affected = None
        self.truly_dirty: frozenset = frozenset()
        self.seq = 0
        self.plan_rows = np.empty(0, dtype=np.int64)
        self.plan_cands = np.empty(0, dtype=np.int64)
        for op in init["deltas"]:
            self.apply_delta(op)

    # ------------------------------------------------------------------
    # Owned-state maintenance
    # ------------------------------------------------------------------
    def _rebuild_reverse(self) -> None:
        """Reverse index over owned rows only, from the row mirror."""
        self.reverse = ReverseNeighborIndex()
        rows = self.shard_map.owned_rows(self.shard_id, self.n_rows)
        sub = self.neighbors[rows]
        local, slots = np.nonzero(sub != MISSING)
        cited = sub[local, slots]
        owned = rows[local]
        for row, neighbor in zip(owned.tolist(), cited.tolist()):
            self.reverse.add_referrer(neighbor, row)

    def _qualifies(self, rating: float) -> bool:
        if rating == 0.0:
            return False
        min_rating = self.config.min_rating
        return min_rating is None or rating >= min_rating

    def _grow(self, n_users: int) -> None:
        """Mirror of the parent's geometric row growth (absolute target)."""
        if n_users <= self.n_rows:
            return
        capacity = self.neighbors.shape[0]
        if n_users > capacity:
            k = self.neighbors.shape[1]
            new_capacity = max(n_users, 2 * capacity)
            neighbors = np.full((new_capacity, k), MISSING, dtype=ID_DTYPE)
            sims = np.full((new_capacity, k), -np.inf, dtype=SCORE_DTYPE)
            neighbors[: self.n_rows] = self.neighbors[: self.n_rows]
            sims[: self.n_rows] = self.sims[: self.n_rows]
            self.neighbors, self.sims = neighbors, sims
        else:
            self.neighbors[self.n_rows : n_users] = MISSING
            self.sims[self.n_rows : n_users] = -np.inf
        self.n_rows = n_users

    def apply_delta(self, op: tuple) -> None:
        """One per-event delta: candidacy flip, cache evict, or growth."""
        kind = op[0]
        if kind == "cand":
            _, user, item, added, others = op
            delta = 1 if added else -1
            raters = self.raters_map.get(item)
            if raters:
                for other in raters:
                    if other != user:
                        _bump(self.counts_map[other], user, delta)
            counts = self.counts_map.get(user)
            if counts is not None:
                for other in others:
                    if other != user:
                        _bump(counts, other, delta)
                if added:
                    self.raters_map.setdefault(item, set()).add(user)
                else:
                    raters = self.raters_map.get(item)
                    if raters is not None:
                        raters.discard(user)
                        if not raters:
                            del self.raters_map[item]
        elif kind == "evict":
            _, user, items = op
            if self.counts_map.pop(user, None) is not None:
                for item in items:
                    raters = self.raters_map.get(item)
                    if raters is not None:
                        raters.discard(user)
                        if not raters:
                            del self.raters_map[item]
        elif kind == "grow":
            self._grow(int(op[1]))
        else:  # pragma: no cover - protocol bug guard
            raise ValueError(f"unknown delta op {op!r}")

    def _cache_insert(self, user: int, counts: dict[int, int]) -> None:
        cache_store_insert(
            self.counts_map,
            self.raters_map,
            user,
            counts,
            self.store,
            self._qualifies,
            self.cache_limit,
        )

    def _score(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return score_pairs_chunked(
            self.metric, self.index, us, vs, self.batch_size
        )

    # ------------------------------------------------------------------
    # Refresh stages
    # ------------------------------------------------------------------
    def stage_a(self, payload: dict) -> np.ndarray:
        """Attach the published arrays; discover this shard's affected set."""
        name = payload["block"]
        if self.block is None or self.block_name != name:
            if self.block is not None:
                self.block.close()
            self.block = attach_block(name)
            self.block_name = name
        arrays = unpack_arrays(self.block, payload["manifest"])
        self.index = ProfileIndex.from_shared_arrays(arrays)
        if self.kernel_backend is not None:
            # Bind the batch-scoring backend straight to the zero-copy
            # CSR views — the evaluate stage never builds scipy
            # temporaries over shared memory.
            self.index._kernel_backend = self.kernel_backend
        self.store = _SnapshotStore(self.index.dataset)
        all_dirty = payload["all_dirty"]
        self.truly_dirty = frozenset(all_dirty.tolist())
        self.seq = int(payload["seq"])
        self._grow(int(payload["n_users"]))  # defensive; normally a no-op
        self.affected = np.union1d(
            payload["my_dirty"], self.reverse.referrers_of(all_dirty)
        )
        return self.affected

    def plan(self, payload: dict) -> dict:
        """Clear owned affected rows; derive pairs and outboxes."""
        affected_global = payload["affected"]
        n_users = self.index.n_users
        mask = np.zeros(n_users, dtype=bool)
        mask[affected_global] = True
        neighbors = self.neighbors[: self.n_rows]
        sims = self.sims[: self.n_rows]
        affected = self.affected
        old_rows = neighbors[affected].copy()
        neighbors[affected] = MISSING
        sims[affected] = -np.inf
        for pos, row in enumerate(affected.tolist()):
            self.reverse.apply_row(row, old_rows[pos], ())
        cand_sets, hits, misses = derive_candidate_sets(
            self.counts_map,
            affected,
            self._cache_insert,
            self.store,
            self.config.min_rating,
        )
        self.plan_rows, self.plan_cands, outboxes = plan_shard_pairs(
            self.shard_id,
            self.shard_map,
            affected,
            mask,
            self.truly_dirty,
            cand_sets,
            self.seq,
        )
        return {"outboxes": outboxes, "hits": hits, "misses": misses}

    def merge(self, payload: dict) -> dict:
        """Evaluate + merge into owned rows; return the row updates."""
        evaluations, changes, active, new_neighbors, new_sims = (
            merge_shard_pairs(
                self.shard_id,
                self.shard_map,
                self.config.pivot,
                self.plan_rows,
                self.plan_cands,
                payload["inbox"],
                self.neighbors[: self.n_rows],
                self.sims[: self.n_rows],
                self.index.n_users,
                self._score,
                self.reverse,
            )
        )
        return {
            "evaluations": evaluations,
            "changes": changes,
            "active": active,
            "neighbors": new_neighbors,
            "sims": new_sims,
        }

    def close(self) -> None:
        if self.block is not None:
            self.block.close()
            self.block = None


def _worker_main(conn, init: dict) -> None:
    """Entry point of one shard worker process.

    The idle loop polls with a timeout and watches ``getppid()``: a
    worker forked after its siblings inherits their parent-side pipe
    ends, so a crashed (SIGKILLed) parent never produces EOF on this
    worker's pipe — the reparenting check is what guarantees orphaned
    workers exit (and release their shared-memory attachments, letting
    the resource tracker reap the segments) within a second.
    """
    parent_pid = os.getppid()
    state = _WorkerState(init)
    handlers = {
        "stage_a": state.stage_a,
        "plan": state.plan,
        "merge": state.merge,
    }
    try:
        while True:
            try:
                if not conn.poll(1.0):
                    if os.getppid() != parent_pid:
                        break  # orphaned: the parent is gone
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                break
            tag = message[0]
            if tag == "delta":
                for op in message[1]:
                    state.apply_delta(op)
                continue
            if tag == "stop":
                break
            req_id, kind, payload = message
            try:
                result = handlers[kind](payload)
            except BaseException as exc:  # ship the failure to the parent
                try:
                    conn.send((req_id, "error", exc))
                except Exception:
                    conn.send((req_id, "error", RuntimeError(repr(exc))))
                continue
            conn.send((req_id, "ok", result))
    finally:
        state.close()
        conn.close()


class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn


def _shutdown_workers(workers: list[_Worker]) -> None:
    """Stop worker processes: polite ``stop``, then escalate."""
    for worker in workers:
        try:
            worker.conn.send(("stop",))
        except (OSError, ValueError):
            pass
    for worker in workers:
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
        if worker.process.is_alive():  # pragma: no cover - last resort
            worker.process.kill()
            worker.process.join(timeout=1.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ProcessShardPool:
    """A persistent pool of one worker process per shard.

    Purely the transport: spawning (from caller-built init payloads),
    delta broadcast, request/reply stage rounds with stale-reply
    draining, death detection (:class:`WorkerCrash`), reset and
    shutdown.  The :class:`~repro.streaming.sharding.ShardedKnnIndex`
    owns the orchestration and all authoritative state.  A ``weakref``
    finalizer stops the workers if the pool is garbage collected
    without :meth:`close`.
    """

    def __init__(self, n_shards: int, start_method: str | None = None):
        self.n_shards = int(n_shards)
        self.start_method = start_method or default_start_method()
        self._ctx = multiprocessing.get_context(self.start_method)
        self._workers: list[_Worker] | None = None
        self._req_id = 0
        self._finalizer = None

    @property
    def alive(self) -> bool:
        """True while every worker process is running."""
        return self._workers is not None and all(
            worker.process.is_alive() for worker in self._workers
        )

    @property
    def pids(self) -> list[int]:
        """Worker process ids, in shard order (for kill tests/monitoring)."""
        if self._workers is None:
            return []
        return [worker.process.pid for worker in self._workers]

    def spawn(self, make_init) -> None:
        """(Re)start every worker; ``make_init(shard_id)`` seeds each."""
        self.reset()
        workers: list[_Worker] = []
        for shard in range(self.n_shards):
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, make_init(shard)),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append(_Worker(process, parent_conn))
        self._workers = workers
        self._finalizer = weakref.finalize(self, _shutdown_workers, workers)

    def broadcast_deltas(self, ops: list[tuple]) -> None:
        """Ship per-event deltas to every worker (fire-and-forget).

        A failed send means a worker died between refreshes; the pool
        resets itself — the caller's delta tail replay at the next
        spawn covers everything the dead pool never applied.
        """
        if self._workers is None:
            return
        try:
            for worker in self._workers:
                worker.conn.send(("delta", ops))
        except (OSError, ValueError):
            self.reset()

    def request_all(self, kind: str, payloads: list[dict]) -> list:
        """One stage round: send to every worker, collect every reply.

        Raises :class:`WorkerCrash` when a pipe dies, or re-raises the
        worker's own exception when a stage handler failed.  Replies
        from an aborted earlier round are drained by request id.
        """
        if self._workers is None:
            raise WorkerCrash("worker pool is not running")
        self._req_id += 1
        req_id = self._req_id
        try:
            for worker, payload in zip(self._workers, payloads):
                worker.conn.send((req_id, kind, payload))
            results = []
            for worker in self._workers:
                while True:
                    reply = worker.conn.recv()
                    if reply[0] == req_id:
                        break
                status, value = reply[1], reply[2]
                if status == "error":
                    if isinstance(value, BaseException):
                        raise value
                    raise RuntimeError(str(value))
                results.append(value)
            return results
        except (EOFError, OSError, ValueError) as exc:
            raise WorkerCrash(
                f"a shard worker died during {kind!r}: {exc!r}"
            ) from exc

    def reset(self) -> None:
        """Stop every worker (a later :meth:`spawn` starts fresh ones)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._workers is not None:
            _shutdown_workers(self._workers)
            self._workers = None

    def close(self) -> None:
        """Deterministic shutdown (idempotent; also runs on GC)."""
        self.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "stopped"
        return (
            f"ProcessShardPool(n_shards={self.n_shards}, "
            f"start_method={self.start_method!r}, {state})"
        )
