"""Incremental maintenance of a KIFF KNN graph under rating streams.

KIFF (Algorithm 1) is an offline batch algorithm, but its two-phase
counting/refinement split is exactly what an online system needs: item
profiles and candidate sets update in O(1) per rating event, and the
refinement step — ``merge_topk`` over freshly evaluated candidate pairs —
localises naturally to the users whose candidacies changed.

:class:`DynamicKnnIndex` maintains the **converged** KIFF graph: the
fixed point KIFF reaches with ``beta = 0`` (every Ranked Candidate Set
exhausted), which is each user's exact top-k over her co-rating
candidates and is independent of ``gamma``, ``beta`` and the iteration
schedule.  That is the graph a cold ``kiff(engine, config)`` rebuild with
``beta = 0.0`` produces on the same data, and the differential-parity
test suite (``tests/streaming/test_parity.py``) asserts exact neighbour
and similarity equality against such rebuilds after arbitrary event
interleavings.

Maintenance invariant
---------------------
After ``refresh()`` the graph equals the cold rebuild because:

* An event only changes user *u*'s profile, so for *profile-local*
  metrics only similarities involving *u* change, and *u* joins the
  **dirty set**.  For metrics with global terms (Adamic-Adar's item
  weights; see ``SimilarityMetric.profile_local``) an item-membership
  change also shifts every pair sharing that item, so all of the item's
  raters join the dirty set too.
* A dirty user's row is rebuilt from scratch: all its pair similarities
  are stale (e.g. cosine renormalises the whole row when one rating
  lands).
* A clean user *x* whose row **contains** a dirty user holds a stale
  entry whose true replacement may be an arbitrary rank-(k+1) candidate,
  so *x* joins the **affected set** and is rebuilt too.
* Every other clean user *x* has only unchanged entries; a dirty user
  can at most *enter* her row, which the mirror merge of the freshly
  evaluated (dirty, x) pairs performs — ``merge_topk`` applies the same
  (sim desc, id asc) tie-breaks as the batch algorithm.

Dirty-set-proportional cost
---------------------------
Every stage of a refresh scales with the dirty set, not the dataset:

* **Snapshot** — ``MutableBipartiteBuilder.snapshot`` patches only the
  dirty CSR rows (and the CSC mirror) of the previous snapshot instead
  of re-materialising O(n_ratings) state.
* **Index** — ``SimilarityEngine.rebind(..., dirty_users=...)`` updates
  the :class:`~repro.similarity.base.ProfileIndex` in place, recomputing
  norms / profile sizes / metric caches for dirty users only.
* **Affected-row discovery** — a
  :class:`~repro.graph.updates.ReverseNeighborIndex` (user -> rows
  citing her), kept current from the row diffs of every top-k merge,
  replaces the per-pass O(n_users * k) ``np.isin`` scan with a lookup.
* **Candidate sets** — per-user candidate multisets are cached and
  delta-maintained from the item profiles touched by each event, so
  repeat-dirty users never re-derive their candidate sets; cache misses
  are re-derived in bulk by :func:`repro.core.rcs.delta_rcs`, whose cost
  is proportional to the dirty users' item profiles.
* **Similarity evaluations** — proportional to the affected users'
  candidate sets, the streaming analogue of KIFF's "only scan the RCS"
  guarantee.

The per-user work is tallied into a shared
:class:`~repro.instrumentation.counters.MaintenanceCounter`
(``index.maintenance``); ``benchmarks/bench_refresh_locality.py``
asserts the proportionality on a 95/5 workload, and the throughput bench
(``benchmarks/bench_streaming_throughput.py``) measures the evaluation
savings against rebuild-per-batch.

Ingestion and durability
------------------------
Typed events (:mod:`repro.streaming.events`) are the only ingestion
path: :meth:`DynamicKnnIndex.apply` validates, journals (into an
attached :class:`~repro.persistence.WriteAheadLog`), absorbs and
refreshes — one choke point for every mutation.  Because of that,
restart recovery is a property of the whole API:
:meth:`DynamicKnnIndex.checkpoint` serializes the maintained state and
:meth:`DynamicKnnIndex.restore` replays the log tail on top of the
latest checkpoint, landing on a graph bit-identical to the
uninterrupted run (``tests/streaming/test_recovery.py`` pins this
across randomized kill points; ``benchmarks/bench_recovery.py`` pins
the cost).
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from ..core.config import KiffConfig
from ..core.kiff import kiff
from ..core.rcs import delta_rcs
from ..core.result import ConstructionResult
from ..datasets.bipartite import BipartiteDataset, DatasetError
from ..datasets.mutable import MutableBipartiteBuilder
from ..graph.knn_graph import MISSING, KnnGraph
from ..graph.updates import ReverseNeighborIndex, dedupe_pairs, merge_topk_rows
from ..instrumentation.counters import MaintenanceCounter
from ..layout import ID_DTYPE, SCORE_DTYPE, legacy_nbytes, nbytes
from ..serving.snapshot import GraphSnapshot
from ..similarity.base import ProfileIndex, SimilarityMetric
from ..similarity.engine import SimilarityEngine
from .events import (
    CONTROL_EVENTS,
    EVENT_TYPES,
    AddRating,
    AddUser,
    ApplyResult,
    RemoveRating,
    RemoveUser,
    flatten_events,
    ratings_batch,
)

__all__ = [
    "DynamicKnnIndex",
    "RefreshStats",
    "cold_rebuild_graph",
    "converged_config",
]


def converged_config(config: KiffConfig) -> KiffConfig:
    """The cold-rebuild configuration matching a maintained graph.

    ``beta = 0`` exhausts every Ranked Candidate Set, producing the
    gamma-independent fixed point :class:`DynamicKnnIndex` maintains.
    """
    return replace(config, beta=0.0, track_snapshots=False)


def cold_rebuild_graph(
    dataset: BipartiteDataset,
    config: KiffConfig,
    metric: str | SimilarityMetric = "cosine",
) -> KnnGraph:
    """The converged KIFF graph on *dataset* — the parity reference.

    This is the single definition of "what the streaming index must
    equal"; the CLI, the staleness experiment and the parity test suite
    all compare against it.  A fresh engine is used so the caller's
    instrumentation is not polluted.
    """
    engine = SimilarityEngine(
        dataset, metric=metric, kernel_backend=config.kernel_backend
    )
    return kiff(engine, converged_config(config)).graph


@dataclass(frozen=True)
class RefreshStats:
    """Cost accounting for one localized refinement pass."""

    #: Events absorbed since the previous refresh.
    events: int
    #: Users whose own profile changed.
    dirty_users: int
    #: Users whose row was rebuilt (dirty + rows referencing them).
    affected_users: int
    #: Similarity evaluations performed by this pass.
    evaluations: int
    #: KNN slots changed by the pass (merge_topk's change counter).
    changes: int
    #: Wall-clock seconds spent in the pass.
    wall_time: float
    #: Snapshot CSR rows materialised by this pass (dirty rows on the
    #: incremental path, ``n_users`` on a full fallback).
    rows_materialized: int = 0
    #: Users whose ProfileIndex state this pass recomputed.
    index_users_recomputed: int = 0
    #: Candidate-set cache hits / misses among the affected users.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Dirty users this pass left for a later refresh (``dirty_subset``
    #: refreshes only; always 0 for a full pass).
    deferred_users: int = 0


class DynamicKnnIndex:
    """A KIFF KNN graph maintained under insert/remove rating events.

    Parameters
    ----------
    dataset:
        Initial dataset; the index starts from a converged KIFF build on
        it (skipped with ``build=False``, leaving an empty graph that a
        first ``refresh()`` or ``rebuild()`` populates).
    config:
        KIFF parameters.  ``k``, ``min_rating`` and ``pivot`` shape the
        maintained graph and its cost; ``beta`` is forced to ``0.0``
        internally because the index maintains the converged graph.
    metric:
        Similarity metric name or instance (as for
        :class:`~repro.similarity.engine.SimilarityEngine`).
    auto_refresh:
        When True (default) every mutation batch triggers an immediate
        ``refresh()``, keeping the graph exact at all times.  When False,
        events accumulate in the dirty set and the caller chooses the
        staleness/cost trade-off by calling ``refresh()`` explicitly —
        the policy knob the staleness experiment sweeps.
    candidate_cache_size:
        Maximum users whose candidate multisets are cached.  The default
        (65536) is effectively unbounded for bench-scale datasets while
        capping long-stream memory at production scale; ``None`` removes
        the bound, ``0`` disables the cache.  Evictions are oldest-first.
    wal:
        Optional :class:`~repro.persistence.WriteAheadLog` to journal
        every applied event into (write-ahead, i.e. before the event
        mutates in-memory state).  Equivalent to calling
        :meth:`attach_wal` after construction; the log must be at the
        index's sequence number (0 for a fresh pair).

    Ingestion
    ---------
    Typed events are the only ingestion path: :meth:`apply` is the
    single entry point every mutation flows through, which is what makes
    durability (:meth:`checkpoint` / :meth:`restore` plus the WAL) a
    property of the whole API instead of one code path.  The historical
    ``add_ratings`` / ``add_user`` / ``remove_user`` methods survive as
    deprecated shims that construct events and delegate.
    """

    def __init__(
        self,
        dataset: BipartiteDataset,
        config: KiffConfig | None = None,
        metric: str | SimilarityMetric = "cosine",
        auto_refresh: bool = True,
        build: bool = True,
        candidate_cache_size: int | None = 65_536,
        wal=None,
    ):
        #: Set first so close() is safe however far construction got.
        self._closed = False
        #: The latest published read snapshot (atomic pointer swap; see
        #: :mod:`repro.serving.snapshot`).  None until the first
        #: completed ``rebuild()``/``refresh()`` publishes.
        self._snapshot: GraphSnapshot | None = None
        self.config = config or KiffConfig()
        self.auto_refresh = auto_refresh
        #: Shared per-user maintenance work accounting (snapshot rows,
        #: ProfileIndex recomputations, candidate-cache traffic).
        self.maintenance = MaintenanceCounter()
        self.builder = MutableBipartiteBuilder.from_dataset(
            dataset, maintenance=self.maintenance
        )
        self.engine = SimilarityEngine(
            dataset,
            metric=metric,
            index=ProfileIndex(dataset, maintenance=self.maintenance),
            kernel_backend=self.config.kernel_backend,
        )
        # Backing arrays may hold slack capacity (geometric growth, so a
        # burst of user joins doesn't copy the graph per join); the first
        # _n_rows rows are the live graph.
        self._n_rows = dataset.n_users
        self._neighbors = np.full(
            (dataset.n_users, self.config.k), MISSING, dtype=ID_DTYPE
        )
        self._sims = np.full(
            (dataset.n_users, self.config.k), -np.inf, dtype=SCORE_DTYPE
        )
        #: user -> rows citing her; kept current inside every top-k merge
        #: so refresh() finds referencing rows by lookup, not by scanning.
        self._reverse = ReverseNeighborIndex()
        #: user -> {candidate: shared-qualifying-item count}; the cached
        #: streaming RCS, delta-maintained from touched item profiles.
        self._candidate_counts: dict[int, dict[int, int]] = {}
        #: item -> cached users rating it at a qualifying level (the
        #: propagation targets of a membership change on that item).
        self._cached_raters: dict[int, set[int]] = {}
        self.candidate_cache_size = candidate_cache_size
        self._dirty: set[int] = set()
        self._pending_events = 0
        self.refresh_log: list[RefreshStats] = []
        self.initial_evaluations = 0
        #: Non-local metrics (e.g. Adamic-Adar) weigh items by global
        #: popularity, so an item-membership change invalidates every
        #: pair sharing that item — those raters must join the dirty set.
        self._profile_local = self.engine.metric.profile_local
        #: Monotonic event sequence number (aligned with the WAL's when
        #: one is attached); event 1 is the first applied event.
        self._seq = 0
        self._wal = None
        #: Provenance of a restore() (None for a fresh index).
        self.restore_info = None
        if build:
            self.rebuild()
            self.initial_evaluations = self.engine.counter.evaluations
        else:
            # Deferred build: everyone is dirty, so the first refresh()
            # constructs the full converged graph.
            self._dirty.update(range(dataset.n_users))
        if wal is not None:
            self.attach_wal(wal)

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> KnnGraph:
        """The maintained KNN graph (a copy; exact iff no events pending)."""
        neighbors, sims = self._rows()
        return KnnGraph(neighbors.copy(), sims.copy())

    @property
    def dataset(self) -> BipartiteDataset:
        """Snapshot of the current ratings (cached between mutations)."""
        return self.builder.snapshot()

    @property
    def n_users(self) -> int:
        """Number of allocated user ids (tombstoned users included)."""
        return self.builder.n_users

    @property
    def pending_events(self) -> int:
        """Events absorbed since the last refresh."""
        return self._pending_events

    @property
    def dirty_users(self) -> frozenset:
        """Users whose profile changed since the last refresh."""
        return frozenset(self._dirty)

    def referrer_counts(self, users) -> np.ndarray:
        """Blast radius of *users*: how many rows currently cite each.

        A dirty user's in-degree bounds the rows her refresh can
        invalidate; the bounded-staleness scheduler orders deferred work
        by it.  Served by lookup from the reverse-neighbor index.
        """
        self._ensure_open()
        return self._reverse.referrer_counts(users)

    def memory_stats(self) -> dict[str, int]:
        """Per-component resident-byte breakdown of the index state.

        Array-backed components report exact ``nbytes`` (graph rows
        include slack capacity from geometric growth); dict-backed
        components (reverse index, candidate caches) report entry
        counts, since their Python-object overhead is interpreter-
        dependent.  ``legacy_*`` twins re-price the compact arrays at
        the historical int64/float64 widths
        (:func:`repro.layout.legacy_nbytes`) — the analytic "before"
        column of the memory model, deterministic and hence gateable in
        benchmark baselines.
        """
        self._ensure_open()
        matrix = self.builder.snapshot().matrix
        stats = {
            "dataset_csr_bytes": nbytes(
                matrix.indptr, matrix.indices, matrix.data
            ),
            "graph_rows_bytes": nbytes(self._neighbors, self._sims),
            "profile_index_bytes": nbytes(
                self.engine.index.norms, self.engine.index.sizes
            ),
            "snapshot_rows_bytes": (
                0 if self._snapshot is None else self._snapshot.row_bytes()
            ),
            "reverse_index_entries": self._reverse.referrer_count(),
            "candidate_cache_entries": sum(
                len(counts) for counts in self._candidate_counts.values()
            ),
            "cached_rater_entries": sum(
                len(raters) for raters in self._cached_raters.values()
            ),
            "legacy_dataset_csr_bytes": legacy_nbytes(
                matrix.indptr, matrix.indices, matrix.data
            ),
            "legacy_graph_rows_bytes": legacy_nbytes(
                self._neighbors, self._sims
            ),
        }
        stats["total_bytes"] = (
            stats["dataset_csr_bytes"]
            + stats["graph_rows_bytes"]
            + stats["profile_index_bytes"]
            + stats["snapshot_rows_bytes"]
        )
        return stats

    @property
    def maintenance_evaluations(self) -> int:
        """Similarity evaluations spent after the initial build."""
        return self.engine.counter.evaluations - self.initial_evaluations

    @property
    def last_seq(self) -> int:
        """Sequence number of the last applied event (WAL-aligned)."""
        return self._seq

    @property
    def wal(self):
        """The attached :class:`~repro.persistence.WriteAheadLog` (or None)."""
        return self._wal

    @property
    def closed(self) -> bool:
        """Has :meth:`close` been called?"""
        return getattr(self, "_closed", False)

    def close(self) -> None:
        """Release pooled resources and retire the index.

        Idempotent, and safe whatever state construction reached — a
        double close or a close after a failed ``__init__`` is a no-op,
        never an exception.  After a close, mutation and query entry
        points (:meth:`apply`, :meth:`refresh`, :meth:`rebuild`,
        :meth:`pin`) raise a clear :class:`RuntimeError` instead of
        failing deep in pool internals.
        :class:`~repro.streaming.sharding.ShardedKnnIndex` extends the
        cleanup to its shard workers and shared-memory blocks.
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        engine = getattr(self, "engine", None)
        if engine is not None:
            engine.close()

    def _ensure_open(self) -> None:
        if getattr(self, "_closed", False):
            raise RuntimeError(
                f"{type(self).__name__} is closed; construct a new index "
                f"(or restore() one from its checkpoint state)"
            )

    # ------------------------------------------------------------------
    # Read-side snapshots (MVCC publication; see repro.serving)
    # ------------------------------------------------------------------
    def pin(self) -> GraphSnapshot:
        """Pin the latest published :class:`GraphSnapshot`.

        Holding the returned reference *is* the pin: the snapshot is
        immutable and survives any number of concurrent
        ``apply()``/``refresh()`` calls bit-unchanged; dropping the
        reference releases it.  Never blocks — publication is a single
        attribute swap, atomic under the GIL.
        """
        self._ensure_open()
        snapshot = self._snapshot
        if snapshot is None:
            raise RuntimeError(
                "no snapshot published yet: an index constructed with "
                "build=False publishes its first snapshot when "
                "refresh() or rebuild() completes"
            )
        return snapshot

    @property
    def snapshot_version(self) -> int | None:
        """Version of the latest published snapshot (None before one)."""
        snapshot = self._snapshot
        return None if snapshot is None else snapshot.version

    def _publish_snapshot(self, unchanged: bool = False) -> None:
        """Publish the current state as the pinned-readable snapshot.

        With ``unchanged=True`` (a refresh that absorbed only no-op
        events) the previous snapshot's arrays are republished under
        the new covering sequence — no copy.  Otherwise the live rows
        are frozen; the dataset and profile-index arrays are shared by
        reference (the write path replaces rather than mutates them).
        """
        previous = self._snapshot
        if unchanged and previous is not None:
            if previous.version != self._seq:
                self._snapshot = previous.at_version(self._seq)
            return
        neighbors, sims = self._rows()
        index = self.engine.index
        self._snapshot = GraphSnapshot.capture(
            self._seq,
            neighbors,
            sims,
            self.builder.snapshot(),
            index.norms,
            index.sizes,
        )

    # ------------------------------------------------------------------
    # Ingestion: typed events through one choke point
    # ------------------------------------------------------------------
    def apply(self, events) -> ApplyResult:
        """Apply typed events — the single ingestion entry point.

        *events* is one :data:`~repro.streaming.events.Event` or an
        iterable of them.  Each top-level event is processed as a unit:

        1. **validate** — the whole event (a :class:`Batch` entirely,
           with user ids checked against the population as it would
           evolve inside the batch), so a bad event cannot leave earlier
           parts applied but unrefreshed;
        2. **journal** — every primitive event is appended to the
           attached write-ahead log *before* state mutates, so a crash
           replays exactly what was applied;
        3. **absorb** — profiles, dirty set and candidate caches update
           in O(1) per event;
        4. **refresh** — under ``auto_refresh``, one refinement pass per
           top-level event (a batch refreshes once, not per member).

        Returns an :class:`ApplyResult` with the minted user ids, the
        :class:`RefreshStats` of every pass this call triggered, the
        primitive-event count and the last sequence number.
        """
        self._ensure_open()
        if isinstance(events, EVENT_TYPES):
            events = (events,)
        new_users: list[int] = []
        log_start = len(self.refresh_log)
        n_applied = 0
        for event in events:
            primitives = flatten_events(event)
            self._validate(primitives)
            self._journal(primitives)
            for primitive in primitives:
                minted = self._absorb(primitive)
                if minted is not None:
                    new_users.append(minted)
            self._pending_events += len(primitives)
            n_applied += len(primitives)
            if self.auto_refresh:
                self.refresh()
        return ApplyResult(
            new_users=tuple(new_users),
            refreshes=tuple(self.refresh_log[log_start:]),
            events=n_applied,
            last_seq=self._seq,
        )

    def _validate(self, primitives) -> None:
        """Check every primitive event before anything mutates.

        ``n_users`` is simulated forward through the list, so a batch
        may rate or remove a user minted by an earlier AddUser in the
        same batch.
        """
        n_users = self.builder.n_users
        for event in primitives:
            if isinstance(event, (AddRating, RemoveRating)):
                if not 0 <= event.user < n_users:
                    raise DatasetError(
                        f"user id {event.user} out of range [0, {n_users})"
                    )
                if event.item < 0:
                    raise DatasetError(
                        f"item id must be non-negative, got {event.item}"
                    )
                if isinstance(event, AddRating) and not math.isfinite(
                    event.rating
                ):
                    raise DatasetError("ratings must be finite")
            elif isinstance(event, AddUser):
                if event.ratings is not None and len(event.items) != len(
                    event.ratings
                ):
                    raise DatasetError(
                        f"items and ratings must have equal length, got "
                        f"{len(event.items)} vs {len(event.ratings)}"
                    )
                for item in event.items:
                    if item < 0:
                        raise DatasetError(
                            f"item id must be non-negative, got {item}"
                        )
                for rating in event.ratings or ():
                    if not math.isfinite(rating):
                        raise DatasetError(
                            f"rating must be finite, got {rating}"
                        )
                n_users += 1
            elif isinstance(event, RemoveUser):
                if not 0 <= event.user < n_users:
                    raise DatasetError(
                        f"user id {event.user} out of range [0, {n_users})"
                    )
            else:
                raise TypeError(f"unknown streaming event {event!r}")

    def _journal(self, primitives) -> None:
        """Advance the sequence; journal into the WAL when attached.

        All-or-nothing per event unit: if an append fails partway (disk
        full), the WAL is rolled back to its pre-unit state so nothing
        is journaled that was never absorbed — a caller retry starts
        from a clean log instead of double-journaling.
        """
        if self._wal is None:
            self._seq += len(primitives)
            return
        mark = self._wal.mark()
        try:
            for primitive in primitives:
                self._seq = self._wal.append(primitive)
        except BaseException:
            self._wal.rollback(mark)
            self._seq = mark[0]
            raise

    def _absorb(self, event) -> int | None:
        """Mutate state for one validated primitive event (no refresh).

        Returns the minted user id for AddUser, else None.  Also the
        replay path of :meth:`restore`, which is why it must stay free
        of WAL appends and refreshes.
        """
        if isinstance(event, AddRating):
            self._absorb_rating(
                int(event.user), int(event.item), float(event.rating)
            )
            return None
        if isinstance(event, RemoveRating):
            self._absorb_rating(int(event.user), int(event.item), 0.0)
            return None
        if isinstance(event, AddUser):
            return self._absorb_user(event.items, event.ratings)
        if isinstance(event, RemoveUser):
            self._absorb_removal(int(event.user))
            return None
        if isinstance(event, CONTROL_EVENTS):
            self._absorb_control(event)
            return None
        raise TypeError(f"unknown streaming event {event!r}")

    def _absorb_control(self, event) -> None:
        """Replay hook for WAL control records (sharding fences).

        Ownership is a partitioning concern, so the flat index ignores
        them; :class:`~repro.streaming.sharding.ShardedKnnIndex`
        overrides this to flip shard ownership at the record's exact
        sequence position.  Control records never reach :meth:`apply` —
        they are journaled directly by ``rebalance()`` and only come
        back through WAL replay.
        """

    def _absorb_rating(self, user: int, item: int, rating: float) -> None:
        old = self.builder.rating(user, item)
        if old == rating:
            return  # duplicate delivery / identical overwrite: no-op
        membership_change = (old != 0.0) != (rating != 0.0)
        qualified = self._qualifies(old)
        qualifies = self._qualifies(rating)
        self.builder.set_rating(user, item, rating)
        self._dirty.add(user)
        if membership_change and not self._profile_local:
            # |IP_item| changed: every pair sharing the item shifts.
            self._dirty.update(self.builder.users_of(item))
        if qualified != qualifies:
            self._note_candidacy_change(user, item, added=qualifies)

    def _absorb_user(self, items, ratings) -> int:
        user = self.builder.add_user(items, ratings)
        self._grow_rows(self.builder.n_users)
        self._dirty.add(user)
        if not self._profile_local:
            for item in self.builder.profile(user):
                self._dirty.update(self.builder.users_of(item))
        for item, rating in self.builder.profile(user).items():
            if self._qualifies(rating):
                self._note_candidacy_change(user, item, added=True)
        return user

    def _absorb_removal(self, user: int) -> None:
        profile_items = list(self.builder.profile(user).items())
        touched_items = (
            None
            if self._profile_local
            else [item for item, _ in profile_items]
        )
        self._cache_evict(user)  # before the profile vanishes
        self.builder.clear_user(user)
        self._dirty.add(user)
        if touched_items is not None:
            for item in touched_items:
                self._dirty.update(self.builder.users_of(item))
        for item, rating in profile_items:
            if self._qualifies(rating):
                self._note_candidacy_change(user, item, added=False)

    # ------------------------------------------------------------------
    # Deprecated mutation wrappers (events are the ingestion path)
    # ------------------------------------------------------------------
    def add_ratings(self, users, items, ratings=None) -> None:
        """Absorb a batch of ``(user, item, rating)`` events.

        .. deprecated::
            Use ``index.apply(ratings_batch(users, items, ratings))``;
            this shim constructs that batch and delegates.  Semantics
            are unchanged: the whole batch validates before anything
            mutates, a rating of ``0.0`` deletes the edge, and one
            refresh covers the batch under ``auto_refresh``.
        """
        warnings.warn(
            "DynamicKnnIndex.add_ratings is deprecated; use "
            "index.apply(ratings_batch(users, items, ratings))",
            DeprecationWarning,
            stacklevel=2,
        )
        self.apply(ratings_batch(users, items, ratings))

    def add_user(self, items=(), ratings=None) -> int:
        """Grow the population by one user; returns the new id.

        .. deprecated::
            Use ``index.apply(AddUser(items, ratings)).new_users[0]``;
            this shim constructs that event and delegates.
        """
        warnings.warn(
            "DynamicKnnIndex.add_user is deprecated; use "
            "index.apply(AddUser(items, ratings))",
            DeprecationWarning,
            stacklevel=2,
        )
        result = self.apply(
            AddUser(
                tuple(int(item) for item in items),
                None
                if ratings is None
                else tuple(float(rating) for rating in ratings),
            )
        )
        return result.new_users[0]

    def remove_user(self, user: int) -> None:
        """Clear *user*'s profile; the id stays allocated (empty row).

        .. deprecated::
            Use ``index.apply(RemoveUser(user))``; this shim constructs
            that event and delegates.
        """
        warnings.warn(
            "DynamicKnnIndex.remove_user is deprecated; use "
            "index.apply(RemoveUser(user))",
            DeprecationWarning,
            stacklevel=2,
        )
        self.apply(RemoveUser(int(user)))

    # ------------------------------------------------------------------
    # Durability: write-ahead log + checkpoint/restore
    # ------------------------------------------------------------------
    def attach_wal(self, wal) -> None:
        """Journal every subsequently applied event into *wal*.

        The log must either be at the index's sequence number (the
        recovered log :meth:`restore` reattaches) or empty — an empty
        log is fast-forwarded so journaling can begin mid-history, with
        a :meth:`checkpoint` covering everything before it (take one
        after attaching, or recovery has no base to replay onto).  A log
        from a different history would make replay diverge from the
        state, so it raises
        :class:`~repro.persistence.PersistenceError`.
        """
        if wal.last_seq != self._seq:
            if wal.last_seq == 0:
                wal.advance_to(self._seq)
            else:
                from ..persistence import PersistenceError

                raise PersistenceError(
                    f"WAL {wal.path} is at sequence {wal.last_seq} but the "
                    f"index is at {self._seq}; recover with "
                    f"DynamicKnnIndex.restore() instead of attaching "
                    f"mid-history"
                )
        self._wal = wal

    def detach_wal(self):
        """Stop journaling; returns the detached log (left on disk)."""
        wal, self._wal = self._wal, None
        return wal

    def checkpoint(self, directory: str | Path) -> Path:
        """Serialize the full maintained state into *directory*.

        Writes ``checkpoint-<seq>.npz`` (atomic rename) holding the
        dataset snapshot, graph rows, dirty set, candidate cache and
        counters — callable mid-stream with events pending.  Recovery is
        :meth:`restore`: latest checkpoint + WAL-tail replay.
        """
        from ..persistence import save_checkpoint

        return save_checkpoint(self, directory)

    @classmethod
    def restore(
        cls,
        directory: str | Path,
        metric: str | SimilarityMetric | None = None,
        refresh: bool = True,
        fsync_every: int | None = 64,
    ) -> "DynamicKnnIndex":
        """Recover an index from *directory* (checkpoint + WAL tail).

        Loads the latest checkpoint, replays logged events beyond it
        with refinement suppressed, then runs one refresh — after which
        the graph is bit-identical to the uninterrupted run's, at a cost
        proportional to the log tail rather than the dataset.  ``metric``
        defaults to the checkpointed metric name; pass an instance for
        unregistered custom metrics.  The recovered WAL (when present)
        is reattached so journaling continues seamlessly; provenance is
        stashed as ``index.restore_info``.
        """
        from ..persistence import restore_index

        return restore_index(
            cls,
            directory,
            metric=metric,
            refresh=refresh,
            fsync_every=fsync_every,
        )

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def refresh(self, dirty_subset=None) -> RefreshStats:
        """Run the localized KIFF refinement over the dirty set.

        Rebuilds the rows of the affected set (dirty users plus rows
        referencing them, found via the reverse-neighbor index) from
        their cached candidate sets and mirror-merges the freshly
        evaluated pairs into every other row, restoring the
        converged-graph invariant.  Returns the pass's cost accounting.

        With *dirty_subset* (an iterable of user ids) only the dirty
        users in the subset are processed; the rest stay dirty —
        **deferred** — and are picked up by a later refresh.  The graph
        is then inexact until a refresh covers every deferred user, but
        convergence is guaranteed: rows may only be stale in entries
        citing a still-dirty user, so draining the dirty set restores
        the bit-exact converged graph (the contract
        :class:`repro.scheduling.RefreshScheduler` builds on).

        Completion publishes a new read snapshot (:meth:`pin`);
        concurrent readers keep answering on the previous one and never
        observe the in-place row mutations this pass performs.
        """
        self._ensure_open()
        start = time.perf_counter()
        maintenance = self.maintenance
        rows_before = maintenance.rows_materialized
        index_before = maintenance.index_users_recomputed
        hits_before = maintenance.candidate_cache_hits
        misses_before = maintenance.candidate_cache_misses
        n_events = self._pending_events
        if dirty_subset is None:
            selected = set(self._dirty)
            deferred: set[int] = set()
        else:
            selected = self._dirty & {int(u) for u in dirty_subset}
            deferred = self._dirty - selected
        n_dirty = len(selected)
        if n_dirty == 0:
            # All pending events were no-ops (or everything was
            # deferred); log the pass anyway so refresh_log stays one
            # entry per refresh performed.
            stats = RefreshStats(
                n_events,
                0,
                0,
                0,
                0,
                time.perf_counter() - start,
                deferred_users=len(deferred),
            )
            self._pending_events = 0
            self._publish_snapshot(unchanged=True)
            self.refresh_log.append(stats)
            return stats
        engine = self.engine
        with engine.timer.phase("preprocessing"):
            # Incremental end to end: the snapshot patches only dirty
            # rows, and the ProfileIndex recomputes only dirty users.
            # The rebind covers the FULL dirty set — deferred users
            # included — because this pass's pair evaluations read
            # deferred users' profiles too, so their norms/weights must
            # be current even though their rows wait for a later pass.
            engine.rebind(self.builder.snapshot(), dirty_users=self._dirty)
        with engine.timer.phase("candidate_selection"):
            neighbors, sims = self._rows()
            dirty = np.fromiter(selected, count=n_dirty, dtype=np.int64)
            affected = np.union1d(dirty, self._reverse.referrers_of(dirty))
            # Retry safety: once their rows are cleared, affected users
            # must count as dirty until the merge lands — if evaluation
            # fails mid-pass (metric error, interrupt), the next refresh
            # rebuilds them instead of leaving their rows silently empty.
            truly_dirty = frozenset(selected)
            self._dirty.update(affected.tolist())
            old_affected = neighbors[affected].copy()
            neighbors[affected] = MISSING
            sims[affected] = -np.inf
            # The reverse index mirrors the arrays at every exit point,
            # so a mid-pass failure leaves it consistent for the retry.
            for pos, row in enumerate(affected.tolist()):
                self._reverse.apply_row(row, old_affected[pos], ())
            us, vs = self._candidate_pairs(affected, truly_dirty)
        before = engine.counter.evaluations
        pair_sims = engine.batch(us, vs)
        evaluations = engine.counter.evaluations - before
        with engine.timer.phase("candidate_selection"):
            if self.config.pivot:
                # One evaluation serves both directions (Section II-D).
                cand_users = np.concatenate([us, vs])
                cand_ids = np.concatenate([vs, us])
                cand_sims = np.concatenate([pair_sims, pair_sims])
            else:
                cand_users, cand_ids, cand_sims = us, vs, pair_sims
            touched = np.union1d(affected, np.unique(cand_users))
            pre_merge = neighbors[touched].copy()
            active, new_neighbors, new_sims, changes = merge_topk_rows(
                neighbors, sims, cand_users, cand_ids, cand_sims
            )
            # Write only the re-ranked rows back, through the views, so
            # backing-array slack capacity (geometric growth) survives
            # the refresh and no O(n_users * k) copy is paid.
            neighbors[active] = new_neighbors
            sims[active] = new_sims
            # Only rows whose neighbour ids actually moved need reverse
            # index diffs — most merge targets keep their row intact.
            post_merge = neighbors[touched]
            moved = np.flatnonzero((post_merge != pre_merge).any(axis=1))
            for pos in moved.tolist():
                self._reverse.apply_row(
                    int(touched[pos]), pre_merge[pos], post_merge[pos]
                )
        self._dirty.clear()
        self._dirty.update(deferred)
        self._pending_events = 0
        stats = RefreshStats(
            events=n_events,
            dirty_users=n_dirty,
            affected_users=int(affected.size),
            evaluations=int(evaluations),
            changes=int(changes),
            wall_time=time.perf_counter() - start,
            rows_materialized=maintenance.rows_materialized - rows_before,
            index_users_recomputed=maintenance.index_users_recomputed
            - index_before,
            cache_hits=maintenance.candidate_cache_hits - hits_before,
            cache_misses=maintenance.candidate_cache_misses - misses_before,
            deferred_users=len(deferred),
        )
        self._publish_snapshot()
        self.refresh_log.append(stats)
        return stats

    def rebuild(self) -> ConstructionResult:
        """Cold full KIFF rebuild — the baseline ``refresh()`` undercuts.

        Also the recovery path: whatever the graph state, a rebuild
        restores the invariant from the ratings alone (including the
        reverse-neighbor index, re-derived from the fresh rows).  Like
        :meth:`refresh`, completion publishes a new read snapshot.
        """
        self._ensure_open()
        self.engine.rebind(self.builder.snapshot())
        result = kiff(self.engine, converged_config(self.config))
        self._neighbors = result.graph.neighbors.copy()
        self._sims = result.graph.sims.copy()
        self._n_rows = result.graph.n_users
        self._reverse.rebuild(self._neighbors[: self._n_rows])
        self._dirty.clear()
        self._pending_events = 0
        self._publish_snapshot()
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rows(self) -> tuple[np.ndarray, np.ndarray]:
        """Views of the live graph rows (backing arrays may hold slack)."""
        return self._neighbors[: self._n_rows], self._sims[: self._n_rows]

    def _grow_rows(self, n_users: int) -> None:
        """Extend the live row count, doubling capacity when exhausted.

        Geometric growth keeps a burst of user joins between refreshes at
        amortized O(k) per join instead of copying the whole graph state
        on every event.
        """
        if n_users <= self._n_rows:
            return
        capacity = self._neighbors.shape[0]
        if n_users > capacity:
            k = self.config.k
            new_capacity = max(n_users, 2 * capacity)
            neighbors = np.full((new_capacity, k), MISSING, dtype=ID_DTYPE)
            sims = np.full((new_capacity, k), -np.inf, dtype=SCORE_DTYPE)
            neighbors[: self._n_rows] = self._neighbors[: self._n_rows]
            sims[: self._n_rows] = self._sims[: self._n_rows]
            self._neighbors, self._sims = neighbors, sims
        else:
            # Recycled capacity: reset the newly exposed rows.
            self._neighbors[self._n_rows : n_users] = MISSING
            self._sims[self._n_rows : n_users] = -np.inf
        self._n_rows = n_users

    # ------------------------------------------------------------------
    # Candidate-set cache (the streaming RCS, delta-maintained)
    # ------------------------------------------------------------------
    def _qualifies(self, rating: float) -> bool:
        """Does *rating* let an item contribute candidacies?"""
        if rating == 0.0:
            return False
        min_rating = self.config.min_rating
        return min_rating is None or rating >= min_rating

    def _note_candidacy_change(
        self, user: int, item: int, added: bool
    ) -> None:
        """Propagate a qualifying-membership flip of (user, item).

        Called after the builder mutated: *user* started (or stopped)
        contributing candidacies through *item*.  Every cached rater of
        the item gains/loses one shared item with *user*, and *user*'s
        own cached multiset (if any) gains/loses the item's qualifying
        raters — the per-event delta that keeps cached candidate sets
        exact without re-derivation.
        """
        store = (self._candidate_counts, self._cached_raters)
        propagate_candidacy_change(
            (store,), store, user, item, added, self.builder, self._qualifies
        )

    def _cache_insert(self, user: int, counts: dict[int, int]) -> None:
        cache_store_insert(
            self._candidate_counts,
            self._cached_raters,
            user,
            counts,
            self.builder,
            self._qualifies,
            self.candidate_cache_size,
        )

    def _cache_evict(self, user: int) -> None:
        cache_store_evict(
            self._candidate_counts, self._cached_raters, user, self.builder
        )

    def _candidate_sets(
        self, users: np.ndarray
    ) -> dict[int, dict[int, int]]:
        """Candidate multisets for *users*: cached, or bulk re-derived.

        Misses are recomputed in one vectorised :func:`delta_rcs` call on
        the current snapshot (cost proportional to the missing users'
        item profiles) and cached for the next refresh.
        """
        result, hits, misses = derive_candidate_sets(
            self._candidate_counts,
            users,
            self._cache_insert,
            self.builder,
            self.config.min_rating,
        )
        self.maintenance.candidate_cache_hits += hits
        self.maintenance.candidate_cache_misses += misses
        return result

    def _candidates_of(self, user: int) -> set:
        """Live co-rating candidates of *user* (``min_rating`` honoured).

        The streaming analogue of one Ranked Candidate Set: the users
        sharing a qualifying item with *user*.  Served from the
        delta-maintained cache (rank order is irrelevant here because
        refinement always exhausts the set).
        """
        row = np.asarray([user], dtype=np.int64)
        return set(self._candidate_sets(row)[user])

    def _candidate_pairs(
        self, affected: np.ndarray, dirty: frozenset
    ) -> tuple[np.ndarray, np.ndarray]:
        """Directed (row, candidate) evaluation needs for one refresh.

        Every affected row needs its full candidate set; additionally a
        dirty user must be offered to the rows of her clean candidates
        (the mirror direction).  With the pivot strategy the pairs are
        collapsed to unordered form and each is evaluated once; without
        it, each needed direction is evaluated separately — the same
        accounting split as the batch algorithm.
        """
        affected_set = set(affected.tolist())
        candidate_sets = self._candidate_sets(affected)
        rows: list[int] = []
        cands: list[int] = []
        for user in affected.tolist():
            candidates = candidate_sets[user]
            needs_mirror = user in dirty
            for other in candidates:
                rows.append(user)
                cands.append(other)
                if needs_mirror and other not in affected_set:
                    rows.append(other)
                    cands.append(user)
        us = np.asarray(rows, dtype=np.int64)
        vs = np.asarray(cands, dtype=np.int64)
        return dedupe_pairs(
            us, vs, self.builder.n_users, ordered=not self.config.pivot
        )


def _bump(counts: dict[int, int], key: int, delta: int) -> None:
    """Adjust a candidate multiset entry, dropping it at zero."""
    value = counts.get(key, 0) + delta
    if value <= 0:
        counts.pop(key, None)
    else:
        counts[key] = value


# ----------------------------------------------------------------------
# Candidate-cache store primitives
#
# One cache *store* is a pair of dicts: ``counts_map`` (user -> candidate
# multiset) and ``raters_map`` (item -> cached users rating it at a
# qualifying level).  The flat index holds a single store; the sharded
# index one per shard — both route through these functions, so the
# delta-maintenance semantics (qualifying ``min_rating``, eviction
# order, rater bookkeeping) have exactly one implementation.
# ----------------------------------------------------------------------
def cache_store_insert(
    counts_map: dict,
    raters_map: dict,
    user: int,
    counts: dict[int, int],
    builder,
    qualifies,
    limit: int | None,
) -> None:
    """Cache *user*'s multiset, evicting oldest-first past *limit*."""
    if limit is not None and limit <= 0:
        return  # cache disabled
    # Replacing: drop stale rater links first.
    cache_store_evict(counts_map, raters_map, user, builder)
    while limit is not None and len(counts_map) >= limit:
        cache_store_evict(
            counts_map, raters_map, next(iter(counts_map)), builder
        )
    counts_map[user] = counts
    for item, rating in builder.profile(user).items():
        if qualifies(rating):
            raters_map.setdefault(item, set()).add(user)


def cache_store_evict(
    counts_map: dict, raters_map: dict, user: int, builder
) -> None:
    """Drop *user*'s cached multiset and her rater registrations."""
    if counts_map.pop(user, None) is None:
        return
    for item, rating in builder.profile(user).items():
        raters = raters_map.get(item)
        if raters is not None:
            raters.discard(user)
            if not raters:
                del raters_map[item]


def derive_candidate_sets(
    counts_map: dict,
    users: np.ndarray,
    insert,
    builder,
    min_rating: float | None,
) -> tuple[dict[int, dict[int, int]], int, int]:
    """Candidate multisets for *users* from one store: cached or bulk
    re-derived via :func:`~repro.core.rcs.delta_rcs`.

    Returns ``(sets, hits, misses)`` — counter deltas are the caller's
    to record, which is what lets shard workers run this concurrently
    without racing on the shared ``MaintenanceCounter``.
    """
    result: dict[int, dict[int, int]] = {}
    missing: list[int] = []
    for user in users.tolist():
        cached = counts_map.get(user)
        if cached is not None:
            result[user] = cached
        else:
            missing.append(user)
    hits = len(result)
    if missing:
        rcs_delta = delta_rcs(
            builder.snapshot(),
            missing,
            pivot=False,
            min_rating=min_rating,
        )
        for user in missing:
            counts = dict(
                zip(
                    rcs_delta.candidates_of(user).tolist(),
                    (int(c) for c in rcs_delta.counts_of(user).tolist()),
                )
            )
            result[user] = counts
            insert(user, counts)
    return result, hits, len(missing)


def propagate_candidacy_change(
    stores,
    owner_store,
    user: int,
    item: int,
    added: bool,
    builder,
    qualifies,
) -> None:
    """Apply one qualifying-membership flip of ``(user, item)`` to caches.

    *stores* iterates every ``(counts_map, raters_map)`` pair that may
    hold cached raters of *item* (the flat index has one store, the
    sharded index one per shard); *owner_store* is the pair owning
    *user*'s own cached state.
    """
    delta = 1 if added else -1
    for counts_map, raters_map in stores:
        raters = raters_map.get(item)
        if raters:
            for other in raters:
                if other != user:
                    _bump(counts_map[other], user, delta)
    owner_counts, owner_raters = owner_store
    counts = owner_counts.get(user)
    if counts is not None:
        for other in builder.users_of(item):
            if other != user and qualifies(builder.rating(other, item)):
                _bump(counts, other, delta)
        if added:
            owner_raters.setdefault(item, set()).add(user)
        else:
            raters = owner_raters.get(item)
            if raters is not None:
                raters.discard(user)
                if not raters:
                    del owner_raters[item]
