"""Shard-parallel dirty-set refinement: KIFF maintenance across workers.

The KIFF pipeline is embarrassingly partitionable: candidate selection
and top-k refinement are *per-user* computations over shared read-only
profiles.  :class:`ShardedKnnIndex` exploits exactly that — users are
partitioned across ``n_shards`` workers by a :class:`ShardMap` (the
hash rule ``user % n_shards`` plus an override table populated by live
:meth:`ShardedKnnIndex.rebalance` moves), and each shard **owns** its
users' slice of the maintained state:

* the dirty set (events dirty a user; her owner shard records it),
* the candidate-multiset cache + cached-rater index (the streaming RCS),
* a :class:`~repro.graph.updates.ReverseNeighborIndex` restricted to
  the *rows* the shard owns (keyed by cited user, which may belong to
  any shard — updates stay row-local, so they never cross shards).

A refresh then runs shard-parallel against the shared read-only
snapshot/:class:`~repro.similarity.base.ProfileIndex` (rebound once,
serially, before the fan-out):

1. **Affected discovery** — each shard unions its dirty slice with its
   own rows citing *any* dirty user (a lookup in its reverse index).
2. **Planning** — each shard clears its affected rows, derives their
   candidate sets (shard-local cache; misses re-derived in bulk) and
   emits the evaluation pairs for rows it owns.  A dirty user must also
   be *offered* to the rows of her clean candidates; when such a row
   belongs to another shard, the pair travels through a per-shard
   **outbox** keyed by the WAL sequence number the refresh covers —
   the cross-shard effect channel (mirroring how a top-k merge on shard
   A can change rows citing users owned by shard B).
3. **Evaluate + merge** — each shard dedupes its pairs, scores them
   against the shared profile index, and merges into *its own rows
   only* (:func:`~repro.graph.updates.merge_topk_rows`, no full-array
   copy) — writes are disjoint by construction, so workers touch the
   one shared graph concurrently without locks.

Because similarity is a pure per-pair function of the shared profile
index, every row receives the same candidate-edge multiset as the
sequential :class:`~repro.streaming.index.DynamicKnnIndex` pass, and
the merged graph is **bit-identical** at any shard count — the sharded
parity suite (``tests/streaming/test_sharding.py``) pins this across
the randomized stream corpus at 1/2/4 shards, both metrics, thread and
serial executors.

Three executors run the same per-shard stage kernels:

* ``executor="threads"`` (default) — a ``concurrent.futures`` thread
  pool; speedup tracks how much of the work runs in NumPy/SciPy kernels
  (the Python-level plan/merge stays GIL-serialized).
* ``executor="serial"`` — the identical closures in-process, in shard
  order; fully deterministic scheduling for tests and debuggers.
* ``executor="processes"`` — a persistent ``multiprocessing`` worker
  pool (:mod:`repro.streaming.procpool`): the read-only snapshot and
  :class:`~repro.similarity.base.ProfileIndex` arrays are published
  into ``multiprocessing.shared_memory`` blocks and rebuilt as
  zero-copy views in every worker, per-event deltas ship as compact
  messages after each ``apply()``, each refresh stage is one
  request/reply round, and the workers' row updates are merged into
  the parent's authoritative rows after the final barrier.  This is
  the true multi-core mode: the Python-level refresh work escapes the
  GIL entirely.  Workers are respawned (and the delta tail replayed)
  on death, and the shared blocks are unlinked on ``close()``/GC.

``benchmarks/bench_sharded_refresh.py`` measures all of them on
multi-event batches and enforces the process executor's speedup bar.

Durability is partitioned the same way (:mod:`repro.persistence.partition`):
events journal into per-shard ``wal-<shard>.jsonl`` segments sharing one
global sequence, checkpoints write per-shard state files, and
:meth:`ShardedKnnIndex.restore` recovers — bit-identically — from either
the sharded or the flat layout.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..graph.knn_graph import MISSING
from ..graph.updates import (
    ReverseNeighborIndex,
    dedupe_pairs,
    merge_topk_rows,
)
from ..layout import ID_DTYPE, SCORE_DTYPE
from ..similarity.base import ProfileIndex, SimilarityMetric
from .events import AddUser, MigrateBegin, MigrateCommit
from .index import (
    DynamicKnnIndex,
    RefreshStats,
    cache_store_evict,
    cache_store_insert,
    derive_candidate_sets,
    propagate_candidacy_change,
)

__all__ = [
    "RebalanceStats",
    "ShardMap",
    "ShardOutbox",
    "ShardPlan",
    "ShardedKnnIndex",
    "shard_of",
]


def shard_of(user: int, n_shards: int) -> int:
    """The *base* shard of *user* — hash partitioning by the id.

    ``user % n_shards`` is the default ownership rule: derivable
    everywhere (event routing, outbox targeting, checkpoint slicing,
    re-sharding on restore) without a directory service.  A live
    :meth:`ShardedKnnIndex.rebalance` can override individual users
    away from their base shard; the :class:`ShardMap` is then the
    authoritative rule (base modulus plus an override table) and every
    routing site consults it instead of calling this function directly.
    """
    return int(user) % int(n_shards)


class ShardMap:
    """User → shard ownership: hash partitioning plus explicit overrides.

    The default owner of user *u* is ``u % n_shards``; ``overrides``
    maps individual users to a different shard (the result of live
    :meth:`ShardedKnnIndex.rebalance` moves).  Overrides equal to the
    base rule are normalized away, so a map without moves compares and
    routes exactly like pure hash partitioning.

    Parameters
    ----------
    n_shards:
        Shard count; must be >= 1.
    overrides:
        Optional ``{user: shard}`` mapping.  Raises :class:`ValueError`
        when a target shard is outside ``[0, n_shards)``.
    """

    __slots__ = ("n_shards", "_overrides", "_ov_users", "_ov_shards")

    def __init__(self, n_shards: int, overrides: dict | None = None):
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        cleaned: dict[int, int] = {}
        for user, shard in (overrides or {}).items():
            user, shard = int(user), int(shard)
            if not 0 <= shard < n_shards:
                raise ValueError(
                    f"override shard {shard} for user {user} is outside "
                    f"[0, {n_shards})"
                )
            if user % n_shards != shard:
                cleaned[user] = shard
        self._overrides = cleaned
        users = np.fromiter(
            sorted(cleaned), dtype=np.int64, count=len(cleaned)
        )
        self._ov_users = users
        self._ov_shards = np.fromiter(
            (cleaned[user] for user in users.tolist()),
            dtype=np.int64,
            count=users.size,
        )

    @property
    def overrides(self) -> dict[int, int]:
        """The non-default assignments, as a ``{user: shard}`` copy."""
        return dict(self._overrides)

    def owner(self, user: int) -> int:
        """The shard owning *user* under this map."""
        user = int(user)
        shard = self._overrides.get(user)
        return user % self.n_shards if shard is None else shard

    def owners(self, users) -> np.ndarray:
        """Vectorized :meth:`owner` over an array of user ids."""
        users = np.asarray(users, dtype=np.int64)
        owners = users % self.n_shards
        if self._ov_users.size and users.size:
            pos = np.searchsorted(self._ov_users, users)
            pos = np.minimum(pos, self._ov_users.size - 1)
            hit = self._ov_users[pos] == users
            owners[hit] = self._ov_shards[pos[hit]]
        return owners

    def owned_rows(self, shard_id: int, n_rows: int) -> np.ndarray:
        """Sorted row ids in ``[0, n_rows)`` owned by *shard_id*."""
        rows = np.arange(shard_id, n_rows, self.n_shards)
        if self._ov_users.size:
            in_range = self._ov_users < n_rows
            moved = self._ov_users[in_range]
            if moved.size:
                targets = self._ov_shards[in_range]
                rows = np.setdiff1d(rows, moved, assume_unique=True)
                rows = np.union1d(rows, moved[targets == shard_id])
        return rows

    def with_moves(self, moves) -> "ShardMap":
        """A new map with ``(user, shard)`` *moves* layered on top."""
        overrides = dict(self._overrides)
        for user, shard in moves:
            overrides[int(user)] = int(shard)
        return ShardMap(self.n_shards, overrides)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (
            self.n_shards == other.n_shards
            and self._overrides == other._overrides
        )

    def __hash__(self) -> int:
        return hash((self.n_shards, tuple(sorted(self._overrides.items()))))

    def __reduce__(self):
        # __slots__ without __dict__ needs an explicit pickle recipe;
        # workers receive the map inside their spawn payload.
        return (ShardMap, (self.n_shards, self._overrides))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardMap(n_shards={self.n_shards}, "
            f"overrides={len(self._overrides)})"
        )


@dataclass(frozen=True)
class ShardPlan:
    """A live re-balancing request for :meth:`ShardedKnnIndex.rebalance`.

    ``moves`` is a tuple of ``(user, target_shard)`` pairs pinning
    individual users to explicit shards; ``n_shards`` (when not None)
    additionally transitions the index to a new shard count.  A count
    change resets previous overrides — ownership re-derives from the
    new modulus — while ``moves`` in the same plan survive as overrides
    against it.
    """

    moves: tuple = ()
    n_shards: int | None = None


@dataclass(frozen=True)
class RebalanceStats:
    """Outcome of one :meth:`ShardedKnnIndex.rebalance` call."""

    #: Users whose owner shard changed (0 for a no-op plan).
    users_moved: int
    #: Shard count before / after the migration window.
    shards_before: int
    shards_after: int
    #: WAL sequence of the ``MigrateBegin`` fence (equals ``seq_commit``
    #: for a journal-less index or a no-op plan).
    seq_begin: int
    #: WAL sequence of the ``MigrateCommit`` fence — the covering
    #: sequence at which ownership flipped atomically.
    seq_commit: int
    #: Wall-clock seconds the migration window was open.
    wall_time: float


@dataclass(frozen=True)
class ShardOutbox:
    """Cross-shard evaluation pairs emitted by one shard's planning step.

    ``rows[j]`` (a row owned by *target*) must be offered candidate
    ``candidates[j]`` (a dirty user owned by *source*).  ``seq`` keys the
    exchange to the WAL sequence number the refresh covers, so the
    outbox protocol lines up with the partition log: replaying every
    shard's events through ``seq`` and refreshing reproduces exactly
    these exchanges.
    """

    source: int
    target: int
    seq: int
    rows: np.ndarray
    candidates: np.ndarray


class _Shard:
    """One worker's owned slice of the maintained streaming state."""

    __slots__ = (
        "shard_id",
        "dirty",
        "reverse",
        "candidate_counts",
        "cached_raters",
    )

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        #: Owned users whose profile changed since the last refresh.
        self.dirty: set[int] = set()
        #: cited user -> owned rows citing her (rows only from this shard).
        self.reverse = ReverseNeighborIndex()
        #: Owned user -> {candidate: shared-qualifying-item count}.
        self.candidate_counts: dict[int, dict[int, int]] = {}
        #: item -> owned cached users rating it at a qualifying level.
        self.cached_raters: dict[int, set[int]] = {}

    # The cache ops delegate to the shared store primitives in
    # ``repro.streaming.index`` (one implementation for the flat and the
    # sharded cache), scoped to this shard's dicts; they are only ever
    # called for users this shard owns, either from the (serial)
    # ingestion path or from this shard's own worker.
    def cache_insert(self, user: int, counts: dict, index) -> None:
        """Insert *user*'s candidate multiset into this shard's cache."""
        cache_store_insert(
            self.candidate_counts,
            self.cached_raters,
            user,
            counts,
            index.builder,
            index._qualifies,
            index._shard_cache_limit,
        )

    def cache_evict(self, user: int, index) -> None:
        """Drop *user* from this shard's cache (and its rater index)."""
        cache_store_evict(
            self.candidate_counts, self.cached_raters, user, index.builder
        )

    def candidate_sets(
        self, users: np.ndarray, index
    ) -> tuple[dict[int, dict[int, int]], int, int]:
        """Candidate multisets for owned *users*; ``(sets, hits, misses)``.

        Thread-safe by ownership: only this shard's worker touches its
        cache dicts, and the miss path only *reads* the shared snapshot
        (one bulk :func:`~repro.core.rcs.delta_rcs` call).  Counter
        deltas are returned, not written — the caller folds them into
        the shared ``MaintenanceCounter`` after the fan-in.
        """
        return derive_candidate_sets(
            self.candidate_counts,
            users,
            lambda user, counts: self.cache_insert(user, counts, index),
            index.builder,
            index.config.min_rating,
        )


class _ShardedDirtySet:
    """The global dirty set, physically stored as per-shard owned slices.

    Exposes the mutable-set surface the base ingestion path uses
    (``add`` / ``update`` / ``clear`` / iteration / membership), so
    every ``DynamicKnnIndex._absorb_*`` method lands events in the
    owner shard's slice without knowing about sharding.  Ownership is
    read live from the index's :class:`ShardMap`, so a rebalance that
    swaps the map re-routes subsequent adds without rebuilding this
    router.
    """

    __slots__ = ("_shards", "_map_of")

    def __init__(self, shards: list[_Shard], map_of):
        self._shards = shards
        #: Zero-arg callable yielding the live :class:`ShardMap`.
        self._map_of = map_of

    def add(self, user: int) -> None:
        """Mark *user* dirty in her owner shard's slice."""
        user = int(user)
        self._shards[self._map_of().owner(user)].dirty.add(user)

    def update(self, users) -> None:
        """Mark every user in *users* dirty (routed per owner)."""
        for user in users:
            self.add(user)

    def discard(self, user: int) -> None:
        """Clear *user*'s dirty mark, if any, from her owner's slice."""
        user = int(user)
        self._shards[self._map_of().owner(user)].dirty.discard(user)

    def clear(self) -> None:
        """Empty every shard's dirty slice."""
        for shard in self._shards:
            shard.dirty.clear()

    def __len__(self) -> int:
        return sum(len(shard.dirty) for shard in self._shards)

    def __iter__(self):
        for shard in self._shards:
            yield from shard.dirty

    def __contains__(self, user) -> bool:
        user = int(user)
        return user in self._shards[self._map_of().owner(user)].dirty


class _ShardedReverseIndex:
    """Routes reverse-neighbor maintenance to the row-owner shard.

    Shard *s*'s index stores only rows *s* owns, so ``apply_row`` — the
    hot write inside every top-k merge — is always a shard-local
    mutation, and ``referrers_of(dirty)`` per shard yields exactly the
    shard's slice of the affected set.  The union over shards equals the
    flat index (the routing is a partition of the rows).
    """

    __slots__ = ("_shards", "_map_of")

    def __init__(self, shards: list[_Shard], map_of):
        self._shards = shards
        #: Zero-arg callable yielding the live :class:`ShardMap`.
        self._map_of = map_of

    def rebuild(self, neighbors: np.ndarray) -> None:
        """Re-derive every shard's row-restricted index from *neighbors*."""
        for shard in self._shards:
            shard.reverse = ReverseNeighborIndex()
        rows, slots = np.nonzero(neighbors != MISSING)
        cited = neighbors[rows, slots]
        owners = self._map_of().owners(rows)
        for row, owner, neighbor in zip(
            rows.tolist(), owners.tolist(), cited.tolist()
        ):
            self._shards[owner].reverse.add_referrer(neighbor, row)

    def apply_row(self, row: int, old_ids, new_ids) -> None:
        """Record a merged row's citation diff in the row's owner shard."""
        self._shards[self._map_of().owner(row)].reverse.apply_row(
            row, old_ids, new_ids
        )

    def referrers_of(self, users) -> np.ndarray:
        """All rows (any shard) citing any of *users*, sorted unique."""
        parts = [shard.reverse.referrers_of(users) for shard in self._shards]
        return np.unique(np.concatenate(parts))

    def referrer_count(self) -> int:
        """Total distinct cited users across every shard's index."""
        return sum(shard.reverse.referrer_count() for shard in self._shards)

    def referrer_counts(self, users) -> np.ndarray:
        """Global in-degrees: each shard counts its owned citing rows."""
        users = np.asarray(users, dtype=np.int64)
        total = np.zeros(users.size, dtype=np.int64)
        for shard in self._shards:
            total += shard.reverse.referrer_counts(users)
        return total


@dataclass
class _ShardPlan:
    """One shard's stage-B output: its pairs, outboxes and cache traffic."""

    affected: np.ndarray
    rows: np.ndarray
    candidates: np.ndarray
    outboxes: list[ShardOutbox]
    cache_hits: int
    cache_misses: int


# ----------------------------------------------------------------------
# Pure per-shard stage kernels
#
# The thread/serial executors and the process workers must produce
# bit-identical results, so the stage bodies live here as plain
# functions of explicit inputs: the in-process path binds them to the
# live index, the worker (repro.streaming.procpool) to state rebuilt
# from shared memory.  One implementation, two transports.
# ----------------------------------------------------------------------
def score_pairs_chunked(
    metric,
    index,
    us: np.ndarray,
    vs: np.ndarray,
    batch_size: int,
    kernel=None,
) -> np.ndarray:
    """Chunked metric evaluation with engine-identical chunk boundaries.

    Bypasses ``SimilarityEngine.batch`` so concurrent workers never race
    on the shared counter/timer; the caller adds the evaluation totals
    after the fan-in.  Chunk boundaries cannot change values — every
    metric scores pairs independently — so results stay bit-identical to
    the sequential engine path.  ``kernel`` (a backend name or
    :class:`~repro.similarity.kernels.KernelBackend`) is bound to
    *index* before scoring; None keeps the index's own selection.

    The output is written into one preallocated array — the historical
    list-append + ``np.concatenate`` paid an extra full copy of every
    chunk on exactly the evaluate stage this function dominates.
    """
    if kernel is not None:
        index._kernel_backend = kernel
    if us.size == 0:
        return np.empty(0, dtype=SCORE_DTYPE)
    if us.size <= batch_size:
        return metric.score_batch(index, us, vs)
    out = np.empty(us.size, dtype=SCORE_DTYPE)
    for start in range(0, us.size, batch_size):
        stop = min(start + batch_size, us.size)
        out[start:stop] = metric.score_batch(
            index, us[start:stop], vs[start:stop]
        )
    return out


def plan_shard_pairs(
    shard_id: int,
    shard_map: ShardMap,
    affected: np.ndarray,
    affected_mask: np.ndarray,
    truly_dirty: frozenset,
    cand_sets: dict[int, dict[int, int]],
    seq: int,
) -> tuple[np.ndarray, np.ndarray, list[ShardOutbox]]:
    """Stage B's pair derivation: local pairs plus cross-shard outboxes.

    Every affected row owned by *shard_id* (per *shard_map*) is paired
    with its full candidate set; a truly dirty user is additionally
    *offered* to the rows of her clean candidates (the mirror
    direction), routed through an outbox when the row belongs to
    another shard.  Returns ``(rows, candidates, outboxes)``.
    """
    n_shards = shard_map.n_shards
    row_parts: list[np.ndarray] = []
    cand_parts: list[np.ndarray] = []
    out_rows: list[list[np.ndarray]] = [[] for _ in range(n_shards)]
    out_cands: list[list[np.ndarray]] = [[] for _ in range(n_shards)]
    for user in affected.tolist():
        counts = cand_sets[user]
        candidates = np.fromiter(counts.keys(), np.int64, len(counts))
        if candidates.size == 0:
            continue
        row_parts.append(np.full(candidates.size, user, dtype=np.int64))
        cand_parts.append(candidates)
        if user in truly_dirty:
            # Mirror: the dirty user must be offered to the rows of
            # her clean candidates (she can *enter* those top-ks).
            mirror = candidates[~affected_mask[candidates]]
            if mirror.size == 0:
                continue
            owners = shard_map.owners(mirror)
            for target in np.unique(owners).tolist():
                rows_t = mirror[owners == target]
                users_t = np.full(rows_t.size, user, dtype=np.int64)
                if target == shard_id:
                    row_parts.append(rows_t)
                    cand_parts.append(users_t)
                else:
                    out_rows[target].append(rows_t)
                    out_cands[target].append(users_t)
    empty = np.empty(0, dtype=np.int64)
    outboxes = [
        ShardOutbox(
            source=shard_id,
            target=target,
            seq=seq,
            rows=np.concatenate(out_rows[target]),
            candidates=np.concatenate(out_cands[target]),
        )
        for target in range(n_shards)
        if out_rows[target]
    ]
    rows = np.concatenate(row_parts) if row_parts else empty
    candidates = np.concatenate(cand_parts) if cand_parts else empty
    return rows, candidates, outboxes


def merge_shard_pairs(
    shard_id: int,
    shard_map: ShardMap,
    pivot: bool,
    plan_rows: np.ndarray,
    plan_candidates: np.ndarray,
    inbox: list[ShardOutbox],
    neighbors: np.ndarray,
    sims: np.ndarray,
    n_users: int,
    score_pairs,
    reverse,
) -> tuple[int, int, np.ndarray, np.ndarray, np.ndarray]:
    """Stage C: dedupe, evaluate, and merge into this shard's own rows.

    Writes the re-ranked rows into *neighbors*/*sims* in place (every
    active row is owned by *shard_id*, so concurrent callers never
    collide), mirrors the row diffs into *reverse*, and returns
    ``(evaluations, changes, active, new_neighbors, new_sims)`` so a
    process worker can ship the row updates back to the parent.
    """
    us = np.concatenate([plan_rows] + [box.rows for box in inbox])
    vs = np.concatenate([plan_candidates] + [box.candidates for box in inbox])
    us, vs = dedupe_pairs(us, vs, n_users, ordered=not pivot)
    pair_sims = score_pairs(us, vs)
    evaluations = int(us.size)
    if pivot:
        # One evaluation serves both directions (Section II-D) — but
        # only this shard's rows are merged here; the partner shard
        # evaluates its own side of a cross-shard pair.
        cand_users = np.concatenate([us, vs])
        cand_ids = np.concatenate([vs, us])
        cand_sims = np.concatenate([pair_sims, pair_sims])
        owned = shard_map.owners(cand_users) == shard_id
        cand_users = cand_users[owned]
        cand_ids = cand_ids[owned]
        cand_sims = cand_sims[owned]
    else:
        cand_users, cand_ids, cand_sims = us, vs, pair_sims
    k = neighbors.shape[1]
    if cand_users.size == 0:
        return (
            evaluations,
            0,
            np.empty(0, dtype=np.int64),
            np.empty((0, k), dtype=ID_DTYPE),
            np.empty((0, k), dtype=SCORE_DTYPE),
        )
    touched = np.unique(cand_users)
    pre_merge = neighbors[touched].copy()
    active, new_neighbors, new_sims, changes = merge_topk_rows(
        neighbors, sims, cand_users, cand_ids, cand_sims
    )
    # Disjoint-row writes through the shared views: every active row
    # is owned by this shard, so workers never collide.
    neighbors[active] = new_neighbors
    sims[active] = new_sims
    post_merge = neighbors[touched]
    moved = np.flatnonzero((post_merge != pre_merge).any(axis=1))
    for pos in moved.tolist():
        reverse.apply_row(int(touched[pos]), pre_merge[pos], post_merge[pos])
    return evaluations, int(changes), active, new_neighbors, new_sims


class ShardedKnnIndex(DynamicKnnIndex):
    """A :class:`DynamicKnnIndex` whose refinement runs shard-parallel.

    Same contract — the maintained graph is bit-identical to the
    sequential index (and therefore to a cold converged rebuild) after
    any event interleaving — with refresh work partitioned across
    ``n_shards`` workers over one shared graph and profile index.

    Parameters (beyond :class:`DynamicKnnIndex`'s)
    ----------------------------------------------
    n_shards:
        Worker count; users are owned by ``user % n_shards``.
    executor:
        ``"threads"`` (default) fans each refresh stage out on a
        ``concurrent.futures.ThreadPoolExecutor``; ``"serial"`` runs the
        identical per-shard closures in-process in shard order — fully
        deterministic scheduling for tests/debugging; ``"processes"``
        fans out to a persistent ``multiprocessing`` worker pool over
        shared-memory snapshots (see the module docstring) — the mode
        whose refresh work actually escapes the GIL.  Results are
        bit-identical in every mode.  With ``"processes"`` the
        candidate caches live in the workers, so checkpoints serialize
        an empty cache section (always safe: caches are exact-or-absent),
        and custom :class:`~repro.similarity.base.ProfileIndex`
        subclasses are rejected (refresh raises ``TypeError``) because
        workers rebuild the base index from the shared buffers.
    start_method:
        Optional ``multiprocessing`` start method for the process
        executor (default: ``"fork"`` on Linux, else ``"spawn"``).
    wal:
        Optional :class:`~repro.persistence.PartitionedWriteAheadLog`;
        each event journals into its owner shard's ``wal-<shard>.jsonl``
        segment under one global sequence.

    ``candidate_cache_size`` bounds the cache *globally*; each shard
    keeps at most ``max(1, size // n_shards)`` entries of its own users.
    Note on cost accounting: with the pivot strategy a pair whose
    endpoints live on different shards may be evaluated once per side
    (evaluations are never shared across workers), so
    ``RefreshStats.evaluations`` can exceed the sequential index's —
    the graphs still match exactly.
    """

    def __init__(
        self,
        dataset,
        config=None,
        metric: str | SimilarityMetric = "cosine",
        auto_refresh: bool = True,
        build: bool = True,
        candidate_cache_size: int | None = 65_536,
        wal=None,
        n_shards: int = 2,
        executor: str = "threads",
        start_method: str | None = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if executor not in ("threads", "serial", "processes"):
            raise ValueError(
                f"executor must be 'threads', 'serial' or 'processes', "
                f"got {executor!r}"
            )
        self.n_shards = int(n_shards)
        self.executor = executor
        self._pool = None
        #: Process-executor state: the persistent worker pool, the owned
        #: shared-memory arena, the not-yet-shipped per-event deltas and
        #: the replayable delta tail since the last completed refresh.
        self._start_method = start_method
        self._procpool = None
        self._arena = None
        self._delta_buffer: list[tuple] = []
        self._delta_tail: list[tuple] = []
        #: The authoritative ownership rule; rebalance() swaps it.
        self._shard_map = ShardMap(self.n_shards)
        self._shards = [_Shard(shard) for shard in range(self.n_shards)]
        #: The cross-shard exchanges of the most recent refresh.
        self.last_outboxes: tuple[ShardOutbox, ...] = ()
        #: RebalanceStats of every completed rebalance() call.
        self.rebalance_log: list[RebalanceStats] = []
        super().__init__(
            dataset,
            config,
            metric=metric,
            auto_refresh=auto_refresh,
            build=False,
            candidate_cache_size=candidate_cache_size,
            wal=None,
        )
        # Swap the flat state containers for the sharded routers; the
        # deferred base build only seeded the dirty set, which is
        # re-seeded below.
        self._dirty = _ShardedDirtySet(self._shards, lambda: self._shard_map)
        self._reverse = _ShardedReverseIndex(
            self._shards, lambda: self._shard_map
        )
        self._dirty.update(range(dataset.n_users))
        if candidate_cache_size is None:
            self._shard_cache_limit = None
        elif candidate_cache_size <= 0:
            self._shard_cache_limit = 0
        else:
            self._shard_cache_limit = max(
                1, candidate_cache_size // self.n_shards
            )
        if build:
            self.rebuild()
            self.initial_evaluations = self.engine.counter.evaluations
        if wal is not None:
            self.attach_wal(wal)

    # ------------------------------------------------------------------
    # Worker fan-out
    # ------------------------------------------------------------------
    def _map(self, fn, items: list) -> list:
        """Run *fn* over *items* (one per shard), per the executor mode."""
        if self.executor == "serial" or self.n_shards == 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_shards, thread_name_prefix="repro-shard"
            )
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        """Release every worker resource and retire the index.

        Shuts the thread pool down, stops the process workers, unlinks
        the shared-memory arena, and closes the engine's evaluation
        pool.  Idempotent and safe on a partially constructed index (a
        constructor that raised before some attribute existed), so a
        ``finally: index.close()`` can never raise or leak ``/dev/shm``
        blocks; ``weakref`` finalizers on the pool and arena also run
        this cleanup on garbage collection, so an abandoned index
        cannot leak processes or segments either.  Post-close
        ``apply()``/``refresh()``/``pin()`` raise :class:`RuntimeError`.
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=True)
            self._pool = None
        procpool = getattr(self, "_procpool", None)
        if procpool is not None:
            procpool.close()
            self._procpool = None
        arena = getattr(self, "_arena", None)
        if arena is not None:
            arena.close()
            self._arena = None
        engine = getattr(self, "engine", None)
        if engine is not None:
            engine.close()

    # ------------------------------------------------------------------
    # Sharded candidate-cache routing (ingestion path, serial)
    # ------------------------------------------------------------------
    def _note_candidacy_change(
        self, user: int, item: int, added: bool
    ) -> None:
        if self.executor == "processes":
            # The caches live in the workers; ship the flip as a compact
            # delta.  The owner-store update needs the item's qualifying
            # raters *at event time* (the workers' snapshot views are
            # only as fresh as the last refresh), so they travel along.
            others = [
                int(other)
                for other in self.builder.users_of(item)
                if other != user
                and self._qualifies(self.builder.rating(other, item))
            ]
            self._delta_buffer.append(
                ("cand", int(user), int(item), bool(added), others)
            )
            return
        # Every shard's cached raters of the item gain/lose one shared
        # item with *user* — same propagation as the flat index, with
        # the per-user state living in each rater's owner shard.
        stores = [
            (shard.candidate_counts, shard.cached_raters)
            for shard in self._shards
        ]
        propagate_candidacy_change(
            stores,
            stores[self._shard_map.owner(user)],
            user,
            item,
            added,
            self.builder,
            self._qualifies,
        )

    def _cache_insert(self, user: int, counts: dict[int, int]) -> None:
        if self.executor == "processes":
            # Worker-owned caches: the parent-side stores stay empty, so
            # a checkpoint can never serialize a stale multiset (caches
            # are exact-or-absent; absent is always safe).
            return
        self._shards[self._shard_map.owner(user)].cache_insert(
            user, counts, self
        )

    def _cache_evict(self, user: int) -> None:
        if self.executor == "processes":
            items = [int(item) for item in self.builder.profile(user)]
            self._delta_buffer.append(("evict", int(user), items))
            return
        self._shards[self._shard_map.owner(user)].cache_evict(user, self)

    def _candidate_sets(self, users: np.ndarray) -> dict[int, dict[int, int]]:
        """Serial (main-thread) candidate-set lookup across shards."""
        if self.executor == "processes":
            # Parent-side derivations (debug/introspection paths) go
            # straight to delta_rcs without touching any cache.
            result, _, misses = derive_candidate_sets(
                {},
                np.asarray(users, dtype=np.int64),
                lambda user, counts: None,
                self.builder,
                self.config.min_rating,
            )
            self.maintenance.candidate_cache_misses += misses
            return result
        owners = self._shard_map.owners(np.asarray(users, dtype=np.int64))
        result: dict[int, dict[int, int]] = {}
        for shard in self._shards:
            owned = np.asarray(users, dtype=np.int64)[
                owners == shard.shard_id
            ]
            if owned.size == 0:
                continue
            sets, hits, misses = shard.candidate_sets(owned, self)
            result.update(sets)
            self.maintenance.candidate_cache_hits += hits
            self.maintenance.candidate_cache_misses += misses
        return result

    # ------------------------------------------------------------------
    # Process-executor delta shipping and pool management
    # ------------------------------------------------------------------
    def _grow_rows(self, n_users: int) -> None:
        grew = n_users > self._n_rows
        super()._grow_rows(n_users)
        if grew and self.executor == "processes":
            # Absolute target, so replaying the tail is idempotent.
            self._delta_buffer.append(("grow", int(n_users)))

    def apply(self, events):
        """Validate, journal and absorb *events* (see the flat ``apply``).

        Identical contract to :meth:`DynamicKnnIndex.apply`; in
        ``processes`` mode, compact per-event deltas additionally ship
        to the workers after each call so their caches stay current.
        """
        result = super().apply(events)
        if self.executor == "processes":
            # Ship per-event deltas after every apply(), so worker-side
            # caches track the live profiles between refreshes.
            self._flush_deltas()
        return result

    def rebuild(self):
        """Cold-rebuild the graph, then restart worker state from it."""
        result = super().rebuild()
        if self._procpool is not None:
            # Worker row mirrors and reverse indexes predate the rebuilt
            # graph; restart them from the fresh authoritative rows.
            self._procpool.reset()
            self._delta_buffer.clear()
            self._delta_tail.clear()
        return result

    def _flush_deltas(self) -> None:
        """Move buffered deltas to the tail and ship them to live workers.

        The tail survives until the next completed refresh: a respawned
        worker replays it on top of the authoritative rows it is seeded
        with (candidacy/evict replays are no-ops against its empty
        cache, ``grow`` is absolute), which is what makes worker death
        recoverable at any point.
        """
        if not self._delta_buffer:
            return
        ops, self._delta_buffer = self._delta_buffer, []
        self._delta_tail.extend(ops)
        if self._procpool is not None and self._procpool.alive:
            self._procpool.broadcast_deltas(ops)

    def _worker_init(self, shard_id: int) -> dict:
        """The spawn payload seeding one worker's owned state."""
        neighbors, sims = self._rows()
        return dict(
            shard_id=shard_id,
            n_shards=self.n_shards,
            shard_map=self._shard_map,
            config=self.config,
            metric=self.engine.metric,
            batch_size=self.engine.batch_size,
            # The *resolved* backend name: an unavailable compiled
            # backend already degraded (and warned) parent-side, so
            # workers never re-attempt a missing import per spawn.
            kernel_backend=self.engine.index.kernel.name,
            cache_limit=self._shard_cache_limit,
            neighbors=neighbors.copy(),
            sims=sims.copy(),
            deltas=list(self._delta_tail),
        )

    def _ensure_pool(self):
        from .procpool import ProcessShardPool

        if self._procpool is None:
            self._procpool = ProcessShardPool(
                self.n_shards, start_method=self._start_method
            )
        if not self._procpool.alive:
            self._procpool.spawn(self._worker_init)
        return self._procpool

    # ------------------------------------------------------------------
    # Partitioned journaling
    # ------------------------------------------------------------------
    def _event_shard(self, event, n_users: int) -> int:
        """The shard whose segment journals *event* (its primary user)."""
        if isinstance(event, AddUser):
            return self._shard_map.owner(n_users)  # the id being minted
        return self._shard_map.owner(int(event.user))

    def _journal(self, primitives) -> None:
        """Route each primitive into its owner shard's WAL segment.

        Global sequence numbers are assigned by the partitioned log;
        rollback on a partial failure spans every segment, preserving
        the all-or-nothing unit the flat index guarantees.
        """
        if self._wal is None:
            self._seq += len(primitives)
            return
        mark = self._wal.mark()
        try:
            n_users = self.builder.n_users
            for primitive in primitives:
                shard = self._event_shard(primitive, n_users)
                if isinstance(primitive, AddUser):
                    n_users += 1
                self._seq = self._wal.append(primitive, shard)
        except BaseException:
            self._wal.rollback(mark)
            self._seq = mark[0]
            raise

    def attach_wal(self, wal) -> None:
        """Journal into *wal* — a :class:`PartitionedWriteAheadLog`."""
        from ..persistence import PartitionedWriteAheadLog, PersistenceError

        if not isinstance(wal, PartitionedWriteAheadLog):
            raise PersistenceError(
                f"ShardedKnnIndex journals into per-shard segments; attach "
                f"a PartitionedWriteAheadLog (got {type(wal).__name__}) — "
                f"PartitionedWriteAheadLog(directory, n_shards)"
            )
        super().attach_wal(wal)

    # ------------------------------------------------------------------
    # Live shard re-balancing
    # ------------------------------------------------------------------
    @property
    def shard_map(self) -> ShardMap:
        """The authoritative user → shard ownership rule."""
        return self._shard_map

    def rebalance(self, plan: ShardPlan) -> RebalanceStats:
        """Migrate users between shards live, without stopping ingestion.

        The migration window is WAL-sequenced: a
        :class:`~repro.streaming.events.MigrateBegin` /
        :class:`~repro.streaming.events.MigrateCommit` record pair
        fences the batch in the partitioned log (both in shard 0's
        segment, at consecutive global sequence numbers), and ownership
        flips atomically at the commit's covering sequence.  A crash
        whose surviving log tail holds the begin fence without its
        commit replays as **no** ownership change — rollback to the
        fence — while a tail holding both replays the flip at its exact
        position relative to the surrounding rating events.  Either
        way the recovered graph stays bit-identical to a cold rebuild,
        because ownership never affects graph *content*, only where
        maintenance state lives.

        After the flip every moved user is marked dirty: the next
        refresh re-derives her row on the destination shard — seeding
        the destination's candidate cache and row-restricted reverse
        index from the authoritative rows — and, under a
        :class:`~repro.scheduling.RefreshScheduler`, the migration
        counts against the queue bound like any other dirty work.
        Under ``executor="processes"`` the worker pool is reset instead
        (the PR 5 crash-respawn path): the next refresh respawns the
        workers from the authoritative rows with the new map, and the
        shared-memory arena views republish as usual.

        Parameters
        ----------
        plan:
            The :class:`ShardPlan`: explicit ``(user, shard)`` moves, a
            new shard count, or both.  A count change rebuilds every
            per-shard container (dirty set, reverse index; caches are
            dropped — always safe, they are exact-or-absent) and, when
            a partitioned WAL is attached, re-opens it at the new
            segment count under the same global sequence.

        Returns
        -------
        RebalanceStats
            Moved-user count, shard counts, the fence sequence numbers
            and the wall time of the window.  A plan that changes
            nothing returns ``users_moved=0`` without journaling.

        Raises
        ------
        TypeError
            *plan* is not a :class:`ShardPlan`.
        ValueError
            A move references a user outside ``[0, n_users)`` or a
            shard outside ``[0, n_shards)``.
        RuntimeError
            The index is closed.
        """
        self._ensure_open()
        start = time.perf_counter()
        if not isinstance(plan, ShardPlan):
            raise TypeError(
                f"rebalance takes a ShardPlan, got {type(plan).__name__}"
            )
        moves = tuple(
            (int(user), int(shard)) for user, shard in plan.moves
        )
        target = (
            self.n_shards if plan.n_shards is None else int(plan.n_shards)
        )
        if target < 1:
            raise ValueError(f"n_shards must be >= 1, got {target}")
        n_users = self.builder.n_users
        for user, shard in moves:
            if not 0 <= user < n_users:
                raise ValueError(
                    f"cannot move user {user}: outside [0, {n_users})"
                )
            if not 0 <= shard < target:
                raise ValueError(
                    f"cannot move user {user} to shard {shard}: outside "
                    f"[0, {target})"
                )
        if target == self.n_shards:
            new_map = self._shard_map.with_moves(moves)
        else:
            new_map = ShardMap(target, dict(moves))
        would_move = self._moved_users(new_map)
        if not would_move and target == self.n_shards:
            stats = RebalanceStats(
                users_moved=0,
                shards_before=self.n_shards,
                shards_after=self.n_shards,
                seq_begin=self._seq,
                seq_commit=self._seq,
                wall_time=time.perf_counter() - start,
            )
            self.rebalance_log.append(stats)
            return stats
        shards_before = self.n_shards
        seq_begin, seq_commit = self._journal_control(
            MigrateBegin(moves=moves, n_shards=plan.n_shards),
            MigrateCommit(moves=moves, n_shards=plan.n_shards),
        )
        moved = self._apply_plan_flip(moves, plan.n_shards)
        if self._snapshot is not None:
            # Republish under the commit's covering sequence — the rows
            # are unchanged, so readers keep the same arrays.
            self._publish_snapshot(unchanged=True)
        stats = RebalanceStats(
            users_moved=len(moved),
            shards_before=shards_before,
            shards_after=self.n_shards,
            seq_begin=seq_begin,
            seq_commit=seq_commit,
            wall_time=time.perf_counter() - start,
        )
        self.rebalance_log.append(stats)
        return stats

    def _journal_control(self, begin, commit) -> tuple[int, int]:
        """Journal the fence pair all-or-nothing; returns their seqs."""
        if self._wal is None:
            self._seq += 2
            return self._seq - 1, self._seq
        mark = self._wal.mark()
        try:
            seq_begin = self._wal.append(begin, 0)
            seq_commit = self._wal.append(commit, 0)
        except BaseException:
            self._wal.rollback(mark)
            self._seq = mark[0]
            raise
        self._seq = seq_commit
        return seq_begin, seq_commit

    def _absorb_control(self, event) -> None:
        """Replay a journaled migration fence at its sequence position.

        ``MigrateBegin`` is the opening fence only: a log tail ending
        after a begin without its commit replays as *no* ownership
        change (the rollback-to-the-fence guarantee).
        ``MigrateCommit`` re-applies the flip exactly as the live
        :meth:`rebalance` did.
        """
        if isinstance(event, MigrateCommit):
            self._apply_plan_flip(event.moves, event.n_shards)

    def _moved_users(self, new_map: ShardMap) -> list[int]:
        """Users whose owner differs between the live map and *new_map*."""
        users = np.arange(self.builder.n_users, dtype=np.int64)
        changed = self._shard_map.owners(users) != new_map.owners(users)
        return users[changed].tolist()

    def _apply_plan_flip(self, moves, n_shards) -> list[int]:
        """Flip ownership for one commit record; returns the moved users.

        Shared by the live :meth:`rebalance` path and WAL replay
        (:meth:`_absorb_control`), so both reconstruct the identical
        :class:`ShardMap` from the record payload alone.
        """
        target = self.n_shards if n_shards is None else int(n_shards)
        if target != self.n_shards:
            new_map = ShardMap(target, dict(moves))
            moved = self._moved_users(new_map)
            self._reshard(new_map)
        else:
            new_map = self._shard_map.with_moves(moves)
            moved = self._moved_users(new_map)
            self._migrate_users(new_map, moved)
        return moved

    def _migrate_users(self, new_map: ShardMap, moved) -> None:
        """Same-count ownership flip: surgical per-user state transfer.

        For each moved user the source shard gives up her dirty-set
        membership, candidate-cache entry (dropped — exact-or-absent,
        so eviction is always safe) and her row's citations in its
        reverse index; after the map swap the destination re-registers
        the citations and marks her dirty, so the next refresh seeds
        the destination's cache from the authoritative rows.
        """
        if self.executor == "processes":
            self._shard_map = new_map
            for user in moved:
                self._dirty.add(user)
            if self._procpool is not None:
                # The owned-row partition changed under the workers;
                # the next refresh respawns them from the authoritative
                # rows (plus the preserved delta tail) with the new map.
                self._procpool.reset()
            return
        neighbors, _ = self._rows()
        transfers: list[tuple[int, np.ndarray]] = []
        for user in moved:
            source = self._shards[self._shard_map.owner(user)]
            source.cache_evict(user, self)
            source.dirty.discard(user)
            cited = np.empty(0, dtype=ID_DTYPE)
            if user < neighbors.shape[0]:
                row = neighbors[user]
                cited = row[row != MISSING]
                if cited.size:
                    source.reverse.apply_row(user, cited, ())
            transfers.append((user, cited))
        self._shard_map = new_map
        for user, cited in transfers:
            destination = self._shards[new_map.owner(user)]
            if cited.size:
                destination.reverse.apply_row(user, (), cited)
            destination.dirty.add(user)

    def _reshard(self, new_map: ShardMap) -> None:
        """Shard-count transition: rebuild every per-shard container.

        The dirty set carries over (re-routed through the new map), the
        reverse index rebuilds from the authoritative rows, caches are
        dropped, the per-shard cache budget re-splits, executors reset
        (thread pool sized per shard; process workers respawn at the
        next refresh), and an attached partitioned WAL re-opens at the
        new segment count under the same global sequence (its
        constructor scans stray segments, so the counter carries over
        and old segments stay readable by the merged reader).
        """
        old_dirty = list(self._dirty)
        self.n_shards = new_map.n_shards
        self._shard_map = new_map
        self._shards = [_Shard(shard) for shard in range(self.n_shards)]
        self._dirty = _ShardedDirtySet(self._shards, lambda: self._shard_map)
        self._reverse = _ShardedReverseIndex(
            self._shards, lambda: self._shard_map
        )
        neighbors, _ = self._rows()
        self._reverse.rebuild(neighbors)
        self._dirty.update(old_dirty)
        if self.candidate_cache_size is None:
            self._shard_cache_limit = None
        elif self.candidate_cache_size <= 0:
            self._shard_cache_limit = 0
        else:
            self._shard_cache_limit = max(
                1, self.candidate_cache_size // self.n_shards
            )
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._procpool is not None:
            self._procpool.close()
            self._procpool = None
        if self._wal is not None and self._wal.n_shards != self.n_shards:
            from ..persistence import PartitionedWriteAheadLog

            old = self.detach_wal()
            directory = old.path
            fsync_every = old.fsync_every
            old.close()
            self.attach_wal(
                PartitionedWriteAheadLog(
                    directory, self.n_shards, fsync_every=fsync_every
                )
            )

    # ------------------------------------------------------------------
    # Partitioned durability
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str | Path) -> Path:
        """Serialize the partitioned ``checkpoint-<seq>.shards/`` layout.

        Checkpoints mark quiescent points between refreshes, so this is
        also where the shared-memory arena sheds slack capacity: growth
        is geometric and ``publish`` never shrinks, so after a mass
        deletion the arena would otherwise pin its high-water mark in
        ``/dev/shm`` forever (the next refresh republishes into the
        compacted block or regrows it as needed).
        """
        from ..persistence import save_sharded_checkpoint

        path = save_sharded_checkpoint(self, directory)
        if self._arena is not None:
            self._arena.compact()
        return path

    def memory_stats(self) -> dict[str, int]:
        """Flat-index breakdown plus the shared-memory arena accounting."""
        stats = super().memory_stats()
        # The base counted its own (empty, for a sharded index) cache
        # dicts; the live caches are the per-shard owned slices.  In
        # 'processes' mode the worker-side replicas are not visible
        # here, but the parent-side owner stores mirror their keys.
        stats["candidate_cache_entries"] = sum(
            len(counts)
            for shard in self._shards
            for counts in shard.candidate_counts.values()
        )
        stats["cached_rater_entries"] = sum(
            len(raters)
            for shard in self._shards
            for raters in shard.cached_raters.values()
        )
        if self._arena is not None:
            arena = self._arena.stats()
            stats["shm_arena_bytes"] = arena["capacity_bytes"]
            stats["shm_arena_high_water_bytes"] = arena["high_water_bytes"]
            stats["shm_arena_slack_bytes"] = arena["slack_bytes"]
            stats["total_bytes"] += arena["capacity_bytes"]
        else:
            stats["shm_arena_bytes"] = 0
            stats["shm_arena_high_water_bytes"] = 0
            stats["shm_arena_slack_bytes"] = 0
        return stats

    @classmethod
    def restore(
        cls,
        directory: str | Path,
        metric: str | SimilarityMetric | None = None,
        refresh: bool = True,
        fsync_every: int | None = 64,
        n_shards: int | None = None,
        executor: str | None = None,
    ) -> "ShardedKnnIndex":
        """Recover from *directory* — sharded **or** flat layout.

        ``n_shards`` defaults to the checkpoint's shard count (2 for a
        flat layout); any other value re-shards the recovered state
        exactly, since ownership never affects graph content.  Live
        re-balancing overrides recorded in the checkpoint are
        reinstated when restoring at the checkpoint's own shard count
        and reset (back to the plain modulus) at any other count.
        """
        from ..persistence import restore_sharded_index

        return restore_sharded_index(
            cls,
            directory,
            metric=metric,
            refresh=refresh,
            fsync_every=fsync_every,
            n_shards=n_shards,
            executor=executor,
        )

    # ------------------------------------------------------------------
    # Shard-parallel refinement
    # ------------------------------------------------------------------
    def refresh(self, dirty_subset=None) -> RefreshStats:
        """Run the localized refinement, partitioned across the shards.

        Semantically identical to :meth:`DynamicKnnIndex.refresh`
        (including the ``dirty_subset`` deferral contract); see the
        module docstring for the three-stage fan-out and why the result
        is bit-identical at any shard count.  Like the flat refresh,
        completion publishes a new read snapshot.
        """
        self._ensure_open()
        if self.executor == "processes":
            return self._refresh_processes(dirty_subset)
        start = time.perf_counter()
        maintenance = self.maintenance
        rows_before = maintenance.rows_materialized
        index_before = maintenance.index_users_recomputed
        hits_before = maintenance.candidate_cache_hits
        misses_before = maintenance.candidate_cache_misses
        n_events = self._pending_events
        if dirty_subset is None:
            selected = set(self._dirty)
            deferred: set[int] = set()
        else:
            subset = {int(u) for u in dirty_subset}
            selected = {u for u in self._dirty if u in subset}
            deferred = {u for u in self._dirty if u not in subset}
        n_dirty = len(selected)
        if n_dirty == 0:
            stats = RefreshStats(
                n_events,
                0,
                0,
                0,
                0,
                time.perf_counter() - start,
                deferred_users=len(deferred),
            )
            self._pending_events = 0
            self._publish_snapshot(unchanged=True)
            self.refresh_log.append(stats)
            return stats
        engine = self.engine
        with engine.timer.phase("preprocessing"):
            # Shared read-only state, rebound once before the fan-out;
            # covers deferred users too (their profiles feed this pass's
            # evaluations even though their rows wait).
            engine.rebind(self.builder.snapshot(), dirty_users=self._dirty)
        neighbors, sims = self._rows()
        n_users = self.builder.n_users
        all_dirty = np.fromiter(selected, count=n_dirty, dtype=np.int64)
        truly_dirty = frozenset(selected)
        owned_selected = [
            np.fromiter(owned, count=len(owned), dtype=np.int64)
            for owned in (shard.dirty & selected for shard in self._shards)
        ]
        with engine.timer.phase("candidate_selection"):
            # Stage A: every shard discovers its slice of the affected
            # set (its selected dirty users + its rows citing any
            # selected dirty user).
            affected_by_shard = self._map(
                lambda work: np.union1d(
                    work[1],
                    work[0].reverse.referrers_of(all_dirty),
                ),
                list(zip(self._shards, owned_selected)),
            )
            affected = np.unique(np.concatenate(affected_by_shard))
            affected_mask = np.zeros(n_users, dtype=bool)
            affected_mask[affected] = True
            # Stage B: clear owned affected rows, derive candidate sets,
            # emit local pairs + cross-shard outboxes.
            seq = self._seq
            plans = self._map(
                lambda work: self._shard_plan(
                    work[0],
                    work[1],
                    affected_mask,
                    truly_dirty,
                    neighbors,
                    sims,
                    seq,
                ),
                list(zip(self._shards, affected_by_shard)),
            )
            for plan in plans:
                maintenance.candidate_cache_hits += plan.cache_hits
                maintenance.candidate_cache_misses += plan.cache_misses
            # Outbox exchange: deliver each shard's cross-shard pairs.
            inboxes: list[list[ShardOutbox]] = [
                [] for _ in range(self.n_shards)
            ]
            for plan in plans:
                for outbox in plan.outboxes:
                    inboxes[outbox.target].append(outbox)
            self.last_outboxes = tuple(
                outbox for plan in plans for outbox in plan.outboxes
            )
        # Stage C: evaluate and merge, each shard into its own rows.
        with engine.timer.phase("similarity"):
            merges = self._map(
                lambda work: self._shard_merge(
                    work[0], work[1], work[2], neighbors, sims, n_users
                ),
                list(zip(self._shards, plans, inboxes)),
            )
        evaluations = sum(merge[0] for merge in merges)
        changes = sum(merge[1] for merge in merges)
        engine.counter.add(int(evaluations))
        self._dirty.clear()
        self._dirty.update(deferred)
        self._pending_events = 0
        stats = RefreshStats(
            events=n_events,
            dirty_users=n_dirty,
            affected_users=int(affected.size),
            evaluations=int(evaluations),
            changes=int(changes),
            wall_time=time.perf_counter() - start,
            rows_materialized=maintenance.rows_materialized - rows_before,
            index_users_recomputed=maintenance.index_users_recomputed
            - index_before,
            cache_hits=maintenance.candidate_cache_hits - hits_before,
            cache_misses=maintenance.candidate_cache_misses - misses_before,
            deferred_users=len(deferred),
        )
        self._publish_snapshot()
        self.refresh_log.append(stats)
        return stats

    def _refresh_processes(self, dirty_subset=None) -> RefreshStats:
        """The three-stage refresh, fanned out to the worker processes.

        Same stages and same bit-identical result as the in-process
        executors, with the transport swapped: the snapshot and profile
        arrays are published once into the shared-memory arena, each
        stage is a request/reply round over the worker pipes, and the
        workers' row updates are merged into the parent's authoritative
        arrays after the final barrier.  Because the parent applies
        nothing until every worker has answered, a worker death at any
        point leaves the authoritative state untouched: the pool is
        reset, the cleared rows are re-marked dirty, and the whole pass
        retries against respawned workers (seeded from the authoritative
        rows plus the replayed delta tail).
        """
        from .procpool import WorkerCrash

        start = time.perf_counter()
        maintenance = self.maintenance
        rows_before = maintenance.rows_materialized
        index_before = maintenance.index_users_recomputed
        hits_before = maintenance.candidate_cache_hits
        misses_before = maintenance.candidate_cache_misses
        n_events = self._pending_events
        if dirty_subset is None:
            selected = set(self._dirty)
            deferred: set[int] = set()
        else:
            subset = {int(u) for u in dirty_subset}
            selected = {u for u in self._dirty if u in subset}
            deferred = {u for u in self._dirty if u not in subset}
        n_dirty = len(selected)
        if n_dirty == 0:
            stats = RefreshStats(
                n_events,
                0,
                0,
                0,
                0,
                time.perf_counter() - start,
                deferred_users=len(deferred),
            )
            self._pending_events = 0
            self._publish_snapshot(unchanged=True)
            self.refresh_log.append(stats)
            return stats
        engine = self.engine
        if type(engine.index) is not ProfileIndex:
            # Workers rebuild the base ProfileIndex from the shared
            # buffers; a subclass's extra state would be silently
            # dropped, breaking the bit-identity contract.  Fail loudly
            # instead.
            raise TypeError(
                f"executor='processes' rebuilds a plain ProfileIndex in "
                f"each worker and cannot carry a custom index subclass "
                f"({type(engine.index).__name__}); use the 'threads' or "
                f"'serial' executor for custom profile indexes"
            )
        with engine.timer.phase("preprocessing"):
            engine.rebind(self.builder.snapshot(), dirty_users=self._dirty)
        neighbors, sims = self._rows()
        n_users = self.builder.n_users
        seq = self._seq
        if self._arena is None:
            from .shm import ShmArena

            self._arena = ShmArena(tag="repro-shard")
        block, manifest = self._arena.publish(engine.index.to_shared_arrays())
        attempts = 0
        while True:
            pool = self._ensure_pool()
            self._flush_deltas()
            # Restricting the shipped dirty sets to the selection is all
            # a subset refresh needs worker-side: stage A then discovers
            # affected(selected) and mirror offers come only from the
            # selected users.  Deferred users stay parent-side, in
            # ``self._dirty``, until a later pass selects them.
            all_dirty = np.sort(
                np.fromiter(selected, count=len(selected), dtype=np.int64)
            )
            affected = None
            try:
                with engine.timer.phase("candidate_selection"):
                    # Stage A: each worker unions its dirty slice with
                    # its rows citing any dirty user.
                    affected_by_shard = pool.request_all(
                        "stage_a",
                        [
                            dict(
                                block=block,
                                manifest=manifest,
                                all_dirty=all_dirty,
                                my_dirty=np.sort(
                                    np.fromiter(
                                        owned,
                                        count=len(owned),
                                        dtype=np.int64,
                                    )
                                ),
                                seq=seq,
                                n_users=n_users,
                            )
                            for owned in (
                                shard.dirty & selected
                                for shard in self._shards
                            )
                        ],
                    )
                    affected = np.unique(np.concatenate(affected_by_shard))
                    # Stage B: clear + plan with per-shard outboxes.
                    plans = pool.request_all(
                        "plan",
                        [dict(affected=affected)] * self.n_shards,
                    )
                    inboxes: list[list[ShardOutbox]] = [
                        [] for _ in range(self.n_shards)
                    ]
                    for plan in plans:
                        for outbox in plan["outboxes"]:
                            inboxes[outbox.target].append(outbox)
                # Stage C: dedupe + evaluate + merge into owned rows;
                # the workers return their row updates.
                with engine.timer.phase("similarity"):
                    merges = pool.request_all(
                        "merge",
                        [dict(inbox=inbox) for inbox in inboxes],
                    )
                break
            except WorkerCrash:
                # Respawn + replay: re-mark whatever may have been
                # cleared worker-side as dirty, reseed the whole pool
                # from the (untouched) authoritative rows plus the delta
                # tail, and rerun the pass.  The selection grows the
                # same way so the retry covers those rows even on a
                # subset refresh.
                attempts += 1
                if affected is not None:
                    self._dirty.update(affected.tolist())
                    selected.update(affected.tolist())
                pool.reset()
                if attempts >= 3:
                    raise
            except BaseException:
                # A worker-raised error (e.g. a failing metric): mark
                # cleared rows dirty so the next refresh rebuilds them,
                # and reset the pool so no worker keeps half-merged rows.
                if affected is not None:
                    self._dirty.update(affected.tolist())
                pool.reset()
                raise
        for plan in plans:
            maintenance.candidate_cache_hits += plan["hits"]
            maintenance.candidate_cache_misses += plan["misses"]
        self.last_outboxes = tuple(
            outbox for plan in plans for outbox in plan["outboxes"]
        )
        # Apply: clear every affected row, then land the merged rows —
        # cleared-but-candidateless rows stay MISSING, exactly as the
        # in-process executors leave them.
        neighbors[affected] = MISSING
        sims[affected] = -np.inf
        evaluations = 0
        changes = 0
        for merge in merges:
            evaluations += merge["evaluations"]
            changes += merge["changes"]
            active = merge["active"]
            if active.size:
                neighbors[active] = merge["neighbors"]
                sims[active] = merge["sims"]
        engine.counter.add(int(evaluations))
        self._dirty.clear()
        self._dirty.update(deferred)
        self._pending_events = 0
        self._delta_tail.clear()
        stats = RefreshStats(
            events=n_events,
            dirty_users=n_dirty,
            affected_users=int(affected.size),
            evaluations=int(evaluations),
            changes=int(changes),
            wall_time=time.perf_counter() - start,
            rows_materialized=maintenance.rows_materialized - rows_before,
            index_users_recomputed=maintenance.index_users_recomputed
            - index_before,
            cache_hits=maintenance.candidate_cache_hits - hits_before,
            cache_misses=maintenance.candidate_cache_misses - misses_before,
            deferred_users=len(deferred),
        )
        self._publish_snapshot()
        self.refresh_log.append(stats)
        return stats

    def referrer_counts(self, users) -> np.ndarray:
        """Blast radius of *users* across all shards.

        On the in-process executors each shard's reverse index is
        authoritative, so the per-shard counts sum exactly.  Under
        ``executor='processes'`` the parent-side reverse indexes are
        stale (the workers own them and the parent lands merges without
        ``apply_row``), so the counts are derived from the
        authoritative neighbor rows directly — one vectorised bincount,
        paid once per scheduler pass.
        """
        self._ensure_open()
        users = np.asarray(users, dtype=np.int64)
        if self.executor != "processes":
            return self._reverse.referrer_counts(users)
        neighbors, _ = self._rows()
        cited = neighbors[neighbors != MISSING]
        counts = np.bincount(cited, minlength=self.builder.n_users)
        return counts[users].astype(np.int64)

    def _shard_plan(
        self,
        shard: _Shard,
        affected: np.ndarray,
        affected_mask: np.ndarray,
        truly_dirty: frozenset,
        neighbors: np.ndarray,
        sims: np.ndarray,
        seq: int,
    ) -> _ShardPlan:
        """Stage B for one shard: clear rows, plan pairs, fill outboxes."""
        # Retry safety (mirrors the flat refresh): once cleared, affected
        # rows count as dirty until the merge lands, so a mid-pass
        # failure leaves them rebuildable, not silently empty.
        shard.dirty.update(affected.tolist())
        old_rows = neighbors[affected].copy()
        neighbors[affected] = MISSING
        sims[affected] = -np.inf
        for pos, row in enumerate(affected.tolist()):
            shard.reverse.apply_row(row, old_rows[pos], ())
        cand_sets, hits, misses = shard.candidate_sets(affected, self)
        rows, candidates, outboxes = plan_shard_pairs(
            shard.shard_id,
            self._shard_map,
            affected,
            affected_mask,
            truly_dirty,
            cand_sets,
            seq,
        )
        return _ShardPlan(
            affected=affected,
            rows=rows,
            candidates=candidates,
            outboxes=outboxes,
            cache_hits=hits,
            cache_misses=misses,
        )

    def _shard_merge(
        self,
        shard: _Shard,
        plan: _ShardPlan,
        inbox: list[ShardOutbox],
        neighbors: np.ndarray,
        sims: np.ndarray,
        n_users: int,
    ) -> tuple[int, int]:
        """Stage C for one shard: dedupe, evaluate, merge its own rows."""
        evaluations, changes, _, _, _ = merge_shard_pairs(
            shard.shard_id,
            self._shard_map,
            self.config.pivot,
            plan.rows,
            plan.candidates,
            inbox,
            neighbors,
            sims,
            n_users,
            self._score_pairs,
            shard.reverse,
        )
        return evaluations, changes

    def _score_pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Chunked metric evaluation against the shared profile index.

        See :func:`score_pairs_chunked` (the shared kernel) for why this
        bypasses ``engine.batch`` and stays bit-identical to it.
        """
        engine = self.engine
        return score_pairs_chunked(
            engine.metric,
            engine.index,
            us,
            vs,
            engine.batch_size,
            kernel=engine.index.kernel,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedKnnIndex(n_users={self.n_users}, "
            f"n_shards={self.n_shards}, executor={self.executor!r}, "
            f"last_seq={self.last_seq})"
        )
