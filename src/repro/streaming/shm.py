"""Shared-memory array transport for the process-backed shard executor.

The process executor (:mod:`repro.streaming.procpool`) must hand every
worker the read-only per-refresh state — the snapshot CSR triplet and
the :class:`~repro.similarity.base.ProfileIndex` arrays — without
serializing megabytes through a pipe on every refresh.  This module
packs named numpy arrays into a single
:class:`multiprocessing.shared_memory.SharedMemory` block and rebuilds
them as **zero-copy views** on the other side:

* :func:`pack_arrays` / :func:`unpack_arrays` — the wire format: one
  block, a picklable *manifest* of ``name -> (offset, dtype, shape)``
  entries describing where each array lives inside it.
* :class:`ShmArena` — the parent-side owner: one block, repacked before
  every refresh, grown geometrically when the payload outgrows it, and
  **unlinked deterministically** on :meth:`ShmArena.close` (a
  ``weakref.finalize`` guard also unlinks on garbage collection, so an
  abandoned index cannot leak ``/dev/shm`` segments).
* :func:`attach_block` — the worker-side attach; the parent stays the
  single owner of the unlink (workers only ever ``close()``), with the
  shared ``resource_tracker`` as the crash backstop.

Alignment: every array is packed at an offset rounded up to 16 bytes,
so reconstructed views are safely aligned for any numpy dtype.
"""

from __future__ import annotations

import os
import secrets
import weakref
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmArena", "attach_block", "pack_arrays", "unpack_arrays"]

#: Offset granularity inside a block; generous for every numpy dtype.
_ALIGN = 16


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def packed_size(arrays: dict[str, np.ndarray]) -> int:
    """Bytes needed to pack *arrays* (alignment padding included)."""
    total = 0
    for array in arrays.values():
        total = _aligned(total) + array.nbytes
    return max(total, 1)  # zero-byte shared memory blocks are invalid


def pack_arrays(
    block: shared_memory.SharedMemory, arrays: dict[str, np.ndarray]
) -> dict[str, tuple[int, str, tuple[int, ...]]]:
    """Copy *arrays* into *block*; returns the manifest to unpack them.

    The manifest is plain picklable data — ``name -> (offset, dtype
    string, shape)`` — so it travels over a pipe next to the block name.
    """
    manifest: dict[str, tuple[int, str, tuple[int, ...]]] = {}
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=block.buf, offset=offset
        )
        view[...] = array
        manifest[name] = (offset, array.dtype.str, tuple(array.shape))
        offset += array.nbytes
    return manifest


def unpack_arrays(
    block: shared_memory.SharedMemory,
    manifest: dict[str, tuple[int, str, tuple[int, ...]]],
    writeable: bool = False,
) -> dict[str, np.ndarray]:
    """Rebuild the packed arrays as views over *block* (zero-copy)."""
    arrays: dict[str, np.ndarray] = {}
    for name, (offset, dtype, shape) in manifest.items():
        view = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=block.buf, offset=offset
        )
        view.flags.writeable = writeable
        arrays[name] = view
    return arrays


def attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without adopting its lifetime.

    Worker processes spawned by :mod:`multiprocessing` inherit the
    parent's ``resource_tracker``, so the re-registration performed by
    ``SharedMemory(name=...)`` is an idempotent set-add on the entry the
    parent already holds — the parent's :class:`ShmArena` stays the
    single owner of the unlink (and the shared tracker still reaps the
    segment if the whole process tree is killed).  Workers must only
    ``close()`` their attachments, never ``unlink()``.
    """
    return shared_memory.SharedMemory(name=name)


def _release(block: shared_memory.SharedMemory) -> None:
    """Close and unlink *block*, tolerating an already-gone segment."""
    try:
        block.close()
    except OSError:  # pragma: no cover - buffer already released
        pass
    try:
        block.unlink()
    except FileNotFoundError:  # pragma: no cover - unlinked elsewhere
        pass


class ShmArena:
    """One owned shared-memory block, repacked with fresh arrays at will.

    The parent repacks before every refresh fan-out (the snapshot and
    profile arrays change between refreshes); the block is reused while
    the payload fits and reallocated — under a new name, which tells
    workers to reattach — when it does not.  Growth is geometric so a
    steadily growing dataset does not reallocate per refresh.
    """

    def __init__(self, tag: str = "repro"):
        self._tag = tag
        self._block: shared_memory.SharedMemory | None = None
        self._generation = 0
        self._finalizer = None
        #: Bytes of the most recently published payload (0 before one).
        self._last_payload = 0
        #: Largest block capacity ever held — the high-water mark that
        #: outlives the deletions that caused it (see :meth:`compact`).
        self._high_water = 0

    @property
    def name(self) -> str | None:
        """Name of the current block (None before the first publish)."""
        return self._block.name if self._block is not None else None

    def stats(self) -> dict[str, int]:
        """Capacity accounting of the arena.

        ``capacity_bytes`` is the current block size, ``payload_bytes``
        the bytes the last publish actually used, ``high_water_bytes``
        the largest capacity ever held, and ``slack_bytes`` what
        :meth:`compact` could return to the OS right now.
        """
        capacity = 0 if self._block is None else self._block.size
        return {
            "capacity_bytes": capacity,
            "payload_bytes": self._last_payload,
            "high_water_bytes": self._high_water,
            "slack_bytes": max(0, capacity - max(self._last_payload, 1)),
        }

    def _allocate(self, capacity: int) -> shared_memory.SharedMemory:
        """A fresh uniquely named block, adopted as the owned one."""
        self._generation += 1
        name = (
            f"{self._tag}-{os.getpid()}-{self._generation}-"
            f"{secrets.token_hex(4)}"
        )
        block = shared_memory.SharedMemory(
            name=name, create=True, size=capacity
        )
        self._block = block
        if self._finalizer is not None:
            self._finalizer.detach()
        self._finalizer = weakref.finalize(self, _release, block)
        self._high_water = max(self._high_water, block.size)
        return block

    def publish(
        self, arrays: dict[str, np.ndarray]
    ) -> tuple[str, dict[str, tuple[int, str, tuple[int, ...]]]]:
        """Pack *arrays*; returns ``(block_name, manifest)`` for workers."""
        needed = packed_size(arrays)
        if self._block is None or self._block.size < needed:
            old = self._block
            capacity = needed
            if self._block is not None:
                capacity = max(needed, 2 * self._block.size)
            self._allocate(capacity)
            if old is not None:
                _release(old)
        manifest = pack_arrays(self._block, arrays)
        self._last_payload = needed
        self._high_water = max(self._high_water, self._block.size)
        return self._block.name, manifest

    def compact(self) -> int:
        """Shrink the block to the last published payload size.

        Growth is geometric and :meth:`publish` alone never shrinks, so
        after a mass deletion the arena would otherwise hold its
        high-water capacity forever.  Reallocates into an exactly-sized
        block (publishing is deterministic from offset 0, so copying the
        payload prefix preserves every manifest offset) and returns the
        bytes released; 0 when there is nothing to reclaim.  The block
        name changes — callers holding an old ``(name, manifest)`` pair
        must use the one returned by the next :meth:`publish`, which is
        already the contract between refreshes.
        """
        if self._block is None:
            return 0
        target = max(self._last_payload, 1)
        freed = self._block.size - target
        if freed <= 0:
            return 0
        old = self._block
        new = self._allocate(target)
        new.buf[:target] = old.buf[:target]
        _release(old)
        return freed

    def close(self) -> None:
        """Unlink the block now (idempotent; also runs on GC)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._block is not None:
            _release(self._block)
            self._block = None
