"""Brute-force exact KNN graph — the paper's ground truth.

Section IV-C: "For each dataset, an ideal KNN is constructed using a brute
force approach."  We compute similarity blocks of users against everyone
and keep each row's top-k (excluding self), which is exact for any metric
exposing ``score_block``.
"""

from __future__ import annotations

import numpy as np

from ..core.result import ConstructionResult
from ..graph.knn_graph import KnnGraph
from ..instrumentation.trace import ConvergenceTrace
from ..similarity.engine import SimilarityEngine

__all__ = ["brute_force_knn"]


def brute_force_knn(
    engine: SimilarityEngine,
    k: int,
    block_size: int = 512,
    count_evaluations: bool = False,
) -> ConstructionResult:
    """Exact KNN graph by exhaustive O(n^2) comparison.

    Parameters
    ----------
    engine:
        Similarity engine over the dataset.
    k:
        Neighbourhood size.
    block_size:
        Users per dense similarity block (memory/speed trade-off).
    count_evaluations:
        Whether to charge the n(n-1)/2 evaluations to the engine counter.
        Ground-truth construction for recall measurement leaves this off so
        it does not pollute the algorithm's scan rate; turn it on when the
        brute force itself is the subject of measurement.
    """
    n_users = engine.n_users
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if k >= n_users:
        raise ValueError(
            f"k={k} must be smaller than the number of users ({n_users})"
        )
    neighbors = np.empty((n_users, k), dtype=np.int64)
    sims = np.empty((n_users, k), dtype=np.float64)
    for start in range(0, n_users, block_size):
        stop = min(start + block_size, n_users)
        block_users = np.arange(start, stop)
        block = engine.block(block_users, count=count_evaluations)
        # Exclude self-similarity.
        block[np.arange(stop - start), block_users] = -np.inf
        # Top-k per row: argpartition then sort the kept slice by
        # (-sim, id) to match canonical ordering.
        part = np.argpartition(-block, kth=k - 1, axis=1)[:, :k]
        part_sims = np.take_along_axis(block, part, axis=1)
        order = np.lexsort((part, -part_sims), axis=1)
        neighbors[start:stop] = np.take_along_axis(part, order, axis=1)
        sims[start:stop] = np.take_along_axis(part_sims, order, axis=1)
    graph = KnnGraph(neighbors, sims)
    return ConstructionResult(
        graph=graph,
        iterations=1,
        counter=engine.counter,
        timer=engine.timer,
        trace=ConvergenceTrace(),
        algorithm="brute_force",
        extras={"k": k, "block_size": block_size},
    )
