"""MinHash-LSH KNN graph construction (extension baseline).

The KIFF paper's related work positions Locality-Sensitive Hashing as the
classic alternative NN-Descent was originally validated against (Dong et
al. showed NN-Descent beats multi-probe LSH).  This module implements the
standard MinHash banding scheme over item *sets*:

1. compute ``num_hashes`` min-hash signatures per user (a signature is the
   minimum of a universal hash over the user's item ids);
2. split signatures into ``bands`` bands of ``rows`` hashes; users that
   collide in any band become candidate pairs;
3. evaluate the true similarity of candidate pairs (counted, like every
   other algorithm) and keep each user's top-k.

The default banding (12 bands of 1 row) is tuned for the sparse, low-
Jaccard datasets this library targets: with ``rows`` hashes per band a
pair collides in one band with probability ``J**rows``, so multi-row
bands almost never fire when typical Jaccard similarities sit below 0.2.

MinHash collisions estimate *Jaccard* similarity, so this baseline is a
natural fit for the paper's sparse binary datasets and showcases why
KIFF's exact counting phase beats hashing approximations on them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import ConstructionResult
from ..graph.knn_graph import KnnGraph
from ..graph.updates import merge_topk
from ..instrumentation.trace import ConvergenceTrace
from ..similarity.engine import SimilarityEngine

__all__ = ["LshConfig", "lsh_knn"]

_MERSENNE_PRIME = (1 << 61) - 1


@dataclass(frozen=True)
class LshConfig:
    """MinHash-LSH parameters."""

    k: int = 20
    bands: int = 12
    rows: int = 1
    seed: int = 0
    max_pairs_per_bucket: int = 2_000

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.bands <= 0 or self.rows <= 0:
            raise ValueError(
                f"bands and rows must be positive, got {self.bands}, {self.rows}"
            )
        if self.max_pairs_per_bucket <= 0:
            raise ValueError("max_pairs_per_bucket must be positive")

    @property
    def num_hashes(self) -> int:
        return self.bands * self.rows


def _minhash_signatures(
    engine: SimilarityEngine, num_hashes: int, rng: np.random.Generator
) -> np.ndarray:
    """``(n_users, num_hashes)`` MinHash signature matrix."""
    n_users = engine.n_users
    a = rng.integers(1, _MERSENNE_PRIME, size=num_hashes, dtype=np.int64)
    b = rng.integers(0, _MERSENNE_PRIME, size=num_hashes, dtype=np.int64)
    signatures = np.full((n_users, num_hashes), np.iinfo(np.int64).max)
    matrix = engine.index.matrix
    for user in range(n_users):
        items = matrix.indices[matrix.indptr[user] : matrix.indptr[user + 1]]
        if items.size == 0:
            continue
        # hash_j(i) = (a_j * i + b_j) mod p ; signature = min over items.
        hashed = (
            items[:, None].astype(np.int64) * a[None, :] + b[None, :]
        ) % _MERSENNE_PRIME
        signatures[user] = hashed.min(axis=0)
    return signatures


def lsh_knn(
    engine: SimilarityEngine, config: LshConfig | None = None
) -> ConstructionResult:
    """Build an approximate KNN graph with MinHash LSH."""
    config = config or LshConfig()
    n_users = engine.n_users
    rng = np.random.default_rng(config.seed)
    trace = ConvergenceTrace()

    with engine.timer.phase("preprocessing"):
        signatures = _minhash_signatures(engine, config.num_hashes, rng)

    with engine.timer.phase("candidate_selection"):
        pair_lo, pair_hi = _banded_candidates(signatures, config, n_users)

    neighbors = np.full((n_users, config.k), -1, dtype=np.int64)
    sims = np.full((n_users, config.k), -np.inf, dtype=np.float64)
    if pair_lo.size:
        pair_sims = engine.batch(pair_lo, pair_hi)
        with engine.timer.phase("candidate_selection"):
            cand_users = np.concatenate([pair_lo, pair_hi])
            cand_ids = np.concatenate([pair_hi, pair_lo])
            cand_sims = np.concatenate([pair_sims, pair_sims])
            neighbors, sims, changes = merge_topk(
                neighbors, sims, cand_users, cand_ids, cand_sims
            )
        trace.record(1, engine.counter.evaluations, changes)

    return ConstructionResult(
        graph=KnnGraph(neighbors, sims),
        iterations=1,
        counter=engine.counter,
        timer=engine.timer,
        trace=trace,
        algorithm="lsh",
        extras={
            "k": config.k,
            "bands": config.bands,
            "rows": config.rows,
            "candidate_pairs": int(pair_lo.size),
        },
    )


def _banded_candidates(
    signatures: np.ndarray, config: LshConfig, n_users: int
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate pairs from banded signature collisions (deduplicated)."""
    pair_lo: list[np.ndarray] = []
    pair_hi: list[np.ndarray] = []
    for band in range(config.bands):
        cols = slice(band * config.rows, (band + 1) * config.rows)
        band_sig = signatures[:, cols]
        # Bucket users by identical band signature.
        order = np.lexsort(band_sig.T[::-1])
        sorted_sig = band_sig[order]
        boundaries = np.ones(n_users, dtype=bool)
        boundaries[1:] = np.any(sorted_sig[1:] != sorted_sig[:-1], axis=1)
        starts = np.flatnonzero(boundaries)
        lengths = np.diff(np.append(starts, n_users))
        for start, length in zip(starts, lengths):
            if length < 2:
                continue
            bucket = order[start : start + length]
            # Cap pathological buckets (all-identical signatures).
            n_pairs = length * (length - 1) // 2
            if n_pairs > config.max_pairs_per_bucket:
                bucket = bucket[
                    : int((2 * config.max_pairs_per_bucket) ** 0.5) + 2
                ]
                length = bucket.size
            grid_a = np.repeat(bucket, length)
            grid_b = np.tile(bucket, length)
            upper = grid_a < grid_b
            pair_lo.append(grid_a[upper])
            pair_hi.append(grid_b[upper])
    if not pair_lo:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    lo = np.concatenate(pair_lo)
    hi = np.concatenate(pair_hi)
    keys = lo.astype(np.int64) * n_users + hi
    _, unique_idx = np.unique(keys, return_index=True)
    return lo[unique_idx], hi[unique_idx]
