"""NN-Descent (Dong, Moses, Li — WWW 2011), the paper's main competitor.

NN-Descent starts from a random k-neighbour graph and iteratively applies
a *local join*: for every user, candidates are drawn from the direct
neighbourhoods of its current bidirectional neighbours (in-coming and
out-going), exploiting similarity transitivity.  Two published
optimisations are implemented, both described in Section IV-B of the KIFF
paper:

* **new flags** — only pairs involving at least one neighbour inserted
  since the last iteration are evaluated, so a pair is not recomputed
  every round;
* **pivot strategy** — each unordered pair is evaluated once per
  iteration, and the single similarity updates both endpoints.

Sampling (``rho``) is supported but defaults to off, matching the KIFF
paper's evaluation ("we report results without sampling, as in the
original publication").  Termination follows Dong et al.: stop when the
number of updates in an iteration falls below ``delta * n * k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import ConstructionResult
from ..graph.knn_graph import KnnGraph
from ..graph.updates import merge_topk
from ..instrumentation.trace import ConvergenceTrace
from ..similarity.engine import SimilarityEngine
from .random_graph import random_knn_graph

__all__ = ["NNDescentConfig", "nn_descent"]


@dataclass(frozen=True)
class NNDescentConfig:
    """NN-Descent parameters (defaults follow the original publication)."""

    k: int = 20
    delta: float = 0.001
    rho: float = 1.0
    max_iterations: int = 100
    seed: int = 0
    track_snapshots: bool = False

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if not 0.0 < self.rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {self.rho}")
        if self.delta < 0:
            raise ValueError(f"delta must be >= 0, got {self.delta}")
        if self.max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )


def nn_descent(
    engine: SimilarityEngine, config: NNDescentConfig | None = None
) -> ConstructionResult:
    """Run NN-Descent on *engine*'s dataset."""
    config = config or NNDescentConfig()
    n_users = engine.n_users
    k = config.k
    rng = np.random.default_rng(config.seed)
    trace = ConvergenceTrace(keep_snapshots=config.track_snapshots)

    with engine.timer.phase("preprocessing"):
        # Touch the profile index so its construction cost is charged to
        # preprocessing, the same accounting applied to KIFF.
        _ = engine.index.sizes
    initial = random_knn_graph(engine, k, seed=rng, compute_sims=True)
    neighbors, sims = initial.neighbors.copy(), initial.sims.copy()
    is_new = np.ones((n_users, k), dtype=bool)
    # Iteration 0: the random initial graph (its k*n edge evaluations are
    # already on the counter).  Gives convergence plots their start point.
    trace.record(
        0,
        engine.counter.evaluations,
        initial.edge_count(),
        initial.copy() if config.track_snapshots else None,
    )

    iteration = 0
    while iteration < config.max_iterations:
        iteration += 1
        with engine.timer.phase("candidate_selection"):
            us, vs, sampled_mask = _local_join_pairs(
                neighbors, is_new, config.rho, rng, n_users
            )
            # Sampled entries lose their "new" flag (they have now been
            # used in a join and need not be joined again).
            is_new &= ~sampled_mask
        if us.size == 0:
            iteration -= 1
            break
        pair_sims = engine.batch(us, vs)
        with engine.timer.phase("candidate_selection"):
            old_keys = _edge_keys(neighbors, n_users)
            cand_users = np.concatenate([us, vs])
            cand_ids = np.concatenate([vs, us])
            cand_sims = np.concatenate([pair_sims, pair_sims])
            neighbors, sims, changes = merge_topk(
                neighbors, sims, cand_users, cand_ids, cand_sims
            )
            # Entries not present before this iteration become "new".
            valid = neighbors != -1
            slot_keys = (
                np.arange(n_users, dtype=np.int64)[:, None] * n_users + neighbors
            )
            is_new = valid & ~np.isin(slot_keys, old_keys)
        snapshot = (
            KnnGraph(neighbors, sims) if config.track_snapshots else None
        )
        trace.record(iteration, engine.counter.evaluations, changes, snapshot)
        if changes <= config.delta * n_users * k:
            break

    return ConstructionResult(
        graph=KnnGraph(neighbors, sims),
        iterations=iteration,
        counter=engine.counter,
        timer=engine.timer,
        trace=trace,
        algorithm="nn-descent",
        extras={"k": k, "delta": config.delta, "rho": config.rho},
    )


def _edge_keys(neighbors: np.ndarray, n_users: int) -> np.ndarray:
    """Flat (user, neighbour) keys for the graph's filled slots."""
    users = np.repeat(
        np.arange(n_users, dtype=np.int64), neighbors.shape[1]
    ).reshape(neighbors.shape)
    keys = users * n_users + neighbors
    return keys[neighbors != -1]


def _reverse_adjacency(
    neighbors: np.ndarray, flags: np.ndarray, n_users: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """In-neighbour lists: offsets/values/flags grouped by target user."""
    valid = neighbors != -1
    sources = np.nonzero(valid)[0]
    targets = neighbors[valid]
    edge_flags = flags[valid]
    order = np.argsort(targets, kind="stable")
    targets, sources, edge_flags = (
        targets[order],
        sources[order],
        edge_flags[order],
    )
    offsets = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(np.bincount(targets, minlength=n_users), out=offsets[1:])
    return offsets, sources, edge_flags


def _local_join_pairs(
    neighbors: np.ndarray,
    is_new: np.ndarray,
    rho: float,
    rng: np.random.Generator,
    n_users: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Candidate pairs of one NN-Descent iteration.

    For each user ``u``, let ``new[u]`` / ``old[u]`` be the new/old subsets
    of its *general* neighbourhood (out-neighbours union in-neighbours).
    The local join emits every unordered pair in ``new x new`` and
    ``new x old``.  Returns canonical deduplicated pair arrays plus the
    mask of out-edge slots that were sampled (to clear their flags).
    """
    sampled_mask = is_new.copy()
    if rho < 1.0:
        # Keep each new flag with probability rho (Dong et al.'s sampling).
        sampled_mask &= rng.random(is_new.shape) < rho

    rev_offsets, rev_sources, rev_flags = _reverse_adjacency(
        neighbors, sampled_mask, n_users
    )

    pair_lo: list[np.ndarray] = []
    pair_hi: list[np.ndarray] = []
    for user in range(n_users):
        row = neighbors[user]
        valid = row != -1
        out_ids = row[valid]
        out_new = sampled_mask[user][valid]
        in_slice = slice(rev_offsets[user], rev_offsets[user + 1])
        in_ids = rev_sources[in_slice]
        in_new = rev_flags[in_slice]

        ids = np.concatenate([out_ids, in_ids])
        new_flags = np.concatenate([out_new, in_new])
        if ids.size == 0:
            continue
        # Deduplicate the general neighbourhood; an id is "new" if any of
        # its occurrences is new.
        uniq, inverse = np.unique(ids, return_inverse=True)
        uniq_new = np.zeros(uniq.size, dtype=bool)
        np.maximum.at(uniq_new, inverse, new_flags)
        new_ids = uniq[uniq_new]
        old_ids = uniq[~uniq_new]
        if new_ids.size == 0:
            continue
        # new x new (unordered, no self pairs).
        if new_ids.size > 1:
            grid_a = np.repeat(new_ids, new_ids.size)
            grid_b = np.tile(new_ids, new_ids.size)
            upper = grid_a < grid_b
            pair_lo.append(grid_a[upper])
            pair_hi.append(grid_b[upper])
        # new x old.
        if old_ids.size:
            grid_a = np.repeat(new_ids, old_ids.size)
            grid_b = np.tile(old_ids, new_ids.size)
            keep = grid_a != grid_b
            pair_lo.append(np.minimum(grid_a[keep], grid_b[keep]))
            pair_hi.append(np.maximum(grid_a[keep], grid_b[keep]))

    if not pair_lo:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, sampled_mask
    lo = np.concatenate(pair_lo)
    hi = np.concatenate(pair_hi)
    # Pivot strategy: evaluate each unordered pair once per iteration.
    keys = lo * n_users + hi
    _, unique_idx = np.unique(keys, return_index=True)
    return lo[unique_idx], hi[unique_idx], sampled_mask
