"""Competitor algorithms: brute force, NN-Descent, HyRec, MinHash-LSH."""

from .brute_force import brute_force_knn
from .hyrec import HyRecConfig, hyrec
from .lsh import LshConfig, lsh_knn
from .nndescent import NNDescentConfig, nn_descent
from .random_graph import random_knn_graph

__all__ = [
    "HyRecConfig",
    "LshConfig",
    "NNDescentConfig",
    "brute_force_knn",
    "hyrec",
    "lsh_knn",
    "nn_descent",
    "random_knn_graph",
]
