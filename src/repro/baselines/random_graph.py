"""Random k-neighbour initial graphs.

NN-Descent and HyRec both "start from a random graph" (Sections II, VI of
the paper); Table VII additionally measures the recall of such a random
initialisation against KIFF's top-k-of-RCS initialisation.
"""

from __future__ import annotations

import numpy as np

from ..graph.knn_graph import KnnGraph
from ..similarity.engine import SimilarityEngine

__all__ = ["random_knn_graph"]


def random_knn_graph(
    engine: SimilarityEngine,
    k: int,
    seed: int | np.random.Generator = 0,
    compute_sims: bool = True,
) -> KnnGraph:
    """A graph whose every user gets k distinct uniform-random neighbours.

    With ``compute_sims=True`` the true similarity of each random edge is
    evaluated (and counted — the greedy baselines must pay for scoring
    their initial graph, as their published implementations do).  With
    ``compute_sims=False`` edges carry similarity 0.0; Table VII uses this
    cheaper form since it only inspects neighbour ids.
    """
    n_users = engine.n_users
    if not 0 < k < n_users:
        raise ValueError(f"need 0 < k < n_users, got k={k}, n_users={n_users}")
    rng = np.random.default_rng(seed)
    neighbors = np.empty((n_users, k), dtype=np.int64)
    for user in range(n_users):
        # Sample from [0, n_users - 1) and shift to skip the user itself:
        # uniform over all other users, no self-loops, no duplicates.
        draw = rng.choice(n_users - 1, size=k, replace=False)
        draw[draw >= user] += 1
        neighbors[user] = draw
    if compute_sims:
        us = np.repeat(np.arange(n_users, dtype=np.int64), k)
        vs = neighbors.ravel()
        sims = engine.batch(us, vs).reshape(n_users, k)
    else:
        sims = np.zeros((n_users, k), dtype=np.float64)
    return KnnGraph(neighbors, sims)
