"""HyRec (Boutet et al., Middleware 2014), the paper's second competitor.

HyRec iterates over users, considering as candidates the *neighbours of
neighbours* of each user plus ``r`` uniformly random users ("a pinch of
randomness" against local minima; the KIFF paper evaluates with ``r = 0``
by default because random candidates tripled wall-time for a ~4% recall
gain).  Unlike NN-Descent there is no new-flag bookkeeping, so pairs can
be re-evaluated across iterations — one of the reasons HyRec trails
NN-Descent in recall-per-evaluation in the paper's Figure 8.

Following Section IV-B of the KIFF paper, this implementation adds the
same pivot mechanism as NN-Descent (one evaluation per unordered pair per
iteration, updating both endpoints) and KIFF's early-termination criterion
(stop when average changes per user drop below ``beta``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import ConstructionResult
from ..graph.knn_graph import KnnGraph
from ..graph.updates import merge_topk
from ..instrumentation.trace import ConvergenceTrace
from ..similarity.engine import SimilarityEngine
from .random_graph import random_knn_graph

__all__ = ["HyRecConfig", "hyrec"]


@dataclass(frozen=True)
class HyRecConfig:
    """HyRec parameters (defaults follow the KIFF paper's Section IV-D)."""

    k: int = 20
    r: int = 0
    beta: float = 0.001
    max_iterations: int = 100
    seed: int = 0
    track_snapshots: bool = False

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.r < 0:
            raise ValueError(f"r must be >= 0, got {self.r}")
        if self.beta < 0:
            raise ValueError(f"beta must be >= 0, got {self.beta}")
        if self.max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )


def hyrec(
    engine: SimilarityEngine, config: HyRecConfig | None = None
) -> ConstructionResult:
    """Run HyRec on *engine*'s dataset."""
    config = config or HyRecConfig()
    n_users = engine.n_users
    k = config.k
    rng = np.random.default_rng(config.seed)
    trace = ConvergenceTrace(keep_snapshots=config.track_snapshots)

    with engine.timer.phase("preprocessing"):
        _ = engine.index.sizes
    initial = random_knn_graph(engine, k, seed=rng, compute_sims=True)
    neighbors, sims = initial.neighbors.copy(), initial.sims.copy()
    trace.record(
        0,
        engine.counter.evaluations,
        initial.edge_count(),
        initial.copy() if config.track_snapshots else None,
    )

    iteration = 0
    while iteration < config.max_iterations:
        iteration += 1
        with engine.timer.phase("candidate_selection"):
            us, vs = _candidate_pairs(neighbors, config.r, rng, n_users)
        if us.size == 0:
            iteration -= 1
            break
        pair_sims = engine.batch(us, vs)
        with engine.timer.phase("candidate_selection"):
            cand_users = np.concatenate([us, vs])
            cand_ids = np.concatenate([vs, us])
            cand_sims = np.concatenate([pair_sims, pair_sims])
            neighbors, sims, changes = merge_topk(
                neighbors, sims, cand_users, cand_ids, cand_sims
            )
        snapshot = (
            KnnGraph(neighbors, sims) if config.track_snapshots else None
        )
        trace.record(iteration, engine.counter.evaluations, changes, snapshot)
        if changes / n_users < config.beta:
            break

    return ConstructionResult(
        graph=KnnGraph(neighbors, sims),
        iterations=iteration,
        counter=engine.counter,
        timer=engine.timer,
        trace=trace,
        algorithm="hyrec",
        extras={"k": k, "r": config.r, "beta": config.beta},
    )


def _candidate_pairs(
    neighbors: np.ndarray,
    r: int,
    rng: np.random.Generator,
    n_users: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Neighbour-of-neighbour (+ random) candidate pairs for one iteration.

    For each user ``u``: candidates are the out-neighbours of ``u``'s
    out-neighbours, plus ``r`` random users.  Pairs are canonicalised to
    (min, max) and deduplicated — the pivot mechanism.
    """
    pair_lo: list[np.ndarray] = []
    pair_hi: list[np.ndarray] = []
    for user in range(n_users):
        row = neighbors[user]
        direct = row[row != -1]
        if direct.size == 0 and r == 0:
            continue
        hops = neighbors[direct].ravel()
        hops = hops[hops != -1]
        if r > 0:
            randoms = rng.integers(0, n_users, size=r)
            hops = np.concatenate([hops, randoms])
        candidates = np.unique(hops)
        candidates = candidates[candidates != user]
        if candidates.size == 0:
            continue
        lo = np.minimum(candidates, user)
        hi = np.maximum(candidates, user)
        pair_lo.append(lo)
        pair_hi.append(hi)
    if not pair_lo:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    lo = np.concatenate(pair_lo)
    hi = np.concatenate(pair_hi)
    keys = lo * n_users + hi
    _, unique_idx = np.unique(keys, return_index=True)
    return lo[unique_idx], hi[unique_idx]
