"""Jaccard coefficient over item sets (ratings ignored)."""

from __future__ import annotations

import numpy as np

from .base import ProfileIndex, SimilarityMetric, intersect_profiles

__all__ = ["JaccardSimilarity"]


class JaccardSimilarity(SimilarityMetric):
    """``J(u, v) = |UP_u ∩ UP_v| / |UP_u ∪ UP_v|`` on item *sets*.

    One of the metrics the paper names as satisfying properties (5)/(6)
    (Section II-A), and the second metric of the Figure 7 rank-correlation
    study.
    """

    name = "jaccard"
    satisfies_overlap_properties = True

    def score_pair(self, index: ProfileIndex, u: int, v: int) -> float:
        common, _, _ = intersect_profiles(index, u, v)
        intersection = common.size
        if intersection == 0:
            return 0.0
        union = int(index.sizes[u]) + int(index.sizes[v]) - intersection
        return intersection / union

    def score_batch(
        self, index: ProfileIndex, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        matrix = index.matrix
        return index.kernel.score_pairs(
            self.name,
            matrix.indptr,
            matrix.indices,
            None,
            index.norms,
            index.sizes,
            us,
            vs,
        )

    def score_block(self, index: ProfileIndex, us: np.ndarray) -> np.ndarray:
        intersections = (index.binary[us] @ index.binary.T).toarray()
        unions = (
            index.sizes[us][:, None] + index.sizes[None, :] - intersections
        )
        out = np.zeros_like(intersections)
        mask = unions > 0
        out[mask] = intersections[mask] / unions[mask]
        return out
