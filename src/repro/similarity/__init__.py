"""Similarity metrics and the instrumented evaluation engine."""

from .adamic_adar import AdamicAdarSimilarity
from .base import ProfileIndex, SimilarityMetric, intersect_profiles
from .cosine import CosineSimilarity
from .dice import DiceSimilarity
from .engine import SimilarityEngine, get_metric, metric_names, register_metric
from .jaccard import JaccardSimilarity
from .overlap import OverlapSimilarity
from .pearson import PearsonSimilarity

__all__ = [
    "AdamicAdarSimilarity",
    "CosineSimilarity",
    "DiceSimilarity",
    "JaccardSimilarity",
    "PearsonSimilarity",
    "OverlapSimilarity",
    "ProfileIndex",
    "SimilarityEngine",
    "SimilarityMetric",
    "get_metric",
    "intersect_profiles",
    "metric_names",
    "register_metric",
]
