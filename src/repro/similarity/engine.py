"""The similarity engine: instrumented, chunked metric evaluation.

Every algorithm (KIFF, NN-Descent, HyRec, brute force) evaluates
similarities exclusively through a :class:`SimilarityEngine`, which

* counts every evaluation into a :class:`SimilarityCounter` (the paper's
  scan-rate bookkeeping),
* charges the wall-time to the ``similarity`` phase of a
  :class:`PhaseTimer` (the Figures 1/5 breakdown),
* chunks large batch requests so sparse row slicing never materialises
  gigabyte intermediates.

Because all competitors share this engine, relative costs between
algorithms are apples-to-apples — the property the paper's comparative
claims rest on.
"""

from __future__ import annotations

import numpy as np

from ..datasets.bipartite import BipartiteDataset
from ..instrumentation.counters import SimilarityCounter
from ..layout import SCORE_DTYPE, compact_scores
from ..instrumentation.timers import PhaseTimer
from .adamic_adar import AdamicAdarSimilarity
from .base import ProfileIndex, SimilarityMetric
from .cosine import CosineSimilarity
from .dice import DiceSimilarity
from .jaccard import JaccardSimilarity
from .overlap import OverlapSimilarity
from .pearson import PearsonSimilarity

__all__ = ["SimilarityEngine", "get_metric", "metric_names", "register_metric"]

_METRICS: dict[str, type[SimilarityMetric]] = {
    CosineSimilarity.name: CosineSimilarity,
    JaccardSimilarity.name: JaccardSimilarity,
    AdamicAdarSimilarity.name: AdamicAdarSimilarity,
    OverlapSimilarity.name: OverlapSimilarity,
    DiceSimilarity.name: DiceSimilarity,
    PearsonSimilarity.name: PearsonSimilarity,
}


def register_metric(metric_class: type[SimilarityMetric]) -> type[SimilarityMetric]:
    """Register a custom metric class (usable as a decorator).

    KIFF is "generic, in the sense that it can be applied to any kind of
    nodes, items, or similarity metrics" — this hook is how users plug
    their own metric in by name.
    """
    name = metric_class.name
    if not name or name == "abstract":
        raise ValueError("metric classes must define a non-default 'name'")
    _METRICS[name] = metric_class
    return metric_class


def metric_names() -> list[str]:
    """Registered metric names."""
    return sorted(_METRICS)


def get_metric(metric: str | SimilarityMetric) -> SimilarityMetric:
    """Resolve a metric instance from a name or pass an instance through."""
    if isinstance(metric, SimilarityMetric):
        return metric
    try:
        return _METRICS[metric]()
    except KeyError:
        raise KeyError(
            f"unknown metric {metric!r}; registered metrics: {metric_names()}"
        ) from None


class SimilarityEngine:
    """Instrumented similarity evaluation over one dataset.

    Parameters
    ----------
    dataset:
        The bipartite dataset whose user profiles define the metric space.
    metric:
        Metric name (``"cosine"``, ``"jaccard"``, ``"adamic_adar"``,
        ``"overlap"``) or a :class:`SimilarityMetric` instance.
    counter, timer:
        Optional shared instrumentation; fresh private instances are
        created when omitted.
    batch_size:
        Maximum number of pairs evaluated per sparse-slicing chunk.
    kernel_backend:
        Batch-scoring backend name (``"numpy"``/``"numba"``/``"torch"``)
        or instance bound to the engine's :class:`ProfileIndex`; None
        keeps the index's own selection (env var, then ``"numpy"``).
        See :mod:`repro.similarity.kernels`.
    """

    def __init__(
        self,
        dataset: BipartiteDataset,
        metric: str | SimilarityMetric = "cosine",
        counter: SimilarityCounter | None = None,
        timer: PhaseTimer | None = None,
        batch_size: int = 131_072,
        index: ProfileIndex | None = None,
        n_jobs: int = 1,
        kernel_backend=None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if n_jobs <= 0:
            raise ValueError(f"n_jobs must be positive, got {n_jobs}")
        self.dataset = dataset
        self.metric = get_metric(metric)
        self.counter = counter if counter is not None else SimilarityCounter()
        self.timer = timer if timer is not None else PhaseTimer()
        self.batch_size = batch_size
        self.index = index if index is not None else ProfileIndex(dataset)
        if kernel_backend is not None:
            self.index._kernel_backend = kernel_backend
        self.n_jobs = n_jobs
        #: Lazily created, reused across batch() calls; see close().
        self._pool = None

    @property
    def n_users(self) -> int:
        return self.dataset.n_users

    def rebind(self, dataset: BipartiteDataset, dirty_users=None) -> None:
        """Point the engine at a new (possibly grown) dataset.

        The streaming subsystem mutates its rating store and periodically
        snapshots it; ``rebind`` swaps the snapshot in and refreshes the
        :class:`ProfileIndex` (norms, profile sizes, Adamic-Adar weights
        all depend on the data).  With ``dirty_users`` given, the index
        is updated **in place** via :meth:`ProfileIndex.update`, which
        recomputes only the dirty users' state — the caller guarantees
        every other user's profile is unchanged.  Without it, a full
        index rebuild runs.

        Custom index contract: a caller-supplied :class:`ProfileIndex`
        subclass is preserved — full rebuilds reconstruct it via
        ``type(self.index)``, so subclasses must accept the base
        ``(dataset, maintenance=...)`` constructor signature (a bare
        ``(dataset)`` constructor is tolerated), and subclasses holding
        extra derived state must override ``update`` to refresh it.

        The counter and timer are deliberately kept: a stream's
        evaluation cost accumulates across refreshes, exactly like the
        paper's scan-rate bookkeeping accumulates across iterations.
        """
        self.dataset = dataset
        if dataset is self.index.dataset:
            # Same (immutable) dataset object: the index is already its
            # index — e.g. the first rebuild() after construction, where
            # the builder's cached snapshot IS the seed dataset.
            return
        if dirty_users is not None:
            self.index.update(dataset, dirty_users)
            return
        index_class = type(self.index)
        kernel_backend = self.index._kernel_backend
        try:
            self.index = index_class(
                dataset, maintenance=self.index.maintenance
            )
        except TypeError:
            # Subclasses with a bare (dataset) constructor.
            self.index = index_class(dataset)
        # Full rebuilds construct a fresh index: carry the engine's
        # kernel selection over so refreshes keep the chosen backend.
        self.index._kernel_backend = kernel_backend

    def pair(self, u: int, v: int) -> float:
        """Similarity of one pair (counted as one evaluation).

        The value is rounded through the float32 score boundary
        (:mod:`repro.layout`) so it equals what :meth:`batch` returns
        for the same pair and what graph rows store at rest.
        """
        with self.timer.phase("similarity"):
            value = self.metric.score_pair(self.index, u, v)
        self.counter.add(1)
        return float(np.float32(value))

    def batch(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Similarities for parallel pair arrays (counted per pair).

        Dispatch is decided by the number of ``batch_size`` chunks the
        request splits into: a single chunk (``us.size <= batch_size``,
        boundary included) is always scored directly — there is nothing
        for a thread pool to parallelise — while multi-chunk requests go
        to the pool when ``n_jobs > 1`` and a serial loop otherwise.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError(
                f"us and vs must have equal length, got {us.size} vs {vs.size}"
            )
        if us.size == 0:
            return np.empty(0, dtype=SCORE_DTYPE)
        n_chunks = -(-us.size // self.batch_size)  # ceil division
        with self.timer.phase("similarity"):
            if n_chunks == 1:
                out = self.metric.score_batch(self.index, us, vs)
            elif self.n_jobs > 1:
                out = self._batch_parallel(us, vs)
            else:
                chunks = []
                for start in range(0, us.size, self.batch_size):
                    stop = start + self.batch_size
                    chunks.append(
                        self.metric.score_batch(
                            self.index, us[start:stop], vs[start:stop]
                        )
                    )
                out = np.concatenate(chunks)
        self.counter.add(int(us.size))
        # Kernel-backed metrics already cast at the finalize boundary;
        # this keeps custom registered metrics on the same contract.
        return compact_scores(out)

    def _batch_parallel(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Evaluate a large batch across the engine's thread pool.

        The paper stresses KIFF "allows for a parallel implementation and
        execution, leading to full utilisation of computing resources"
        (Section VI): similarity evaluations of distinct pairs are
        independent, so a batch splits freely.  We use threads, not
        processes — the heavy lifting happens inside NumPy/SciPy kernels,
        and the achievable speed-up depends on how much of that work your
        BLAS/scipy build runs outside the GIL.  Results are bit-identical
        to the serial path (chunk boundaries included).

        The pool is created lazily on the first multi-chunk batch and
        reused for the engine's lifetime — spinning up ``n_jobs``
        threads per call would tax exactly the hot path this exists to
        speed up.  :meth:`close` shuts it down deterministically.
        """
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.n_jobs, thread_name_prefix="repro-engine"
            )
        spans = [
            (start, min(start + self.batch_size, us.size))
            for start in range(0, us.size, self.batch_size)
        ]
        chunks = list(
            self._pool.map(
                lambda span: self.metric.score_batch(
                    self.index, us[span[0] : span[1]], vs[span[0] : span[1]]
                ),
                spans,
            )
        )
        return np.concatenate(chunks)

    def close(self) -> None:
        """Shut the evaluation pool down (idempotent; re-created on use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def block(self, us: np.ndarray, count: bool = True) -> np.ndarray:
        """Dense ``(len(us), n_users)`` similarity block.

        Used by the brute-force baseline; counts ``len(us) * (n_users - 1)``
        evaluations (self-similarities are not counted, matching the
        paper's pair universe).
        """
        us = np.asarray(us, dtype=np.int64)
        with self.timer.phase("similarity"):
            out = self.metric.score_block(self.index, us)
        if count:
            self.counter.add(int(us.size) * (self.n_users - 1))
        return compact_scores(out)

    def scan_rate(self) -> float:
        """Current scan rate of this engine's counter."""
        return self.counter.scan_rate(self.n_users)
