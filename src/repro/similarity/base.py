"""Similarity metric interface and profile index.

All metrics in this package are *item-based* similarities over user
profiles, the setting of the KIFF paper.  Each metric can be evaluated
three ways, and all three must agree:

* ``score_pair`` — one (u, v) pair, via sorted-array intersection.  This is
  the faithful per-pair path used by the reference implementations.
* ``score_batch`` — vectorised over parallel arrays of pairs, via sparse
  row slicing.  This is what the fast algorithm implementations use.
* ``score_block`` — a dense ``len(us) x n_users`` block of similarities,
  used by the brute-force exact KNN.

Metrics also declare whether they satisfy the paper's properties (5) and
(6) (zero similarity without shared items; non-negative similarity with
shared items), which is the precondition for KIFF's optimality guarantee
(Section III-D).
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from ..datasets.bipartite import BipartiteDataset

__all__ = ["ProfileIndex", "SimilarityMetric", "intersect_profiles"]


class ProfileIndex:
    """Precomputed per-user arrays shared by all metrics.

    Holds the rating matrix, its binarised twin, row norms and profile
    sizes, plus lazily computed item weights for Adamic-Adar.  Building one
    index per dataset and sharing it across metrics and algorithms keeps
    the "preprocessing" phase honest: profile construction is paid once,
    exactly as in the paper's measurement protocol.
    """

    def __init__(self, dataset: BipartiteDataset):
        self.dataset = dataset
        self.matrix: sp.csr_matrix = dataset.matrix
        binary = dataset.matrix.copy()
        binary.data = np.ones_like(binary.data)
        self.binary: sp.csr_matrix = binary
        self.norms: np.ndarray = np.sqrt(
            np.asarray(self.matrix.multiply(self.matrix).sum(axis=1)).ravel()
        )
        self.sizes: np.ndarray = np.diff(self.matrix.indptr)
        self._adamic_adar_matrix: sp.csr_matrix | None = None

    @property
    def n_users(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def n_items(self) -> int:
        return int(self.matrix.shape[1])

    def items_of(self, user: int) -> np.ndarray:
        """Sorted item ids of *user* (zero-copy CSR slice)."""
        start, end = self.matrix.indptr[user], self.matrix.indptr[user + 1]
        return self.matrix.indices[start:end]

    def ratings_of(self, user: int) -> np.ndarray:
        """Ratings aligned with :meth:`items_of`."""
        start, end = self.matrix.indptr[user], self.matrix.indptr[user + 1]
        return self.matrix.data[start:end]

    @property
    def adamic_adar_matrix(self) -> sp.csr_matrix:
        """Binary matrix reweighted by ``1 / ln |IP_i|`` per item column.

        Items with ``|IP_i| < 2`` get weight zero: they cannot be shared by
        two users, so they never contribute to a pairwise score, and
        ``1 / ln(1)`` would be infinite.
        """
        if self._adamic_adar_matrix is None:
            item_degrees = np.asarray(self.binary.sum(axis=0)).ravel()
            weights = np.zeros_like(item_degrees, dtype=np.float64)
            mask = item_degrees >= 2
            weights[mask] = 1.0 / np.log(item_degrees[mask])
            weighted = self.binary.copy().astype(np.float64)
            weighted.data = weights[weighted.indices]
            weighted.eliminate_zeros()
            self._adamic_adar_matrix = weighted
        return self._adamic_adar_matrix


def intersect_profiles(
    index: ProfileIndex, u: int, v: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Common items of ``u`` and ``v`` with both users' aligned ratings.

    Returns ``(items, ratings_u, ratings_v)``.  Relies on CSR column
    indices being sorted (a :class:`BipartiteDataset` invariant).
    """
    items_u, items_v = index.items_of(u), index.items_of(v)
    common, idx_u, idx_v = np.intersect1d(
        items_u, items_v, assume_unique=True, return_indices=True
    )
    return common, index.ratings_of(u)[idx_u], index.ratings_of(v)[idx_v]


class SimilarityMetric(abc.ABC):
    """Abstract item-based similarity over user profiles."""

    #: Registry key, e.g. ``"cosine"``.
    name: str = "abstract"

    #: True when the metric satisfies the paper's properties (5) and (6):
    #: sim = 0 without shared items, sim >= 0 with shared items.  KIFF's
    #: gamma=infinity optimality (Section III-D) requires this.
    satisfies_overlap_properties: bool = True

    #: True when ``sim(u, v)`` depends only on the two profiles ``UP_u``
    #: and ``UP_v``.  Metrics with global terms (e.g. Adamic-Adar's
    #: ``1 / ln |IP_i|`` item weights) must set this False so streaming
    #: maintenance knows an item-membership change invalidates every
    #: pair sharing that item, not just pairs involving the rater.
    profile_local: bool = True

    @abc.abstractmethod
    def score_pair(self, index: ProfileIndex, u: int, v: int) -> float:
        """Similarity of one user pair."""

    @abc.abstractmethod
    def score_batch(
        self, index: ProfileIndex, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        """Similarities of parallel pair arrays (vectorised)."""

    @abc.abstractmethod
    def score_block(self, index: ProfileIndex, us: np.ndarray) -> np.ndarray:
        """Dense ``(len(us), n_users)`` similarity block (for brute force)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _pairwise_dot(
    matrix: sp.csr_matrix, other: sp.csr_matrix, us: np.ndarray, vs: np.ndarray
) -> np.ndarray:
    """Row-wise dot products ``matrix[us[j]] . other[vs[j]]`` for each j."""
    rows_u = matrix[us]
    rows_v = other[vs]
    return np.asarray(rows_u.multiply(rows_v).sum(axis=1)).ravel()
