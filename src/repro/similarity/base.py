"""Similarity metric interface and profile index.

All metrics in this package are *item-based* similarities over user
profiles, the setting of the KIFF paper.  Each metric can be evaluated
three ways, and all three must agree:

* ``score_pair`` — one (u, v) pair, via sorted-array intersection.  This is
  the faithful per-pair path used by the reference implementations.
* ``score_batch`` — vectorised over parallel arrays of pairs, via sparse
  row slicing.  This is what the fast algorithm implementations use.
* ``score_block`` — a dense ``len(us) x n_users`` block of similarities,
  used by the brute-force exact KNN.

Metrics also declare whether they satisfy the paper's properties (5) and
(6) (zero similarity without shared items; non-negative similarity with
shared items), which is the precondition for KIFF's optimality guarantee
(Section III-D).
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from ..datasets.bipartite import BipartiteDataset
from ..datasets.mutable import splice_compressed
from ..instrumentation.counters import MaintenanceCounter
from .kernels import KernelBackend, resolve_backend

__all__ = ["ProfileIndex", "SimilarityMetric", "intersect_profiles"]


class ProfileIndex:
    """Precomputed per-user arrays shared by all metrics.

    Holds the rating matrix, its binarised twin, row norms and profile
    sizes, plus lazily computed item weights for Adamic-Adar and the
    mean-centred matrix for Pearson.  Building one index per dataset and
    sharing it across metrics and algorithms keeps the "preprocessing"
    phase honest: profile construction is paid once, exactly as in the
    paper's measurement protocol.

    :meth:`update` rebinds the index to an evolved dataset while
    recomputing only the *dirty* users' state — the streaming subsystem's
    per-refresh path.  Per-user (re)computation work is tallied into
    ``maintenance`` (a shared
    :class:`~repro.instrumentation.counters.MaintenanceCounter`; a
    private one is created when omitted).

    Subclassing contract: custom indexes must keep this constructor
    signature (``dataset``, ``maintenance=None``) so
    :meth:`SimilarityEngine.rebind <repro.similarity.engine.SimilarityEngine.rebind>`
    can rebuild them, and subclasses that precompute extra derived state
    must override :meth:`update` (typically calling ``super().update``)
    to refresh that state — the base implementation only knows about its
    own arrays.
    """

    #: Kernel backend used by every metric's ``score_batch`` on this
    #: index: a name, a :class:`~repro.similarity.kernels.KernelBackend`
    #: instance, or None (resolve lazily: env var, then ``numpy``).
    #: Class-level default so rebuilt/subclassed indexes inherit it;
    #: assign on the instance to select a backend.
    _kernel_backend: str | KernelBackend | None = None

    def __init__(
        self,
        dataset: BipartiteDataset,
        maintenance: MaintenanceCounter | None = None,
    ):
        self.maintenance = (
            maintenance if maintenance is not None else MaintenanceCounter()
        )
        self._build(dataset)

    @property
    def kernel(self) -> KernelBackend:
        """The resolved batch-scoring backend (cached after first use)."""
        backend = resolve_backend(self._kernel_backend)
        self._kernel_backend = backend
        return backend

    def _build(self, dataset: BipartiteDataset) -> None:
        """Cold build: every user's state is (re)computed."""
        self.dataset = dataset
        self.matrix: sp.csr_matrix = dataset.matrix
        binary = dataset.matrix.copy()
        binary.data = np.ones_like(binary.data)
        self.binary: sp.csr_matrix = binary
        self.norms: np.ndarray = np.sqrt(
            np.asarray(self.matrix.multiply(self.matrix).sum(axis=1)).ravel()
        )
        self.sizes: np.ndarray = np.diff(self.matrix.indptr).astype(np.int64)
        self._adamic_adar_matrix: sp.csr_matrix | None = None
        self._adamic_adar_weight_cache: np.ndarray | None = None
        self._item_degrees: np.ndarray | None = None
        self._centered_cache: tuple[sp.csr_matrix, np.ndarray] | None = None
        self.maintenance.index_users_recomputed += dataset.n_users
        self.maintenance.index_builds_full += 1

    @property
    def n_users(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def n_items(self) -> int:
        return int(self.matrix.shape[1])

    def items_of(self, user: int) -> np.ndarray:
        """Sorted item ids of *user* (zero-copy CSR slice)."""
        start, end = self.matrix.indptr[user], self.matrix.indptr[user + 1]
        return self.matrix.indices[start:end]

    def ratings_of(self, user: int) -> np.ndarray:
        """Ratings aligned with :meth:`items_of`."""
        start, end = self.matrix.indptr[user], self.matrix.indptr[user + 1]
        return self.matrix.data[start:end]

    # ------------------------------------------------------------------
    # Shared-buffer transport (the process-executor wire format)
    # ------------------------------------------------------------------
    def to_shared_arrays(self) -> dict[str, np.ndarray]:
        """The arrays a worker needs to rebuild this index, zero-copy.

        The snapshot CSR triplet (under the same ``dataset_*`` keys as
        :func:`~repro.datasets.mutable.snapshot_to_arrays`) plus the
        per-user norms and profile sizes.  The lazily derived metric
        caches (Adamic-Adar weights, the centred matrix) are *not*
        shipped: workers re-derive them on demand from the shared
        matrix, which is bit-identical to the cold build (and therefore
        to this index's incrementally patched caches — the incremental
        parity suite pins that equality).
        """
        matrix = self.matrix
        arrays = {
            "dataset_indptr": matrix.indptr,
            "dataset_indices": matrix.indices,
            "dataset_shape": np.asarray(matrix.shape, dtype=np.int64),
            "norms": self.norms,
            "sizes": self.sizes,
        }
        if matrix.data.size and not np.all(matrix.data == 1.0):
            arrays["dataset_data"] = matrix.data
        else:
            # Binary datasets (the common case for set metrics): the
            # data array is all ones, so ship a one-byte flag instead of
            # nnz redundant float64s and re-derive it worker-side.
            arrays["dataset_data_all_ones"] = np.ones(1, dtype=np.uint8)
        return arrays

    @classmethod
    def from_shared_arrays(
        cls,
        arrays,
        name: str = "shared",
        maintenance: MaintenanceCounter | None = None,
    ) -> "ProfileIndex":
        """Rebuild an index as views over :meth:`to_shared_arrays` output.

        No per-user state is recomputed (norms and sizes arrive
        precomputed; nothing is tallied into ``maintenance``): the heavy
        arrays stay where they are — typically a shared-memory block —
        and only the cheap wrappers (the dataset facade, the binarised
        matrix sharing the CSR index arrays) are constructed.
        """
        from ..datasets.mutable import dataset_from_canonical_arrays

        derived_ones: np.ndarray | None = None
        if "dataset_data" not in arrays:
            # The parent shipped the all-ones flag instead of the data
            # array (see :meth:`to_shared_arrays`): re-derive it here.
            derived_ones = np.ones(
                int(np.asarray(arrays["dataset_indices"]).size),
                dtype=np.float64,
            )
            arrays = dict(arrays)
            arrays["dataset_data"] = derived_ones
        dataset = dataset_from_canonical_arrays(arrays, name=name)
        index = cls.__new__(cls)
        index.maintenance = (
            maintenance if maintenance is not None else MaintenanceCounter()
        )
        index.dataset = dataset
        matrix = dataset.matrix
        index.matrix = matrix
        index.binary = sp.csr_matrix(
            (
                matrix.data if derived_ones is not None
                else np.ones_like(matrix.data),
                matrix.indices,
                matrix.indptr,
            ),
            shape=matrix.shape,
        )
        index.norms = np.asarray(arrays["norms"])
        index.sizes = np.asarray(arrays["sizes"])
        index._adamic_adar_matrix = None
        index._adamic_adar_weight_cache = None
        index._item_degrees = None
        index._centered_cache = None
        return index

    # ------------------------------------------------------------------
    # Lazily derived metric state
    # ------------------------------------------------------------------
    @property
    def adamic_adar_matrix(self) -> sp.csr_matrix:
        """Binary matrix reweighted by ``1 / ln |IP_i|`` per item column.

        Items with ``|IP_i| < 2`` get weight zero: they cannot be shared by
        two users, so they never contribute to a pairwise score, and
        ``1 / ln(1)`` would be infinite.
        """
        if self._adamic_adar_matrix is None:
            item_degrees = np.asarray(self.binary.sum(axis=0)).ravel()
            weights = _adamic_adar_weights(item_degrees)
            weighted = self.binary.copy().astype(np.float64)
            weighted.data = weights[weighted.indices]
            weighted.eliminate_zeros()
            self._adamic_adar_matrix = weighted
            self._item_degrees = item_degrees.astype(np.int64)
        return self._adamic_adar_matrix

    @property
    def adamic_adar_weights(self) -> np.ndarray:
        """Dense ``1 / ln |IP_i|`` per item (zero below degree two).

        The kernel backends' substrate for Adamic-Adar: summing
        ``weights[item]`` over the profile intersection — zero-weight
        items dropped first, mirroring the matrix's
        ``eliminate_zeros()`` — reproduces the historical
        ``adamic_adar_matrix . binary`` row product bit for bit.  Kept
        consistent with :attr:`adamic_adar_matrix` (same degree
        bookkeeping, same incremental invalidation).
        """
        if self._adamic_adar_weight_cache is None:
            self.adamic_adar_matrix  # noqa: B018 - primes _item_degrees
            self._adamic_adar_weight_cache = _adamic_adar_weights(
                self._item_degrees
            )
        return self._adamic_adar_weight_cache

    @property
    def centered(self) -> tuple[sp.csr_matrix, np.ndarray]:
        """Mean-centred matrix and its row norms (Pearson's substrate).

        Each user's stored ratings are shifted by that user's mean; the
        sparsity pattern is preserved (entries centred to zero stay
        stored) so profile intersections keep working unchanged.
        """
        if self._centered_cache is None:
            matrix = self.matrix.copy()
            sizes = np.maximum(self.sizes, 1)
            means = np.asarray(matrix.sum(axis=1)).ravel() / sizes
            row_of_entry = np.repeat(
                np.arange(self.n_users), np.diff(matrix.indptr)
            )
            matrix.data = matrix.data - means[row_of_entry]
            norms = np.sqrt(
                np.asarray(matrix.multiply(matrix).sum(axis=1)).ravel()
            )
            self._centered_cache = (matrix, norms)
        return self._centered_cache

    # ------------------------------------------------------------------
    # Incremental rebind
    # ------------------------------------------------------------------
    def update(self, dataset: BipartiteDataset, dirty_users) -> "ProfileIndex":
        """Rebind to *dataset*, recomputing only *dirty_users*' state.

        Contract: the rows of every user **not** in ``dirty_users`` must
        be identical between the current and the new dataset (a superset
        of the truly changed users is always safe).  New users appended
        by the dataset must all be listed dirty.  Norms, profile sizes
        and the lazily built metric caches (Adamic-Adar weights, the
        centred matrix) are patched for the dirty users only; everything
        else is block-copied.

        Global-weight caveat: Adamic-Adar's ``1 / ln |IP_i|`` weights
        shift for *every* rater of an item whose membership changed.
        Callers honouring :attr:`SimilarityMetric.profile_local` already
        put all those raters in the dirty set (the streaming subsystem's
        documented dirty-all-raters semantics), and the patch verifies
        this cheaply — if a reweighted item has a clean rater the cache
        is dropped and lazily rebuilt instead of being patched wrongly.

        Falls back to a full :meth:`_build` (always exact) when the
        contract cannot hold — population shrank, new users are missing
        from the dirty set, the dirty set spans more than half the
        population, or the clean-row nnz bookkeeping does not line up.
        Returns ``self``.
        """
        old_matrix = self.matrix
        n_old = int(old_matrix.shape[0])
        n_new = dataset.n_users
        dirty = np.unique(
            np.fromiter((int(u) for u in dirty_users), dtype=np.int64)
        )
        usable = (
            n_new >= n_old
            and (dirty.size == 0 or (dirty[0] >= 0 and dirty[-1] < n_new))
            and int((dirty >= n_old).sum()) == n_new - n_old
            and 2 * dirty.size <= n_new
        )
        if usable:
            matrix = dataset.matrix
            old_dirty = dirty[dirty < n_old]
            old_dirty_nnz = int(
                (
                    old_matrix.indptr[old_dirty + 1]
                    - old_matrix.indptr[old_dirty]
                ).sum()
            )
            new_dirty_nnz = int(
                (matrix.indptr[dirty + 1] - matrix.indptr[dirty]).sum()
            )
            usable = (
                int(old_matrix.nnz) - old_dirty_nnz + new_dirty_nnz
                == int(matrix.nnz)
            )
        if not usable:
            self._build(dataset)
            return self

        matrix = dataset.matrix
        norms = np.empty(n_new, dtype=np.float64)
        norms[:n_old] = self.norms
        sizes = np.empty(n_new, dtype=np.int64)
        sizes[:n_old] = self.sizes
        if dirty.size:
            # Recompute through the same scipy expression as the cold
            # build (restricted to the dirty rows) so the patched values
            # are bit-identical — the parity oracle compares sims exactly,
            # and a last-ulp drift from a different summation order would
            # surface there.
            sub = matrix[dirty]
            norms[dirty] = np.sqrt(
                np.asarray(sub.multiply(sub).sum(axis=1)).ravel()
            )
            sizes[dirty] = np.diff(sub.indptr)
        self.dataset = dataset
        self.matrix = matrix
        # Content-identical to the cold build's binarised copy; sharing
        # the index arrays is safe because nothing mutates them.
        self.binary = sp.csr_matrix(
            (np.ones_like(matrix.data), matrix.indices, matrix.indptr),
            shape=matrix.shape,
        )
        self.norms = norms
        self.sizes = sizes
        self._patch_adamic_adar(old_matrix, dirty)
        self._patch_centered(dirty)
        self.maintenance.index_users_recomputed += int(dirty.size)
        self.maintenance.index_updates_incremental += 1
        return self

    def _patch_adamic_adar(
        self, old_matrix: sp.csr_matrix, dirty: np.ndarray
    ) -> None:
        """Patch the lazily built Adamic-Adar cache, if it exists."""
        if self._adamic_adar_matrix is None:
            self._adamic_adar_weight_cache = None
            return
        matrix = self.matrix
        n_old = int(old_matrix.shape[0])
        n_items_new = int(matrix.shape[1])
        old_degrees = self._item_degrees
        degrees = np.zeros(n_items_new, dtype=np.int64)
        degrees[: old_degrees.size] = old_degrees
        old_dirty = dirty[dirty < n_old]
        old_idx = np.concatenate(
            [
                old_matrix.indices[
                    old_matrix.indptr[u] : old_matrix.indptr[u + 1]
                ]
                for u in old_dirty.tolist()
            ]
            or [np.empty(0, dtype=np.int64)]
        )
        new_idx = np.concatenate(
            [
                matrix.indices[matrix.indptr[u] : matrix.indptr[u + 1]]
                for u in dirty.tolist()
            ]
            or [np.empty(0, dtype=np.int64)]
        )
        degrees -= np.bincount(old_idx, minlength=n_items_new).astype(np.int64)
        dirty_rater_counts = np.bincount(
            new_idx, minlength=n_items_new
        ).astype(np.int64)
        degrees += dirty_rater_counts
        old_weights = np.zeros(n_items_new, dtype=np.float64)
        old_weights[: old_degrees.size] = _adamic_adar_weights(old_degrees)
        weights = _adamic_adar_weights(degrees)
        changed = np.flatnonzero(weights != old_weights)
        if np.any(degrees[changed] != dirty_rater_counts[changed]):
            # A reweighted item has a clean rater (profile-local dirtying
            # was in force): the clean rows cannot be patched — drop the
            # cache and let the next Adamic-Adar query rebuild it.
            self._adamic_adar_matrix = None
            self._adamic_adar_weight_cache = None
            self._item_degrees = None
            return
        old_aa = self._adamic_adar_matrix
        replacements = []
        for u in dirty.tolist():
            row_items = matrix.indices[matrix.indptr[u] : matrix.indptr[u + 1]]
            row_weights = weights[row_items]
            keep = row_weights != 0.0  # mirror eliminate_zeros()
            replacements.append((row_items[keep], row_weights[keep]))
        aa_indptr, aa_indices, aa_data = splice_compressed(
            old_aa.indptr,
            old_aa.indices,
            old_aa.data,
            self.n_users,
            dirty,
            replacements,
        )
        self._adamic_adar_matrix = sp.csr_matrix(
            (aa_data, aa_indices, aa_indptr),
            shape=(self.n_users, n_items_new),
        )
        self._adamic_adar_weight_cache = weights
        self._item_degrees = degrees

    def _patch_centered(self, dirty: np.ndarray) -> None:
        """Patch the lazily built mean-centred cache, if it exists."""
        if self._centered_cache is None:
            return
        old_centered, old_norms = self._centered_cache
        n_old = int(old_centered.shape[0])
        matrix = self.matrix
        norms = np.empty(self.n_users, dtype=np.float64)
        norms[:n_old] = old_norms
        # Same scipy expressions as the cold path, on the dirty rows only,
        # so the patched cache is bit-identical (see update()).
        sub = matrix[dirty]
        sub_sizes = np.diff(sub.indptr)
        means = np.asarray(sub.sum(axis=1)).ravel() / np.maximum(sub_sizes, 1)
        centered_sub = sub.copy()
        centered_sub.data = sub.data - np.repeat(means, sub_sizes)
        norms[dirty] = np.sqrt(
            np.asarray(centered_sub.multiply(centered_sub).sum(axis=1)).ravel()
        )
        replacements = []
        for pos in range(dirty.size):
            lo, hi = centered_sub.indptr[pos], centered_sub.indptr[pos + 1]
            replacements.append(
                (centered_sub.indices[lo:hi], centered_sub.data[lo:hi])
            )
        c_indptr, c_indices, c_data = splice_compressed(
            old_centered.indptr,
            old_centered.indices,
            old_centered.data,
            self.n_users,
            dirty,
            replacements,
        )
        self._centered_cache = (
            sp.csr_matrix(
                (c_data, c_indices, c_indptr),
                shape=(self.n_users, self.n_items),
            ),
            norms,
        )


def _adamic_adar_weights(item_degrees: np.ndarray) -> np.ndarray:
    """``1 / ln |IP_i|`` per item, zero for degrees below two."""
    weights = np.zeros(item_degrees.shape[0], dtype=np.float64)
    mask = item_degrees >= 2
    weights[mask] = 1.0 / np.log(item_degrees[mask])
    return weights


def intersect_profiles(
    index: ProfileIndex, u: int, v: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Common items of ``u`` and ``v`` with both users' aligned ratings.

    Returns ``(items, ratings_u, ratings_v)``.  Relies on CSR column
    indices being sorted (a :class:`BipartiteDataset` invariant).
    """
    items_u, items_v = index.items_of(u), index.items_of(v)
    common, idx_u, idx_v = np.intersect1d(
        items_u, items_v, assume_unique=True, return_indices=True
    )
    return common, index.ratings_of(u)[idx_u], index.ratings_of(v)[idx_v]


class SimilarityMetric(abc.ABC):
    """Abstract item-based similarity over user profiles."""

    #: Registry key, e.g. ``"cosine"``.
    name: str = "abstract"

    #: True when the metric satisfies the paper's properties (5) and (6):
    #: sim = 0 without shared items, sim >= 0 with shared items.  KIFF's
    #: gamma=infinity optimality (Section III-D) requires this.
    satisfies_overlap_properties: bool = True

    #: True when ``sim(u, v)`` depends only on the two profiles ``UP_u``
    #: and ``UP_v``.  Metrics with global terms (e.g. Adamic-Adar's
    #: ``1 / ln |IP_i|`` item weights) must set this False so streaming
    #: maintenance knows an item-membership change invalidates every
    #: pair sharing that item, not just pairs involving the rater.
    profile_local: bool = True

    @abc.abstractmethod
    def score_pair(self, index: ProfileIndex, u: int, v: int) -> float:
        """Similarity of one user pair."""

    @abc.abstractmethod
    def score_batch(
        self, index: ProfileIndex, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        """Similarities of parallel pair arrays (vectorised)."""

    @abc.abstractmethod
    def score_block(self, index: ProfileIndex, us: np.ndarray) -> np.ndarray:
        """Dense ``(len(us), n_users)`` similarity block (for brute force)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
