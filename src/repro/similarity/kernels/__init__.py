"""Pluggable compiled similarity-kernel backends for batch scoring.

Every refresh — dynamic, sharded, and process-backed — bottoms out in
``metric.score_batch``, which historically paid scipy fancy indexing
(``matrix[us]``), a temporary ``.multiply()`` product, and Python-level
dispatch per chunk.  This package puts that evaluate stage behind a
narrow backend interface operating on **raw CSR arrays** (the exact
arrays :meth:`ProfileIndex.to_shared_arrays
<repro.similarity.base.ProfileIndex.to_shared_arrays>` publishes into
the shared-memory arena), so the process workers bind a kernel straight
to their zero-copy views with no scipy object construction on the hot
path:

* ``numpy`` (default, always available) — a direct indptr/indices/data
  pairwise kernel (vectorised gather + sorted-key ``searchsorted``
  match + segment reduction).  **Bit-identical** to the historical
  scipy path; the parity corpus keeps gating it.
* ``numba`` — a JIT-compiled ``prange`` merge-intersection kernel per
  metric family (dot-based: cosine/pearson; set-overlap:
  jaccard/dice/overlap, with Adamic-Adar via per-item weights).
  Tolerance-based parity contract.
* ``torch`` — batches pairs into dense index gathers on CPU/GPU
  tensors (the sparse/COO style of bipartite-graph training loops).
  Tolerance-based parity contract.

Selection order (first wins): ``KiffConfig.kernel_backend`` >
``repro stream --kernel-backend`` (which sets the config field) >
the ``REPRO_KERNEL_BACKEND`` environment variable > ``numpy``.
Requesting an unavailable compiled backend degrades gracefully to
``numpy`` with a one-time :class:`RuntimeWarning` per backend name.
"""

from __future__ import annotations

import abc
import os
import warnings

import numpy as np

__all__ = [
    "KernelBackend",
    "KernelUnavailable",
    "available_backends",
    "backend_names",
    "kernel_env_var",
    "register_backend",
    "resolve_backend",
]

#: Environment variable consulted when neither config nor caller names
#: a backend.
KERNEL_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Metric name -> kernel family.  ``dot`` walks aligned data values,
#: ``set`` counts the intersection, ``weighted_set`` sums per-item
#: weights over it.  Metrics outside this table (custom registrations)
#: are not routed through a backend at all.
METRIC_FAMILIES: dict[str, str] = {
    "cosine": "dot",
    "pearson": "dot",
    "jaccard": "set",
    "dice": "set",
    "overlap": "set",
    "adamic_adar": "weighted_set",
}


def kernel_env_var() -> str | None:
    """The backend named by ``REPRO_KERNEL_BACKEND`` (None when unset)."""
    value = os.environ.get(KERNEL_ENV_VAR, "").strip()
    return value or None


class KernelUnavailable(RuntimeError):
    """A backend's dependency (numba, torch) cannot be imported."""


class KernelBackend(abc.ABC):
    """Batch pair scoring over raw CSR arrays.

    One instance is shared process-wide per backend name (they are
    stateless beyond compiled-function caches), bound to a
    :class:`~repro.similarity.base.ProfileIndex` via its
    ``kernel``/``_kernel_backend`` attributes and consulted by every
    metric's ``score_batch``.
    """

    #: Registry key, e.g. ``"numpy"``.
    name: str = "abstract"

    #: True when the backend guarantees bit-identity with the
    #: historical scipy evaluation (the parity-corpus contract); False
    #: means tolerance-based parity only.
    exact: bool = False

    @abc.abstractmethod
    def score_pairs(
        self,
        metric_name: str,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray | None,
        norms: np.ndarray | None,
        sizes: np.ndarray | None,
        us: np.ndarray,
        vs: np.ndarray,
        item_weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """Similarities of parallel pair arrays against one CSR matrix.

        ``indptr``/``indices``/``data`` are the matrix of the metric's
        substrate (the rating matrix for cosine, the *centred* matrix
        for pearson; set metrics pass ``data=None`` — the structure
        alone carries the profiles).  ``norms`` are the matching row
        norms (dot family), ``sizes`` the profile sizes (set family),
        ``item_weights`` the dense per-item weight vector (weighted-set
        family).  Accumulation runs in float64; the returned scores are
        float32, one per pair, cast once at the shared finalize boundary
        (see :mod:`repro.layout`).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _make_numpy() -> KernelBackend:
    from .numpy_backend import NumpyKernelBackend

    return NumpyKernelBackend()


def _make_numba() -> KernelBackend:
    from .numba_backend import NumbaKernelBackend

    return NumbaKernelBackend()


def _make_torch() -> KernelBackend:
    from .torch_backend import TorchKernelBackend

    return TorchKernelBackend()


#: name -> zero-arg factory raising :class:`KernelUnavailable` when the
#: backend's dependency is missing.  Tests monkeypatch entries to force
#: the fallback path deterministically.
_FACTORIES: dict[str, object] = {
    "numpy": _make_numpy,
    "numba": _make_numba,
    "torch": _make_torch,
}

#: Resolved singletons (compiled-function caches live on them).
_INSTANCES: dict[str, KernelBackend] = {}

#: Backend names whose unavailability was already warned about — the
#: "warns exactly once" contract.
_WARNED: set[str] = set()


def register_backend(name: str, factory) -> None:
    """Register a custom backend factory under *name*.

    ``factory`` takes no arguments and returns a
    :class:`KernelBackend`; raise :class:`KernelUnavailable` from it
    when a dependency is missing and resolution will fall back to
    ``numpy`` instead of failing.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)
    _WARNED.discard(name)


def backend_names() -> list[str]:
    """Registered backend names (available or not)."""
    return sorted(_FACTORIES)


def available_backends() -> list[str]:
    """The registered backends whose dependencies import right now."""
    names = []
    for name in backend_names():
        try:
            _instantiate(name)
        except KernelUnavailable:
            continue
        names.append(name)
    return names


def _instantiate(name: str) -> KernelBackend:
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _INSTANCES[name] = _FACTORIES[name]()
    return instance


def resolve_backend(
    name: str | KernelBackend | None = None,
) -> KernelBackend:
    """Resolve *name* to a backend instance, numpy-falling-back.

    ``None`` consults ``REPRO_KERNEL_BACKEND`` and defaults to
    ``numpy``.  An unknown name raises :class:`KeyError`; a known but
    unavailable backend (missing numba/torch) warns **once per name**
    and returns the ``numpy`` backend, so a config written on a machine
    with compiled backends keeps working on one without them.
    """
    if isinstance(name, KernelBackend):
        return name
    requested = name or kernel_env_var() or "numpy"
    if requested not in _FACTORIES:
        raise KeyError(
            f"unknown kernel backend {requested!r}; registered backends: "
            f"{backend_names()}"
        )
    try:
        return _instantiate(requested)
    except KernelUnavailable as exc:
        if requested not in _WARNED:
            _WARNED.add(requested)
            warnings.warn(
                f"kernel backend {requested!r} is unavailable ({exc}); "
                f"falling back to the 'numpy' backend. Install the "
                f"optional dependency (pip install repro-kiff[{requested}]) "
                f"to enable it.",
                RuntimeWarning,
                stacklevel=2,
            )
        return _instantiate("numpy")
