"""Shared final-formula step for every kernel backend.

Backends differ in how they compute the *raw* pair statistic (dot
product, intersection count, weighted intersection sum); the final
metric formula — denominators, zero-guards, dtype promotions — is
applied here so all backends agree with the metric modules' historical
arithmetic exactly.

This is also the **score boundary** of the compact layout
(:mod:`repro.layout`): the formula runs in float64 — the accumulation
dtype the raw statistics arrive in — and the result is cast to float32
exactly once, on the way out.  Every similarity the system stores,
merges or serves is therefore the *same* float32 value whether it was
just computed or read back from a graph row, which is what keeps
incremental maintenance bit-identical to a cold rebuild through
near-tie comparisons.
"""

from __future__ import annotations

import numpy as np

from ...layout import compact_scores
from . import METRIC_FAMILIES

__all__ = ["finalize"]


def finalize(
    metric_name: str,
    raw: np.ndarray,
    norms: np.ndarray | None,
    sizes: np.ndarray | None,
    us: np.ndarray,
    vs: np.ndarray,
) -> np.ndarray:
    """Turn *raw* pair statistics into final float32 similarities.

    ``raw`` is the dot product for the dot family, the float64
    intersection count for the set family, and already the final score
    for the weighted-set family (and for ``overlap``).
    """
    family = METRIC_FAMILIES[metric_name]
    if family == "dot":
        denominators = norms[us] * norms[vs]
        out = np.zeros(raw.shape[0], dtype=np.float64)
        mask = denominators > 0
        out[mask] = raw[mask] / denominators[mask]
        return compact_scores(out)
    if family == "weighted_set" or metric_name == "overlap":
        return compact_scores(raw)
    if metric_name == "jaccard":
        unions = sizes[us] + sizes[vs] - raw
        out = np.zeros(raw.shape[0], dtype=np.float64)
        mask = unions > 0
        out[mask] = raw[mask] / unions[mask]
        return compact_scores(out)
    if metric_name == "dice":
        denominators = sizes[us] + sizes[vs]
        out = np.zeros(raw.shape[0], dtype=np.float64)
        mask = denominators > 0
        out[mask] = 2.0 * raw[mask] / denominators[mask]
        return compact_scores(out)
    raise KeyError(f"no final formula for metric {metric_name!r}")
