"""Tensor batch-scoring backend (optional torch, CPU or CUDA).

Mirrors the numpy backend's shape — flat pair-tagged gathers of both
sides' CSR entries, a sorted composite-key ``searchsorted`` match, and
a per-pair segment reduction — but as dense float64 tensor ops, so the
whole chunk evaluates as a handful of kernel launches on whatever
device torch exposes (CUDA when available, CPU otherwise).  The
reduction uses ``index_add_``, whose accumulation order is
unspecified (atomics on GPU), so this backend advertises
``exact = False`` and is covered by the tolerance-based parity suite.
"""

from __future__ import annotations

import numpy as np

from ...layout import SCORE_DTYPE
from . import METRIC_FAMILIES, KernelBackend, KernelUnavailable
from ._finalize import finalize

__all__ = ["TorchKernelBackend"]


class TorchKernelBackend(KernelBackend):
    """Dense tensor gather/scatter kernels (requires torch)."""

    name = "torch"
    exact = False

    def __init__(self) -> None:
        try:
            import torch
        except ImportError as exc:  # pragma: no cover - torch optional
            raise KernelUnavailable(f"torch is not importable: {exc}") from exc
        self._torch = torch
        self._device = torch.device(
            "cuda" if torch.cuda.is_available() else "cpu"
        )

    def _tensor(self, array: np.ndarray, dtype=None):
        tensor = self._torch.as_tensor(np.ascontiguousarray(array))
        if dtype is not None:
            tensor = tensor.to(dtype)
        return tensor.to(self._device)

    def _gather(self, indptr, indices, users):
        """Flat ``(pair_ids, items, positions)`` tensors (pair-major)."""
        t = self._torch
        starts = indptr[users]
        counts = indptr[users + 1] - starts
        pair_ids = t.repeat_interleave(
            t.arange(users.shape[0], device=self._device), counts
        )
        total = int(counts.sum().item())
        if total == 0:
            empty = t.empty(0, dtype=t.int64, device=self._device)
            return empty, empty, empty
        cum = t.cumsum(counts, 0)
        positions = t.arange(
            total, dtype=t.int64, device=self._device
        ) + t.repeat_interleave(starts - (cum - counts), counts)
        return pair_ids, indices[positions], positions

    def score_pairs(
        self,
        metric_name: str,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray | None,
        norms: np.ndarray | None,
        sizes: np.ndarray | None,
        us: np.ndarray,
        vs: np.ndarray,
        item_weights: np.ndarray | None = None,
    ) -> np.ndarray:
        t = self._torch
        family = METRIC_FAMILIES[metric_name]
        n_pairs = int(us.size)
        if n_pairs == 0:
            return np.empty(0, dtype=SCORE_DTYPE)
        indptr_t = self._tensor(indptr, t.int64)
        indices_t = self._tensor(indices, t.int64)
        us_t = self._tensor(np.asarray(us), t.int64)
        vs_t = self._tensor(np.asarray(vs), t.int64)
        pair_u, items_u, pos_u = self._gather(indptr_t, indices_t, us_t)
        pair_v, items_v, pos_v = self._gather(indptr_t, indices_t, vs_t)
        raw = t.zeros(n_pairs, dtype=t.float64, device=self._device)
        if items_u.numel() and items_v.numel():
            span = int(indices_t.max().item()) + 1
            keys_u = pair_u * span + items_u
            keys_v = pair_v * span + items_v
            positions = t.searchsorted(keys_u, keys_v)
            clipped = t.clamp(positions, max=keys_u.shape[0] - 1)
            hit = keys_u[clipped] == keys_v
            matched_v = t.nonzero(hit).ravel()
            matched_u = positions[matched_v]
            if family == "dot":
                data_t = self._tensor(data, t.float64)
                products = (
                    data_t[pos_u[matched_u]] * data_t[pos_v[matched_v]]
                )
            elif family == "weighted_set":
                weights_t = self._tensor(item_weights, t.float64)
                products = weights_t[items_v[matched_v]]
            else:
                products = t.ones(
                    matched_v.shape[0], dtype=t.float64, device=self._device
                )
            raw.index_add_(0, pair_v[matched_v], products)
        return finalize(
            metric_name,
            raw.cpu().numpy(),
            norms,
            sizes,
            np.asarray(us),
            np.asarray(vs),
        )
