"""The default batch-scoring backend: direct CSR pairwise kernels.

Replaces the historical ``matrix[us].multiply(matrix[vs]).sum(axis=1)``
evaluation, which built two temporary CSR matrices per chunk (scipy
fancy indexing is a sparse matmat against an extraction matrix) before
merging them.  This backend works on the raw indptr/indices/data arrays
instead:

1. **Gather** — both sides' profile entries are pulled into flat
   pair-tagged arrays with one vectorised fancy index (no sparse
   intermediates).
2. **Match** — each entry is keyed ``pair_id * span + item``; both key
   arrays are sorted by construction (pair-major, items ascending
   within a profile — a CSR invariant), so one ``searchsorted`` finds
   every common item of every pair.
3. **Reduce** — matched products (or weights, or a plain count) are
   segment-summed per pair with ``np.add.reduceat``, whose inner
   accumulation loop is the same blocked float64 reduction scipy's
   row-sum runs over a CSR row.  Feeding it the **identical value
   sequence** scipy summed therefore reproduces the historical result
   bit for bit (asserted by the parity suite) — which is also why the
   weighted family drops zero-weight entries before reducing: the
   historical Adamic-Adar matrix had them ``eliminate_zeros()``-ed
   away, and blocked summation is not invariant to interleaved
   ``+0.0`` terms.
"""

from __future__ import annotations

import numpy as np

from ...layout import SCORE_DTYPE
from . import METRIC_FAMILIES, KernelBackend
from ._finalize import finalize

__all__ = ["NumpyKernelBackend"]


def _gather(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray | None,
    users: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Flat ``(pair_ids, items, values)`` of every user's profile entries.

    ``pair_ids`` tags each entry with the position of its user in
    *users* (pair-major order); items stay ascending within one user —
    so the flat arrays are sorted by ``(pair_id, item)``.
    """
    starts = indptr[users].astype(np.int64, copy=False)
    counts = indptr[users + 1].astype(np.int64, copy=False) - starts
    pair_ids = np.repeat(np.arange(users.size, dtype=np.int64), counts)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return pair_ids, empty, (np.empty(0) if data is not None else None)
    cum = np.cumsum(counts)
    pos = np.arange(total, dtype=np.int64) + np.repeat(
        starts - (cum - counts), counts
    )
    items = indices[pos].astype(np.int64, copy=False)
    values = data[pos] if data is not None else None
    return pair_ids, items, values


def _segment_sum(
    values: np.ndarray, pair_ids: np.ndarray, n_pairs: int
) -> np.ndarray:
    """Per-pair sums of *values* (tagged by *pair_ids*, pair-major order).

    ``np.add.reduceat`` runs the ufunc's blocked inner loop over each
    contiguous segment — the same accumulation scipy's CSR row-sum
    applies to a row's entries.  Identical value sequence in, identical
    float64 sum out: the bit-identity contract holds as long as callers
    pass exactly the values the historical scipy path summed.
    """
    out = np.zeros(n_pairs, dtype=np.float64)
    if values.size == 0:
        return out
    counts = np.bincount(pair_ids, minlength=n_pairs)
    nonempty = np.flatnonzero(counts)
    segment_starts = (np.cumsum(counts) - counts)[nonempty]
    out[nonempty] = np.add.reduceat(values, segment_starts)
    return out


def _match_pairs(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray | None,
    us: np.ndarray,
    vs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Common items of each pair: ``(pair_ids, items, products)``.

    Products are aligned ``data_u * data_v`` (None when *data* is);
    all outputs are in ``(pair_id, item)`` order — the order scipy's
    sparse merge produced them in.
    """
    pair_u, items_u, values_u = _gather(indptr, indices, data, us)
    pair_v, items_v, values_v = _gather(indptr, indices, data, vs)
    if items_u.size == 0 or items_v.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, (np.empty(0) if data is not None else None)
    span = np.int64(max(int(items_u.max()), int(items_v.max())) + 1)
    keys_u = pair_u * span + items_u
    keys_v = pair_v * span + items_v
    # Both key arrays are strictly increasing (pair-major, unique sorted
    # items per profile), so one binary search matches every entry.
    positions = np.searchsorted(keys_u, keys_v)
    clipped = np.minimum(positions, keys_u.size - 1)
    hit = keys_u[clipped] == keys_v
    matched_v = np.flatnonzero(hit)
    matched_u = positions[matched_v]
    products = None
    if data is not None:
        products = values_u[matched_u] * values_v[matched_v]
    return pair_v[matched_v], items_v[matched_v], products


class NumpyKernelBackend(KernelBackend):
    """Vectorised pure-numpy pairwise kernels (always available, exact)."""

    name = "numpy"
    exact = True

    def score_pairs(
        self,
        metric_name: str,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray | None,
        norms: np.ndarray | None,
        sizes: np.ndarray | None,
        us: np.ndarray,
        vs: np.ndarray,
        item_weights: np.ndarray | None = None,
    ) -> np.ndarray:
        family = METRIC_FAMILIES[metric_name]
        n_pairs = int(us.size)
        if n_pairs == 0:
            return np.empty(0, dtype=SCORE_DTYPE)
        if family == "dot":
            pair_ids, _, products = _match_pairs(indptr, indices, data, us, vs)
            raw = _segment_sum(products, pair_ids, n_pairs)
        elif family == "weighted_set":
            pair_ids, items, _ = _match_pairs(indptr, indices, None, us, vs)
            weights = item_weights[items]
            # The historical weighted matrix was eliminate_zeros()-ed,
            # so scipy never summed the zero-weight items; drop them
            # here too — blocked summation is sensitive to interleaved
            # +0.0 terms (they shift the accumulator blocks).
            nonzero = np.flatnonzero(weights)
            raw = _segment_sum(weights[nonzero], pair_ids[nonzero], n_pairs)
        else:
            # Set family: the historical path summed 1.0 per common
            # item, which is exact in float64 — a bincount is the same
            # number.
            pair_ids, _, _ = _match_pairs(indptr, indices, None, us, vs)
            raw = np.bincount(pair_ids, minlength=n_pairs).astype(np.float64)
        return finalize(metric_name, raw, norms, sizes, us, vs)
