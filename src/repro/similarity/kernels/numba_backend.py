"""JIT-compiled ``prange`` merge-intersection kernels (optional numba).

One compiled kernel per metric family, each a classic sorted-merge
intersection over two CSR rows.  The merge walks both index slices
once (O(|u| + |v|) per pair, no gathers, no temporaries) and the outer
loop is a ``prange`` over pairs, so chunks parallelise across cores
inside one worker process.  Dispatch is numba-lazy: the first call per
CSR index dtype (int32 vs int64) pays compilation, later calls reuse
the specialisation cached on this process-wide singleton.

Accumulation order differs from the numpy backend's ``reduceat`` only
in start value (``0.0 + x1`` vs ``x1``), which is exact for the first
term — but compiled math may still fuse or reassociate, so this
backend advertises ``exact = False`` and is gated by the
tolerance-based parity suite.
"""

from __future__ import annotations

import numpy as np

from ...layout import SCORE_DTYPE
from . import METRIC_FAMILIES, KernelBackend, KernelUnavailable
from ._finalize import finalize

__all__ = ["NumbaKernelBackend"]


def _compile_kernels():
    """Import numba and define the three family kernels.

    Raises :class:`KernelUnavailable` when numba cannot be imported;
    compilation itself is deferred until the first call (lazy
    dispatch), so constructing the backend stays cheap.
    """
    try:
        from numba import njit, prange
    except ImportError as exc:  # pragma: no cover - numba installed in CI
        raise KernelUnavailable(f"numba is not importable: {exc}") from exc

    @njit(parallel=True, nogil=True, cache=False)
    def dot_pairs(indptr, indices, data, us, vs, out):
        for p in prange(us.shape[0]):
            i = indptr[us[p]]
            i_end = indptr[us[p] + 1]
            j = indptr[vs[p]]
            j_end = indptr[vs[p] + 1]
            acc = 0.0
            while i < i_end and j < j_end:
                a = indices[i]
                b = indices[j]
                if a == b:
                    acc += data[i] * data[j]
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1
            out[p] = acc

    @njit(parallel=True, nogil=True, cache=False)
    def count_pairs(indptr, indices, us, vs, out):
        for p in prange(us.shape[0]):
            i = indptr[us[p]]
            i_end = indptr[us[p] + 1]
            j = indptr[vs[p]]
            j_end = indptr[vs[p] + 1]
            acc = 0.0
            while i < i_end and j < j_end:
                a = indices[i]
                b = indices[j]
                if a == b:
                    acc += 1.0
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1
            out[p] = acc

    @njit(parallel=True, nogil=True, cache=False)
    def weighted_pairs(indptr, indices, weights, us, vs, out):
        for p in prange(us.shape[0]):
            i = indptr[us[p]]
            i_end = indptr[us[p] + 1]
            j = indptr[vs[p]]
            j_end = indptr[vs[p] + 1]
            acc = 0.0
            while i < i_end and j < j_end:
                a = indices[i]
                b = indices[j]
                if a == b:
                    acc += weights[a]
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1
            out[p] = acc

    return dot_pairs, count_pairs, weighted_pairs


class NumbaKernelBackend(KernelBackend):
    """Parallel compiled CSR merge kernels (requires numba)."""

    name = "numba"
    exact = False

    def __init__(self) -> None:
        self._dot, self._count, self._weighted = _compile_kernels()

    def score_pairs(
        self,
        metric_name: str,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray | None,
        norms: np.ndarray | None,
        sizes: np.ndarray | None,
        us: np.ndarray,
        vs: np.ndarray,
        item_weights: np.ndarray | None = None,
    ) -> np.ndarray:
        family = METRIC_FAMILIES[metric_name]
        n_pairs = int(us.size)
        raw = np.empty(n_pairs, dtype=np.float64)
        if n_pairs == 0:
            return np.empty(0, dtype=SCORE_DTYPE)
        us64 = np.ascontiguousarray(us, dtype=np.int64)
        vs64 = np.ascontiguousarray(vs, dtype=np.int64)
        if family == "dot":
            self._dot(indptr, indices, data, us64, vs64, raw)
        elif family == "weighted_set":
            self._weighted(indptr, indices, item_weights, us64, vs64, raw)
        else:
            self._count(indptr, indices, us64, vs64, raw)
        return finalize(metric_name, raw, norms, sizes, us64, vs64)
