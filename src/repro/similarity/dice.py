"""Sørensen-Dice coefficient over item sets."""

from __future__ import annotations

import numpy as np

from .base import ProfileIndex, SimilarityMetric, intersect_profiles

__all__ = ["DiceSimilarity"]


class DiceSimilarity(SimilarityMetric):
    """``Dice(u, v) = 2 |UP_u ∩ UP_v| / (|UP_u| + |UP_v|)``.

    A close cousin of Jaccard (monotone transformation of it), included
    because it is common in set-based recommendation and satisfies the
    paper's properties (5)/(6), so KIFF's optimality guarantee carries
    over unchanged.
    """

    name = "dice"
    satisfies_overlap_properties = True

    def score_pair(self, index: ProfileIndex, u: int, v: int) -> float:
        common, _, _ = intersect_profiles(index, u, v)
        if common.size == 0:
            return 0.0
        return 2.0 * common.size / (int(index.sizes[u]) + int(index.sizes[v]))

    def score_batch(
        self, index: ProfileIndex, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        matrix = index.matrix
        return index.kernel.score_pairs(
            self.name,
            matrix.indptr,
            matrix.indices,
            None,
            index.norms,
            index.sizes,
            us,
            vs,
        )

    def score_block(self, index: ProfileIndex, us: np.ndarray) -> np.ndarray:
        intersections = (index.binary[us] @ index.binary.T).toarray()
        denominators = index.sizes[us][:, None] + index.sizes[None, :]
        out = np.zeros_like(intersections)
        mask = denominators > 0
        out[mask] = 2.0 * intersections[mask] / denominators[mask]
        return out
