"""Adamic-Adar coefficient: common items weighted by rarity."""

from __future__ import annotations

import numpy as np

from .base import ProfileIndex, SimilarityMetric, intersect_profiles

__all__ = ["AdamicAdarSimilarity"]


class AdamicAdarSimilarity(SimilarityMetric):
    """``AA(u, v) = sum over common items i of 1 / ln |IP_i|``.

    The third metric the paper lists in Section II-A.  Rare common items
    count more than popular ones.  Items rated by a single user get weight
    zero (they can never be shared, and ``1/ln(1)`` is undefined).
    """

    name = "adamic_adar"
    satisfies_overlap_properties = True
    #: The 1/ln|IP_i| weights depend on global item popularity, not just
    #: the two profiles being compared (see SimilarityMetric.profile_local).
    profile_local = False

    def score_pair(self, index: ProfileIndex, u: int, v: int) -> float:
        common, _, _ = intersect_profiles(index, u, v)
        if common.size == 0:
            return 0.0
        weighted = index.adamic_adar_matrix
        # Weights live in the CSR data of the reweighted matrix; look them
        # up through user u's row, whose indices are the sorted item ids.
        start, end = weighted.indptr[u], weighted.indptr[u + 1]
        row_items = weighted.indices[start:end]
        row_weights = weighted.data[start:end]
        positions = np.searchsorted(row_items, common)
        # Items may be missing from the weighted row (weight-zero items are
        # eliminated); guard the lookup.
        valid = (positions < row_items.size) & (
            row_items[np.minimum(positions, row_items.size - 1)] == common
        )
        return float(row_weights[positions[valid]].sum())

    def score_batch(
        self, index: ProfileIndex, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        # The kernel sums weights[item] over the profile intersection
        # with zero-weight items dropped first, mirroring the
        # eliminate_zeros() of the historical aa_matrix — the value
        # sequence scipy summed, hence the same float64 result bit for
        # bit on the numpy backend.
        matrix = index.matrix
        return index.kernel.score_pairs(
            self.name,
            matrix.indptr,
            matrix.indices,
            None,
            None,
            index.sizes,
            us,
            vs,
            item_weights=index.adamic_adar_weights,
        )

    def score_block(self, index: ProfileIndex, us: np.ndarray) -> np.ndarray:
        return (index.adamic_adar_matrix[us] @ index.binary.T).toarray()
