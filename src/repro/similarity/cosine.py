"""Cosine similarity over rating profiles — the paper's default metric."""

from __future__ import annotations

import numpy as np

from .base import ProfileIndex, SimilarityMetric, intersect_profiles

__all__ = ["CosineSimilarity"]


class CosineSimilarity(SimilarityMetric):
    """``cos(u, v) = <UP_u, UP_v> / (||UP_u|| * ||UP_v||)``.

    With non-negative ratings (all datasets in this library), cosine
    satisfies properties (5) and (6) of the paper: it is zero exactly when
    the profiles share no item, and non-negative otherwise — the
    precondition for KIFF's pruning to be lossless.
    """

    name = "cosine"
    satisfies_overlap_properties = True

    def score_pair(self, index: ProfileIndex, u: int, v: int) -> float:
        denominator = index.norms[u] * index.norms[v]
        if denominator == 0.0:
            return 0.0
        _, ratings_u, ratings_v = intersect_profiles(index, u, v)
        if ratings_u.size == 0:
            return 0.0
        return float(np.dot(ratings_u, ratings_v) / denominator)

    def score_batch(
        self, index: ProfileIndex, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        matrix = index.matrix
        return index.kernel.score_pairs(
            self.name,
            matrix.indptr,
            matrix.indices,
            matrix.data,
            index.norms,
            index.sizes,
            us,
            vs,
        )

    def score_block(self, index: ProfileIndex, us: np.ndarray) -> np.ndarray:
        dots = (index.matrix[us] @ index.matrix.T).toarray()
        denominators = np.outer(index.norms[us], index.norms)
        out = np.zeros_like(dots)
        mask = denominators > 0
        out[mask] = dots[mask] / denominators[mask]
        return out
