"""Mean-centred cosine (Pearson-style) similarity — a counter-example.

Collaborative-filtering systems often mean-centre each user's ratings
before computing cosine similarity (the "Pearson" variant of user-based
CF).  Crucially, this metric **violates** the KIFF paper's property (6):
two users who share items can have *negative* similarity (they rated the
shared items on opposite sides of their means).  It still satisfies
property (5) — no shared items means a zero numerator.

It is included deliberately:

* KIFF still *works* with it (candidates still require shared items),
  but the optimality guarantee of Section III-D weakens: a negative-
  similarity candidate can displace nothing, yet zero-similarity
  non-candidates can never be ranked above it either, so the guarantee
  in fact survives for the top-k *positive* band only.  The test suite
  pins this nuance.
* It documents, in code, why the paper states its guarantee in terms of
  properties (5)/(6) instead of "any metric".
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .base import ProfileIndex, SimilarityMetric, intersect_profiles

__all__ = ["PearsonSimilarity"]


class PearsonSimilarity(SimilarityMetric):
    """Cosine similarity of mean-centred rating profiles.

    Each user's stored ratings are shifted by that user's mean rating;
    the similarity is the cosine of the centred vectors restricted to
    their stored entries.
    """

    name = "pearson"
    satisfies_overlap_properties = False

    def _centered(self, index: ProfileIndex) -> tuple[sp.csr_matrix, np.ndarray]:
        # The centred matrix lives on the index (like the Adamic-Adar
        # weights) so incremental ProfileIndex.update can patch it.
        return index.centered

    def score_pair(self, index: ProfileIndex, u: int, v: int) -> float:
        matrix, norms = self._centered(index)
        denominator = norms[u] * norms[v]
        if denominator == 0.0:
            return 0.0
        common, _, _ = intersect_profiles(index, u, v)
        if common.size == 0:
            return 0.0
        row_u = matrix.getrow(u)
        row_v = matrix.getrow(v)
        return float(row_u.multiply(row_v).sum() / denominator)

    def score_batch(
        self, index: ProfileIndex, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        matrix, norms = self._centered(index)
        return index.kernel.score_pairs(
            self.name,
            matrix.indptr,
            matrix.indices,
            matrix.data,
            norms,
            index.sizes,
            us,
            vs,
        )

    def score_block(self, index: ProfileIndex, us: np.ndarray) -> np.ndarray:
        matrix, norms = self._centered(index)
        dots = (matrix[us] @ matrix.T).toarray()
        denominators = np.outer(norms[us], norms)
        out = np.zeros_like(dots)
        mask = denominators > 0
        out[mask] = dots[mask] / denominators[mask]
        return out
