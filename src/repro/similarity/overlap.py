"""Common-item count — the coarse metric of KIFF's counting phase."""

from __future__ import annotations

import numpy as np

from .base import ProfileIndex, SimilarityMetric, intersect_profiles

__all__ = ["OverlapSimilarity"]


class OverlapSimilarity(SimilarityMetric):
    """``overlap(u, v) = |UP_u ∩ UP_v|`` (plain common-item count).

    This is the cheap integer approximation KIFF uses to rank candidate
    sets (Section II-A).  Exposing it as a full metric lets tests verify
    that RCS ordering equals overlap ordering, and lets users run KIFF
    *with* overlap as the refinement metric (degenerating to pure counting).
    """

    name = "overlap"
    satisfies_overlap_properties = True

    def score_pair(self, index: ProfileIndex, u: int, v: int) -> float:
        common, _, _ = intersect_profiles(index, u, v)
        return float(common.size)

    def score_batch(
        self, index: ProfileIndex, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        matrix = index.matrix
        return index.kernel.score_pairs(
            self.name,
            matrix.indptr,
            matrix.indices,
            None,
            index.norms,
            index.sizes,
            us,
            vs,
        )

    def score_block(self, index: ProfileIndex, us: np.ndarray) -> np.ndarray:
        return (index.binary[us] @ index.binary.T).toarray()
