"""Unit tests for the counting phase (Ranked Candidate Sets)."""

import numpy as np
import pytest

from repro.core.rcs import build_rcs, build_rcs_reference
from tests.conftest import random_dataset


def _as_triples(rcs):
    out = []
    for user in range(rcs.n_users):
        cands = rcs.candidates_of(user)
        counts = rcs.counts_of(user)
        out.append((user, cands.tolist(), counts.tolist()))
    return out


class TestToyExample:
    def test_figure2_rcs(self, toy_dataset):
        """Alice and Bob share coffee; Carl and Dave share shopping."""
        rcs = build_rcs(toy_dataset)
        # Pivot: lower id stores the pair.
        assert rcs.candidates_of(0).tolist() == [1]  # Alice -> Bob
        assert rcs.counts_of(0).tolist() == [1]
        assert rcs.candidates_of(1).tolist() == []
        assert rcs.candidates_of(2).tolist() == [3]  # Carl -> Dave
        assert rcs.candidates_of(3).tolist() == []

    def test_counts_are_shared_item_counts(self, rated_dataset):
        rcs = build_rcs(rated_dataset)
        # Users 0 and 3 share items {0, 1, 2}.
        idx = rcs.candidates_of(0).tolist().index(3)
        assert rcs.counts_of(0)[idx] == 3

    def test_ordering_by_count_then_id(self, rated_dataset):
        rcs = build_rcs(rated_dataset)
        for user in range(rcs.n_users):
            counts = rcs.counts_of(user)
            cands = rcs.candidates_of(user)
            for j in range(1, counts.size):
                assert counts[j - 1] >= counts[j]
                if counts[j - 1] == counts[j]:
                    assert cands[j - 1] < cands[j]


class TestPivot:
    def test_pivot_candidates_have_higher_ids(self, tiny_wikipedia):
        rcs = build_rcs(tiny_wikipedia, pivot=True)
        for user in range(0, rcs.n_users, 17):
            cands = rcs.candidates_of(user)
            assert np.all(cands > user)

    def test_symmetric_rcs_doubles_entries(self, tiny_wikipedia):
        pivoted = build_rcs(tiny_wikipedia, pivot=True)
        full = build_rcs(tiny_wikipedia, pivot=False)
        assert full.total_candidates == 2 * pivoted.total_candidates

    def test_symmetric_rcs_excludes_self(self, tiny_wikipedia):
        full = build_rcs(tiny_wikipedia, pivot=False)
        for user in range(0, full.n_users, 23):
            assert user not in full.candidates_of(user)

    def test_symmetric_rcs_is_symmetric(self, rated_dataset):
        full = build_rcs(rated_dataset, pivot=False)
        for u in range(full.n_users):
            for v in full.candidates_of(u):
                assert u in full.candidates_of(int(v))


class TestReferenceEquivalence:
    @pytest.mark.parametrize("pivot", [True, False])
    def test_fast_equals_reference(self, pivot):
        ds = random_dataset(n_users=40, n_items=30, density=0.15, seed=8)
        fast = build_rcs(ds, pivot=pivot)
        reference = build_rcs_reference(ds, pivot=pivot)
        assert _as_triples(fast) == _as_triples(reference)

    def test_fast_equals_reference_with_ratings(self):
        ds = random_dataset(
            n_users=30, n_items=25, density=0.2, seed=9, ratings=True
        )
        fast = build_rcs(ds, min_rating=3.0)
        reference = build_rcs_reference(ds, min_rating=3.0)
        assert _as_triples(fast) == _as_triples(reference)

    def test_fast_equals_reference_on_preset(self, tiny_arxiv):
        fast = build_rcs(tiny_arxiv)
        reference = build_rcs_reference(tiny_arxiv)
        assert np.array_equal(fast.offsets, reference.offsets)
        assert np.array_equal(fast.candidates, reference.candidates)
        assert np.array_equal(fast.counts, reference.counts)


class TestMinRating:
    def test_threshold_shrinks_rcs(self):
        ds = random_dataset(
            n_users=50, n_items=40, density=0.2, seed=10, ratings=True
        )
        base = build_rcs(ds)
        pruned = build_rcs(ds, min_rating=4.0)
        assert pruned.total_candidates < base.total_candidates

    def test_threshold_one_keeps_everything_for_counts(self):
        ds = random_dataset(
            n_users=30, n_items=30, density=0.2, seed=11, ratings=True
        )
        base = build_rcs(ds)
        pruned = build_rcs(ds, min_rating=1.0)
        assert _as_triples(base) == _as_triples(pruned)

    def test_counts_reflect_thresholded_items_only(self):
        from repro.datasets import BipartiteDataset

        ds = BipartiteDataset.from_profiles(
            [{0: 5.0, 1: 1.0}, {0: 5.0, 1: 1.0}], n_items=2
        )
        pruned = build_rcs(ds, min_rating=2.0)
        assert pruned.counts_of(0).tolist() == [1]  # only item 0 counts


class TestStructure:
    def test_stripped_drops_counts(self, tiny_wikipedia):
        rcs = build_rcs(tiny_wikipedia)
        stripped = rcs.stripped()
        assert stripped.counts is None
        with pytest.raises(ValueError, match="stripped"):
            stripped.counts_of(0)
        # Order is preserved.
        assert np.array_equal(stripped.candidates, rcs.candidates)

    def test_strip_flag_at_build_time(self, toy_dataset):
        assert build_rcs(toy_dataset, strip=True).counts is None

    def test_sizes_match_offsets(self, tiny_wikipedia):
        rcs = build_rcs(tiny_wikipedia)
        sizes = rcs.sizes()
        assert sizes.sum() == rcs.total_candidates
        assert sizes.size == rcs.n_users

    def test_avg_size(self, toy_dataset):
        rcs = build_rcs(toy_dataset)
        assert rcs.avg_size == pytest.approx(2 / 4)

    def test_max_scan_rate_formula(self, tiny_wikipedia):
        rcs = build_rcs(tiny_wikipedia)
        expected = 2.0 * rcs.avg_size / (rcs.n_users - 1)
        assert rcs.max_scan_rate() == pytest.approx(expected)

    def test_candidates_have_at_least_one_shared_item(self, tiny_wikipedia):
        """The defining RCS property: every candidate shares >= 1 item."""
        rcs = build_rcs(tiny_wikipedia)
        for user in range(0, rcs.n_users, 29):
            items_u = set(tiny_wikipedia.user_items(user).tolist())
            for v in rcs.candidates_of(user):
                items_v = set(tiny_wikipedia.user_items(int(v)).tolist())
                assert items_u & items_v

    def test_no_sharing_user_pair_absent(self, tiny_wikipedia):
        """Users not in each other's RCS (either direction) share nothing."""
        rcs = build_rcs(tiny_wikipedia, pivot=False)
        rng = np.random.default_rng(0)
        for _ in range(50):
            u, v = rng.integers(0, tiny_wikipedia.n_users, size=2)
            if u == v:
                continue
            if int(v) not in rcs.candidates_of(int(u)):
                items_u = set(tiny_wikipedia.user_items(int(u)).tolist())
                items_v = set(tiny_wikipedia.user_items(int(v)).tolist())
                assert not (items_u & items_v)


class TestCountCandidates:
    """count_rcs_candidates must agree with build_rcs everywhere — it is
    the streaming workload's exact rebuild-cost accounting."""

    @pytest.mark.parametrize("pivot", [True, False])
    @pytest.mark.parametrize("min_rating", [None, 3.0])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_build_rcs(self, pivot, min_rating, seed):
        from repro.core.rcs import count_rcs_candidates

        ds = random_dataset(
            n_users=40, n_items=30, density=0.15, seed=seed, ratings=True
        )
        expected = build_rcs(
            ds, pivot=pivot, min_rating=min_rating
        ).total_candidates
        assert count_rcs_candidates(ds, pivot=pivot, min_rating=min_rating) == expected

    def test_matches_on_preset(self, tiny_wikipedia):
        from repro.core.rcs import count_rcs_candidates

        assert (
            count_rcs_candidates(tiny_wikipedia)
            == build_rcs(tiny_wikipedia).total_candidates
        )


class TestDeltaRcs:
    """delta_rcs rows must be bit-identical to the full counting phase."""

    @pytest.mark.parametrize("pivot", [True, False])
    @pytest.mark.parametrize("min_rating", [None, 3.0])
    def test_rows_match_build_rcs(self, pivot, min_rating):
        from repro.core.rcs import delta_rcs

        dataset = random_dataset(
            n_users=40, n_items=25, density=0.12, seed=3, ratings=True
        )
        full = build_rcs(dataset, pivot=pivot, min_rating=min_rating)
        dirty = [0, 7, 13, 39]
        delta = delta_rcs(
            dataset, dirty, pivot=pivot, min_rating=min_rating
        )
        assert delta.users.tolist() == dirty
        for user in dirty:
            np.testing.assert_array_equal(
                delta.candidates_of(user), full.candidates_of(user)
            )
            np.testing.assert_array_equal(
                delta.counts_of(user), full.counts_of(user)
            )

    def test_added_removed_against_base(self):
        from repro.core.rcs import delta_rcs

        dataset = random_dataset(n_users=20, n_items=12, density=0.2, seed=5)
        base = build_rcs(dataset, pivot=False)
        # Drop every rating of user 4: her candidacies disappear.
        matrix = dataset.matrix.tolil()
        matrix[4, :] = 0
        from repro.datasets import BipartiteDataset

        mutated = BipartiteDataset(matrix=matrix.tocsr(), name="mutated")
        delta = delta_rcs(mutated, [4], base=base, pivot=False)
        assert delta.candidates_of(4).size == 0
        np.testing.assert_array_equal(
            delta.removed[4], np.sort(base.candidates_of(4))
        )
        assert delta.added[4].size == 0

    def test_unknown_user_raises(self):
        from repro.core.rcs import delta_rcs

        dataset = random_dataset(n_users=10, n_items=8, density=0.2, seed=1)
        delta = delta_rcs(dataset, [2])
        with pytest.raises(KeyError):
            delta.candidates_of(3)
        with pytest.raises(ValueError):
            delta_rcs(dataset, [99])

    def test_empty_dirty_set(self):
        from repro.core.rcs import delta_rcs

        dataset = random_dataset(n_users=10, n_items=8, density=0.2, seed=1)
        delta = delta_rcs(dataset, [])
        assert delta.users.size == 0
        assert delta.total_candidates == 0
