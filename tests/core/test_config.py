"""Unit tests for KiffConfig validation."""

import math

import pytest

from repro.core.config import KiffConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = KiffConfig()
        assert config.k == 20
        assert config.beta == 0.001
        assert config.effective_gamma == 40  # gamma = 2k

    def test_explicit_gamma_overrides_default(self):
        assert KiffConfig(k=20, gamma=7).effective_gamma == 7

    def test_gamma_infinity_allowed(self):
        assert KiffConfig(gamma=math.inf).effective_gamma == math.inf


class TestValidation:
    def test_nonpositive_k_raises(self):
        with pytest.raises(ValueError, match="k must be positive"):
            KiffConfig(k=0)

    def test_negative_beta_raises(self):
        with pytest.raises(ValueError, match="beta"):
            KiffConfig(beta=-0.1)

    def test_beta_zero_allowed(self):
        assert KiffConfig(beta=0.0).beta == 0.0

    def test_fractional_gamma_raises(self):
        with pytest.raises(ValueError, match="gamma"):
            KiffConfig(gamma=2.5)

    def test_negative_gamma_raises(self):
        with pytest.raises(ValueError, match="gamma"):
            KiffConfig(gamma=-1)

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError, match="mode"):
            KiffConfig(mode="quantum")

    def test_nonpositive_max_iterations_raises(self):
        with pytest.raises(ValueError, match="max_iterations"):
            KiffConfig(max_iterations=0)
