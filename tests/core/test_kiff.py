"""Unit and integration tests for the KIFF algorithm."""

import math

import numpy as np
import pytest

from repro import (
    KiffConfig,
    SimilarityEngine,
    brute_force_knn,
    kiff,
    per_user_recall,
)
from repro.core.rcs import build_rcs
from tests.conftest import random_dataset


class TestToyBehaviour:
    def test_only_sharing_users_become_neighbors(self, toy_engine):
        """Carl and Dave never enter Alice's neighbourhood (Sec. II-D)."""
        result = kiff(toy_engine, KiffConfig(k=3))
        alice_neighbors = set(result.graph.neighbors_of(0).tolist())
        assert alice_neighbors == {1}  # only Bob shares an item

    def test_symmetric_discovery_through_pivot(self, toy_engine):
        """Bob's RCS is empty but Alice's pop updates Bob too."""
        result = kiff(toy_engine, KiffConfig(k=3))
        assert set(result.graph.neighbors_of(1).tolist()) == {0}

    def test_toy_similarities_correct(self, toy_engine):
        result = kiff(toy_engine, KiffConfig(k=3))
        assert result.graph.sims_of(0)[0] == pytest.approx(0.5)  # cos(A,B)
        assert result.graph.sims_of(2)[0] == pytest.approx(1.0)  # cos(C,D)


class TestModes:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fast_equals_reference(self, seed):
        ds = random_dataset(n_users=50, n_items=35, density=0.15, seed=seed)
        fast = kiff(SimilarityEngine(ds), KiffConfig(k=5, mode="fast"))
        reference = kiff(SimilarityEngine(ds), KiffConfig(k=5, mode="reference"))
        assert fast.graph == reference.graph

    def test_fast_equals_reference_with_ratings(self):
        ds = random_dataset(
            n_users=40, n_items=30, density=0.2, seed=3, ratings=True
        )
        fast = kiff(SimilarityEngine(ds), KiffConfig(k=4, mode="fast"))
        reference = kiff(SimilarityEngine(ds), KiffConfig(k=4, mode="reference"))
        assert fast.graph == reference.graph

    def test_fast_equals_reference_on_preset(self, tiny_wikipedia):
        fast = kiff(SimilarityEngine(tiny_wikipedia), KiffConfig(k=10))
        reference = kiff(
            SimilarityEngine(tiny_wikipedia), KiffConfig(k=10, mode="reference")
        )
        assert fast.graph == reference.graph

    def test_scan_rates_identical_across_modes(self, tiny_wikipedia):
        fast = kiff(SimilarityEngine(tiny_wikipedia), KiffConfig(k=10))
        reference = kiff(
            SimilarityEngine(tiny_wikipedia), KiffConfig(k=10, mode="reference")
        )
        assert fast.scan_rate == pytest.approx(reference.scan_rate)


class TestModeParitySweep:
    """Reference-vs-fast parity across the (gamma, beta, min_rating) grid.

    The streaming subsystem asserts its graphs against cold rebuilds; this
    sweep is what lets it assert against *either* execution mode with
    confidence — on the seeded test datasets the two modes agree on the
    graph and the evaluation count across the whole parameter grid, not
    just at the defaults.
    """

    GAMMAS = (1, 7, None, math.inf)
    BETAS = (0.0, 0.001, 0.05, math.inf)
    MIN_RATINGS = (None, 3.0)

    @pytest.mark.parametrize("min_rating", MIN_RATINGS)
    @pytest.mark.parametrize("beta", BETAS)
    @pytest.mark.parametrize("gamma", GAMMAS)
    def test_reference_equals_fast_on_grid(self, gamma, beta, min_rating):
        ds = random_dataset(
            n_users=40, n_items=30, density=0.15, seed=11, ratings=True
        )
        config = dict(k=5, gamma=gamma, beta=beta, min_rating=min_rating)
        fast = kiff(SimilarityEngine(ds), KiffConfig(mode="fast", **config))
        reference = kiff(
            SimilarityEngine(ds), KiffConfig(mode="reference", **config)
        )
        assert fast.graph == reference.graph
        assert fast.evaluations == reference.evaluations

    @pytest.mark.parametrize("min_rating", MIN_RATINGS)
    @pytest.mark.parametrize("gamma", (1, 7, math.inf))
    def test_converged_graph_is_gamma_invariant(self, gamma, min_rating):
        """With beta = 0 the final graph is the gamma-independent fixed
        point — the invariant the streaming subsystem maintains."""
        ds = random_dataset(
            n_users=40, n_items=30, density=0.15, seed=12, ratings=True
        )
        swept = kiff(
            SimilarityEngine(ds),
            KiffConfig(k=5, gamma=gamma, beta=0.0, min_rating=min_rating),
        )
        anchor = kiff(
            SimilarityEngine(ds),
            KiffConfig(k=5, gamma=math.inf, beta=0.0, min_rating=min_rating),
        )
        assert swept.graph == anchor.graph


class TestOptimality:
    """Section III-D: gamma=inf + metric with properties (5)/(6) => exact."""

    @pytest.mark.parametrize("metric", ["cosine", "jaccard", "adamic_adar"])
    def test_gamma_infinity_is_exact(self, tiny_wikipedia, metric):
        engine = SimilarityEngine(tiny_wikipedia, metric=metric)
        result = kiff(engine, KiffConfig(k=10, gamma=math.inf, beta=0.0))
        exact = brute_force_knn(
            SimilarityEngine(tiny_wikipedia, metric=metric), 10
        )
        recalls = per_user_recall(result.graph, exact.graph)
        # Users whose k-th exact similarity is positive must be perfect;
        # users padded with zero-similarity strangers cannot be found by
        # KIFF by design (they share no items).
        positive = exact.graph.kth_sims() > 1e-12
        assert np.all(recalls[positive] == 1.0)

    def test_scan_bounded_by_rcs_total(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia)
        result = kiff(engine, KiffConfig(k=10, gamma=math.inf, beta=0.0))
        rcs = build_rcs(tiny_wikipedia)
        assert result.evaluations <= rcs.total_candidates

    def test_each_pair_evaluated_at_most_once(self, tiny_wikipedia):
        """KIFF's guarantee: evaluations never exceed sum |RCS_u|."""
        engine = SimilarityEngine(tiny_wikipedia)
        result = kiff(engine, KiffConfig(k=10))
        rcs = build_rcs(tiny_wikipedia)
        assert result.evaluations <= rcs.total_candidates


class TestTermination:
    def test_beta_infinite_stops_after_one_iteration(self, wiki_engine):
        result = kiff(wiki_engine, KiffConfig(k=10, beta=math.inf))
        assert result.iterations == 1

    def test_larger_beta_terminates_no_later(self, tiny_wikipedia):
        loose = kiff(
            SimilarityEngine(tiny_wikipedia), KiffConfig(k=10, beta=0.5)
        )
        tight = kiff(
            SimilarityEngine(tiny_wikipedia), KiffConfig(k=10, beta=0.001)
        )
        assert loose.iterations <= tight.iterations
        assert loose.evaluations <= tight.evaluations

    def test_max_iterations_cap(self, wiki_engine):
        result = kiff(wiki_engine, KiffConfig(k=10, beta=0.0, gamma=1, max_iterations=3))
        assert result.iterations == 3

    def test_terminates_with_beta_zero(self, wiki_engine):
        """RCS exhaustion guarantees termination even when beta = 0."""
        result = kiff(wiki_engine, KiffConfig(k=10, beta=0.0))
        rcs_total = build_rcs(wiki_engine.dataset).total_candidates
        assert result.evaluations == rcs_total

    def test_small_gamma_more_iterations(self, tiny_wikipedia):
        small = kiff(SimilarityEngine(tiny_wikipedia), KiffConfig(k=10, gamma=5))
        large = kiff(SimilarityEngine(tiny_wikipedia), KiffConfig(k=10, gamma=80))
        assert small.iterations > large.iterations


class TestInstrumentation:
    def test_trace_records_every_iteration(self, wiki_engine):
        result = kiff(wiki_engine, KiffConfig(k=10))
        assert len(result.trace) == result.iterations

    def test_trace_evaluations_monotone(self, wiki_engine):
        result = kiff(wiki_engine, KiffConfig(k=10))
        evals = [r.evaluations for r in result.trace.records]
        assert all(a < b for a, b in zip(evals, evals[1:]))

    def test_snapshots_kept_when_requested(self, tiny_wikipedia):
        result = kiff(
            SimilarityEngine(tiny_wikipedia),
            KiffConfig(k=5, track_snapshots=True),
        )
        snapshots = result.trace.snapshots()
        assert len(snapshots) == result.iterations
        assert snapshots[-1] == result.graph

    def test_phase_times_populated(self, wiki_engine):
        result = kiff(wiki_engine, KiffConfig(k=10))
        breakdown = result.timer.as_breakdown()
        assert breakdown["preprocessing"] > 0
        assert breakdown["candidate_selection"] > 0
        assert breakdown["similarity"] > 0

    def test_extras_contain_rcs_stats(self, wiki_engine):
        result = kiff(wiki_engine, KiffConfig(k=10))
        assert result.extras["rcs_avg_size"] > 0
        assert result.extras["gamma"] == 20
        assert result.extras["k"] == 10

    def test_prebuilt_rcs_reused(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia)
        rcs = build_rcs(tiny_wikipedia)
        result = kiff(engine, KiffConfig(k=10), rcs=rcs)
        fresh = kiff(SimilarityEngine(tiny_wikipedia), KiffConfig(k=10))
        assert result.graph == fresh.graph


class TestQuality:
    def test_high_recall_on_preset(self, tiny_wikipedia):
        result = kiff(SimilarityEngine(tiny_wikipedia), KiffConfig(k=10))
        exact = brute_force_knn(SimilarityEngine(tiny_wikipedia), 10)
        positive = exact.graph.kth_sims() > 1e-12
        recalls = per_user_recall(result.graph, exact.graph)
        assert recalls[positive].mean() > 0.95

    def test_min_rating_reduces_evaluations(self):
        ds = random_dataset(
            n_users=60, n_items=45, density=0.2, seed=6, ratings=True
        )
        base = kiff(SimilarityEngine(ds), KiffConfig(k=5))
        pruned = kiff(SimilarityEngine(ds), KiffConfig(k=5, min_rating=4.0))
        assert pruned.evaluations < base.evaluations

    def test_no_pivot_doubles_evaluations(self, tiny_wikipedia):
        pivoted = kiff(
            SimilarityEngine(tiny_wikipedia), KiffConfig(k=10, beta=0.0)
        )
        symmetric = kiff(
            SimilarityEngine(tiny_wikipedia),
            KiffConfig(k=10, beta=0.0, pivot=False),
        )
        assert symmetric.evaluations == 2 * pivoted.evaluations
        # Same graph either way.
        assert symmetric.graph == pivoted.graph


class TestDegenerateInputs:
    def test_no_shared_items_yields_empty_graph(self):
        """Users with disjoint profiles have empty RCSs: KIFF terminates
        immediately with an empty graph (there is nothing to find)."""
        from repro.datasets import BipartiteDataset

        ds = BipartiteDataset.from_profiles(
            [{0: 1.0}, {1: 1.0}, {2: 1.0}], n_items=3
        )
        result = kiff(SimilarityEngine(ds), KiffConfig(k=2))
        assert result.graph.edge_count() == 0
        assert result.evaluations == 0
        assert result.iterations == 0

    def test_single_shared_item_pair(self):
        from repro.datasets import BipartiteDataset

        ds = BipartiteDataset.from_profiles(
            [{0: 1.0}, {0: 1.0}, {1: 1.0}], n_items=2
        )
        result = kiff(SimilarityEngine(ds), KiffConfig(k=2))
        assert set(result.graph.neighbors_of(0).tolist()) == {1}
        assert set(result.graph.neighbors_of(1).tolist()) == {0}
        assert result.graph.neighbors_of(2).size == 0

    def test_k_larger_than_population_of_candidates(self, toy_engine):
        """k above any candidate count: rows simply stay partial."""
        result = kiff(toy_engine, KiffConfig(k=3))
        assert result.graph.degree().max() <= 1  # at most one sharer each

    def test_gamma_one_still_converges(self, tiny_wikipedia):
        slow = kiff(
            SimilarityEngine(tiny_wikipedia),
            KiffConfig(k=5, gamma=1, beta=0.0),
        )
        fast = kiff(
            SimilarityEngine(tiny_wikipedia),
            KiffConfig(k=5, gamma=1000, beta=0.0),
        )
        assert slow.graph == fast.graph


class TestZeroUserDataset:
    """kiff() on a 0-user dataset must return an empty graph, not crash.

    BipartiteDataset itself forbids zero users, but engines can be bound
    to custom dataset objects (sharded streams drain, filters reject all
    rows); _heaps_to_graph used to IndexError on ``heaps[0]``.
    """

    class _EmptyDataset:
        import scipy.sparse as _sp

        matrix = _sp.csr_matrix((0, 3))
        n_users = 0
        n_items = 3

    @pytest.mark.parametrize("mode", ["reference", "fast"])
    def test_returns_empty_graph(self, mode):
        engine = SimilarityEngine(self._EmptyDataset())
        result = kiff(engine, KiffConfig(k=4, mode=mode))
        assert result.graph.n_users == 0
        assert result.graph.k == 4
        assert result.graph.edge_count() == 0
        assert result.evaluations == 0

    def test_zero_user_rcs_stats_are_finite(self):
        rcs = build_rcs(self._EmptyDataset())
        assert rcs.n_users == 0
        assert rcs.avg_size == 0.0
        assert rcs.max_scan_rate() == 0.0
