"""Unit tests for the bounded KNN heap (UPDATENN semantics)."""

import numpy as np
import pytest

from repro.core.heap import KnnHeap


class TestBasics:
    def test_empty_heap(self):
        heap = KnnHeap(3)
        assert len(heap) == 0
        assert not heap.is_full
        assert heap.min_similarity() == -np.inf

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KnnHeap(0)

    def test_insert_returns_one(self):
        heap = KnnHeap(2)
        assert heap.update(5, 0.3) == 1
        assert 5 in heap

    def test_fills_to_capacity(self):
        heap = KnnHeap(2)
        heap.update(1, 0.1)
        heap.update(2, 0.2)
        assert heap.is_full
        assert len(heap) == 2


class TestUpdateSemantics:
    def test_better_candidate_evicts_minimum(self):
        heap = KnnHeap(2)
        heap.update(1, 0.1)
        heap.update(2, 0.2)
        assert heap.update(3, 0.5) == 1
        assert 1 not in heap
        assert {2, 3} == {n for n, _ in heap.entries()}

    def test_worse_candidate_rejected(self):
        heap = KnnHeap(2)
        heap.update(1, 0.4)
        heap.update(2, 0.5)
        assert heap.update(3, 0.1) == 0
        assert 3 not in heap

    def test_equal_similarity_tie_breaks_on_lower_id(self):
        heap = KnnHeap(1)
        heap.update(5, 0.3)
        # Same similarity, lower id: displaces (canonical order prefers
        # ascending ids among equals).
        assert heap.update(2, 0.3) == 1
        assert 2 in heap and 5 not in heap
        # Same similarity, higher id: rejected.
        assert heap.update(9, 0.3) == 0

    def test_duplicate_neighbor_same_sim_is_noop(self):
        heap = KnnHeap(3)
        heap.update(1, 0.5)
        assert heap.update(1, 0.5) == 0
        assert len(heap) == 1

    def test_duplicate_neighbor_improved_sim_updates(self):
        heap = KnnHeap(3)
        heap.update(1, 0.2)
        assert heap.update(1, 0.9) == 1
        assert dict(heap.entries())[1] == 0.9

    def test_min_similarity_tracks_worst(self):
        heap = KnnHeap(2)
        heap.update(1, 0.7)
        heap.update(2, 0.3)
        assert heap.min_similarity() == pytest.approx(0.3)


class TestCanonicalOutput:
    def test_entries_sorted_best_first(self):
        heap = KnnHeap(3)
        heap.update(1, 0.2)
        heap.update(2, 0.9)
        heap.update(3, 0.5)
        assert [n for n, _ in heap.entries()] == [2, 3, 1]

    def test_entries_tie_break_ascending_id(self):
        heap = KnnHeap(3)
        heap.update(9, 0.5)
        heap.update(4, 0.5)
        assert [n for n, _ in heap.entries()] == [4, 9]

    def test_to_arrays_pads_with_missing(self):
        from repro.graph.knn_graph import MISSING

        heap = KnnHeap(4)
        heap.update(7, 0.5)
        neighbors, sims = heap.to_arrays()
        assert neighbors.tolist() == [7, MISSING, MISSING, MISSING]
        assert sims[0] == 0.5
        assert np.all(np.isneginf(sims[1:]))

    def test_matches_sort_reference(self):
        """The heap keeps exactly the top-k of any offer stream."""
        rng = np.random.default_rng(7)
        offers = [(int(n), float(s)) for n, s in
                  zip(rng.permutation(50), rng.random(50))]
        heap = KnnHeap(10)
        for neighbor, sim in offers:
            heap.update(neighbor, sim)
        expected = sorted(offers, key=lambda t: (-t[1], t[0]))[:10]
        assert heap.entries() == [(n, pytest.approx(s)) for n, s in expected]
