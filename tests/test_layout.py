"""Unit tests for the compact storage-layout contract (repro.layout)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.layout import (
    ACCUM_DTYPE,
    ID_DTYPE,
    ID_MAX,
    SCORE_DTYPE,
    compact_csr,
    compact_ids,
    compact_scores,
    dtype_tags,
    indptr_dtype,
    legacy_nbytes,
    nbytes,
    pack_rows,
    unpack_rows,
    wide_ids,
)


class TestDtypeContract:
    def test_canonical_widths(self):
        assert ID_DTYPE == np.dtype(np.int32)
        assert SCORE_DTYPE == np.dtype(np.float32)
        assert ACCUM_DTYPE == np.dtype(np.float64)
        assert ID_MAX == 2**31 - 1

    def test_indptr_dtype_switches_past_id_max(self):
        assert indptr_dtype(0) == ID_DTYPE
        assert indptr_dtype(ID_MAX) == ID_DTYPE
        assert indptr_dtype(ID_MAX + 1) == np.dtype(np.int64)

    def test_casts_avoid_copies_when_already_compact(self):
        ids = np.arange(5, dtype=ID_DTYPE)
        scores = np.ones(5, dtype=SCORE_DTYPE)
        assert compact_ids(ids) is ids
        assert compact_scores(scores) is scores
        wide = np.arange(5, dtype=np.int64)
        assert wide_ids(wide) is wide

    def test_wide_ids_survive_stride_keys(self):
        # NEP 50: int32_array * python_int stays int32 and would wrap.
        ids = np.array([2_000_000], dtype=ID_DTYPE)
        n = 2_000_000
        assert wide_ids(ids)[0] * n == 4_000_000_000_000

    def test_dtype_tags_are_serializable_strings(self):
        tags = dtype_tags()
        assert np.dtype(tags["ids"]) == ID_DTYPE
        assert np.dtype(tags["scores"]) == SCORE_DTYPE
        assert np.dtype(tags["accumulation"]) == ACCUM_DTYPE


class TestCompactCsr:
    def test_downcasts_indices_and_indptr(self):
        matrix = sp.csr_matrix(
            (
                np.array([1.0, 2.0, 3.0]),
                np.array([0, 2, 1], dtype=np.int64),
                np.array([0, 2, 3], dtype=np.int64),
            ),
            shape=(2, 3),
        )
        out = compact_csr(matrix)
        assert out is matrix
        assert out.indices.dtype == ID_DTYPE
        assert out.indptr.dtype == ID_DTYPE
        assert out.data.dtype == np.float64  # ratings stay wide

    def test_values_unchanged(self):
        dense = np.array([[0.0, 1.5], [2.5, 0.0]])
        matrix = compact_csr(sp.csr_matrix(dense))
        np.testing.assert_array_equal(matrix.toarray(), dense)


class TestRowPacking:
    def _dense(self):
        neighbors = np.array(
            [[3, 1, -1], [-1, -1, -1], [2, -1, -1]], dtype=ID_DTYPE
        )
        sims = np.array(
            [[0.9, 0.5, -np.inf], [-np.inf] * 3, [0.25, -np.inf, -np.inf]],
            dtype=SCORE_DTYPE,
        )
        return neighbors, sims

    def test_round_trip_is_bit_identical(self):
        neighbors, sims = self._dense()
        indptr, ids, values = pack_rows(neighbors, sims)
        back_n, back_s = unpack_rows(indptr, ids, values, k=3)
        np.testing.assert_array_equal(back_n, neighbors)
        np.testing.assert_array_equal(back_s, sims)
        assert back_n.dtype == ID_DTYPE and back_s.dtype == SCORE_DTYPE

    def test_packed_sizes_drop_missing_slots(self):
        neighbors, sims = self._dense()
        indptr, ids, values = pack_rows(neighbors, sims)
        assert indptr.tolist() == [0, 2, 2, 3]
        assert ids.tolist() == [3, 1, 2]
        assert ids.size == values.size == 3  # 3 of 9 slots present

    def test_empty_input(self):
        indptr, ids, values = pack_rows(
            np.empty((0, 4), dtype=ID_DTYPE),
            np.empty((0, 4), dtype=SCORE_DTYPE),
        )
        assert indptr.tolist() == [0]
        back_n, back_s = unpack_rows(indptr, ids, values, k=4)
        assert back_n.shape == back_s.shape == (0, 4)


class TestByteAccounting:
    def test_nbytes_sums_and_skips_none(self):
        a = np.zeros(10, dtype=ID_DTYPE)
        b = np.zeros(4, dtype=SCORE_DTYPE)
        assert nbytes(a, None, b) == 40 + 16

    def test_legacy_nbytes_reprices_compact_dtypes_only(self):
        ids = np.zeros(10, dtype=ID_DTYPE)  # 40 B now, 80 B legacy
        scores = np.zeros(10, dtype=SCORE_DTYPE)  # 40 B now, 80 B legacy
        ratings = np.zeros(10, dtype=np.float64)  # unchanged
        assert legacy_nbytes(ids, scores, ratings) == 80 + 80 + 80
        assert nbytes(ids, scores, ratings) == 40 + 40 + 80

    def test_compaction_halves_id_and_score_storage(self):
        arrays = [
            np.zeros(100, dtype=ID_DTYPE),
            np.zeros(100, dtype=SCORE_DTYPE),
        ]
        assert legacy_nbytes(*arrays) == 2 * nbytes(*arrays)


class TestScoreBoundary:
    def test_float32_widening_round_trips(self):
        # The parity keystone: a stored float32 score widened to float64
        # (merge internals) and narrowed again is bit-identical.
        rng = np.random.default_rng(0)
        scores = compact_scores(rng.random(1000))
        assert np.array_equal(
            scores.astype(np.float64).astype(SCORE_DTYPE), scores
        )

    def test_single_cast_matches_double_cast(self):
        # Casting a fresh float64 score once is the same as casting a
        # stored score that already passed the boundary: no double
        # rounding on the hot path.
        raw = np.array([0.1 + 0.2, 1 / 3, 0.7], dtype=np.float64)
        once = compact_scores(raw)
        twice = compact_scores(once.astype(np.float64))
        assert np.array_equal(once, twice)

    def test_neg_inf_padding_survives(self):
        padded = compact_scores(np.array([-np.inf, 0.5]))
        assert np.isneginf(padded[0])


@pytest.mark.parametrize("k", [1, 3, 7])
def test_pack_rows_randomized_round_trip(k):
    rng = np.random.default_rng(k)
    n = 40
    neighbors = rng.integers(-1, n, size=(n, k)).astype(ID_DTYPE)
    sims = rng.random((n, k)).astype(SCORE_DTYPE)
    sims[neighbors == -1] = -np.inf
    # Left-align present entries per row, as merge results always are.
    order = np.argsort(neighbors == -1, axis=1, kind="stable")
    neighbors = np.take_along_axis(neighbors, order, axis=1)
    sims = np.take_along_axis(sims, order, axis=1)
    back_n, back_s = unpack_rows(*pack_rows(neighbors, sims), k=k)
    np.testing.assert_array_equal(back_n, neighbors)
    np.testing.assert_array_equal(back_s, sims)
