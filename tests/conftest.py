"""Shared fixtures: small deterministic datasets, engines, strategies."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings
from hypothesis import strategies as st

from repro import BipartiteDataset, SimilarityEngine
from repro.datasets import load_dataset

# ----------------------------------------------------------------------
# Hypothesis profiles: seeded and deadline-free in CI, lenient locally.
# ----------------------------------------------------------------------
hypothesis_settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.register_profile("dev", deadline=None)
hypothesis_settings.load_profile("ci" if os.environ.get("CI") else "dev")


@pytest.fixture
def toy_dataset() -> BipartiteDataset:
    """The paper's Figure 2 toy example, extended slightly.

    Users: 0=Alice, 1=Bob, 2=Carl, 3=Dave.
    Items: 0=book, 1=coffee, 2=cheese, 3=shopping.
    Alice likes book+coffee, Bob coffee+cheese, Carl and Dave shopping.
    """
    return BipartiteDataset.from_profiles(
        [
            {0: 1.0, 1: 1.0},
            {1: 1.0, 2: 1.0},
            {3: 1.0},
            {3: 1.0},
        ],
        n_items=4,
        name="figure2-toy",
    )


@pytest.fixture
def rated_dataset() -> BipartiteDataset:
    """A small dataset with non-trivial rating values."""
    return BipartiteDataset.from_profiles(
        [
            {0: 5.0, 1: 3.0, 2: 1.0},
            {0: 4.0, 2: 2.0},
            {1: 1.0, 3: 5.0},
            {0: 2.0, 1: 2.0, 2: 2.0, 3: 2.0},
            {4: 3.5},
        ],
        n_items=5,
        name="rated-toy",
    )


@pytest.fixture(scope="session")
def tiny_wikipedia() -> BipartiteDataset:
    """The tiny-scale Wikipedia preset (seeded, shared across tests)."""
    return load_dataset("wikipedia", scale="tiny")


@pytest.fixture(scope="session")
def tiny_arxiv() -> BipartiteDataset:
    """The tiny-scale Arxiv preset (symmetric co-authorship)."""
    return load_dataset("arxiv", scale="tiny")


@pytest.fixture
def toy_engine(toy_dataset) -> SimilarityEngine:
    return SimilarityEngine(toy_dataset, metric="cosine")


@pytest.fixture
def wiki_engine(tiny_wikipedia) -> SimilarityEngine:
    return SimilarityEngine(tiny_wikipedia, metric="cosine")


# ----------------------------------------------------------------------
# Streaming event streams (shared by parity and property suites)
# ----------------------------------------------------------------------
def streaming_events(
    max_items: int = 12, max_events: int = 24, max_rating: int = 5
):
    """Shrinkable Hypothesis strategy of streaming event tuples.

    Events are encoded abstractly so the stream stays valid however the
    population evolves: user references are *slots* that
    :func:`apply_streaming_events` resolves modulo the live user count.

    * ``("rate", slot, item, rating)`` — set a rating (0 deletes);
    * ``("add_user", [(item, rating), ...])`` — a user joins;
    * ``("remove", slot)`` — a user's profile is cleared.
    """
    rate = st.tuples(
        st.just("rate"),
        st.integers(0, 63),
        st.integers(0, max_items - 1),
        st.integers(0, max_rating),
    )
    add_user = st.tuples(
        st.just("add_user"),
        st.lists(
            st.tuples(st.integers(0, max_items - 1), st.integers(1, max_rating)),
            max_size=4,
        ),
    )
    remove = st.tuples(st.just("remove"), st.integers(0, 63))
    return st.lists(st.one_of(rate, add_user, remove), max_size=max_events)


def apply_streaming_events(index, events) -> None:
    """Replay :func:`streaming_events` tuples against a DynamicKnnIndex.

    Tuples are resolved into :mod:`repro.streaming.events` objects one at
    a time (user slots are taken modulo the live user count) and applied
    through ``index.apply`` — the library's single ingestion path — so
    the tests exercise the same event semantics the library defines.
    """
    from repro.streaming import AddRating, AddUser, RemoveUser

    for event in events:
        kind = event[0]
        if kind == "rate":
            _, slot, item, rating = event
            resolved = AddRating(slot % index.n_users, item, float(rating))
        elif kind == "add_user":
            profile = {item: float(rating) for item, rating in event[1]}
            resolved = AddUser(tuple(profile), tuple(profile.values()))
        elif kind == "remove":
            resolved = RemoveUser(event[1] % index.n_users)
        else:  # pragma: no cover - strategy never produces this
            raise ValueError(f"unknown event {event!r}")
        index.apply(resolved)


def random_dataset(
    n_users: int = 60,
    n_items: int = 40,
    density: float = 0.1,
    seed: int = 0,
    ratings: bool = False,
) -> BipartiteDataset:
    """Helper for tests that want arbitrary small random datasets."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n_users, n_items)) < density
    # Guarantee at least one rating so the dataset is valid.
    if not mask.any():
        mask[0, 0] = True
    values = (
        rng.integers(1, 6, size=mask.sum()).astype(float)
        if ratings
        else np.ones(int(mask.sum()))
    )
    users, items = np.nonzero(mask)
    return BipartiteDataset.from_edges(
        users,
        items,
        values,
        n_users=n_users,
        n_items=n_items,
        name=f"random-{seed}",
    )
