"""Shared fixtures: small deterministic datasets and engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BipartiteDataset, SimilarityEngine
from repro.datasets import load_dataset


@pytest.fixture
def toy_dataset() -> BipartiteDataset:
    """The paper's Figure 2 toy example, extended slightly.

    Users: 0=Alice, 1=Bob, 2=Carl, 3=Dave.
    Items: 0=book, 1=coffee, 2=cheese, 3=shopping.
    Alice likes book+coffee, Bob coffee+cheese, Carl and Dave shopping.
    """
    return BipartiteDataset.from_profiles(
        [
            {0: 1.0, 1: 1.0},
            {1: 1.0, 2: 1.0},
            {3: 1.0},
            {3: 1.0},
        ],
        n_items=4,
        name="figure2-toy",
    )


@pytest.fixture
def rated_dataset() -> BipartiteDataset:
    """A small dataset with non-trivial rating values."""
    return BipartiteDataset.from_profiles(
        [
            {0: 5.0, 1: 3.0, 2: 1.0},
            {0: 4.0, 2: 2.0},
            {1: 1.0, 3: 5.0},
            {0: 2.0, 1: 2.0, 2: 2.0, 3: 2.0},
            {4: 3.5},
        ],
        n_items=5,
        name="rated-toy",
    )


@pytest.fixture(scope="session")
def tiny_wikipedia() -> BipartiteDataset:
    """The tiny-scale Wikipedia preset (seeded, shared across tests)."""
    return load_dataset("wikipedia", scale="tiny")


@pytest.fixture(scope="session")
def tiny_arxiv() -> BipartiteDataset:
    """The tiny-scale Arxiv preset (symmetric co-authorship)."""
    return load_dataset("arxiv", scale="tiny")


@pytest.fixture
def toy_engine(toy_dataset) -> SimilarityEngine:
    return SimilarityEngine(toy_dataset, metric="cosine")


@pytest.fixture
def wiki_engine(tiny_wikipedia) -> SimilarityEngine:
    return SimilarityEngine(tiny_wikipedia, metric="cosine")


def random_dataset(
    n_users: int = 60,
    n_items: int = 40,
    density: float = 0.1,
    seed: int = 0,
    ratings: bool = False,
) -> BipartiteDataset:
    """Helper for tests that want arbitrary small random datasets."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n_users, n_items)) < density
    # Guarantee at least one rating so the dataset is valid.
    if not mask.any():
        mask[0, 0] = True
    values = (
        rng.integers(1, 6, size=mask.sum()).astype(float)
        if ratings
        else np.ones(int(mask.sum()))
    )
    users, items = np.nonzero(mask)
    return BipartiteDataset.from_edges(
        users,
        items,
        values,
        n_users=n_users,
        n_items=n_items,
        name=f"random-{seed}",
    )
