"""Partitioned WAL segments, sharded checkpoints, and fsync barriers."""

import json

import numpy as np
import pytest

from repro import DynamicKnnIndex, KiffConfig, ShardedKnnIndex
from repro.persistence import (
    PartitionedWriteAheadLog,
    WalError,
    WriteAheadLog,
    detect_state_layout,
    load_sharded_checkpoint,
    read_partitioned_wal,
    read_wal,
    rotate_superseded,
    save_checkpoint,
    save_sharded_checkpoint,
    sharded_checkpoint_path,
    wal_segment_path,
)
from repro.streaming import AddRating, ratings_batch
from tests.conftest import random_dataset


def sharded_index(n_users=12, seed=3, n_shards=2, **kwargs):
    dataset = random_dataset(
        n_users=n_users, n_items=10, seed=seed, ratings=True
    )
    return ShardedKnnIndex(
        dataset,
        KiffConfig(k=3),
        auto_refresh=False,
        n_shards=n_shards,
        executor="serial",
        **kwargs,
    )


class TestPartitionedWal:
    def test_segments_share_one_global_sequence(self, tmp_path):
        wal = PartitionedWriteAheadLog(tmp_path, 2)
        assert wal.append(AddRating(0, 1, 2.0), shard=0) == 1
        assert wal.append(AddRating(1, 1, 2.0), shard=1) == 2
        assert wal.append(AddRating(2, 1, 2.0), shard=0) == 3
        wal.close()
        # Each segment is a standard WAL file (same header format) whose
        # records carry the *global* sequence — gaps are expected.
        assert [s for s, _ in read_wal(wal_segment_path(tmp_path, 0), contiguous=False)] == [1, 3]
        assert [s for s, _ in read_wal(wal_segment_path(tmp_path, 1), contiguous=False)] == [2]
        header = json.loads(
            wal_segment_path(tmp_path, 0).read_text().splitlines()[0]
        )
        assert header["type"] == "header"

    def test_merged_read_restores_global_order(self, tmp_path):
        wal = PartitionedWriteAheadLog(tmp_path, 3)
        events = [AddRating(user, 0, 1.0) for user in range(7)]
        for user, event in enumerate(events):
            wal.append(event, shard=user % 3)
        wal.close()
        merged = list(read_partitioned_wal(tmp_path))
        assert [seq for seq, _ in merged] == list(range(1, 8))
        assert [event.user for _, event in merged] == list(range(7))
        assert [seq for seq, _ in read_partitioned_wal(tmp_path, after=4)] == [5, 6, 7]

    def test_reopen_resumes_global_counter(self, tmp_path):
        with PartitionedWriteAheadLog(tmp_path, 2) as wal:
            wal.append(AddRating(0, 1, 2.0), shard=0)
            wal.append(AddRating(1, 1, 2.0), shard=1)
        reopened = PartitionedWriteAheadLog(tmp_path, 2)
        assert reopened.last_seq == 2
        assert reopened.append(AddRating(0, 2, 1.0), shard=0) == 3
        reopened.close()

    def test_duplicate_sequences_across_segments_rejected(self, tmp_path):
        WriteAheadLog(
            wal_segment_path(tmp_path, 0), contiguous=False
        ).append(AddRating(0, 1, 2.0), seq=5)
        WriteAheadLog(
            wal_segment_path(tmp_path, 1), contiguous=False
        ).append(AddRating(1, 1, 2.0), seq=5)
        with pytest.raises(WalError, match="duplicate"):
            list(read_partitioned_wal(tmp_path))

    def test_rollback_spans_every_segment(self, tmp_path):
        wal = PartitionedWriteAheadLog(tmp_path, 2)
        wal.append(AddRating(0, 1, 2.0), shard=0)
        mark = wal.mark()
        wal.append(AddRating(1, 1, 2.0), shard=1)
        wal.append(AddRating(2, 1, 2.0), shard=0)
        wal.rollback(mark)
        assert wal.last_seq == 1
        assert wal.append(AddRating(3, 1, 2.0), shard=1) == 2
        wal.close()
        assert [seq for seq, _ in read_partitioned_wal(tmp_path)] == [1, 2]

    def test_advance_to_skips_checkpoint_covered_gap(self, tmp_path):
        wal = PartitionedWriteAheadLog(tmp_path, 2)
        wal.append(AddRating(0, 1, 2.0), shard=0)
        wal.advance_to(5)  # events 2..5 live only in a durable checkpoint
        assert wal.append(AddRating(1, 1, 2.0), shard=1) == 6
        with pytest.raises(WalError, match="advance"):
            wal.advance_to(3)
        wal.close()

    def test_contiguous_log_rejects_explicit_gap(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append(AddRating(0, 1, 2.0))
        with pytest.raises(WalError, match="contiguous"):
            wal.append(AddRating(0, 1, 3.0), seq=5)
        wal.close()

    def test_segment_rejects_regressing_sequence(self, tmp_path):
        segment = WriteAheadLog(
            wal_segment_path(tmp_path, 0), contiguous=False
        )
        segment.append(AddRating(0, 1, 2.0), seq=4)
        with pytest.raises(WalError, match="advance"):
            segment.append(AddRating(0, 1, 3.0), seq=4)
        segment.close()

    def test_fsync_batches_as_a_group_commit(self, tmp_path, monkeypatch):
        """The disk barrier must cover every segment together: a segment
        fsyncing on its own cadence could make a high sequence durable
        while a lower one in a sibling segment is still unsynced — a
        mid-history gap no replay can bridge."""
        wal = PartitionedWriteAheadLog(tmp_path, 2, fsync_every=2)
        assert all(seg.fsync_every is None for seg in wal.segments)
        flushed = []
        real_flush = WriteAheadLog.flush

        def recording_flush(self):
            flushed.append(self.path.name)
            real_flush(self)

        monkeypatch.setattr(WriteAheadLog, "flush", recording_flush)
        wal.append(AddRating(0, 1, 2.0), shard=0)
        assert flushed == []  # below the cadence: no barrier yet
        wal.append(AddRating(1, 1, 2.0), shard=1)
        assert sorted(flushed) == ["wal-0.jsonl", "wal-1.jsonl"]
        wal.close()

    def test_merged_read_includes_flat_predecessor(self, tmp_path):
        """A flat wal.jsonl from a pre-sharding run merges in seamlessly."""
        flat = WriteAheadLog(tmp_path / "wal.jsonl")
        flat.append(AddRating(0, 1, 2.0))
        flat.append(AddRating(1, 1, 2.0))
        flat.close()
        wal = PartitionedWriteAheadLog(tmp_path, 2)
        assert wal.last_seq == 2  # the flat history advances the counter
        wal.append(AddRating(2, 1, 2.0), shard=0)
        wal.close()
        assert [seq for seq, _ in read_partitioned_wal(tmp_path)] == [1, 2, 3]


class TestShardedCheckpoint:
    def test_layout_and_round_trip(self, tmp_path):
        index = sharded_index()
        index.apply(ratings_batch([0, 1], [3, 3], [4.0, 2.0]))
        path = index.checkpoint(tmp_path)
        assert path == sharded_checkpoint_path(tmp_path, 2)
        assert (path / "meta.json").exists()
        assert (path / "base.npz").exists()
        assert (path / "shard-0.npz").exists()
        assert (path / "shard-1.npz").exists()
        state = load_sharded_checkpoint(path)
        assert state.n_shards == 2
        assert state.seq == 2
        assert state.dirty == (0, 1)
        assert state.dataset == index.dataset

    def test_per_shard_files_hold_owned_slices(self, tmp_path):
        index = sharded_index()
        index.apply(ratings_batch([0, 1, 2, 3], [3] * 4, [4.0] * 4))
        index.refresh()  # populates the candidate cache
        path = index.checkpoint(tmp_path)
        for shard in range(2):
            with np.load(path / f"shard-{shard}.npz") as archive:
                assert all(
                    user % 2 == shard
                    for user in archive["cache_users"].tolist()
                )

    def test_version_check(self, tmp_path):
        index = sharded_index()
        path = index.checkpoint(tmp_path)
        meta = json.loads((path / "meta.json").read_text())
        meta["version"] = 99
        (path / "meta.json").write_text(json.dumps(meta))
        from repro.persistence import CheckpointError

        with pytest.raises(CheckpointError, match="version"):
            load_sharded_checkpoint(path)

    def test_corrupt_latest_falls_back_to_older(self, tmp_path):
        index = sharded_index(wal=PartitionedWriteAheadLog(tmp_path, 2))
        index.checkpoint(tmp_path)
        index.apply(AddRating(0, 4, 3.0))
        newest = index.checkpoint(tmp_path)
        (newest / "base.npz").write_bytes(b"")  # torn archive
        index.refresh()
        restored = ShardedKnnIndex.restore(tmp_path, executor="serial")
        assert restored.restore_info.checkpoint != newest
        assert restored.restore_info.replayed_events == 1
        assert restored.graph == index.graph

    def test_detect_state_layout(self, tmp_path):
        assert detect_state_layout(tmp_path / "missing") is None
        assert detect_state_layout(tmp_path) is None
        dataset = random_dataset(n_users=10, n_items=8, seed=1, ratings=True)
        flat_dir = tmp_path / "flat"
        flat = DynamicKnnIndex(dataset, KiffConfig(k=3))
        flat.checkpoint(flat_dir)
        assert detect_state_layout(flat_dir) == "flat"
        sharded_dir = tmp_path / "sharded"
        index = sharded_index()
        index.checkpoint(sharded_dir)
        assert detect_state_layout(sharded_dir) == "sharded"
        # Mixed (migrated) directories read as sharded: only the merged
        # reader replays their full history.
        flat_wal = tmp_path / "mixed"
        flat2 = DynamicKnnIndex(
            dataset,
            KiffConfig(k=3),
            wal=WriteAheadLog(flat_wal / "wal.jsonl"),
        )
        flat2.checkpoint(flat_wal)
        PartitionedWriteAheadLog(flat_wal, 2).close()
        assert detect_state_layout(flat_wal) == "sharded"

    def test_flat_restore_refuses_sharded_layout(self, tmp_path):
        from repro.persistence import CheckpointError

        index = sharded_index(wal=PartitionedWriteAheadLog(tmp_path, 2))
        index.checkpoint(tmp_path)
        index.apply(AddRating(0, 4, 3.0))
        with pytest.raises(CheckpointError, match="ShardedKnnIndex"):
            DynamicKnnIndex.restore(tmp_path)


class TestDirFsyncBarriers:
    """The rename/creation durability barriers must actually be requested."""

    @pytest.fixture
    def fsync_calls(self, monkeypatch):
        calls: list = []
        from repro.persistence import wal as wal_module

        monkeypatch.setattr(
            wal_module, "fsync_dir", lambda path: calls.append(str(path))
        )
        return calls

    def test_flat_checkpoint_fsyncs_directory_after_rename(
        self, tmp_path, fsync_calls
    ):
        dataset = random_dataset(n_users=10, n_items=8, seed=2, ratings=True)
        index = DynamicKnnIndex(dataset, KiffConfig(k=3))
        fsync_calls.clear()
        save_checkpoint(index, tmp_path)
        assert str(tmp_path) in fsync_calls

    def test_sharded_checkpoint_fsyncs_directory_after_rename(
        self, tmp_path, fsync_calls
    ):
        index = sharded_index()
        fsync_calls.clear()
        save_sharded_checkpoint(index, tmp_path)
        assert str(tmp_path) in fsync_calls

    def test_wal_creation_fsyncs_directory(self, tmp_path, fsync_calls):
        WriteAheadLog(tmp_path / "wal.jsonl").close()
        assert str(tmp_path) in fsync_calls

    def test_wal_rotation_fsyncs_directory(self, tmp_path, fsync_calls):
        path = tmp_path / "wal.jsonl"
        WriteAheadLog(path).close()
        fsync_calls.clear()
        rotated = rotate_superseded(path, 7)
        assert rotated.name == "wal.jsonl.superseded-7"
        assert rotated.exists() and not path.exists()
        assert str(tmp_path) in fsync_calls

    def test_lost_tail_recovery_rotates_with_barrier(
        self, tmp_path, fsync_calls
    ):
        """The restore-path rotation goes through the fsync'd helper."""
        dataset = random_dataset(n_users=12, n_items=10, seed=9, ratings=True)
        live = DynamicKnnIndex(
            dataset, KiffConfig(k=3), wal=WriteAheadLog(tmp_path / "wal.jsonl")
        )
        live.checkpoint(tmp_path)
        live.apply([AddRating(0, 4, 3.0), AddRating(1, 4, 2.0)])
        live.checkpoint(tmp_path)  # durable through seq 2
        wal_file = tmp_path / "wal.jsonl"
        lines = wal_file.read_bytes().splitlines(keepends=True)
        wal_file.write_bytes(b"".join(lines[:-1]))  # the OS ate the tail
        fsync_calls.clear()
        restored = DynamicKnnIndex.restore(tmp_path)
        assert restored.graph == live.graph
        assert any("superseded" not in c for c in fsync_calls)
        assert list(tmp_path.glob("wal.jsonl.superseded-*"))
