"""Unit tests for the write-ahead event log."""

import json
import os

import pytest

from repro.persistence import (
    WalError,
    WriteAheadLog,
    decode_event,
    encode_event,
    read_wal,
)
from repro.streaming import AddRating, AddUser, Batch, RemoveRating, RemoveUser

EVENTS = [
    AddRating(3, 7, 4.5),
    RemoveRating(3, 7),
    AddUser((1, 2), (5.0, 3.0)),
    AddUser(),
    AddUser((9,)),  # default ratings (None) must survive
    RemoveUser(2),
]


class TestCodec:
    @pytest.mark.parametrize("event", EVENTS)
    def test_round_trip(self, event):
        record = encode_event(event)
        assert decode_event(json.loads(json.dumps(record))) == event

    def test_batch_rejected(self):
        with pytest.raises(WalError, match="flattened"):
            encode_event(Batch((AddRating(0, 0),)))

    def test_unknown_record_type(self):
        with pytest.raises(WalError, match="unknown WAL record type"):
            decode_event({"type": "truncate_everything"})

    def test_malformed_record(self):
        with pytest.raises(WalError, match="malformed"):
            decode_event({"type": "add_rating", "user": 1})  # no item


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            seqs = [wal.append(event) for event in EVENTS]
        assert seqs == list(range(1, len(EVENTS) + 1))
        assert list(read_wal(path)) == list(zip(seqs, EVENTS))

    def test_replay_after(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append_many(EVENTS)
        tail = list(read_wal(path, after=4))
        assert tail == [(5, EVENTS[4]), (6, EVENTS[5])]

    def test_append_many_flattens_batches(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            last = wal.append_many(
                [Batch((AddRating(0, 1), Batch((RemoveUser(0),))))]
            )
        assert last == 2
        assert [event for _, event in read_wal(path)] == [
            AddRating(0, 1),
            RemoveUser(0),
        ]

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append(AddRating(0, 0, 1.0))
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 1
            assert wal.append(RemoveUser(0)) == 2
        assert [seq for seq, _ in read_wal(path)] == [1, 2]

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.close()
        assert wal.closed
        with pytest.raises(WalError, match="closed"):
            wal.append(AddRating(0, 0))

    def test_empty_log_replays_nothing(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        WriteAheadLog(path).close()
        assert list(read_wal(path)) == []


class TestDurabilityPolicy:
    def test_fsync_batching(self, tmp_path, monkeypatch):
        """fsync runs once per fsync_every appends, plus on close."""
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))
        )
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=3)
        header_syncs = len(calls)  # creation flushes the header
        for pos in range(7):
            wal.append(AddRating(0, pos))
        assert len(calls) - header_syncs == 2  # after appends 3 and 6
        wal.close()  # the straggler (append 7) syncs on close
        assert len(calls) - header_syncs == 3

    def test_fsync_none_never_syncs_on_append(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))
        )
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=None)
        base = len(calls)
        for pos in range(10):
            wal.append(AddRating(0, pos))
        assert len(calls) == base
        # Appends are still flushed: a concurrent reader sees them all.
        assert len(list(read_wal(wal.path))) == 10

    def test_fsync_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_every"):
            WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=0)


class TestCrashRecovery:
    def test_torn_tail_tolerated_on_read(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append_many(EVENTS[:3])
        with path.open("ab") as handle:
            handle.write(b'{"seq": 4, "type": "add_ra')  # crash mid-write
        assert [seq for seq, _ in read_wal(path)] == [1, 2, 3]

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append_many(EVENTS[:3])
        with path.open("ab") as handle:
            handle.write(b'{"seq": 4, "type"')
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 3
            assert wal.append(RemoveUser(1)) == 4
        assert len(list(read_wal(path))) == 4  # no corruption left behind

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append_many(EVENTS[:3])
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b"garbage not json\n"  # record 2 of 3, not the tail
        path.write_bytes(b"".join(lines))
        with pytest.raises(WalError, match="corrupt"):
            list(read_wal(path))

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append_many(EVENTS[:2])
        doctored = path.read_text().replace('"seq":2', '"seq":5')
        path.write_text(doctored)
        with pytest.raises(WalError, match="gap"):
            list(read_wal(path))

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        WriteAheadLog(path).close()
        doctored = path.read_text().replace('"version":1', '"version":99')
        path.write_text(doctored)
        with pytest.raises(WalError, match="version"):
            list(read_wal(path))

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"seq":1,"type":"remove_user","user":0}\n')
        with pytest.raises(WalError, match="header"):
            list(read_wal(path))

    def test_torn_header_repaired_on_reopen(self, tmp_path):
        """A crash that tears the header line at creation must not
        leave a permanently header-less (unreadable) log."""
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b'{"type": "header", "ver')  # died at creation
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 0
            wal.append(AddRating(0, 1, 2.0))
        assert list(read_wal(path)) == [(1, AddRating(0, 1, 2.0))]


class TestMarkRollback:
    def test_rollback_discards_partial_unit(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append(AddRating(0, 0, 1.0))
            mark = wal.mark()
            wal.append(AddRating(1, 1, 2.0))
            wal.append(AddUser((3,)))
            wal.rollback(mark)
            assert wal.last_seq == 1
            # The log continues cleanly from the rollback point.
            assert wal.append(RemoveUser(0)) == 2
        assert [event for _, event in read_wal(path)] == [
            AddRating(0, 0, 1.0),
            RemoveUser(0),
        ]

    def test_rollback_to_empty_mark(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            mark = wal.mark()
            wal.append(AddRating(0, 0, 1.0))
            wal.rollback(mark)
            assert wal.last_seq == 0
        assert list(read_wal(path)) == []

    def test_failed_append_does_not_advance_sequence(self, tmp_path, monkeypatch):
        """A write failure (disk full) must leave the counter and file
        untouched, so a retry reuses the sequence number instead of
        leaving an unreadable gap."""
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append(AddRating(0, 0, 1.0))
            original = WriteAheadLog._write_record

            def exploding(self, record):
                raise OSError("no space left on device")

            monkeypatch.setattr(WriteAheadLog, "_write_record", exploding)
            with pytest.raises(OSError, match="no space"):
                wal.append(AddRating(1, 1, 2.0))
            assert wal.last_seq == 1
            monkeypatch.setattr(WriteAheadLog, "_write_record", original)
            assert wal.append(AddRating(1, 1, 2.0)) == 2  # retry, same seq
        assert [seq for seq, _ in read_wal(path)] == [1, 2]


class TestMidHistoryStart:
    def test_advance_to_lets_log_start_late(self, tmp_path):
        """Journaling may begin mid-history: the first record's sequence
        is arbitrary, later records must stay contiguous."""
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.advance_to(41)
            assert wal.append(AddRating(1, 1)) == 42
        with WriteAheadLog(path) as wal:  # reopen adopts the late start
            assert wal.last_seq == 42
        assert list(read_wal(path, after=41)) == [(42, AddRating(1, 1))]

    def test_advance_to_refused_on_nonempty_log(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.jsonl") as wal:
            wal.append(AddRating(0, 0))
            with pytest.raises(WalError, match="already holds"):
                wal.advance_to(10)
