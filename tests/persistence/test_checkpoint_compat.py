"""Backward compatibility: version-1 (pre-compaction) checkpoints.

Version-1 archives stored dense int64/float64 graph rows and wide
dataset/cache arrays.  The legacy float64 similarities are the *pre-cast*
values of the same float64 formulas today's kernels accumulate before
the single float32 boundary cast — so narrowing them on load must land
bit-identical to a natively compact checkpoint, and a full
``restore()`` / ``repro recover --verify`` must pass unchanged.
"""

import json

import numpy as np

from repro import DynamicKnnIndex, KiffConfig
from repro.cli import main as cli_main
from repro.graph.knn_graph import MISSING
from repro.layout import ID_DTYPE, SCORE_DTYPE, unpack_rows
from repro.persistence import load_checkpoint, save_checkpoint
from repro.similarity.base import ProfileIndex
from repro.similarity.engine import get_metric
from repro.streaming import AddRating
from tests.conftest import random_dataset


def _converged_index():
    dataset = random_dataset(
        n_users=16, n_items=12, density=0.2, seed=8, ratings=True
    )
    index = DynamicKnnIndex(dataset, KiffConfig(k=3), auto_refresh=False)
    index.apply([AddRating(0, 5, 4.0), AddRating(3, 7, 2.0)])
    index.refresh()
    return index


def _write_legacy_v1(index, directory):
    """Rewrite a fresh checkpoint into the historical version-1 layout."""
    path = save_checkpoint(index, directory)
    data = dict(np.load(path, allow_pickle=False))
    meta = json.loads(str(np.asarray(data.pop("meta")).item()))
    meta["version"] = 1
    meta.pop("dtypes", None)  # v1 predates the dtype tags

    # Packed compact rows -> dense rows at the historical dtypes.  The
    # legacy writer stored the raw float64 formula values, which the
    # dense score_block path still computes — genuinely different bits
    # from widening the stored float32 back up.
    k = int(data.pop("graph_k"))
    neighbors, _ = unpack_rows(
        data.pop("graph_indptr"),
        data.pop("graph_ids"),
        data.pop("graph_sims"),
        k,
    )
    profiles = ProfileIndex(index.builder.snapshot())
    block = get_metric("cosine").score_block(
        profiles, np.arange(index.n_users, dtype=np.int64)
    )
    legacy_sims = np.full(neighbors.shape, -np.inf, dtype=np.float64)
    rows, cols = np.nonzero(neighbors != MISSING)
    legacy_sims[rows, cols] = block[rows, neighbors[rows, cols]]
    data["graph_neighbors"] = neighbors.astype(np.int64)
    data["graph_sims"] = legacy_sims

    # v1 stored every id/index array wide and had no float32 payloads.
    for key, array in list(data.items()):
        if array.dtype == np.int32:
            data[key] = array.astype(np.int64)
        elif array.dtype == np.float32:  # pragma: no cover - defensive
            data[key] = array.astype(np.float64)

    np.savez_compressed(path, meta=np.asarray(json.dumps(meta)), **data)
    return path


class TestLegacyV1Restore:
    def test_loads_and_narrows_bit_correctly(self, tmp_path):
        index = _converged_index()
        try:
            path = _write_legacy_v1(index, tmp_path)
            state = load_checkpoint(path)
            assert state.neighbors.dtype != np.int64  # narrowed on load
            live_neighbors, live_sims = index._rows()
            np.testing.assert_array_equal(state.neighbors, live_neighbors)
            # The float64 -> float32 narrowing reproduces today's
            # boundary-cast scores bit for bit.
            assert state.sims.dtype == SCORE_DTYPE
            np.testing.assert_array_equal(state.sims, live_sims)
        finally:
            index.close()

    def test_full_restore_matches_live_index(self, tmp_path):
        index = _converged_index()
        try:
            _write_legacy_v1(index, tmp_path)
            restored = DynamicKnnIndex.restore(tmp_path)
            try:
                assert restored.graph == index.graph
                assert restored.dataset == index.dataset
                assert restored.last_seq == index.last_seq
                assert restored._neighbors.dtype == ID_DTYPE
                assert restored._sims.dtype == SCORE_DTYPE
                assert restored._candidate_counts  # cache survived
            finally:
                restored.close()
        finally:
            index.close()

    def test_recover_verify_passes_on_legacy_state(self, tmp_path):
        index = _converged_index()
        try:
            _write_legacy_v1(index, tmp_path)
        finally:
            index.close()
        assert cli_main(["recover", str(tmp_path), "--verify"]) == 0

    def test_v2_is_the_written_version(self, tmp_path):
        index = _converged_index()
        try:
            path = save_checkpoint(index, tmp_path)
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(np.asarray(archive["meta"]).item()))
                assert meta["version"] == 2
                assert np.dtype(meta["dtypes"]["ids"]) == ID_DTYPE
                assert np.dtype(meta["dtypes"]["scores"]) == SCORE_DTYPE
                assert "graph_indptr" in archive  # packed, not dense
                assert "graph_neighbors" not in archive
        finally:
            index.close()
