"""Unit tests for checkpoint save/load and checkpoint-only restore."""

import numpy as np
import pytest

from repro import DynamicKnnIndex, KiffConfig
from repro.persistence import (
    CheckpointError,
    checkpoint_path,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.streaming import AddRating, AddUser, RemoveUser
from tests.conftest import random_dataset


@pytest.fixture
def streamed_index(rated_dataset):
    """An index mid-stream: applied events, a pending dirty set, a warm
    candidate cache — the state a checkpoint must capture fully."""
    index = DynamicKnnIndex(rated_dataset, KiffConfig(k=2), auto_refresh=False)
    index.apply([AddRating(0, 3, 4.0), AddUser((1, 4), (5.0, 2.0))])
    index.refresh()
    index.apply([RemoveUser(2), AddRating(4, 1, 3.0)])  # left pending
    return index


class TestSaveLoad:
    def test_archive_name_carries_sequence(self, streamed_index, tmp_path):
        path = save_checkpoint(streamed_index, tmp_path)
        assert path == checkpoint_path(tmp_path, streamed_index.last_seq)
        assert path.exists()

    def test_state_round_trip(self, streamed_index, tmp_path):
        state = load_checkpoint(save_checkpoint(streamed_index, tmp_path))
        assert state.seq == streamed_index.last_seq == 4
        assert state.dataset == streamed_index.dataset
        assert state.config == streamed_index.config
        assert state.metric == "cosine"
        assert state.auto_refresh is False
        assert state.pending_events == streamed_index.pending_events == 2
        assert set(state.dirty) == set(streamed_index.dirty_users)
        assert state.evaluations == streamed_index.engine.counter.evaluations
        assert state.initial_evaluations == streamed_index.initial_evaluations
        neighbors, sims = streamed_index._rows()
        assert np.array_equal(state.neighbors, neighbors)
        assert np.array_equal(state.sims, sims)

    def test_candidate_cache_round_trip(self, streamed_index, tmp_path):
        state = load_checkpoint(save_checkpoint(streamed_index, tmp_path))
        cached = dict(state.cache)
        assert cached == streamed_index._candidate_counts
        # Insertion order is part of the state (it is the eviction order).
        assert [user for user, _ in state.cache] == list(
            streamed_index._candidate_counts
        )

    def test_config_inf_gamma_round_trips(self, rated_dataset, tmp_path):
        import math

        index = DynamicKnnIndex(
            rated_dataset, KiffConfig(k=2, gamma=math.inf, min_rating=2.0)
        )
        state = load_checkpoint(save_checkpoint(index, tmp_path))
        assert state.config.gamma == math.inf
        assert state.config.min_rating == 2.0

    def test_version_check(self, streamed_index, tmp_path):
        path = save_checkpoint(streamed_index, tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        data["meta"] = np.asarray(
            str(data["meta"]).replace('"version": 2', '"version": 99')
        )
        np.savez_compressed(path, **data)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)


class TestLatestCheckpoint:
    def test_picks_highest_sequence(self, streamed_index, tmp_path):
        early = save_checkpoint(streamed_index, tmp_path)
        streamed_index.apply(AddRating(0, 2, 2.0))
        late = save_checkpoint(streamed_index, tmp_path)
        assert latest_checkpoint(tmp_path) == late != early

    def test_ignores_foreign_files(self, streamed_index, tmp_path):
        (tmp_path / "checkpoint-garbage.npz").write_bytes(b"")
        (tmp_path / "notes.txt").write_text("hi")
        path = save_checkpoint(streamed_index, tmp_path)
        assert latest_checkpoint(tmp_path) == path

    def test_missing_directory_is_none(self, tmp_path):
        assert latest_checkpoint(tmp_path / "nope") is None


class TestCheckpointOnlyRestore:
    """restore() without any WAL: pure checkpoint recovery."""

    def test_restore_resumes_exactly(self, streamed_index, tmp_path):
        streamed_index.checkpoint(tmp_path)
        streamed_index.refresh()
        restored = DynamicKnnIndex.restore(tmp_path)
        # The pending dirty set was serialized; restore's refresh
        # converges it to the same graph the live index reached.
        assert restored.graph == streamed_index.graph
        assert restored.dataset == streamed_index.dataset
        assert restored.last_seq == streamed_index.last_seq
        assert restored.pending_events == 0
        assert restored.restore_info.replayed_events == 0
        assert restored.auto_refresh is False
        assert restored._candidate_counts  # cache survived

    def test_restore_without_refresh_keeps_pending_state(
        self, streamed_index, tmp_path
    ):
        streamed_index.checkpoint(tmp_path)
        restored = DynamicKnnIndex.restore(tmp_path, refresh=False)
        assert restored.pending_events == streamed_index.pending_events
        assert restored.dirty_users == streamed_index.dirty_users
        neighbors, sims = restored._rows()
        live_neighbors, live_sims = streamed_index._rows()
        assert np.array_equal(neighbors, live_neighbors)
        assert np.array_equal(sims, live_sims)

    def test_restore_continues_accounting(self, streamed_index, tmp_path):
        streamed_index.checkpoint(tmp_path)
        restored = DynamicKnnIndex.restore(tmp_path)
        # Counter continuity: maintenance_evaluations includes the
        # pre-crash history plus the recovery refresh, nothing is reset.
        assert (
            restored.engine.counter.evaluations
            >= streamed_index.engine.counter.evaluations
        )
        assert restored.initial_evaluations == streamed_index.initial_evaluations
        assert restored.restore_info.evaluations > 0  # the pending refresh

    def test_restore_metric_override(self, tmp_path):
        dataset = random_dataset(n_users=12, n_items=10, seed=3, ratings=True)
        index = DynamicKnnIndex(dataset, KiffConfig(k=3), metric="jaccard")
        index.checkpoint(tmp_path)
        assert DynamicKnnIndex.restore(tmp_path).engine.metric.name == "jaccard"
        override = DynamicKnnIndex.restore(tmp_path, metric="cosine")
        assert override.engine.metric.name == "cosine"

    def test_restore_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            DynamicKnnIndex.restore(tmp_path)

    def test_restore_after_remove_user_keeps_tombstone(self, tmp_path):
        dataset = random_dataset(n_users=10, n_items=8, seed=1, ratings=True)
        index = DynamicKnnIndex(dataset, KiffConfig(k=3))
        index.apply(RemoveUser(4))
        index.checkpoint(tmp_path)
        restored = DynamicKnnIndex.restore(tmp_path)
        assert restored.n_users == 10  # the id stays allocated
        assert restored.dataset.user_items(4).size == 0
        assert restored.graph == index.graph
