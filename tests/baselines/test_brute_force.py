"""Unit tests for the brute-force exact KNN baseline."""

import numpy as np
import pytest

from repro.baselines import brute_force_knn
from repro.similarity import SimilarityEngine


class TestExactness:
    def test_matches_naive_python(self, rated_dataset):
        engine = SimilarityEngine(rated_dataset)
        k = 2
        result = brute_force_knn(engine, k)
        check = SimilarityEngine(rated_dataset)
        for u in range(rated_dataset.n_users):
            sims = [
                (check.metric.score_pair(check.index, u, v), -v)
                for v in range(rated_dataset.n_users)
                if v != u
            ]
            expected = sorted(sims, reverse=True)[:k]
            got = result.graph.sims_of(u)
            np.testing.assert_allclose(
                got, [s for s, _ in expected][: got.size]
            )

    @pytest.mark.parametrize("metric", ["cosine", "jaccard", "adamic_adar"])
    def test_rows_are_globally_optimal(self, tiny_wikipedia, metric):
        engine = SimilarityEngine(tiny_wikipedia, metric=metric)
        result = brute_force_knn(engine, 5)
        # Spot-check: no non-neighbour may beat the kth kept similarity.
        check = SimilarityEngine(tiny_wikipedia, metric=metric)
        rng = np.random.default_rng(0)
        for u in rng.integers(0, tiny_wikipedia.n_users, size=10):
            u = int(u)
            kth = result.graph.kth_sims()[u]
            neighbors = set(result.graph.neighbors_of(u).tolist())
            for v in rng.integers(0, tiny_wikipedia.n_users, size=20):
                v = int(v)
                if v == u or v in neighbors:
                    continue
                assert check.metric.score_pair(check.index, u, v) <= kth + 1e-9

    def test_block_size_does_not_change_result(self, tiny_wikipedia):
        a = brute_force_knn(SimilarityEngine(tiny_wikipedia), 5, block_size=7)
        b = brute_force_knn(SimilarityEngine(tiny_wikipedia), 5, block_size=512)
        assert a.graph == b.graph

    def test_rows_are_complete(self, tiny_wikipedia):
        result = brute_force_knn(SimilarityEngine(tiny_wikipedia), 5)
        assert result.graph.is_complete()

    def test_self_never_a_neighbor(self, tiny_wikipedia):
        result = brute_force_knn(SimilarityEngine(tiny_wikipedia), 5)
        for u in range(tiny_wikipedia.n_users):
            assert u not in result.graph.neighbors_of(u)


class TestAccounting:
    def test_not_counted_by_default(self, toy_engine):
        brute_force_knn(toy_engine, 2)
        assert toy_engine.counter.evaluations == 0

    def test_counted_when_requested(self, toy_engine):
        brute_force_knn(toy_engine, 2, count_evaluations=True)
        n = toy_engine.n_users
        assert toy_engine.counter.evaluations == n * (n - 1)

    def test_invalid_k_raises(self, toy_engine):
        with pytest.raises(ValueError):
            brute_force_knn(toy_engine, 0)
        with pytest.raises(ValueError):
            brute_force_knn(toy_engine, toy_engine.n_users)
