"""Unit tests for the random initial graph."""

import numpy as np
import pytest

from repro.baselines import random_knn_graph
from repro.similarity import SimilarityEngine


class TestStructure:
    def test_every_user_has_k_neighbors(self, wiki_engine):
        graph = random_knn_graph(wiki_engine, 7, seed=0)
        assert graph.is_complete()
        assert graph.k == 7

    def test_no_self_loops(self, wiki_engine):
        graph = random_knn_graph(wiki_engine, 7, seed=0)
        for u in range(graph.n_users):
            assert u not in graph.neighbors_of(u)

    def test_no_duplicate_neighbors(self, wiki_engine):
        graph = random_knn_graph(wiki_engine, 7, seed=1)
        for u in range(graph.n_users):
            row = graph.neighbors_of(u)
            assert np.unique(row).size == row.size

    def test_deterministic_under_seed(self, tiny_wikipedia):
        a = random_knn_graph(SimilarityEngine(tiny_wikipedia), 5, seed=3)
        b = random_knn_graph(SimilarityEngine(tiny_wikipedia), 5, seed=3)
        assert a == b

    def test_different_seeds_differ(self, tiny_wikipedia):
        a = random_knn_graph(SimilarityEngine(tiny_wikipedia), 5, seed=3)
        b = random_knn_graph(SimilarityEngine(tiny_wikipedia), 5, seed=4)
        assert a != b

    def test_invalid_k_raises(self, wiki_engine):
        with pytest.raises(ValueError):
            random_knn_graph(wiki_engine, 0)
        with pytest.raises(ValueError):
            random_knn_graph(wiki_engine, wiki_engine.n_users)


class TestSimilarities:
    def test_sims_computed_and_counted(self, toy_engine):
        graph = random_knn_graph(toy_engine, 2, seed=0)
        n = toy_engine.n_users
        assert toy_engine.counter.evaluations == n * 2
        # Edge sims must match direct evaluation.
        for u in range(n):
            for v, s in zip(graph.neighbors_of(u), graph.sims_of(u)):
                fresh = SimilarityEngine(toy_engine.dataset)
                assert fresh.pair(u, int(v)) == pytest.approx(s)

    def test_sims_skipped_when_disabled(self, toy_engine):
        graph = random_knn_graph(toy_engine, 2, seed=0, compute_sims=False)
        assert toy_engine.counter.evaluations == 0
        assert np.all(graph.sims[graph.valid_mask] == 0.0)
