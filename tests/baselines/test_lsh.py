"""Unit tests for the MinHash-LSH extension baseline."""

import pytest

from repro.baselines import LshConfig, brute_force_knn, lsh_knn, random_knn_graph
from repro.graph.metrics import recall
from repro.similarity import SimilarityEngine


class TestConfig:
    def test_num_hashes(self):
        assert LshConfig(bands=8, rows=4).num_hashes == 32

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            LshConfig(k=0)
        with pytest.raises(ValueError):
            LshConfig(bands=0)
        with pytest.raises(ValueError):
            LshConfig(rows=0)
        with pytest.raises(ValueError):
            LshConfig(max_pairs_per_bucket=0)


class TestBehaviour:
    def test_beats_random_graph(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia, metric="jaccard")
        result = lsh_knn(engine, LshConfig(k=10, seed=0))
        exact = brute_force_knn(
            SimilarityEngine(tiny_wikipedia, metric="jaccard"), 10
        )
        random_graph = random_knn_graph(
            SimilarityEngine(tiny_wikipedia, metric="jaccard"), 10, seed=0
        )
        assert recall(result.graph, exact.graph) > recall(
            random_graph, exact.graph
        )

    def test_deterministic_under_seed(self, tiny_wikipedia):
        a = lsh_knn(SimilarityEngine(tiny_wikipedia), LshConfig(k=8, seed=1))
        b = lsh_knn(SimilarityEngine(tiny_wikipedia), LshConfig(k=8, seed=1))
        assert a.graph == b.graph

    def test_more_bands_more_candidates(self, tiny_wikipedia):
        few = lsh_knn(
            SimilarityEngine(tiny_wikipedia), LshConfig(k=8, bands=2, rows=4)
        )
        many = lsh_knn(
            SimilarityEngine(tiny_wikipedia), LshConfig(k=8, bands=16, rows=4)
        )
        assert many.extras["candidate_pairs"] >= few.extras["candidate_pairs"]

    def test_identical_users_always_collide(self, toy_dataset):
        # Carl (2) and Dave (3) have identical profiles: every band
        # signature matches, so they must be found.
        engine = SimilarityEngine(toy_dataset)
        result = lsh_knn(engine, LshConfig(k=2, bands=4, rows=2, seed=0))
        assert 3 in result.graph.neighbors_of(2)
        assert 2 in result.graph.neighbors_of(3)

    def test_evaluations_counted(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia)
        result = lsh_knn(engine, LshConfig(k=8, seed=0))
        assert result.evaluations == result.extras["candidate_pairs"]
