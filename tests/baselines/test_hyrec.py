"""Unit tests for the HyRec baseline."""

import pytest

from repro.baselines import HyRecConfig, brute_force_knn, hyrec
from repro.graph.metrics import recall
from repro.similarity import SimilarityEngine


class TestConfig:
    def test_defaults_follow_paper(self):
        config = HyRecConfig()
        assert config.k == 20
        assert config.r == 0  # no random candidates, Section IV-D
        assert config.beta == 0.001

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            HyRecConfig(k=0)
        with pytest.raises(ValueError):
            HyRecConfig(r=-1)
        with pytest.raises(ValueError):
            HyRecConfig(beta=-0.5)
        with pytest.raises(ValueError):
            HyRecConfig(max_iterations=0)


class TestConvergence:
    def test_converges_to_reasonable_recall(self, tiny_wikipedia):
        result = hyrec(
            SimilarityEngine(tiny_wikipedia), HyRecConfig(k=10, seed=0)
        )
        exact = brute_force_knn(SimilarityEngine(tiny_wikipedia), 10)
        assert recall(result.graph, exact.graph) > 0.8

    def test_deterministic_under_seed(self, tiny_wikipedia):
        a = hyrec(SimilarityEngine(tiny_wikipedia), HyRecConfig(k=8, seed=2))
        b = hyrec(SimilarityEngine(tiny_wikipedia), HyRecConfig(k=8, seed=2))
        assert a.graph == b.graph

    def test_graph_complete_and_self_free(self, tiny_wikipedia):
        result = hyrec(
            SimilarityEngine(tiny_wikipedia), HyRecConfig(k=10, seed=0)
        )
        assert result.graph.is_complete()
        for u in range(result.graph.n_users):
            assert u not in result.graph.neighbors_of(u)

    def test_beta_termination(self, tiny_wikipedia):
        loose = hyrec(
            SimilarityEngine(tiny_wikipedia), HyRecConfig(k=8, seed=0, beta=5.0)
        )
        tight = hyrec(
            SimilarityEngine(tiny_wikipedia),
            HyRecConfig(k=8, seed=0, beta=0.001),
        )
        assert loose.iterations <= tight.iterations

    def test_max_iterations_respected(self, wiki_engine):
        result = hyrec(
            wiki_engine, HyRecConfig(k=8, seed=0, max_iterations=2, beta=0.0)
        )
        assert result.iterations <= 2


class TestRandomCandidates:
    def test_r_adds_candidates(self, tiny_wikipedia):
        without = hyrec(
            SimilarityEngine(tiny_wikipedia),
            HyRecConfig(k=8, seed=0, r=0, max_iterations=1, beta=0.0),
        )
        with_random = hyrec(
            SimilarityEngine(tiny_wikipedia),
            HyRecConfig(k=8, seed=0, r=5, max_iterations=1, beta=0.0),
        )
        assert with_random.evaluations > without.evaluations

    def test_r_can_only_help_recall(self, tiny_wikipedia):
        """The paper: r=5 improves recall slightly (4% on average)."""
        exact = brute_force_knn(SimilarityEngine(tiny_wikipedia), 8)
        without = hyrec(
            SimilarityEngine(tiny_wikipedia), HyRecConfig(k=8, seed=0, r=0)
        )
        with_random = hyrec(
            SimilarityEngine(tiny_wikipedia), HyRecConfig(k=8, seed=0, r=3)
        )
        assert recall(with_random.graph, exact.graph) >= recall(
            without.graph, exact.graph
        ) - 0.02


class TestTrace:
    def test_trace_starts_with_random_init(self, wiki_engine):
        result = hyrec(wiki_engine, HyRecConfig(k=5, seed=0))
        assert result.trace.records[0].iteration == 0
        assert result.trace.records[0].evaluations == wiki_engine.n_users * 5
