"""Unit tests for the NN-Descent baseline."""

import pytest

from repro.baselines import NNDescentConfig, nn_descent, brute_force_knn
from repro.graph.metrics import recall
from repro.similarity import SimilarityEngine


class TestConfig:
    def test_defaults(self):
        config = NNDescentConfig()
        assert config.k == 20
        assert config.rho == 1.0
        assert config.delta == 0.001

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            NNDescentConfig(k=0)
        with pytest.raises(ValueError):
            NNDescentConfig(rho=0.0)
        with pytest.raises(ValueError):
            NNDescentConfig(rho=1.5)
        with pytest.raises(ValueError):
            NNDescentConfig(delta=-1)
        with pytest.raises(ValueError):
            NNDescentConfig(max_iterations=0)


class TestConvergence:
    def test_converges_to_high_recall(self, tiny_wikipedia):
        engine = SimilarityEngine(tiny_wikipedia)
        result = nn_descent(engine, NNDescentConfig(k=10, seed=0))
        exact = brute_force_knn(SimilarityEngine(tiny_wikipedia), 10)
        assert recall(result.graph, exact.graph) > 0.85

    def test_improves_over_random_start(self, tiny_wikipedia):
        from repro.baselines import random_knn_graph

        engine = SimilarityEngine(tiny_wikipedia)
        result = nn_descent(engine, NNDescentConfig(k=10, seed=0))
        exact = brute_force_knn(SimilarityEngine(tiny_wikipedia), 10)
        initial = random_knn_graph(
            SimilarityEngine(tiny_wikipedia), 10, seed=0
        )
        assert recall(result.graph, exact.graph) > recall(
            initial, exact.graph
        )

    def test_deterministic_under_seed(self, tiny_wikipedia):
        a = nn_descent(
            SimilarityEngine(tiny_wikipedia), NNDescentConfig(k=8, seed=5)
        )
        b = nn_descent(
            SimilarityEngine(tiny_wikipedia), NNDescentConfig(k=8, seed=5)
        )
        assert a.graph == b.graph
        assert a.evaluations == b.evaluations

    def test_graph_is_complete(self, tiny_wikipedia):
        result = nn_descent(
            SimilarityEngine(tiny_wikipedia), NNDescentConfig(k=10, seed=0)
        )
        assert result.graph.is_complete()

    def test_no_self_neighbors(self, tiny_wikipedia):
        result = nn_descent(
            SimilarityEngine(tiny_wikipedia), NNDescentConfig(k=10, seed=0)
        )
        for u in range(result.graph.n_users):
            assert u not in result.graph.neighbors_of(u)

    def test_max_iterations_respected(self, wiki_engine):
        result = nn_descent(
            wiki_engine, NNDescentConfig(k=10, seed=0, max_iterations=2, delta=0.0)
        )
        assert result.iterations <= 2


class TestSampling:
    def test_sampling_reduces_evaluations_per_iteration(self, tiny_wikipedia):
        full = nn_descent(
            SimilarityEngine(tiny_wikipedia),
            NNDescentConfig(k=10, seed=0, max_iterations=1, delta=0.0),
        )
        sampled = nn_descent(
            SimilarityEngine(tiny_wikipedia),
            NNDescentConfig(k=10, seed=0, rho=0.3, max_iterations=1, delta=0.0),
        )
        assert sampled.evaluations < full.evaluations


class TestInstrumentation:
    def test_trace_starts_at_iteration_zero(self, wiki_engine):
        result = nn_descent(wiki_engine, NNDescentConfig(k=5, seed=0))
        assert result.trace.records[0].iteration == 0
        # Iteration 0 = random init: n*k evaluations, n*k "updates".
        n, k = wiki_engine.n_users, 5
        assert result.trace.records[0].evaluations == n * k
        assert result.trace.records[0].updates == n * k

    def test_initial_graph_counted_in_scan_rate(self, wiki_engine):
        result = nn_descent(wiki_engine, NNDescentConfig(k=5, seed=0))
        n = wiki_engine.n_users
        assert result.evaluations >= n * 5

    def test_snapshots_track_progress(self, tiny_wikipedia):
        result = nn_descent(
            SimilarityEngine(tiny_wikipedia),
            NNDescentConfig(k=5, seed=0, track_snapshots=True),
        )
        snapshots = result.trace.snapshots()
        assert len(snapshots) == len(result.trace.records)
        assert snapshots[-1] == result.graph

    def test_phase_breakdown_populated(self, wiki_engine):
        result = nn_descent(wiki_engine, NNDescentConfig(k=5, seed=0))
        assert result.timer.get("candidate_selection") > 0
        assert result.timer.get("similarity") > 0


class TestScanRateShape:
    def test_kiff_needs_fewer_evaluations(self, tiny_wikipedia):
        """The paper's headline: KIFF's scan rate is several times lower."""
        from repro import KiffConfig, kiff

        nnd = nn_descent(
            SimilarityEngine(tiny_wikipedia), NNDescentConfig(k=10, seed=0)
        )
        kf = kiff(SimilarityEngine(tiny_wikipedia), KiffConfig(k=10))
        assert kf.scan_rate < nnd.scan_rate / 2
