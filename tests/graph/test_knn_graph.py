"""Unit tests for the KnnGraph representation."""

import numpy as np
import pytest

from repro.graph.knn_graph import MISSING, KnnGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = KnnGraph.empty(5, 3)
        assert graph.n_users == 5
        assert graph.k == 3
        assert graph.edge_count() == 0
        assert not graph.is_complete()

    def test_empty_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            KnnGraph.empty(0, 3)
        with pytest.raises(ValueError):
            KnnGraph.empty(3, 0)

    def test_mismatched_arrays_raise(self):
        with pytest.raises(ValueError):
            KnnGraph(np.zeros((2, 3), dtype=int), np.zeros((2, 4)))

    def test_from_neighbor_dict(self):
        graph = KnnGraph.from_neighbor_dict(
            {0: [(1, 0.5), (2, 0.9)], 2: [(0, 0.3)]}, n_users=3, k=2
        )
        assert graph.neighbors_of(0).tolist() == [2, 1]  # sorted by sim
        assert graph.neighbors_of(1).tolist() == []
        assert graph.neighbors_of(2).tolist() == [0]

    def test_from_neighbor_dict_too_many_entries_raises(self):
        with pytest.raises(ValueError, match="more than k"):
            KnnGraph.from_neighbor_dict(
                {0: [(1, 0.1), (2, 0.2), (3, 0.3)]}, n_users=4, k=2
            )


class TestCanonicalForm:
    def test_rows_sorted_by_similarity_desc(self):
        neighbors = np.array([[3, 1, 2]])
        sims = np.array([[0.1, 0.9, 0.5]])
        graph = KnnGraph(neighbors, sims)
        assert graph.neighbors[0].tolist() == [1, 2, 3]
        np.testing.assert_array_equal(
            graph.sims[0], np.array([0.9, 0.5, 0.1], dtype=graph.sims.dtype)
        )

    def test_ties_break_on_ascending_id(self):
        graph = KnnGraph(np.array([[9, 4, 6]]), np.array([[0.5, 0.5, 0.5]]))
        assert graph.neighbors[0].tolist() == [4, 6, 9]

    def test_missing_entries_pushed_last(self):
        graph = KnnGraph(
            np.array([[MISSING, 2, MISSING, 1]]),
            np.array([[0.0, 0.3, 0.0, 0.8]]),
        )
        assert graph.neighbors[0].tolist() == [1, 2, MISSING, MISSING]

    def test_missing_sims_forced_to_neg_inf(self):
        graph = KnnGraph(np.array([[MISSING]]), np.array([[0.7]]))
        assert np.isneginf(graph.sims[0, 0])


class TestAccessors:
    def test_degree_and_edges(self):
        graph = KnnGraph.from_neighbor_dict(
            {0: [(1, 0.5)], 1: [(0, 0.4), (2, 0.2)]}, n_users=3, k=2
        )
        assert graph.degree().tolist() == [1, 2, 0]
        assert graph.edge_count() == 3

    def test_kth_sims(self):
        graph = KnnGraph.from_neighbor_dict(
            {0: [(1, 0.5), (2, 0.3)], 1: [(0, 0.4)]}, n_users=2, k=2
        )
        kth = graph.kth_sims()
        assert kth[0] == pytest.approx(0.3)
        assert np.isneginf(kth[1])  # row not full

    def test_sims_of_aligned_with_neighbors_of(self):
        graph = KnnGraph.from_neighbor_dict(
            {0: [(5, 0.2), (3, 0.9)]}, n_users=6, k=3
        )
        assert graph.neighbors_of(0).tolist() == [3, 5]
        np.testing.assert_array_equal(
            graph.sims_of(0), np.array([0.9, 0.2], dtype=graph.sims.dtype)
        )

    def test_neighbor_sets(self):
        graph = KnnGraph.from_neighbor_dict(
            {0: [(1, 0.5)], 1: [(0, 0.5)]}, n_users=2, k=1
        )
        assert graph.neighbor_sets() == [{1}, {0}]

    def test_copy_is_deep(self):
        graph = KnnGraph.from_neighbor_dict({0: [(1, 0.5)]}, n_users=2, k=1)
        clone = graph.copy()
        clone.neighbors[0, 0] = MISSING
        assert graph.neighbors[0, 0] == 1


class TestEquality:
    def test_equal_graphs(self):
        a = KnnGraph.from_neighbor_dict({0: [(1, 0.5)]}, n_users=2, k=1)
        b = KnnGraph.from_neighbor_dict({0: [(1, 0.5)]}, n_users=2, k=1)
        assert a == b

    def test_order_insensitive_via_canonicalisation(self):
        a = KnnGraph(np.array([[1, 2]]), np.array([[0.2, 0.8]]))
        b = KnnGraph(np.array([[2, 1]]), np.array([[0.8, 0.2]]))
        assert a == b

    def test_different_sims_unequal(self):
        a = KnnGraph.from_neighbor_dict({0: [(1, 0.5)]}, n_users=2, k=1)
        b = KnnGraph.from_neighbor_dict({0: [(1, 0.6)]}, n_users=2, k=1)
        assert a != b
