"""Unit tests for recall (paper Eq. 2-4) and related metrics."""

import pytest

from repro.graph.knn_graph import KnnGraph
from repro.graph.metrics import (
    average_similarity,
    per_user_recall,
    recall,
    strict_recall,
)


def _graph(entries, n_users, k):
    return KnnGraph.from_neighbor_dict(entries, n_users=n_users, k=k)


class TestPerUserRecall:
    def test_perfect_match(self):
        exact = _graph({0: [(1, 0.9), (2, 0.5)], 1: [(0, 0.9), (2, 0.4)],
                        2: [(0, 0.5), (1, 0.4)]}, 3, 2)
        assert per_user_recall(exact, exact).tolist() == [1.0, 1.0, 1.0]

    def test_half_match(self):
        exact = _graph({0: [(1, 0.9), (2, 0.5)]}, 4, 2)
        approx = _graph({0: [(1, 0.9), (3, 0.1)]}, 4, 2)
        assert per_user_recall(approx, exact)[0] == pytest.approx(0.5)

    def test_tie_counts_as_hit(self):
        """A different neighbour with the same similarity is a valid KNN
        member (Equation 3's max over optimal neighbourhoods)."""
        exact = _graph({0: [(1, 0.5), (2, 0.5)]}, 4, 2)
        approx = _graph({0: [(1, 0.5), (3, 0.5)]}, 4, 2)
        assert per_user_recall(approx, exact)[0] == pytest.approx(1.0)

    def test_missing_slots_are_misses(self):
        exact = _graph({0: [(1, 0.9), (2, 0.5)]}, 3, 2)
        approx = _graph({0: [(1, 0.9)]}, 3, 2)
        assert per_user_recall(approx, exact)[0] == pytest.approx(0.5)

    def test_hits_capped_at_k(self):
        # Degenerate plateau: every candidate ties; recall must not exceed 1.
        exact = _graph({0: [(1, 0.5), (2, 0.5)]}, 4, 2)
        approx = _graph({0: [(2, 0.5), (3, 0.5)]}, 4, 2)
        assert per_user_recall(approx, exact)[0] == 1.0


class TestRecall:
    def test_mean_over_users(self):
        exact = _graph({0: [(1, 0.9)], 1: [(0, 0.9)]}, 2, 1)
        approx = _graph({0: [(1, 0.9)], 1: []}, 2, 1)
        assert recall(approx, exact) == pytest.approx(0.5)

    def test_shape_mismatch_raises(self):
        a = KnnGraph.empty(3, 2)
        b = KnnGraph.empty(4, 2)
        with pytest.raises(ValueError, match="user counts"):
            recall(a, b)

    def test_k_mismatch_raises(self):
        a = KnnGraph.empty(3, 2)
        b = KnnGraph.empty(3, 5)
        with pytest.raises(ValueError, match="different k"):
            recall(a, b)


class TestStrictRecall:
    def test_exact_ids_required(self):
        exact = _graph({0: [(1, 0.5), (2, 0.5)]}, 4, 2)
        tie_swap = _graph({0: [(1, 0.5), (3, 0.5)]}, 4, 2)
        assert strict_recall(tie_swap, exact) == pytest.approx(0.125)
        assert recall(tie_swap, exact) > strict_recall(tie_swap, exact)

    def test_strict_lower_bounds_value_recall(self, wiki_engine, tiny_wikipedia):
        from repro import KiffConfig, brute_force_knn, kiff
        from repro.similarity import SimilarityEngine

        result = kiff(wiki_engine, KiffConfig(k=8))
        exact = brute_force_knn(SimilarityEngine(tiny_wikipedia), 8)
        assert strict_recall(result.graph, exact.graph) <= recall(
            result.graph, exact.graph
        ) + 1e-12


class TestAverageSimilarity:
    def test_empty_graph_is_zero(self):
        assert average_similarity(KnnGraph.empty(3, 2)) == 0.0

    def test_mean_over_filled_slots(self):
        graph = _graph({0: [(1, 0.4), (2, 0.8)], 1: [(0, 0.4)]}, 3, 2)
        assert average_similarity(graph) == pytest.approx((0.4 + 0.8 + 0.4) / 3)

    def test_exact_graph_maximises_average_similarity(self, tiny_wikipedia):
        from repro import brute_force_knn, random_knn_graph
        from repro.similarity import SimilarityEngine

        exact = brute_force_knn(SimilarityEngine(tiny_wikipedia), 5)
        random_graph = random_knn_graph(
            SimilarityEngine(tiny_wikipedia), 5, seed=0
        )
        assert average_similarity(exact.graph) >= average_similarity(
            random_graph
        )
