"""Unit tests for KNN graph persistence and interchange."""

import numpy as np
import pytest

from repro.graph import (
    MISSING,
    KnnGraph,
    graph_from_arrays,
    graph_to_arrays,
    load_graph,
    save_graph,
    to_networkx,
    write_edge_list,
)


@pytest.fixture
def sample_graph():
    return KnnGraph.from_neighbor_dict(
        {0: [(1, 0.9), (2, 0.4)], 1: [(0, 0.9)], 3: [(2, 0.25)]},
        n_users=4,
        k=2,
    )


class TestNpzRoundTrip:
    def test_round_trip(self, sample_graph, tmp_path):
        path = save_graph(sample_graph, tmp_path / "graph.npz")
        assert load_graph(path) == sample_graph

    def test_suffix_added_when_missing(self, sample_graph, tmp_path):
        path = save_graph(sample_graph, tmp_path / "graph")
        assert path.suffix == ".npz"
        assert load_graph(path) == sample_graph

    def test_version_check(self, sample_graph, tmp_path):
        path = save_graph(sample_graph, tmp_path / "graph.npz")
        data = dict(np.load(path))
        data["version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_graph(path)

    def test_round_trip_preserves_missing_slots(self, sample_graph, tmp_path):
        path = save_graph(sample_graph, tmp_path / "g.npz")
        loaded = load_graph(path)
        assert loaded.degree().tolist() == sample_graph.degree().tolist()

    def test_round_trip_construction_result(self, wiki_engine, tmp_path):
        from repro import KiffConfig, kiff

        result = kiff(wiki_engine, KiffConfig(k=5))
        path = save_graph(result.graph, tmp_path / "wiki.npz")
        assert load_graph(path) == result.graph

    def test_round_trip_tombstone_rows(self, tmp_path):
        """A removed user's all-MISSING row (and users referencing no
        one) must survive the round-trip exactly — the case streaming
        checkpoints hit whenever a RemoveUser landed."""
        graph = KnnGraph.from_neighbor_dict(
            {0: [(2, 0.8)], 2: [(0, 0.8)]}, n_users=4, k=3
        )
        assert graph.degree().tolist() == [1, 0, 1, 0]  # 1 and 3 tombstoned
        loaded = load_graph(save_graph(graph, tmp_path / "tomb.npz"))
        assert loaded == graph
        assert loaded.neighbors.tolist() == graph.neighbors.tolist()
        assert (loaded.neighbors[1] == MISSING).all()
        assert np.isneginf(loaded.sims[1]).all()

    def test_round_trip_zero_user_graph(self, tmp_path):
        """A 0-user graph (empty population, k columns intact) must
        round-trip; `kiff()` produces one on an emptied dataset."""
        graph = KnnGraph(
            np.empty((0, 3), dtype=np.int64), np.empty((0, 3), dtype=np.float64)
        )
        loaded = load_graph(save_graph(graph, tmp_path / "empty.npz"))
        assert loaded == graph
        assert loaded.n_users == 0
        assert loaded.k == 3
        assert loaded.edge_count() == 0


class TestArrayHelpers:
    def test_arrays_round_trip(self, sample_graph):
        arrays = graph_to_arrays(sample_graph)
        assert set(arrays) == {"neighbors", "sims"}
        assert graph_from_arrays(arrays) == sample_graph

    def test_arrays_embeddable_in_archive(self, sample_graph, tmp_path):
        """The helper payload survives embedding in a larger npz — the
        composite-archive use the persistence checkpoints rely on."""
        path = tmp_path / "bundle.npz"
        np.savez(path, extra=np.arange(3), **graph_to_arrays(sample_graph))
        with np.load(path) as archive:
            assert graph_from_arrays(archive) == sample_graph


class TestEdgeList:
    def test_edge_count_matches(self, sample_graph, tmp_path):
        path = write_edge_list(sample_graph, tmp_path / "graph.tsv")
        lines = [
            line
            for line in path.read_text().splitlines()
            if not line.startswith("#")
        ]
        assert len(lines) == sample_graph.edge_count()

    def test_edges_sorted_best_first_per_user(self, sample_graph, tmp_path):
        path = write_edge_list(sample_graph, tmp_path / "graph.tsv")
        user0 = [
            line.split("\t")
            for line in path.read_text().splitlines()
            if line.startswith("0\t")
        ]
        sims = [float(cells[2]) for cells in user0]
        assert sims == sorted(sims, reverse=True)


class TestNetworkx:
    def test_nodes_and_edges(self, sample_graph):
        nx_graph = to_networkx(sample_graph)
        assert nx_graph.number_of_nodes() == 4  # isolated user kept
        assert nx_graph.number_of_edges() == sample_graph.edge_count()

    def test_weights(self, sample_graph):
        nx_graph = to_networkx(sample_graph)
        assert nx_graph[0][1]["weight"] == pytest.approx(0.9)

    def test_directedness(self, sample_graph):
        nx_graph = to_networkx(sample_graph)
        assert nx_graph.has_edge(3, 2)
        assert not nx_graph.has_edge(2, 3)
