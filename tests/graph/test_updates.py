"""Unit tests for the vectorised top-k merge kernel."""

import numpy as np
import pytest

from repro.core.heap import KnnHeap
from repro.graph.knn_graph import MISSING, KnnGraph
from repro.graph.updates import dedupe_pairs, merge_topk


def _empty(n, k):
    return (
        np.full((n, k), MISSING, dtype=np.int64),
        np.full((n, k), -np.inf, dtype=np.float64),
    )


class TestDedupePairs:
    def test_removes_self_pairs(self):
        us, vs = dedupe_pairs(np.array([0, 1]), np.array([0, 2]), 5)
        assert us.tolist() == [1]
        assert vs.tolist() == [2]

    def test_unordered_collapses_reversed_duplicates(self):
        us, vs = dedupe_pairs(np.array([0, 2]), np.array([2, 0]), 5)
        assert us.tolist() == [0]
        assert vs.tolist() == [2]

    def test_ordered_keeps_both_directions(self):
        us, vs = dedupe_pairs(
            np.array([0, 2]), np.array([2, 0]), 5, ordered=True
        )
        assert sorted(zip(us.tolist(), vs.tolist())) == [(0, 2), (2, 0)]

    def test_empty_input(self):
        us, vs = dedupe_pairs(np.array([]), np.array([]), 5)
        assert us.size == vs.size == 0


class TestMergeTopk:
    def test_insert_into_empty(self):
        neighbors, sims = _empty(3, 2)
        new_n, new_s, changes = merge_topk(
            neighbors, sims, np.array([0]), np.array([1]), np.array([0.5])
        )
        assert new_n[0].tolist() == [1, MISSING]
        assert new_s[0, 0] == 0.5
        assert changes == 1

    def test_no_candidates_returns_copy(self):
        neighbors, sims = _empty(3, 2)
        new_n, new_s, changes = merge_topk(
            neighbors, sims, np.array([]), np.array([]), np.array([])
        )
        assert changes == 0
        assert new_n is not neighbors  # a copy, not an alias

    def test_keeps_top_k(self):
        neighbors, sims = _empty(1, 2)
        new_n, _, changes = merge_topk(
            neighbors,
            sims,
            np.array([0, 0, 0]),
            np.array([1, 2, 3]),
            np.array([0.1, 0.9, 0.5]),
        )
        assert new_n[0].tolist() == [2, 3]
        assert changes == 2

    def test_duplicate_candidate_keeps_best_sim(self):
        neighbors, sims = _empty(1, 2)
        new_n, new_s, _ = merge_topk(
            neighbors,
            sims,
            np.array([0, 0]),
            np.array([1, 1]),
            np.array([0.2, 0.7]),
        )
        assert new_n[0, 0] == 1
        assert new_s[0, 0] == np.float32(0.7)

    def test_self_edges_dropped(self):
        neighbors, sims = _empty(2, 2)
        new_n, _, changes = merge_topk(
            neighbors, sims, np.array([0]), np.array([0]), np.array([0.9])
        )
        assert changes == 0
        assert new_n[0, 0] == MISSING

    def test_change_counts_only_new_edges(self):
        neighbors, sims = _empty(1, 2)
        neighbors[0, 0], sims[0, 0] = 1, 0.5
        _, _, changes = merge_topk(
            KnnGraph(neighbors, sims).neighbors,
            KnnGraph(neighbors, sims).sims,
            np.array([0, 0]),
            np.array([1, 2]),
            np.array([0.5, 0.3]),
        )
        assert changes == 1  # only user 2 is new

    def test_eviction_counts_as_one_change(self):
        neighbors = np.array([[1, 2]], dtype=np.int64)
        sims = np.array([[0.5, 0.4]])
        _, _, changes = merge_topk(
            neighbors, sims, np.array([0]), np.array([3]), np.array([0.9])
        )
        assert changes == 1

    def test_ties_resolved_like_heap(self):
        neighbors = np.array([[5]], dtype=np.int64)
        sims = np.array([[0.5]])
        new_n, _, _ = merge_topk(
            neighbors, sims, np.array([0]), np.array([2]), np.array([0.5])
        )
        # Canonical order prefers the lower id on equal similarity.
        assert new_n[0, 0] == 2


class TestHeapEquivalence:
    """merge_topk must produce exactly what per-pair KnnHeap updates do."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_streams_match(self, seed):
        rng = np.random.default_rng(seed)
        n_users, k, n_cands = 12, 4, 150
        cand_users = rng.integers(0, n_users, size=n_cands)
        cand_ids = rng.integers(0, n_users, size=n_cands)
        cand_sims = np.round(rng.random(n_cands), 2)  # force ties

        neighbors, sims = _empty(n_users, k)
        new_n, new_s, _ = merge_topk(
            neighbors, sims, cand_users, cand_ids, cand_sims
        )

        heaps = [KnnHeap(k) for _ in range(n_users)]
        for user, cand, sim in zip(cand_users, cand_ids, cand_sims):
            if user != cand:
                heaps[int(user)].update(int(cand), float(sim))
        for user, heap in enumerate(heaps):
            heap_n, heap_s = heap.to_arrays()
            assert new_n[user].tolist() == heap_n.tolist()
            np.testing.assert_allclose(new_s[user], heap_s)


class TestReverseNeighborIndex:
    def _graph(self):
        from repro.graph.updates import ReverseNeighborIndex

        neighbors = np.array(
            [
                [1, 2, MISSING],
                [0, MISSING, MISSING],
                [0, 1, 3],
                [MISSING, MISSING, MISSING],
            ],
            dtype=np.int64,
        )
        return neighbors, ReverseNeighborIndex(neighbors)

    def test_rebuild_matches_isin_scan(self):
        neighbors, index = self._graph()
        for user in range(4):
            scan = np.flatnonzero(np.isin(neighbors, [user]).any(axis=1))
            np.testing.assert_array_equal(index.referrers_of([user]), scan)

    def test_referrers_of_multiple_users_unions(self):
        _, index = self._graph()
        np.testing.assert_array_equal(index.referrers_of([1, 3]), [0, 2])

    def test_apply_row_diffs(self):
        neighbors, index = self._graph()
        # Row 0 drops 2 and gains 3.
        index.apply_row(0, neighbors[0], np.array([1, 3, MISSING]))
        assert index.referrers_of([2]).tolist() == []
        assert index.referrers_of([3]).tolist() == [0, 2]
        # Clearing a row removes all its citations.
        index.apply_row(2, np.array([0, 1, 3]), ())
        assert index.referrers_of([3]).tolist() == [0]
        assert index.referrers_of([1]).tolist() == [0]  # row 0 still cites 1

    def test_missing_users_have_no_referrers(self):
        _, index = self._graph()
        assert index.referrers_of([99]).size == 0
        assert index.referrers_of([]).size == 0

    def test_randomized_equivalence_with_scan(self):
        from repro.graph.updates import ReverseNeighborIndex

        rng = np.random.default_rng(7)
        n, k = 30, 4
        neighbors = np.full((n, k), MISSING, dtype=np.int64)
        index = ReverseNeighborIndex(neighbors)
        for _ in range(200):
            row = int(rng.integers(0, n))
            size = int(rng.integers(0, k + 1))
            new_row = np.full(k, MISSING, dtype=np.int64)
            if size:
                new_row[:size] = rng.choice(n, size=size, replace=False)
            index.apply_row(row, neighbors[row], new_row)
            neighbors[row] = new_row
        for user in range(n):
            scan = np.flatnonzero(np.isin(neighbors, [user]).any(axis=1))
            np.testing.assert_array_equal(
                index.referrers_of([user]), scan, err_msg=f"user {user}"
            )
