"""Unit tests for KNN graph analytics."""

import numpy as np
import pytest

from repro.graph import KnnGraph
from repro.graph.analysis import (
    analyze,
    in_degrees,
    reciprocity,
    similarity_by_rank,
    weakly_connected_components,
)


@pytest.fixture
def two_cliques():
    """Two mutually-linked pairs plus one isolated user."""
    return KnnGraph.from_neighbor_dict(
        {
            0: [(1, 0.9)],
            1: [(0, 0.9)],
            2: [(3, 0.5)],
            3: [(2, 0.5)],
        },
        n_users=5,
        k=1,
    )


class TestInDegrees:
    def test_counts(self, two_cliques):
        assert in_degrees(two_cliques).tolist() == [1, 1, 1, 1, 0]

    def test_star_graph(self):
        star = KnnGraph.from_neighbor_dict(
            {1: [(0, 0.5)], 2: [(0, 0.4)], 3: [(0, 0.3)]}, n_users=4, k=1
        )
        assert in_degrees(star)[0] == 3


class TestReciprocity:
    def test_fully_mutual(self, two_cliques):
        assert reciprocity(two_cliques) == pytest.approx(1.0)

    def test_no_mutual(self):
        chain = KnnGraph.from_neighbor_dict(
            {0: [(1, 0.5)], 1: [(2, 0.5)]}, n_users=3, k=1
        )
        assert reciprocity(chain) == 0.0

    def test_empty_graph(self):
        assert reciprocity(KnnGraph.empty(3, 2)) == 0.0

    def test_exact_graph_more_reciprocal_than_random(self, tiny_wikipedia):
        from repro import brute_force_knn, random_knn_graph
        from repro.similarity import SimilarityEngine

        exact = brute_force_knn(SimilarityEngine(tiny_wikipedia), 5).graph
        random_graph = random_knn_graph(
            SimilarityEngine(tiny_wikipedia), 5, seed=0, compute_sims=False
        )
        assert reciprocity(exact) > reciprocity(random_graph)


class TestSimilarityByRank:
    def test_nonincreasing_for_canonical_graph(self, wiki_engine):
        from repro import KiffConfig, kiff

        result = kiff(wiki_engine, KiffConfig(k=5))
        by_rank = similarity_by_rank(result.graph)
        valid = by_rank[~np.isnan(by_rank)]
        assert np.all(np.diff(valid) <= 1e-12)

    def test_empty_ranks_are_nan(self):
        graph = KnnGraph.from_neighbor_dict({0: [(1, 0.5)]}, n_users=2, k=3)
        by_rank = similarity_by_rank(graph)
        assert not np.isnan(by_rank[0])
        assert np.isnan(by_rank[1]) and np.isnan(by_rank[2])


class TestComponents:
    def test_component_sizes(self, two_cliques):
        assert weakly_connected_components(two_cliques) == [2, 2, 1]

    def test_single_component(self):
        ring = KnnGraph.from_neighbor_dict(
            {0: [(1, 0.5)], 1: [(2, 0.5)], 2: [(0, 0.5)]}, n_users=3, k=1
        )
        assert weakly_connected_components(ring) == [3]

    def test_empty_graph_all_singletons(self):
        assert weakly_connected_components(KnnGraph.empty(4, 2)) == [1, 1, 1, 1]

    def test_matches_networkx(self, wiki_engine):
        import networkx as nx

        from repro import KiffConfig, kiff
        from repro.graph import to_networkx

        result = kiff(wiki_engine, KiffConfig(k=5))
        ours = weakly_connected_components(result.graph)
        theirs = sorted(
            (len(c) for c in nx.weakly_connected_components(
                to_networkx(result.graph)
            )),
            reverse=True,
        )
        assert ours == theirs


class TestAnalyze:
    def test_summary_fields(self, two_cliques):
        stats = analyze(two_cliques)
        assert stats.n_users == 5
        assert stats.edges == 4
        assert stats.completeness == pytest.approx(4 / 5)
        assert stats.reciprocity == pytest.approx(1.0)
        assert stats.largest_component == 2
        assert stats.n_components == 3
        assert stats.mean_similarity == pytest.approx(0.7)

    def test_as_rows_renders(self, two_cliques):
        rows = analyze(two_cliques).as_rows()
        assert ["users", 5] in rows
