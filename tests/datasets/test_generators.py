"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.bipartite import DatasetError
from repro.datasets.generators import (
    GeneratorConfig,
    draw_ratings,
    ensure_min_user_profile,
    power_law_bipartite,
    sample_power_law_edges,
    zipf_weights,
)


class TestZipfWeights:
    def test_weights_sum_to_one(self):
        weights = zipf_weights(100, 0.8)
        assert weights.sum() == pytest.approx(1.0)

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_larger_exponent_is_more_skewed(self):
        flat = zipf_weights(50, 0.3)
        steep = zipf_weights(50, 1.5)
        assert steep.max() > flat.max()

    def test_shuffling_permutes_weights(self):
        rng = np.random.default_rng(0)
        shuffled = zipf_weights(20, 1.0, rng)
        unshuffled = zipf_weights(20, 1.0)
        assert sorted(shuffled) == pytest.approx(sorted(unshuffled))
        assert not np.allclose(shuffled, unshuffled)

    def test_invalid_inputs_raise(self):
        with pytest.raises(DatasetError):
            zipf_weights(0, 1.0)
        with pytest.raises(DatasetError):
            zipf_weights(10, -0.5)


class TestRatingModels:
    def test_binary_is_all_ones(self):
        rng = np.random.default_rng(0)
        assert np.all(draw_ratings("binary", 50, rng) == 1.0)

    def test_count_ratings_are_positive_integers(self):
        rng = np.random.default_rng(0)
        counts = draw_ratings("count", 500, rng)
        assert np.all(counts >= 1)
        assert np.all(counts == counts.astype(int))

    def test_star_ratings_on_half_star_grid(self):
        rng = np.random.default_rng(0)
        stars = draw_ratings("stars", 500, rng)
        assert np.all(stars >= 0.5)
        assert np.all(stars <= 5.0)
        assert np.all((stars * 2) == (stars * 2).astype(int))

    def test_unknown_model_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError, match="unknown rating model"):
            draw_ratings("nope", 5, rng)


class TestEdgeSampling:
    def test_exact_edge_count(self):
        rng = np.random.default_rng(1)
        users, items = sample_power_law_edges(50, 60, 300, 0.8, 0.8, rng)
        assert users.size == items.size == 300

    def test_edges_are_distinct(self):
        rng = np.random.default_rng(2)
        users, items = sample_power_law_edges(30, 30, 200, 0.8, 0.8, rng)
        keys = users * 30 + items
        assert np.unique(keys).size == 200

    def test_ids_in_range(self):
        rng = np.random.default_rng(3)
        users, items = sample_power_law_edges(10, 20, 50, 0.5, 0.5, rng)
        assert users.min() >= 0 and users.max() < 10
        assert items.min() >= 0 and items.max() < 20

    def test_dense_target_reachable(self):
        # Ask for 100% density: every cell must be filled.
        rng = np.random.default_rng(4)
        users, items = sample_power_law_edges(8, 8, 64, 1.0, 1.0, rng)
        assert users.size == 64

    def test_impossible_target_raises(self):
        rng = np.random.default_rng(5)
        with pytest.raises(DatasetError, match="cannot place"):
            sample_power_law_edges(3, 3, 10, 0.5, 0.5, rng)

    def test_zero_edges_raise(self):
        rng = np.random.default_rng(6)
        with pytest.raises(DatasetError, match="positive"):
            sample_power_law_edges(3, 3, 0, 0.5, 0.5, rng)


class TestGeneratorConfig:
    def test_density_property(self):
        config = GeneratorConfig("x", 10, 20, 40)
        assert config.density == pytest.approx(0.2)

    def test_symmetric_requires_square(self):
        with pytest.raises(DatasetError):
            GeneratorConfig("x", 10, 20, 40, symmetric=True)

    def test_bad_rating_model_raises(self):
        with pytest.raises(DatasetError):
            GeneratorConfig("x", 10, 20, 40, rating_model="bogus")

    def test_nonpositive_shape_raises(self):
        with pytest.raises(DatasetError):
            GeneratorConfig("x", 0, 20, 40)


class TestPowerLawBipartite:
    def test_matches_config_shape(self):
        config = GeneratorConfig("t", 80, 120, 600, seed=9)
        ds = power_law_bipartite(config)
        assert ds.n_users == 80
        assert ds.n_items == 120
        assert ds.n_ratings == 600

    def test_deterministic_under_seed(self):
        config = GeneratorConfig("t", 40, 50, 300, seed=11)
        assert power_law_bipartite(config) == power_law_bipartite(config)

    def test_different_seeds_differ(self):
        a = power_law_bipartite(GeneratorConfig("t", 40, 50, 300, seed=1))
        b = power_law_bipartite(GeneratorConfig("t", 40, 50, 300, seed=2))
        assert a != b

    def test_profile_sizes_are_skewed(self):
        config = GeneratorConfig("t", 200, 300, 3000, user_exponent=1.0, seed=3)
        ds = power_law_bipartite(config)
        sizes = ds.user_profile_sizes()
        # A power-law dataset has max degree far above the mean.
        assert sizes.max() > 3 * sizes.mean()

    def test_symmetric_dataset_is_symmetric(self):
        config = GeneratorConfig(
            "sym", 100, 100, 800, symmetric=True, seed=4
        )
        ds = power_law_bipartite(config)
        assert ds.symmetric
        asym = ds.matrix - ds.matrix.T
        assert abs(asym).sum() == 0

    def test_symmetric_dataset_has_no_self_loops(self):
        config = GeneratorConfig("sym", 60, 60, 400, symmetric=True, seed=5)
        ds = power_law_bipartite(config)
        assert ds.matrix.diagonal().sum() == 0

    def test_min_profile_size_enforced(self):
        config = GeneratorConfig(
            "floor", 100, 200, 400, seed=6, min_profile_size=3
        )
        ds = power_law_bipartite(config)
        assert ds.user_profile_sizes().min() >= 3

    def test_min_profile_size_enforced_symmetric(self):
        config = GeneratorConfig(
            "floor-sym", 80, 80, 300, symmetric=True, seed=7, min_profile_size=2
        )
        ds = power_law_bipartite(config)
        assert ds.user_profile_sizes().min() >= 2
        asym = ds.matrix - ds.matrix.T
        assert abs(asym).sum() == 0


class TestEnsureMinUserProfile:
    def test_no_op_when_already_satisfied(self, rated_dataset):
        rng = np.random.default_rng(0)
        topped = ensure_min_user_profile(rated_dataset, 1, rng)
        assert topped == rated_dataset

    def test_tops_up_deficient_users(self, rated_dataset):
        rng = np.random.default_rng(0)
        topped = ensure_min_user_profile(rated_dataset, 3, rng)
        assert topped.user_profile_sizes().min() >= 3

    def test_existing_ratings_preserved(self, rated_dataset):
        rng = np.random.default_rng(0)
        topped = ensure_min_user_profile(rated_dataset, 3, rng)
        for user in range(rated_dataset.n_users):
            original = rated_dataset.user_profile(user)
            new = topped.user_profile(user)
            for item, value in original.items():
                assert new[item] == value
