"""Unit tests for the dataset registry and domain presets."""

import numpy as np
import pytest

from repro.datasets import (
    DatasetError,
    EVALUATION_SUITE,
    dataset_names,
    load_dataset,
    load_evaluation_suite,
    load_movielens_family,
)


class TestRegistry:
    def test_all_names_load_at_tiny_scale(self):
        for name in dataset_names():
            ds = load_dataset(name, scale="tiny")
            assert ds.n_ratings > 0

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_unknown_scale_raises(self):
        with pytest.raises(DatasetError, match="unknown scale"):
            load_dataset("arxiv", scale="galactic")

    def test_presets_are_deterministic(self):
        a = load_dataset("wikipedia", scale="tiny")
        b = load_dataset("wikipedia", scale="tiny")
        assert a == b

    def test_dataset_name_matches_registry_key(self):
        for name in EVALUATION_SUITE:
            assert load_dataset(name, scale="tiny").name == name

    def test_laptop_scale_is_larger_than_tiny(self):
        tiny = load_dataset("wikipedia", scale="tiny")
        laptop = load_dataset("wikipedia", scale="laptop")
        assert laptop.n_users > tiny.n_users

    def test_evaluation_suite_order(self):
        suite = load_evaluation_suite(scale="tiny")
        assert [ds.name for ds in suite] == list(EVALUATION_SUITE)


class TestDomainShapes:
    def test_coauthorship_datasets_are_symmetric(self):
        for name in ("arxiv", "dblp"):
            ds = load_dataset(name, scale="tiny")
            assert ds.symmetric
            assert ds.n_users == ds.n_items
            assert abs(ds.matrix - ds.matrix.T).sum() == 0

    def test_arxiv_is_binary(self):
        ds = load_dataset("arxiv", scale="tiny")
        assert np.all(ds.matrix.data == 1.0)

    def test_wikipedia_is_binary(self):
        ds = load_dataset("wikipedia", scale="tiny")
        assert np.all(ds.matrix.data == 1.0)

    def test_gowalla_has_count_ratings(self):
        ds = load_dataset("gowalla", scale="tiny")
        assert ds.matrix.data.max() > 1.0
        assert np.all(ds.matrix.data == ds.matrix.data.astype(int))

    def test_dblp_min_coauthor_floor(self):
        ds = load_dataset("dblp", scale="laptop")
        # The paper's DBLP keeps only authors with >= 5 co-publications.
        assert ds.user_profile_sizes().min() >= 5

    def test_gowalla_item_universe_larger_than_users(self):
        ds = load_dataset("gowalla", scale="tiny")
        assert ds.n_items > ds.n_users

    def test_density_ordering_wikipedia_densest(self):
        suite = {ds.name: ds for ds in load_evaluation_suite(scale="laptop")}
        assert suite["wikipedia"].density > suite["arxiv"].density
        assert suite["arxiv"].density > suite["dblp"].density
        assert suite["arxiv"].density > suite["gowalla"].density


class TestMovielensFamily:
    def test_family_has_five_members(self):
        family = load_movielens_family(scale="tiny")
        assert [ds.name for ds in family] == [f"ml-{i}" for i in range(1, 6)]

    def test_density_strictly_decreasing(self):
        family = load_movielens_family(scale="tiny")
        densities = [ds.density for ds in family]
        assert all(a > b for a, b in zip(densities, densities[1:]))

    def test_members_share_shape(self):
        family = load_movielens_family(scale="tiny")
        shapes = {(ds.n_users, ds.n_items) for ds in family}
        assert len(shapes) == 1

    def test_published_keep_fractions(self):
        from repro.datasets.movielens import ML_KEEP_FRACTIONS

        family = load_movielens_family(scale="tiny")
        base = family[0].n_ratings
        for ds, fraction in zip(family, ML_KEEP_FRACTIONS):
            assert ds.n_ratings == pytest.approx(base * fraction, rel=0.01)

    def test_star_ratings(self):
        family = load_movielens_family(scale="tiny")
        data = family[0].matrix.data
        assert np.all((data * 2) == (data * 2).astype(int))
        assert data.min() >= 0.5
        assert data.max() <= 5.0
