"""Unit tests for edge-list persistence."""

import pytest

from repro.datasets.bipartite import BipartiteDataset, DatasetError
from repro.datasets.loaders import (
    load_dataset_dir,
    load_edge_list,
    save_dataset,
    save_edge_list,
)


class TestEdgeListRoundTrip:
    def test_round_trip_binary(self, toy_dataset, tmp_path):
        path = save_edge_list(toy_dataset, tmp_path / "toy.edges")
        loaded = load_edge_list(path, n_users=4, n_items=4)
        assert loaded == toy_dataset

    def test_round_trip_rated(self, rated_dataset, tmp_path):
        path = save_edge_list(rated_dataset, tmp_path / "rated.edges")
        loaded = load_edge_list(path, n_users=5, n_items=5)
        assert loaded == rated_dataset

    def test_integer_ratings_written_without_decimal(self, toy_dataset, tmp_path):
        path = save_edge_list(toy_dataset, tmp_path / "toy.edges")
        body = [
            line
            for line in path.read_text().splitlines()
            if not line.startswith("#")
        ]
        assert all(line.split("\t")[2] == "1" for line in body)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "data.edges"
        path.write_text("# header\n\n0 0 2.5\n1 1\n")
        ds = load_edge_list(path)
        assert ds.n_ratings == 2
        assert ds.user_profile(0) == {0: 2.5}
        assert ds.user_profile(1) == {1: 1.0}

    def test_missing_rating_column_defaults_to_one(self, tmp_path):
        path = tmp_path / "data.edges"
        path.write_text("0 1\n")
        assert load_edge_list(path).user_profile(0) == {1: 1.0}

    def test_malformed_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 0 1\nnot numbers here extra\n")
        with pytest.raises(DatasetError, match=":2"):
            load_edge_list(path)

    def test_wrong_column_count_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 0 1 9 9\n")
        with pytest.raises(DatasetError, match="expected"):
            load_edge_list(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.edges"
        path.write_text("# nothing\n")
        with pytest.raises(DatasetError, match="no edges"):
            load_edge_list(path)


class TestDatasetDirectory:
    def test_save_and_load_dataset(self, rated_dataset, tmp_path):
        save_dataset(rated_dataset, tmp_path)
        loaded = load_dataset_dir(tmp_path, rated_dataset.name)
        assert loaded == rated_dataset
        assert loaded.name == rated_dataset.name

    def test_symmetric_flag_round_trips(self, tmp_path):
        ds = BipartiteDataset.from_edges(
            [0, 1], [1, 0], n_users=2, n_items=2, name="sym", symmetric=True
        )
        save_dataset(ds, tmp_path)
        assert load_dataset_dir(tmp_path, "sym").symmetric

    def test_missing_dataset_raises(self, tmp_path):
        with pytest.raises(DatasetError, match="no saved dataset"):
            load_dataset_dir(tmp_path, "ghost")

    def test_corrupted_edge_file_detected(self, rated_dataset, tmp_path):
        save_dataset(rated_dataset, tmp_path)
        edge_path = tmp_path / f"{rated_dataset.name}.edges"
        lines = edge_path.read_text().splitlines()
        edge_path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(DatasetError, match="expected"):
            load_dataset_dir(tmp_path, rated_dataset.name)
