"""Unit tests for dataset statistics (Table I / Figure 4 helpers)."""

import numpy as np
import pytest

from repro.datasets.stats import describe, profile_size_ccdf


class TestDescribe:
    def test_matches_dataset_properties(self, rated_dataset):
        stats = describe(rated_dataset)
        assert stats.n_users == rated_dataset.n_users
        assert stats.n_items == rated_dataset.n_items
        assert stats.n_ratings == rated_dataset.n_ratings
        assert stats.density_percent == pytest.approx(
            rated_dataset.density_percent
        )

    def test_as_row_has_table1_columns(self, toy_dataset):
        row = describe(toy_dataset).as_row()
        assert len(row) == 7
        assert row[0] == toy_dataset.name


class TestProfileSizeCcdf:
    def test_user_axis(self, toy_dataset):
        xs, ps = profile_size_ccdf(toy_dataset, axis="user")
        # Sizes are [2, 2, 1, 1]: P(>=1) = 1.0, P(>=2) = 0.5.
        assert xs.tolist() == [1, 2]
        assert ps.tolist() == [1.0, 0.5]

    def test_item_axis(self, toy_dataset):
        xs, ps = profile_size_ccdf(toy_dataset, axis="item")
        assert xs.tolist() == [1, 2]
        assert ps.tolist() == [1.0, 0.5]

    def test_invalid_axis_raises(self, toy_dataset):
        with pytest.raises(ValueError, match="axis"):
            profile_size_ccdf(toy_dataset, axis="sideways")

    def test_ccdf_monotone_nonincreasing(self, tiny_wikipedia):
        _, ps = profile_size_ccdf(tiny_wikipedia, axis="user")
        assert np.all(np.diff(ps) <= 0)
