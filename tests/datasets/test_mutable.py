"""Unit tests for the append-friendly dataset builder."""

import pytest

from repro.datasets import BipartiteDataset, DatasetError, MutableBipartiteBuilder


@pytest.fixture
def builder(rated_dataset) -> MutableBipartiteBuilder:
    return MutableBipartiteBuilder.from_dataset(rated_dataset)


class TestRoundTrip:
    def test_from_dataset_snapshot_is_identical(self, rated_dataset, builder):
        assert builder.snapshot() == rated_dataset
        assert builder.n_users == rated_dataset.n_users
        assert builder.n_items == rated_dataset.n_items
        assert builder.n_ratings == rated_dataset.n_ratings

    def test_snapshot_cached_until_mutation(self, builder):
        first = builder.snapshot()
        assert builder.snapshot() is first
        builder.set_rating(0, 3, 2.0)
        assert builder.snapshot() is not first

    def test_named_snapshot_does_not_pollute_cache(self, builder):
        named = builder.snapshot(name="probe")
        assert named.name == "probe"
        assert builder.snapshot().name != "probe"


class TestMutations:
    def test_set_rating_adds_edge(self, builder):
        builder.set_rating(0, 3, 4.5)
        assert builder.rating(0, 3) == 4.5
        assert 0 in builder.users_of(3)
        assert builder.snapshot().user_profile(0)[3] == 4.5

    def test_set_rating_overwrites(self, builder):
        before = builder.n_ratings
        builder.set_rating(0, 0, 1.5)
        assert builder.n_ratings == before
        assert builder.rating(0, 0) == 1.5

    def test_zero_rating_deletes_edge(self, builder):
        builder.set_rating(0, 0, 0.0)
        assert builder.rating(0, 0) == 0.0
        assert 0 not in builder.users_of(0)
        assert 0 not in builder.snapshot().user_items(0).tolist()

    def test_noop_mutations_keep_snapshot_and_shape(self, builder):
        """Duplicate deliveries must be free: an absent-edge delete or an
        identical overwrite neither grows the item universe nor drops
        the snapshot cache."""
        snapshot = builder.snapshot()
        builder.set_rating(0, 5000, 0.0)  # delete of an absent edge
        assert builder.n_items == snapshot.n_items
        builder.set_rating(0, 0, builder.rating(0, 0))  # identical overwrite
        assert builder.snapshot() is snapshot

    def test_new_item_grows_item_space(self, builder):
        builder.set_rating(0, 40, 1.0)
        assert builder.n_items == 41
        assert builder.snapshot().n_items == 41

    def test_add_user_allocates_dense_ids(self, builder):
        first = builder.add_user([0, 2], [5.0, 1.0])
        second = builder.add_user()
        assert (first, second) == (5, 6)
        assert builder.profile(second) == {}
        assert builder.snapshot().n_users == 7

    def test_clear_user_empties_profile_keeps_id(self, builder):
        n = builder.n_users
        builder.clear_user(3)
        assert builder.profile(3) == {}
        assert builder.n_users == n
        assert 3 not in builder.users_of(0)

    def test_item_index_tracks_mutations(self, builder):
        assert builder.users_of(0) == {0, 1, 3}
        builder.set_rating(2, 0, 2.0)
        assert 2 in builder.users_of(0)
        builder.clear_user(1)
        assert 1 not in builder.users_of(0)


class TestValidation:
    def test_unknown_user_rejected(self, builder):
        with pytest.raises(DatasetError, match="out of range"):
            builder.set_rating(99, 0, 1.0)

    def test_negative_item_rejected(self, builder):
        with pytest.raises(DatasetError, match="non-negative"):
            builder.set_rating(0, -1, 1.0)

    def test_non_finite_rating_rejected(self, builder):
        with pytest.raises(DatasetError, match="finite"):
            builder.set_rating(0, 0, float("nan"))

    def test_mismatched_profile_lengths_rejected(self, builder):
        with pytest.raises(DatasetError, match="equal length"):
            builder.add_user([0, 1], [1.0])

    @pytest.mark.parametrize(
        "items, ratings",
        [([0, 1], [1.0]), ([-1], [1.0]), ([0], [float("inf")])],
    )
    def test_rejected_add_user_leaks_no_phantom_id(self, builder, items, ratings):
        """Validation happens before id allocation: a rejected profile
        must leave the builder (and any index built on it) unchanged."""
        before = builder.n_users
        with pytest.raises(DatasetError):
            builder.add_user(items, ratings)
        assert builder.n_users == before
        assert builder.add_user() == before  # next id unaffected

    def test_userless_builder_snapshot_rejected(self):
        """No phantom users: snapshotting before any add_user must fail
        loudly instead of desynchronizing builder and dataset shapes."""
        builder = MutableBipartiteBuilder()
        with pytest.raises(DatasetError, match="no users"):
            builder.snapshot()

    def test_ratingless_users_snapshot_pads_item_universe(self):
        builder = MutableBipartiteBuilder()
        builder.add_user()
        snapshot = builder.snapshot()
        assert isinstance(snapshot, BipartiteDataset)
        assert snapshot.n_users == 1
        assert snapshot.n_items == 1  # padded; no item ids exist yet
        assert snapshot.n_ratings == 0
