"""Unit tests for the append-friendly dataset builder."""

import pytest

from repro.datasets import BipartiteDataset, DatasetError, MutableBipartiteBuilder


@pytest.fixture
def builder(rated_dataset) -> MutableBipartiteBuilder:
    return MutableBipartiteBuilder.from_dataset(rated_dataset)


class TestRoundTrip:
    def test_from_dataset_snapshot_is_identical(self, rated_dataset, builder):
        assert builder.snapshot() == rated_dataset
        assert builder.n_users == rated_dataset.n_users
        assert builder.n_items == rated_dataset.n_items
        assert builder.n_ratings == rated_dataset.n_ratings

    def test_snapshot_cached_until_mutation(self, builder):
        first = builder.snapshot()
        assert builder.snapshot() is first
        builder.set_rating(0, 3, 2.0)
        assert builder.snapshot() is not first

    def test_named_snapshot_does_not_pollute_cache(self, builder):
        named = builder.snapshot(name="probe")
        assert named.name == "probe"
        assert builder.snapshot().name != "probe"


class TestMutations:
    def test_set_rating_adds_edge(self, builder):
        builder.set_rating(0, 3, 4.5)
        assert builder.rating(0, 3) == 4.5
        assert 0 in builder.users_of(3)
        assert builder.snapshot().user_profile(0)[3] == 4.5

    def test_set_rating_overwrites(self, builder):
        before = builder.n_ratings
        builder.set_rating(0, 0, 1.5)
        assert builder.n_ratings == before
        assert builder.rating(0, 0) == 1.5

    def test_zero_rating_deletes_edge(self, builder):
        builder.set_rating(0, 0, 0.0)
        assert builder.rating(0, 0) == 0.0
        assert 0 not in builder.users_of(0)
        assert 0 not in builder.snapshot().user_items(0).tolist()

    def test_noop_mutations_keep_snapshot_and_shape(self, builder):
        """Duplicate deliveries must be free: an absent-edge delete or an
        identical overwrite neither grows the item universe nor drops
        the snapshot cache."""
        snapshot = builder.snapshot()
        builder.set_rating(0, 5000, 0.0)  # delete of an absent edge
        assert builder.n_items == snapshot.n_items
        builder.set_rating(0, 0, builder.rating(0, 0))  # identical overwrite
        assert builder.snapshot() is snapshot

    def test_new_item_grows_item_space(self, builder):
        builder.set_rating(0, 40, 1.0)
        assert builder.n_items == 41
        assert builder.snapshot().n_items == 41

    def test_add_user_allocates_dense_ids(self, builder):
        first = builder.add_user([0, 2], [5.0, 1.0])
        second = builder.add_user()
        assert (first, second) == (5, 6)
        assert builder.profile(second) == {}
        assert builder.snapshot().n_users == 7

    def test_clear_user_empties_profile_keeps_id(self, builder):
        n = builder.n_users
        builder.clear_user(3)
        assert builder.profile(3) == {}
        assert builder.n_users == n
        assert 3 not in builder.users_of(0)

    def test_item_index_tracks_mutations(self, builder):
        assert builder.users_of(0) == {0, 1, 3}
        builder.set_rating(2, 0, 2.0)
        assert 2 in builder.users_of(0)
        builder.clear_user(1)
        assert 1 not in builder.users_of(0)


class TestValidation:
    def test_unknown_user_rejected(self, builder):
        with pytest.raises(DatasetError, match="out of range"):
            builder.set_rating(99, 0, 1.0)

    def test_negative_item_rejected(self, builder):
        with pytest.raises(DatasetError, match="non-negative"):
            builder.set_rating(0, -1, 1.0)

    def test_non_finite_rating_rejected(self, builder):
        with pytest.raises(DatasetError, match="finite"):
            builder.set_rating(0, 0, float("nan"))

    def test_mismatched_profile_lengths_rejected(self, builder):
        with pytest.raises(DatasetError, match="equal length"):
            builder.add_user([0, 1], [1.0])

    @pytest.mark.parametrize(
        "items, ratings",
        [([0, 1], [1.0]), ([-1], [1.0]), ([0], [float("inf")])],
    )
    def test_rejected_add_user_leaks_no_phantom_id(self, builder, items, ratings):
        """Validation happens before id allocation: a rejected profile
        must leave the builder (and any index built on it) unchanged."""
        before = builder.n_users
        with pytest.raises(DatasetError):
            builder.add_user(items, ratings)
        assert builder.n_users == before
        assert builder.add_user() == before  # next id unaffected

    def test_userless_builder_snapshot_rejected(self):
        """No phantom users: snapshotting before any add_user must fail
        loudly instead of desynchronizing builder and dataset shapes."""
        builder = MutableBipartiteBuilder()
        with pytest.raises(DatasetError, match="no users"):
            builder.snapshot()

    def test_ratingless_users_snapshot_pads_item_universe(self):
        builder = MutableBipartiteBuilder()
        builder.add_user()
        snapshot = builder.snapshot()
        assert isinstance(snapshot, BipartiteDataset)
        assert snapshot.n_users == 1
        assert snapshot.n_items == 1  # padded; no item ids exist yet
        assert snapshot.n_ratings == 0


class TestIncrementalSnapshot:
    def test_dirty_rows_tracked_and_cleared(self, builder):
        assert builder.dirty_rows == frozenset()
        builder.set_rating(2, 0, 4.0)
        builder.set_rating(0, 1, 2.0)
        assert builder.dirty_rows == frozenset({0, 2})
        builder.snapshot()
        assert builder.dirty_rows == frozenset()

    def test_noop_mutations_stay_clean(self, builder):
        snapshot = builder.snapshot()
        builder.set_rating(0, 0, builder.rating(0, 0))  # identical overwrite
        builder.set_rating(0, 4, 0.0)  # delete an absent edge
        assert builder.dirty_rows == frozenset()
        assert builder.snapshot() is snapshot  # cache untouched

    def test_incremental_path_engages_and_counts_rows(self, builder):
        counter = builder.maintenance
        builder.set_rating(1, 3, 5.0)
        before = counter.rows_materialized
        snapshot = builder.snapshot()
        assert counter.snapshots_incremental == 1
        assert counter.rows_materialized - before == 1
        assert snapshot == builder.snapshot(name="full-check")

    def test_large_dirty_set_falls_back_to_full(self, builder):
        for user in range(builder.n_users):
            builder.set_rating(user, 4, 1.5)
        builder.snapshot()
        assert builder.maintenance.snapshots_incremental == 0
        assert builder.maintenance.snapshots_full >= 1

    def test_dirty_users_hint_must_be_valid_ids(self, builder):
        builder.set_rating(0, 1, 2.0)
        with pytest.raises(DatasetError):
            builder.snapshot(dirty_users=[0, 99])

    def test_csc_mirror_patched_when_base_had_one(self, builder):
        base = builder.snapshot()
        base.csc  # build the mirror on the patch base
        builder.set_rating(3, 1, 0.0)  # delete
        builder.set_rating(1, 4, 2.5)  # insert (new column usage)
        snapshot = builder.snapshot()
        assert snapshot._csc_cache  # pre-seeded, not lazily rebuilt
        truth = snapshot.matrix.tocsc()
        patched = snapshot._csc_cache[0]
        assert abs(patched - truth).nnz == 0

    def test_incremental_snapshot_after_user_growth(self, builder):
        builder.snapshot()
        newcomer = builder.add_user([2], [3.0])
        snapshot = builder.snapshot()
        assert snapshot.n_users == builder.n_users
        assert snapshot.user_profile(newcomer) == {2: 3.0}
        assert builder.maintenance.snapshots_incremental == 1

    def test_incremental_snapshot_after_item_growth(self, builder):
        builder.snapshot()
        builder.set_rating(0, 11, 4.0)
        snapshot = builder.snapshot()
        assert snapshot.n_items == 12
        assert snapshot.user_profile(0)[11] == 4.0
